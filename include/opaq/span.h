#ifndef OPAQ_INCLUDE_OPAQ_SPAN_H_
#define OPAQ_INCLUDE_OPAQ_SPAN_H_

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace opaq {

/// Minimal read-only `std::span<const T>` stand-in for the public API (the
/// project is C++17; like `ThreadBarrier`, this goes away if it moves to
/// C++20). Non-owning view: the viewed sequence must outlive the span, which
/// is trivially true for the facade's use — batched query arguments consumed
/// within the call.
template <typename T>
class Span {
 public:
  using value_type = std::remove_cv_t<T>;

  constexpr Span() = default;
  constexpr Span(const value_type* data, size_t size)
      : data_(data), size_(size) {}
  // NOLINTNEXTLINE(runtime/explicit): implicit, like std::span.
  Span(const std::vector<value_type>& v) : data_(v.data()), size_(v.size()) {}
  // Lets callers write Query({req1, req2}). Like C++26's
  // std::span(initializer_list), the view only lives for the full
  // expression containing the braced list — never store such a span (GCC's
  // -Winit-list-lifetime points at exactly that hazard; the facade consumes
  // spans within the call, so it is suppressed here).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  // NOLINTNEXTLINE(runtime/explicit)
  Span(std::initializer_list<value_type> il)
      : data_(il.begin()), size_(il.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  template <size_t N>
  // NOLINTNEXTLINE(runtime/explicit)
  constexpr Span(const value_type (&array)[N]) : data_(array), size_(N) {}

  constexpr const value_type* data() const { return data_; }
  constexpr const value_type* begin() const { return data_; }
  constexpr const value_type* end() const { return data_ + size_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const value_type& operator[](size_t i) const { return data_[i]; }

 private:
  const value_type* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_INCLUDE_OPAQ_SPAN_H_
