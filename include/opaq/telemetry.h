#ifndef OPAQ_INCLUDE_OPAQ_TELEMETRY_H_
#define OPAQ_INCLUDE_OPAQ_TELEMETRY_H_

/// Public observability surface: the flight-recorder telemetry every OPAQ
/// process carries (see README "Observability").
///
///  - `MetricsRegistry` (telemetry/metrics.h) — named `Counter` / `Gauge` /
///    `LatencyHistogram` metrics with stable pointers and lock-free hot-path
///    updates. The histograms are self-hosted on the paper's own mergeable
///    sample-list sketch, so a histogram snapshot carries certified
///    quantile brackets. `MetricsRegistry::Global()` is what the engine,
///    the frame servers, and both daemons publish into.
///  - `FlightRecorder` / `TraceSpan` (telemetry/trace.h) — scoped per-stage
///    spans on the hot pipeline (run read, extent decode, sample, k-way
///    merge, §4 exact pass, wire send/recv) recorded into a bounded
///    lock-free ring, exportable as Chrome trace-event JSON.
///  - `FormatStatsText` / `FormatStatsPrometheus`
///    (telemetry/stats_format.h) — the one snapshot renderer both daemons'
///    shutdown dumps, `--stats-interval` ticks, and `opaq_cli stats` share.
///
/// Over the wire: protocol v6 `kStats`/`kStatsData` (net/wire_stats.h,
/// reachable via opaq/net.h) serve a registry snapshot from any daemon to
/// `opaq_cli stats host:port`.

#include "telemetry/metrics.h"
#include "telemetry/stats_format.h"
#include "telemetry/trace.h"

#endif  // OPAQ_INCLUDE_OPAQ_TELEMETRY_H_
