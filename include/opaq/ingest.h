#ifndef OPAQ_INCLUDE_OPAQ_INGEST_H_
#define OPAQ_INCLUDE_OPAQ_INGEST_H_

/// Streaming ingest: live (appendable) datasets and time-windowed
/// quantiles.
///
///   - `LiveDataset<K>`        — durable append writer (CRC'd manifest,
///                               fsync-file-then-fsync-manifest commit)
///   - `LiveDatasetReader<K>`  — read snapshot behind the RunProvider seam
///   - `Source<K>::OpenLive`   — facade entry (opaq/source.h)
///   - `QuerySession<K>::Absorb` — incremental refresh (opaq/query.h)
///   - `WindowedSession<K>`    — ring of per-window sketches, merged at
///                               query time
#include "ingest/live_dataset.h"    // IWYU pragma: export
#include "ingest/windowed_session.h"  // IWYU pragma: export

#endif  // OPAQ_INCLUDE_OPAQ_INGEST_H_
