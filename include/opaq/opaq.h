#ifndef OPAQ_INCLUDE_OPAQ_OPAQ_H_
#define OPAQ_INCLUDE_OPAQ_OPAQ_H_

/// The public face of the OPAQ library — one include for the whole
/// pipeline of "A One-Pass Algorithm for Accurately Estimating Quantiles
/// for Disk-Resident Data" (Alsabti, Ranka, Singh — VLDB 1997):
///
///     #include "opaq/opaq.h"
///
///     opaq::OpaqConfig config;                      // m, s, io knobs
///     auto source = opaq::Source<uint64_t>::Open("data.opaq");
///     auto session = opaq::Engine<uint64_t>(config, *source).Build();
///     auto answers = session->Query({
///         opaq::QueryRequest<uint64_t>::Quantile(0.5, /*exact=*/true),
///         opaq::QueryRequest<uint64_t>::EquiQuantiles(10),
///         opaq::QueryRequest<uint64_t>::RankOf(123456),
///     });
///
/// Layers (each also available as its own header):
///  - opaq/source.h   — `Source<K>`: one handle for every dataset backend
///  - opaq/engine.h   — `Engine<K>`: config + sources -> `QuerySession`
///  - opaq/query.h    — `QuerySession<K>`: batched certified queries
///  - opaq/apps.h     — histograms / partitioners / selectivity on top
///  - opaq/ingest.h   — live datasets, incremental refresh, windowed rings
///  - opaq/net.h     — data nodes: serve/consume datasets over TCP
///  - opaq/telemetry.h — metrics registry, trace spans, stats formatters
///  - opaq/config.h, opaq/status.h, opaq/io.h, opaq/data.h,
///    opaq/metrics.h, opaq/util.h — supporting surfaces
///  - opaq/parallel.h — the §3 parallel algorithm (not pulled in here)
///
/// The classic layer (OpaqSketch / OpaqEstimator / the §4 exact pass /
/// sketch persistence) remains public for incremental and streaming
/// workloads that manage sample lists themselves.

#include "core/estimator.h"
#include "core/exact.h"
#include "core/opaq.h"
#include "core/sample_list.h"
#include "core/sketch_io.h"
#include "opaq/apps.h"
#include "opaq/config.h"
#include "opaq/data.h"
#include "opaq/engine.h"
#include "opaq/ingest.h"
#include "opaq/io.h"
#include "opaq/metrics.h"
#include "opaq/net.h"
#include "opaq/query.h"
#include "opaq/source.h"
#include "opaq/span.h"
#include "opaq/status.h"
#include "opaq/telemetry.h"
#include "opaq/util.h"

#endif  // OPAQ_INCLUDE_OPAQ_OPAQ_H_
