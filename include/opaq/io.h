#ifndef OPAQ_INCLUDE_OPAQ_IO_H_
#define OPAQ_INCLUDE_OPAQ_IO_H_

/// Public storage surface: block devices (file-backed, in-memory, throttled
/// disk simulation, fault injection), typed data files, the striped
/// multi-disk file format, the `RunProvider`/`RunSource` backend abstraction,
/// and temp-dir helpers. Most users never touch these directly —
/// `opaq::Source` (opaq/source.h) wraps them — but systems embedding OPAQ on
/// their own storage implement `RunProvider` from here.

#include "io/async_run_reader.h"
#include "io/block_device.h"
#include "io/codec.h"
#include "io/data_file.h"
#include "io/extent.h"
#include "io/faulty_device.h"
#include "io/run_reader.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "io/tempdir.h"
#include "io/throttled_device.h"

#endif  // OPAQ_INCLUDE_OPAQ_IO_H_
