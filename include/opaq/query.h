#ifndef OPAQ_INCLUDE_OPAQ_QUERY_H_
#define OPAQ_INCLUDE_OPAQ_QUERY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/exact.h"
#include "core/sample_list.h"
#include "core/opaq_config.h"
#include "opaq/source.h"
#include "opaq/span.h"
#include "util/status.h"

namespace opaq {

/// One entry of a batched query. Build with the factories; `exact = true`
/// on a quantile-flavored request asks for the paper's §4 second pass —
/// all exact requests in a batch share ONE extra pass over the data.
template <typename K>
struct QueryRequest {
  enum class Kind {
    kQuantile,        ///< bracket for the phi-quantile, phi in (0, 1]
    kQuantileByRank,  ///< bracket for the element of 1-based rank psi
    kRank,            ///< rank bracket for an arbitrary value
    kEquiQuantiles,   ///< the q-1 equi-spaced quantile brackets at once
  };

  Kind kind = Kind::kQuantile;
  double phi = 0;      ///< kQuantile
  uint64_t rank = 0;   ///< kQuantileByRank
  K value{};           ///< kRank
  int q = 0;           ///< kEquiQuantiles
  bool exact = false;  ///< recover exact value(s) with the shared 2nd pass

  static QueryRequest Quantile(double phi, bool exact = false) {
    QueryRequest r;
    r.kind = Kind::kQuantile;
    r.phi = phi;
    r.exact = exact;
    return r;
  }
  static QueryRequest QuantileByRank(uint64_t rank, bool exact = false) {
    QueryRequest r;
    r.kind = Kind::kQuantileByRank;
    r.rank = rank;
    r.exact = exact;
    return r;
  }
  static QueryRequest RankOf(K value) {
    QueryRequest r;
    r.kind = Kind::kRank;
    r.value = std::move(value);
    return r;
  }
  static QueryRequest EquiQuantiles(int q, bool exact = false) {
    QueryRequest r;
    r.kind = Kind::kEquiQuantiles;
    r.q = q;
    r.exact = exact;
    return r;
  }
};

/// The answer to one request, same order as the batch.
template <typename K>
struct QueryResult {
  typename QueryRequest<K>::Kind kind = QueryRequest<K>::Kind::kQuantile;

  /// kQuantile/kQuantileByRank: exactly one bracket. kEquiQuantiles: the
  /// q-1 brackets in ascending phi order. Empty for kRank.
  std::vector<QuantileEstimate<K>> estimates;

  /// Parallel to `estimates` when the request set `exact`; empty otherwise.
  std::vector<K> exact;

  /// kRank only.
  RankEstimate rank;
};

/// A whole batch's answers plus the session-level certificates.
template <typename K>
struct QueryResults {
  std::vector<QueryResult<K>> results;
  uint64_t total_elements = 0;
  /// Lemma 1-3 budget shared by every bracket in the batch.
  uint64_t max_rank_error = 0;
};

/// The query phase of the public API: a finished sample list bound to the
/// source(s) it came from, answering batches of quantile / rank /
/// equi-quantile requests in one call — each estimate O(1) beyond the
/// first, and at most ONE extra data pass shared by every exact-flagged
/// request in the batch (the paper's "extra time for computing additional
/// quantiles is constant per quantile", lifted to the API).
///
/// Sessions come from `Engine<K>::Build()`; they can also be constructed
/// directly from a loaded `SampleList` (e.g. a persisted sketch file), in
/// which case exact queries need `sources` to rescan.
template <typename K>
class QuerySession {
 public:
  /// A session over a finished sample list. `sources` are the shards the
  /// list summarizes (in order); they may be empty, disabling only the
  /// `exact` query flavor. `config` supplies the I/O knobs of the exact
  /// pass.
  explicit QuerySession(SampleList<K> samples,
                        std::vector<Source<K>> sources = {},
                        OpaqConfig config = OpaqConfig())
      : estimator_(std::move(samples)),
        sources_(std::move(sources)),
        config_(std::move(config)) {}

  /// Incremental refresh: folds the sample list of newly ingested data
  /// into the resident session via the associative `SampleList::Merge` —
  /// one O(s) merge instead of resketching everything already absorbed.
  /// Because regular-sampling samples are order statistics and run
  /// boundaries in a live dataset are per-segment, the absorbed session is
  /// BYTE-identical to one rebuilt from scratch over base + delta
  /// (conformance-gated in `backend_conformance_test`).
  ///
  /// `delta_sources` are the shards the delta summarizes (e.g. a
  /// `LiveTailProvider` over the new segments); they append to the
  /// session's source list so the §4 exact pass keeps covering ALL data.
  /// Omit them to keep the session estimate-only over the delta.
  ///
  /// An empty delta is a no-op; a sub-run-size mismatch returns
  /// InvalidArgument and leaves the session untouched.
  Status Absorb(const SampleList<K>& delta,
                std::vector<Source<K>> delta_sources = {}) {
    if (delta.samples().empty() && delta.total_elements() == 0) {
      return Status::OK();
    }
    auto merged = SampleList<K>::Merge(estimator_.sample_list(), delta);
    if (!merged.ok()) return merged.status();
    estimator_ = OpaqEstimator<K>(std::move(merged).value());
    for (Source<K>& source : delta_sources) {
      sources_.push_back(std::move(source));
    }
    return Status::OK();
  }

  /// Answers every request of the batch, in order. Returns
  /// InvalidArgument for a malformed request (phi outside (0,1], q < 2,
  /// rank outside [1, n]), FailedPrecondition when `exact` is requested
  /// with no attached source or a clamped bracket, and the scan's error
  /// status if the shared second pass fails.
  Result<QueryResults<K>> Query(Span<const QueryRequest<K>> requests) const {
    // Sessions can be constructed over any loaded SampleList; an empty one
    // (a sketch of a dataset smaller than one sub-run) must surface as a
    // Status here, not as the estimator's CHECK-abort.
    if (estimator_.total_elements() == 0 ||
        estimator_.sample_list().samples().empty()) {
      return Status::FailedPrecondition(
          "the session's sample list holds no samples; the quantile phase "
          "needs a non-empty sketch");
    }
    QueryResults<K> out;
    out.total_elements = estimator_.total_elements();
    out.max_rank_error = estimator_.max_rank_error();
    out.results.reserve(requests.size());

    // Estimate phase: O(1) per bracket off the sample list.
    std::vector<QuantileEstimate<K>> exact_estimates;
    std::vector<std::pair<size_t, size_t>> exact_slots;  // result, estimate
    for (size_t i = 0; i < requests.size(); ++i) {
      const QueryRequest<K>& request = requests[i];
      QueryResult<K> result;
      result.kind = request.kind;
      switch (request.kind) {
        case QueryRequest<K>::Kind::kQuantile:
          if (!(request.phi > 0.0 && request.phi <= 1.0)) {
            return Status::InvalidArgument(
                "request " + std::to_string(i) + ": phi must be in (0, 1]");
          }
          result.estimates.push_back(estimator_.Quantile(request.phi));
          break;
        case QueryRequest<K>::Kind::kQuantileByRank:
          if (request.rank < 1 || request.rank > out.total_elements) {
            return Status::InvalidArgument(
                "request " + std::to_string(i) + ": rank must be in [1, n]");
          }
          result.estimates.push_back(
              estimator_.QuantileByRank(request.rank));
          break;
        case QueryRequest<K>::Kind::kRank:
          if (request.exact) {
            return Status::InvalidArgument(
                "request " + std::to_string(i) +
                ": exact recovery applies to quantile-flavored requests, "
                "not rank brackets");
          }
          result.rank = estimator_.EstimateRank(request.value);
          break;
        case QueryRequest<K>::Kind::kEquiQuantiles:
          if (request.q < 2) {
            return Status::InvalidArgument(
                "request " + std::to_string(i) + ": q must be >= 2");
          }
          result.estimates = estimator_.EquiQuantiles(request.q);
          break;
      }
      if (request.exact) {
        for (size_t e = 0; e < result.estimates.size(); ++e) {
          exact_slots.emplace_back(i, e);
          exact_estimates.push_back(result.estimates[e]);
        }
      }
      out.results.push_back(std::move(result));
    }

    // Exact phase: one shared pass over every attached source.
    if (!exact_estimates.empty()) {
      auto values = ExactValues(exact_estimates);
      if (!values.ok()) return values.status();
      for (size_t slot = 0; slot < exact_slots.size(); ++slot) {
        QueryResult<K>& result = out.results[exact_slots[slot].first];
        result.exact.resize(result.estimates.size());
        result.exact[exact_slots[slot].second] = (*values)[slot];
      }
    }
    return out;
  }

  // ----- Conveniences (thin sugar over the batched call / estimator). -----
  //
  // These forward to the classic OpaqEstimator and share its contract: the
  // session must hold a non-empty sample list (they CHECK-abort otherwise,
  // exactly like the estimator). `Query()` is the Status-returning path —
  // use it when the sample list comes from outside (a loaded sketch file)
  // and may be empty; `sample_list().samples().empty()` tells you which
  // case you are in.

  /// Certified bracket for the phi-quantile.
  QuantileEstimate<K> Quantile(double phi) const {
    return estimator_.Quantile(phi);
  }

  /// The q-1 equi-spaced quantile brackets.
  std::vector<QuantileEstimate<K>> EquiQuantiles(int q) const {
    return estimator_.EquiQuantiles(q);
  }

  /// Rank bracket for an arbitrary value (no pass over the data).
  RankEstimate EstimateRank(const K& v) const {
    return estimator_.EstimateRank(v);
  }

  /// Memory budget (in elements) for the exact second pass; 0 (default)
  /// means 4 * q * max_rank_error — twice Lemma 3's per-bracket bound.
  /// Duplicate-heavy data can legitimately hold more than that inside a
  /// bracket; raise the budget to let the pass keep them.
  void set_exact_memory_budget(uint64_t elements) {
    exact_memory_budget_ = elements;
  }
  uint64_t exact_memory_budget() const { return exact_memory_budget_; }

  /// Exact phi-quantile via the §4 second pass over the attached sources.
  Result<K> ExactQuantile(double phi) const {
    auto results = Query({QueryRequest<K>::Quantile(phi, /*exact=*/true)});
    if (!results.ok()) return results.status();
    return results->results[0].exact[0];
  }

  uint64_t total_elements() const { return estimator_.total_elements(); }
  uint64_t max_rank_error() const { return estimator_.max_rank_error(); }
  const OpaqEstimator<K>& estimator() const { return estimator_; }
  const SampleList<K>& sample_list() const {
    return estimator_.sample_list();
  }
  const std::vector<Source<K>>& sources() const { return sources_; }
  const OpaqConfig& config() const { return config_; }

 private:
  /// The shared second pass: ONE filter scan per attached shard (each shard
  /// scanned once for ALL brackets, shards scanned concurrently — the same
  /// one-thread-per-shard overlap as Engine::Build), then in-memory
  /// selection over the merged accumulators.
  Result<std::vector<K>> ExactValues(
      const std::vector<QuantileEstimate<K>>& estimates) const {
    if (sources_.empty()) {
      return Status::FailedPrecondition(
          "exact queries need the session to hold its data source(s); "
          "build the session through Engine or attach sources");
    }
    OPAQ_RETURN_IF_ERROR(internal_exact::ValidateBrackets(estimates));
    const uint64_t budget = exact_memory_budget_ != 0
                                ? exact_memory_budget_
                                : internal_exact::DefaultExactBudget(estimates);
    // One shard's scan, compute-first: a v2 remote shard runs the filter
    // pass NODE-SIDE (one RPC, only counts + candidates come back) and the
    // result folds into the accumulator exactly as a local scan's would;
    // Unimplemented (untyped export) falls back to streaming the shard's
    // runs. Node-side the budget bounds each node's own kept sets; the
    // shared counter keeps bounding the cross-shard total here.
    auto scan_shard = [&](const Source<K>& source,
                          internal_exact::BracketAccumulator<K>* acc,
                          std::atomic<uint64_t>* shared_held) -> Status {
      if (const RemoteComputeClient<K>* compute = source.remote_compute()) {
        auto scan =
            compute->ExactPass(estimates, config_.read_options(), budget);
        if (scan.ok()) {
          uint64_t added = 0;
          for (size_t q = 0; q < estimates.size(); ++q) {
            acc->below[q] += scan->below[q];
            added += scan->kept[q].size();
            if (acc->kept[q].empty()) {
              acc->kept[q] = std::move(scan->kept[q]);
            } else {
              acc->kept[q].insert(acc->kept[q].end(), scan->kept[q].begin(),
                                  scan->kept[q].end());
            }
          }
          acc->held += added;
          const uint64_t held_now =
              shared_held != nullptr
                  ? shared_held->fetch_add(added,
                                           std::memory_order_relaxed) +
                        added
                  : acc->held;
          if (held_now > budget) {
            return Status::ResourceExhausted(
                "brackets hold more elements than the memory budget; "
                "increase samples_per_run or the budget");
          }
          return Status::OK();
        }
        if (scan.status().code() != StatusCode::kUnimplemented) {
          return scan.status();
        }
      }
      return internal_exact::AccumulateBrackets(source.provider(), estimates,
                                                config_.read_options(),
                                                budget, acc, shared_held);
    };
    if (sources_.size() == 1) {
      internal_exact::BracketAccumulator<K> acc(estimates.size());
      OPAQ_RETURN_IF_ERROR(scan_shard(sources_[0], &acc, nullptr));
      return internal_exact::SelectWithinBrackets(estimates, &acc);
    }
    // Each shard filters into its own accumulator, but the memory budget
    // is enforced across ALL shards while they run (one shared counter);
    // below-counts add and kept sets concatenate, and SelectKth is
    // order-insensitive, so the merged answer equals the sequential scan's.
    std::vector<internal_exact::BracketAccumulator<K>> accs(
        sources_.size(), internal_exact::BracketAccumulator<K>(
                             estimates.size()));
    std::vector<Status> statuses(sources_.size());
    std::atomic<uint64_t> shared_held{0};
    std::vector<std::thread> threads;
    threads.reserve(sources_.size());
    for (size_t shard = 0; shard < sources_.size(); ++shard) {
      threads.emplace_back([&, shard] {
        statuses[shard] =
            scan_shard(sources_[shard], &accs[shard], &shared_held);
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const Status& status : statuses) OPAQ_RETURN_IF_ERROR(status);
    // Merge by moving shard 0 wholesale and releasing each further shard's
    // buffers right after appending, so peak memory stays near the budget
    // (plus one shard) instead of doubling it.
    internal_exact::BracketAccumulator<K> merged = std::move(accs[0]);
    merged.held = shared_held.load(std::memory_order_relaxed);
    for (size_t shard = 1; shard < accs.size(); ++shard) {
      for (size_t q = 0; q < estimates.size(); ++q) {
        merged.below[q] += accs[shard].below[q];
        merged.kept[q].insert(merged.kept[q].end(),
                              accs[shard].kept[q].begin(),
                              accs[shard].kept[q].end());
      }
      std::vector<std::vector<K>>().swap(accs[shard].kept);
    }
    return internal_exact::SelectWithinBrackets(estimates, &merged);
  }

  OpaqEstimator<K> estimator_;
  std::vector<Source<K>> sources_;
  OpaqConfig config_;
  uint64_t exact_memory_budget_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_INCLUDE_OPAQ_QUERY_H_
