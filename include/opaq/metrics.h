#ifndef OPAQ_INCLUDE_OPAQ_METRICS_H_
#define OPAQ_INCLUDE_OPAQ_METRICS_H_

/// Public scoring surface: exact `opaq::GroundTruth` rank/quantile answers
/// over in-memory data and the paper's RER_A/RER_L/RER_N error metrics —
/// what the examples and benches use to audit the certified brackets.

#include "metrics/ground_truth.h"
#include "metrics/rer.h"

#endif  // OPAQ_INCLUDE_OPAQ_METRICS_H_
