#ifndef OPAQ_INCLUDE_OPAQ_APPS_H_
#define OPAQ_INCLUDE_OPAQ_APPS_H_

#include <utility>
#include <vector>

#include "apps/equi_depth_histogram.h"
#include "apps/range_partitioner.h"
#include "apps/selectivity.h"
#include "opaq/query.h"
#include "util/status.h"

namespace opaq {

/// The paper's three applications, retrofitted onto the batched
/// `QuerySession::Query` API: each builder issues ONE batched call for all
/// the brackets it needs, so the apps pay the same O(1)-per-quantile cost
/// the paper promises and inherit the session's certificates.

/// B-bucket equi-depth histogram (B >= 2): boundary i is the certified
/// bracket for the i/B quantile, all fetched in one batch.
template <typename K>
Result<EquiDepthHistogram<K>> BuildEquiDepthHistogram(
    const QuerySession<K>& session, int num_buckets) {
  if (num_buckets < 2) {
    return Status::InvalidArgument("a histogram needs >= 2 buckets");
  }
  auto results =
      session.Query({QueryRequest<K>::EquiQuantiles(num_buckets)});
  if (!results.ok()) return results.status();
  return EquiDepthHistogram<K>::FromBoundaries(
      std::move(results->results[0].estimates), results->total_elements,
      results->max_rank_error);
}

/// P-way range partitioner (P >= 2): the P-1 splitters are the upper bounds
/// of the i/P quantile brackets, all fetched in one batch.
template <typename K>
Result<RangePartitioner<K>> BuildRangePartitioner(
    const QuerySession<K>& session, int num_partitions) {
  if (num_partitions < 2) {
    return Status::InvalidArgument("a partitioner needs >= 2 partitions");
  }
  auto results =
      session.Query({QueryRequest<K>::EquiQuantiles(num_partitions)});
  if (!results.ok()) return results.status();
  return RangePartitioner<K>::FromQuantiles(results->results[0].estimates,
                                            results->total_elements,
                                            results->max_rank_error);
}

/// Bracketed selectivity of `lo <= key <= hi` (closed range; lo <= hi
/// required): both rank brackets in one batch, no pass over the data.
template <typename K>
Result<SelectivityEstimate> EstimateRangeSelectivity(
    const QuerySession<K>& session, const K& lo, const K& hi) {
  if (hi < lo) {
    return Status::InvalidArgument("range predicate needs lo <= hi");
  }
  auto results = session.Query(
      {QueryRequest<K>::RankOf(lo), QueryRequest<K>::RankOf(hi)});
  if (!results.ok()) return results.status();
  return SelectivityFromRankBrackets(results->results[0].rank,
                                     results->results[1].rank,
                                     results->total_elements);
}

/// Bracketed selectivity of the one-sided predicate `key <= hi`.
template <typename K>
Result<SelectivityEstimate> EstimateAtMostSelectivity(
    const QuerySession<K>& session, const K& hi) {
  auto results = session.Query({QueryRequest<K>::RankOf(hi)});
  if (!results.ok()) return results.status();
  return SelectivityFromRankBracket(results->results[0].rank,
                                    results->total_elements);
}

}  // namespace opaq

#endif  // OPAQ_INCLUDE_OPAQ_APPS_H_
