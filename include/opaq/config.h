#ifndef OPAQ_INCLUDE_OPAQ_CONFIG_H_
#define OPAQ_INCLUDE_OPAQ_CONFIG_H_

/// Public configuration surface: `opaq::OpaqConfig` (the paper's m/s knobs
/// plus I/O mode, prefetch depth and stripe count), `opaq::SelectAlgorithm`,
/// and `opaq::IoMode`/`opaq::ReadOptions`.

#include "core/opaq_config.h"
#include "io/io_mode.h"
#include "select/select.h"

#endif  // OPAQ_INCLUDE_OPAQ_CONFIG_H_
