#ifndef OPAQ_INCLUDE_OPAQ_DATA_H_
#define OPAQ_INCLUDE_OPAQ_DATA_H_

/// Public synthetic-dataset surface: `opaq::DatasetSpec`/`opaq::Distribution`
/// (the paper's uniform/zipf/normal/... key populations) and the deterministic
/// generators behind `opaq::Source<K>::FromSpec`.

#include "data/dataset.h"

#endif  // OPAQ_INCLUDE_OPAQ_DATA_H_
