#ifndef OPAQ_INCLUDE_OPAQ_UTIL_H_
#define OPAQ_INCLUDE_OPAQ_UTIL_H_

/// Public utility surface for tools and demos: the `--key=value` flag
/// parser, the daemons' SIGINT/SIGTERM latch, wall/phase timers, project
/// PRNGs, and text-table formatting.

#include "util/flags.h"
#include "util/random.h"
#include "util/shutdown.h"
#include "util/table.h"
#include "util/timer.h"

#endif  // OPAQ_INCLUDE_OPAQ_UTIL_H_
