#ifndef OPAQ_INCLUDE_OPAQ_NET_H_
#define OPAQ_INCLUDE_OPAQ_NET_H_

/// Public networking surface: the data-node subsystem that serves datasets
/// over TCP behind the same `RunProvider`/`RunSource` seam every local
/// backend uses.
///
///  - `NodeServer` (net/node_server.h) — export local `TypedDataFile` /
///    `StripedDataFile` datasets on a port; thread per connection, bounded
///    reads, error frames instead of crashes. `opaq_noded` is its CLI.
///  - `RemoteRunProvider<K>` / `RemoteRunSource<K>`
///    (net/remote_source.h) — the client backend: pipelined request-ahead
///    run streaming that overlaps network latency with compute exactly as
///    async disk I/O does. Most users reach it through
///    `Source<K>::OpenRemote("host:port/dataset")`.
///  - The v1 wire protocol (net/wire.h): versioned length-prefixed frames,
///    CRC-protected payloads, sticky error frames. UNAUTHENTICATED — for
///    trusted/loopback networks only (see README "Distributed mode").

#include "net/client.h"
#include "net/frame_io.h"
#include "net/node_server.h"
#include "net/remote_source.h"
#include "net/socket.h"
#include "net/wire.h"

#endif  // OPAQ_INCLUDE_OPAQ_NET_H_
