#ifndef OPAQ_INCLUDE_OPAQ_NET_H_
#define OPAQ_INCLUDE_OPAQ_NET_H_

/// Public networking surface: the data-node subsystem that serves datasets
/// over TCP behind the same `RunProvider`/`RunSource` seam every local
/// backend uses.
///
///  - `NodeServer` (net/node_server.h) — export local `TypedDataFile` /
///    `StripedDataFile` datasets on a port; thread per connection, bounded
///    reads, error frames instead of crashes. `opaq_noded` is its CLI.
///  - `RemoteRunProvider<K>` / `RemoteRunSource<K>`
///    (net/remote_source.h) — the v1 client backend: pipelined
///    request-ahead run streaming that overlaps network latency with
///    compute exactly as async disk I/O does.
///  - `RemoteComputeClient<K>` (net/remote_compute.h) — the v2 client:
///    pushes the paper's sample phase (`SampleRuns`) and §4 filter scan
///    (`ExactPass`) to the node, shipping O(s) results instead of O(n)
///    raw runs. Most users reach both through
///    `Source<K>::OpenRemote("host:port/dataset")`, which negotiates the
///    version per node and falls back to v1 streaming automatically.
///  - `QueryServer` (net/query_server.h) / `QueryClient<K>`
///    (net/query_client.h) — the v3 query-serving layer: sketch once at
///    startup, then answer millions of batched quantile / rank /
///    equi-depth requests off the in-memory sample list, with exact
///    requests coalesced into one shared §4 pass per round and epoch-style
///    background refresh. `opaq_queryd` is its CLI.
///  - The wire protocol (net/wire.h, payload codecs in
///    net/wire_compute.h, net/wire_query.h, and net/wire_stats.h — the v6
///    stats-snapshot ops every frame server answers): versioned
///    length-prefixed
///    frames, CRC-protected payloads, sticky error frames, per-op version
///    stamps so older nodes cleanly reject newer frames. UNAUTHENTICATED —
///    for trusted/loopback networks only (see README "Distributed mode",
///    "Query serving", and the compatibility matrix).

#include "net/client.h"
#include "net/export_spec.h"
#include "net/frame_io.h"
#include "net/frame_server.h"
#include "net/node_compute.h"
#include "net/node_server.h"
#include "net/query_client.h"
#include "net/query_server.h"
#include "net/remote_compute.h"
#include "net/remote_source.h"
#include "net/socket.h"
#include "net/wire.h"
#include "net/wire_compute.h"
#include "net/wire_query.h"
#include "net/wire_stats.h"

#endif  // OPAQ_INCLUDE_OPAQ_NET_H_
