#ifndef OPAQ_INCLUDE_OPAQ_SOURCE_H_
#define OPAQ_INCLUDE_OPAQ_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "ingest/live_dataset.h"
#include "io/async_run_reader.h"
#include "io/block_device.h"
#include "io/data_file.h"
#include "io/extent.h"
#include "io/run_reader.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "net/remote_compute.h"
#include "net/remote_extent_source.h"
#include "net/remote_source.h"
#include "util/status.h"

namespace opaq {

/// The unified dataset handle of the public API: one type that stands for a
/// plain disk file, a striped multi-disk file, an arbitrary user-supplied
/// `RunProvider` backend, an in-memory vector, or a synthetic generator —
/// anything the sample phase can read as runs.
///
/// A `Source` is a cheap copyable value (a shared handle). The `From*`
/// factories *borrow* the underlying object — the caller keeps it alive for
/// the lifetime of every copy of the source; the `Open*`/`FromVector`/
/// `FromSpec` factories *own* everything they create (devices, files,
/// buffers), so the source is self-contained.
///
/// Every backend delivers the exact same logical run sequence over the same
/// logical data, so downstream sketches are byte-identical regardless of
/// which factory produced the source (enforced by
/// `tests/backend_conformance_test.cc`).
template <typename K>
class Source {
 public:
  /// A plain single-device data file, borrowed.
  static Source FromFile(const TypedDataFile<K>* file) {
    Source s;
    s.provider_ = std::make_shared<FileRunProvider<K>>(file);
    return s;
  }

  /// A striped multi-disk data file, borrowed.
  static Source FromFile(const StripedDataFile<K>* file) {
    Source s;
    s.provider_ = std::make_shared<StripedFileProvider<K>>(file);
    s.stripes_ = file->num_stripes();
    return s;
  }

  /// A compressed extent file (plain or striped — an `ExtentFile` covers
  /// both), borrowed. Decode rides the prefetch threads; the pack/unpack
  /// accounting surfaces through `Engine`'s stats.
  static Result<Source> FromFile(const ExtentFile* file) {
    OPAQ_CHECK(file != nullptr);
    OPAQ_RETURN_IF_ERROR(CheckExtentKeyType(*file));
    Source s;
    s.provider_ = std::make_shared<ExtentFileProvider<K>>(file);
    s.stripes_ = file->num_stripes();
    return s;
  }

  /// Any storage backend, borrowed — the extension point for custom
  /// backends (io_uring, networked block devices, ...): implement
  /// `RunProvider<K>` and every consumer of `Source` works unchanged.
  static Source FromProvider(const RunProvider<K>* provider) {
    OPAQ_CHECK(provider != nullptr);
    Source s;
    s.provider_ = std::shared_ptr<const RunProvider<K>>(
        provider, [](const RunProvider<K>*) {});
    return s;
  }

  /// An in-memory dataset; the source owns the vector.
  static Source FromVector(std::vector<K> data) {
    Source s;
    s.provider_ = std::make_shared<MemoryRunProvider<K>>(std::move(data));
    return s;
  }

  /// A synthetic dataset: generates `spec` deterministically (one spec + one
  /// seed => bit-identical data everywhere) and owns the result.
  static Source FromSpec(const DatasetSpec& spec) {
    return FromVector(GenerateDataset<K>(spec));
  }

  /// Opens the data file at `path`, sniffing the on-disk format from its
  /// magic: plain data files ("OPAQDAT1") and compressed extent files
  /// ("OPAQEXT1") both open through here, so readers never need to be told
  /// whether a dataset is compressed. The source owns the device and file
  /// handles.
  static Result<Source> Open(const std::string& path) {
    auto owned = std::make_shared<OwnedBackend>();
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    owned->devices.push_back(std::move(device).value());
    auto magic = SniffMagic(owned->devices.back().get());
    if (!magic.ok()) return magic.status();
    if (*magic == ExtentFileHeader::kMagic) {
      return OpenExtentOwned(std::move(owned));
    }
    auto file = TypedDataFile<K>::Open(owned->devices.back().get());
    if (!file.ok()) return file.status();
    owned->plain =
        std::make_unique<TypedDataFile<K>>(std::move(file).value());
    owned->provider =
        std::make_unique<FileRunProvider<K>>(owned->plain.get());
    return FromOwned(std::move(owned), 1);
  }

  /// Opens the striped data file whose stripes live at `stripe_paths` (one
  /// per disk, logical order); the source owns all devices and handles.
  /// Format-sniffing like `Open`: striped plain files ("OPAQSTP1") and
  /// striped extent files ("OPAQEXT1") both open through here.
  static Result<Source> OpenStriped(
      const std::vector<std::string>& stripe_paths) {
    if (stripe_paths.empty()) {
      return Status::InvalidArgument("OpenStriped needs at least one path");
    }
    auto owned = std::make_shared<OwnedBackend>();
    std::vector<BlockDevice*> raw;
    for (const std::string& path : stripe_paths) {
      auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
      if (!device.ok()) return device.status();
      owned->devices.push_back(std::move(device).value());
      raw.push_back(owned->devices.back().get());
    }
    auto magic = SniffMagic(owned->devices.front().get());
    if (!magic.ok()) return magic.status();
    if (*magic == ExtentFileHeader::kMagic) {
      return OpenExtentOwned(std::move(owned));
    }
    auto file = StripedDataFile<K>::Open(std::move(raw));
    if (!file.ok()) return file.status();
    owned->striped =
        std::make_unique<StripedDataFile<K>>(std::move(file).value());
    owned->provider =
        std::make_unique<StripedFileProvider<K>>(owned->striped.get());
    const uint64_t stripes = owned->striped->num_stripes();
    return FromOwned(std::move(owned), stripes);
  }

  /// Opens a read snapshot of the live (appendable) dataset directory at
  /// `dir` (see `ingest/live_dataset.h`): the source binds the segments
  /// whose manifest records were durable at open time and never sees later
  /// appends. `first_element > 0` restricts the source to the TAIL
  /// `[first_element, end)` — the unabsorbed delta an incremental
  /// refresher sketches and hands to `QuerySession::Absorb` (on a segment
  /// boundary, which whole-segment absorption always is, the tail's run
  /// grid matches sketching those segments alone, so the merge is
  /// byte-identical to a full rebuild). The source owns the snapshot.
  static Result<Source> OpenLive(const std::string& dir,
                                 uint64_t first_element = 0) {
    auto reader = LiveDatasetReader<K>::Open(dir);
    if (!reader.ok()) return reader.status();
    auto owned = std::make_shared<OwnedBackend>();
    owned->live = std::make_shared<const LiveDatasetReader<K>>(
        std::move(reader).value());
    if (first_element == 0) {
      const RunProvider<K>* provider = owned->live.get();
      return FromOwned(std::move(owned), 1, provider);
    }
    owned->provider =
        std::make_unique<LiveTailProvider<K>>(owned->live, first_element);
    return FromOwned(std::move(owned), 1);
  }

  /// Connects to the dataset a remote data node (`opaq_noded` /
  /// `NodeServer`) serves as "host:port/dataset"; the source owns the
  /// client backend. Reading streams runs over TCP behind the same
  /// `RunProvider` seam as every local backend — under `IoMode::kAsync`
  /// with pipelined request-ahead — so engines, exact passes and parallel
  /// harnesses consume remote shards unchanged.
  ///
  /// After the handshake the wire version is negotiated (one `kHello`
  /// round trip, skipped when `options.max_wire_version <= 1`): against a
  /// v2 node the source also carries a `RemoteComputeClient`, and engines /
  /// exact passes push the sample phase and §4 filter scan to the node
  /// instead of streaming raw runs — same results, O(s) instead of O(n)
  /// bytes on the wire. Against a v1 node (or when forced to v1) the
  /// source works exactly as before.
  static Result<Source> OpenRemote(
      const std::string& spec,
      const NodeClientOptions& options = NodeClientOptions()) {
    auto provider = RemoteRunProvider<K>::Connect(spec, options);
    if (!provider.ok()) return provider.status();
    auto negotiated = NegotiateWireVersion(provider->spec(), options);
    if (!negotiated.ok()) return negotiated.status();
    const RemoteSpec parsed = provider->spec();
    auto owned = std::make_shared<OwnedBackend>();
    // Against a v4 node, probe for an extent export: when the dataset is
    // stored as compressed extents, every stream from this source ships
    // PACKED extents decoded client-side (RemoteExtentProvider). A node
    // answering Unimplemented stores it uncompressed — range streaming as
    // always.
    if (*negotiated >= kExtentWireVersion) {
      auto extents = RemoteExtentProvider<K>::Connect(parsed, options);
      if (extents.ok()) {
        owned->provider = std::make_unique<RemoteExtentProvider<K>>(
            std::move(extents).value());
      } else if (extents.status().code() != StatusCode::kUnimplemented) {
        return extents.status();
      }
    }
    if (owned->provider == nullptr) {
      owned->provider = std::make_unique<RemoteRunProvider<K>>(
          std::move(provider).value());
    }
    Source s = FromOwned(std::move(owned), 1);
    if (*negotiated >= 2 && options.node_compute) {
      s.compute_ = std::make_shared<const RemoteComputeClient<K>>(parsed,
                                                                  options);
    }
    return s;
  }

  /// Logical element count of the dataset.
  uint64_t size() const { return provider_->size(); }

  /// Stripe count of the underlying layout (1 for everything non-striped) —
  /// what `OpaqConfig::stripes` should be set to for this source.
  uint64_t stripes() const { return stripes_; }

  /// The backend-independent view every run consumer is written against.
  const RunProvider<K>& provider() const { return *provider_; }

  /// The v2 compute handle of a remote source whose node negotiated
  /// version >= 2; nullptr for every local backend and for remote sources
  /// speaking v1. Consumers (Engine, QuerySession) try this first and fall
  /// back to streaming `provider()` when the node answers Unimplemented
  /// for the dataset (e.g. an untyped export).
  const RemoteComputeClient<K>* remote_compute() const {
    return compute_.get();
  }

  /// Opens a run stream over `[first, first + count)` (clamped to EOF) —
  /// the single factory that subsumed the old per-backend `MakeRunSource`
  /// overload set.
  std::unique_ptr<RunSource<K>> OpenRuns(const ReadOptions& options,
                                         uint64_t first = 0,
                                         uint64_t count = UINT64_MAX) const {
    return provider_->OpenRuns(options, first, count);
  }

  /// Pack/unpack accounting of a compressed backend; nullptr for
  /// uncompressed ones (see RunProvider::pack_stats).
  const ExtentStats* pack_stats() const { return provider_->pack_stats(); }

 private:
  /// Ownership closure for the `Open*` factories.
  struct OwnedBackend {
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::unique_ptr<TypedDataFile<K>> plain;
    std::unique_ptr<StripedDataFile<K>> striped;
    std::unique_ptr<ExtentFile> extent;
    std::shared_ptr<const LiveDatasetReader<K>> live;
    std::unique_ptr<RunProvider<K>> provider;
  };

  static Status CheckExtentKeyType(const ExtentFile& file) {
    if (file.key_type() != static_cast<uint32_t>(KeyTraits<K>::kType)) {
      return Status::InvalidArgument(
          std::string("extent file holds a different key type than ") +
          KeyTraits<K>::kName);
    }
    return Status::OK();
  }

  /// First 8 bytes of the device (0 when shorter) — enough to dispatch on
  /// every OPAQ on-disk magic; full validation happens in the format's own
  /// Open.
  static Result<uint64_t> SniffMagic(BlockDevice* device) {
    auto size = device->Size();
    if (!size.ok()) return size.status();
    uint64_t magic = 0;
    if (*size >= sizeof(magic)) {
      OPAQ_RETURN_IF_ERROR(device->ReadAt(0, &magic, sizeof(magic)));
    }
    return magic;
  }

  /// Finishes `Open`/`OpenStriped` for the extent format: the devices are
  /// already in `owned`, in stripe order.
  static Result<Source> OpenExtentOwned(std::shared_ptr<OwnedBackend> owned) {
    std::vector<BlockDevice*> raw;
    raw.reserve(owned->devices.size());
    for (auto& device : owned->devices) raw.push_back(device.get());
    auto file = ExtentFile::Open(std::move(raw));
    if (!file.ok()) return file.status();
    OPAQ_RETURN_IF_ERROR(CheckExtentKeyType(*file));
    owned->extent = std::make_unique<ExtentFile>(std::move(file).value());
    owned->provider =
        std::make_unique<ExtentFileProvider<K>>(owned->extent.get());
    const uint64_t stripes = owned->extent->num_stripes();
    return FromOwned(std::move(owned), stripes);
  }

  static Source FromOwned(std::shared_ptr<OwnedBackend> owned,
                          uint64_t stripes,
                          const RunProvider<K>* provider = nullptr) {
    Source s;
    // Aliasing handle: shares ownership of the whole backend closure while
    // pointing at its provider (or the caller's choice of provider inside
    // the closure, e.g. the live reader itself).
    if (provider == nullptr) provider = owned->provider.get();
    s.provider_ = std::shared_ptr<const RunProvider<K>>(owned, provider);
    s.stripes_ = stripes;
    return s;
  }

  std::shared_ptr<const RunProvider<K>> provider_;
  std::shared_ptr<const RemoteComputeClient<K>> compute_;
  uint64_t stripes_ = 1;
};

}  // namespace opaq

#endif  // OPAQ_INCLUDE_OPAQ_SOURCE_H_
