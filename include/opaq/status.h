#ifndef OPAQ_INCLUDE_OPAQ_STATUS_H_
#define OPAQ_INCLUDE_OPAQ_STATUS_H_

/// Public error-handling surface: `opaq::Status`, `opaq::Result<T>`, the
/// OPAQ_RETURN_IF_ERROR / OPAQ_ASSIGN_OR_RETURN macros, and the OPAQ_CHECK
/// family for programmer errors.

#include "util/check.h"
#include "util/status.h"

#endif  // OPAQ_INCLUDE_OPAQ_STATUS_H_
