#ifndef OPAQ_INCLUDE_OPAQ_PARALLEL_H_
#define OPAQ_INCLUDE_OPAQ_PARALLEL_H_

/// Public surface of the paper's §3 parallel algorithm: the simulated
/// message-passing `Cluster`, `RunParallelOpaq` over one `RunProvider` (or
/// `Source`) per processor, and the distributed §4 exact pass. Most users
/// want the facade overload below: one `Source` per processor shard.

#include <vector>

#include "opaq/source.h"
#include "parallel/cluster.h"
#include "parallel/parallel_exact.h"
#include "parallel/parallel_opaq.h"
#include "util/status.h"

namespace opaq {

/// Facade overload: the parallel sample phase with each processor's shard
/// named by a `Source` (any backend mix — plain, striped, in-memory).
template <typename K>
Result<ParallelOpaqResult<K>> RunParallelOpaq(
    Cluster& cluster, const std::vector<Source<K>>& shards,
    const ParallelOpaqOptions& options) {
  std::vector<const RunProvider<K>*> providers;
  providers.reserve(shards.size());
  for (const Source<K>& shard : shards) {
    providers.push_back(&shard.provider());
  }
  return RunParallelOpaq(cluster, providers, options);
}

/// Facade overload: the distributed exact pass over a `Source` local shard.
template <typename K>
Result<std::vector<K>> ParallelExactQuantiles(
    ProcessorContext& ctx, const Source<K>& local_shard,
    const std::vector<QuantileEstimate<K>>& estimates,
    const ReadOptions& options, uint64_t local_memory_budget = 0) {
  return ParallelExactQuantiles(ctx, local_shard.provider(), estimates,
                                options, local_memory_budget);
}

}  // namespace opaq

#endif  // OPAQ_INCLUDE_OPAQ_PARALLEL_H_
