#ifndef OPAQ_INCLUDE_OPAQ_ENGINE_H_
#define OPAQ_INCLUDE_OPAQ_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/opaq.h"
#include "core/sample_list.h"
#include "opaq/query.h"
#include "opaq/source.h"
#include "telemetry/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace opaq {

/// What one `Engine::Build()` measured.
struct EngineStats {
  /// Wall time of the whole sample phase (all shards, incl. merges).
  double seconds = 0;
  /// Wall time the consumer thread(s) spent blocked on reads, summed over
  /// shards. Under kSync this is full device time; under kAsync only the
  /// stalls sampling could not hide.
  double io_stall_seconds = 0;
  uint64_t runs = 0;
  uint64_t elements = 0;
  size_t shards = 0;
  /// Pack/unpack accounting over the build, summed across compressed-extent
  /// shards (all-zero when no shard is compressed): how many extents were
  /// decoded, and how `packed_bytes` read from disk expanded to
  /// `unpacked_bytes` fed to sampling. This is the "bytes-from-disk cut"
  /// the codecs exist for.
  ExtentStatsSnapshot extents;
};

/// The front door of the public API: owns an `OpaqConfig` and the
/// `Source`(s) to summarize, and drives the whole paper pipeline — the
/// one-pass sample phase (sequential for one source, one thread per shard
/// for several), the per-run/per-shard sample-list merges, and finalization
/// — behind a single `Build()` call that returns a ready `QuerySession` or
/// a `Status` (no aborts on bad configs or dead disks).
///
///     OpaqConfig config;
///     auto session = Engine<uint64_t>(config, Source<uint64_t>::Open(path)
///                                                 .value())
///                        .Build();
///     if (!session.ok()) { ... }
///     auto median = session->Quantile(0.5);   // certified bracket
///     auto exact = session->ExactQuantile(0.5);  // optional 2nd pass
///
/// Multi-shard builds produce exactly the sample list the paper's §3
/// parallel algorithm would: per-shard lists merge associatively, so the
/// result equals a sequential pass whenever shard sizes align with run
/// boundaries (and is certified over the union regardless).
template <typename K>
class Engine {
 public:
  Engine(OpaqConfig config, Source<K> source)
      : config_(std::move(config)) {
    shards_.push_back(std::move(source));
  }

  Engine(OpaqConfig config, std::vector<Source<K>> shards)
      : config_(std::move(config)), shards_(std::move(shards)) {}

  const OpaqConfig& config() const { return config_; }
  const std::vector<Source<K>>& sources() const { return shards_; }

  /// Stats of the most recent `Build()`.
  const EngineStats& stats() const { return stats_; }

  /// Runs the sample phase end to end and returns the query session, which
  /// keeps the sources attached so exact (second-pass) queries work.
  /// Returns InvalidArgument for a bad config, FailedPrecondition when the
  /// sources hold no data (or too little for one sample), and the I/O
  /// error of any failing shard scan.
  Result<QuerySession<K>> Build() {
    OPAQ_RETURN_IF_ERROR(config_.Validate());
    if (shards_.empty()) {
      return Status::InvalidArgument("Engine has no sources");
    }
    stats_ = EngineStats{};
    stats_.shards = shards_.size();
    WallTimer total_timer;

    // Compressed-extent backends keep cumulative pack/unpack counters;
    // snapshot them now so the post-build delta attributes exactly this
    // build's decodes to stats_.extents.
    std::vector<ExtentStatsSnapshot> extents_before(shards_.size());
    for (size_t rank = 0; rank < shards_.size(); ++rank) {
      if (const ExtentStats* pack = shards_[rank].pack_stats()) {
        extents_before[rank] = pack->Snapshot();
      }
    }

    std::vector<SampleList<K>> lists(shards_.size());
    std::vector<Status> statuses(shards_.size());
    std::vector<double> io_seconds(shards_.size(), 0);
    std::vector<uint64_t> runs(shards_.size(), 0);
    auto build_shard = [&](size_t rank) {
      // Independent pivot seeds per shard, matching RunParallelOpaq; the
      // samples themselves are order statistics, so seeds never change the
      // result — only selection speed. Each shard's stripe count comes from
      // its source, so Validate charges the real reader-buffer footprint —
      // unless the caller's config claims more (a custom FromProvider
      // backend reports stripes() == 1; its user knows the true fan-out).
      OpaqConfig shard_config = config_;
      shard_config.seed += static_cast<uint64_t>(rank);
      shard_config.stripes =
          std::max<uint64_t>(config_.stripes, shards_[rank].stripes());
      statuses[rank] = shard_config.Validate();
      if (!statuses[rank].ok()) return;
      // A v2 remote shard samples NODE-SIDE: one RPC ships the config, the
      // node runs the identical sketch over its own disks, and only the
      // O(s) sample list comes back. The RPC wall time is this shard's I/O
      // stall (the thread blocks on it exactly as it would on reads).
      if (const RemoteComputeClient<K>* compute =
              shards_[rank].remote_compute()) {
        WallTimer rpc_timer;
        auto list = compute->SampleRuns(shard_config);
        if (list.ok()) {
          io_seconds[rank] += rpc_timer.ElapsedSeconds();
          runs[rank] = list->accounting().num_runs;
          lists[rank] = std::move(list).value();
          return;
        }
        if (list.status().code() != StatusCode::kUnimplemented) {
          statuses[rank] = list.status();
          return;
        }
        // Unimplemented = the node cannot compute over this dataset
        // (untyped export); stream its runs over v1 instead.
      }
      OpaqSketch<K> sketch(shard_config);
      statuses[rank] =
          sketch.Consume(shards_[rank].provider(), &io_seconds[rank]);
      if (!statuses[rank].ok()) return;  // skip the finalize sort/merge
      runs[rank] = sketch.runs_consumed();
      lists[rank] = sketch.FinalizeSampleList();
    };

    if (shards_.size() == 1) {
      build_shard(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(shards_.size());
      for (size_t rank = 0; rank < shards_.size(); ++rank) {
        threads.emplace_back(build_shard, rank);
      }
      for (std::thread& thread : threads) thread.join();
    }
    for (size_t rank = 0; rank < shards_.size(); ++rank) {
      if (!statuses[rank].ok()) {
        return Status(statuses[rank].code(),
                      "shard " + std::to_string(rank) + ": " +
                          statuses[rank].message());
      }
      stats_.io_stall_seconds += io_seconds[rank];
      stats_.runs += runs[rank];
      if (const ExtentStats* pack = shards_[rank].pack_stats()) {
        ExtentStatsSnapshot delta = pack->Snapshot();
        delta.Subtract(extents_before[rank]);
        stats_.extents.Add(delta);
      }
    }

    // Global merge, in shard order (associative: equals the paper's §4
    // incremental composition of the shards).
    SampleList<K> merged = std::move(lists[0]);
    for (size_t rank = 1; rank < shards_.size(); ++rank) {
      auto combined = SampleList<K>::Merge(merged, lists[rank]);
      OPAQ_RETURN_IF_ERROR(combined.status());
      merged = std::move(combined).value();
    }
    stats_.elements = merged.total_elements();
    stats_.seconds = total_timer.ElapsedSeconds();
    PublishBuildMetrics();
    if (merged.accounting().num_samples == 0) {
      return Status::FailedPrecondition(
          "the sources hold too little data for even one sample (n < m/s); "
          "the quantile phase needs a non-empty sample list");
    }
    // The session's config reports the widest shard layout so its memory
    // accounting stays conservative for the exact pass.
    OpaqConfig session_config = config_;
    for (const Source<K>& shard : shards_) {
      session_config.stripes =
          std::max<uint64_t>(session_config.stripes, shard.stripes());
    }
    return QuerySession<K>(std::move(merged), shards_, session_config);
  }

 private:
  /// Folds this build's stats into the process-global metrics registry so a
  /// daemon's `kStats` snapshot carries build history without any plumbing.
  /// Durations go in as integer microseconds (counters are u64).
  void PublishBuildMetrics() const {
    MetricsRegistry& registry = MetricsRegistry::Global();
    if (!registry.enabled()) return;
    registry.GetCounter("engine.builds")->Add(1);
    registry.GetCounter("engine.runs")->Add(stats_.runs);
    registry.GetCounter("engine.elements")->Add(stats_.elements);
    registry.GetCounter("engine.build_us")
        ->Add(static_cast<uint64_t>(stats_.seconds * 1e6));
    registry.GetCounter("engine.io_stall_us")
        ->Add(static_cast<uint64_t>(stats_.io_stall_seconds * 1e6));
    registry.GetCounter("engine.extents_decoded")->Add(stats_.extents.extents);
    registry.GetCounter("engine.extent_packed_bytes")
        ->Add(stats_.extents.packed_bytes);
    registry.GetCounter("engine.extent_unpacked_bytes")
        ->Add(stats_.extents.unpacked_bytes);
  }

  OpaqConfig config_;
  std::vector<Source<K>> shards_;
  EngineStats stats_;
};

}  // namespace opaq

#endif  // OPAQ_INCLUDE_OPAQ_ENGINE_H_
