// Quickstart: the OPAQ public API end to end — `Source` -> `Engine` ->
// `QuerySession`, nothing but "opaq/opaq.h".
//
// Builds a 2M-key dataset on a real temp file, opens it as a `Source`
// (the one handle that also covers striped multi-disk files, in-memory
// vectors, and custom `RunProvider` backends), drives the one-pass sample
// phase with `Engine::Build()`, then answers one BATCHED query: the nine
// dectile brackets, the exact median (the optional §4 second pass — shared
// by every exact-flagged request in the batch), and a rank bracket.
//
// Run:  ./quickstart [--n=2000000] [--run-size=262144] [--samples=1024]

#include <iostream>

#include "opaq/opaq.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const uint64_t n = flags->GetInt("n", 2000000);
  OpaqConfig config;
  config.run_size = flags->GetInt("run-size", 262144);
  config.samples_per_run = flags->GetInt("samples", 1024);

  // --- 1. Put a dataset on "disk" (a real file under /tmp). ---
  auto dir = TempDir::Make("opaq-quickstart");
  OPAQ_CHECK_OK(dir.status());
  DatasetSpec spec;
  spec.n = n;
  spec.distribution = Distribution::kZipf;  // skewed, like real key columns
  {
    auto device = FileBlockDevice::Make(dir->FilePath("data.opaq"),
                                        FileBlockDevice::Mode::kCreate);
    OPAQ_CHECK_OK(device.status());
    OPAQ_CHECK_OK(GenerateDatasetToDevice<uint64_t>(spec, device->get()));
  }

  // --- 2. One Source handle, one Engine::Build() call: the whole one-pass
  //        sample phase, ending in a ready QuerySession. ---
  auto source = Source<uint64_t>::Open(dir->FilePath("data.opaq"));
  OPAQ_CHECK_OK(source.status());
  Engine<uint64_t> engine(config, *source);
  auto session = engine.Build();
  OPAQ_CHECK_OK(session.status());
  std::cout << "dataset: " << spec.ToString() << " on " << dir->path()
            << "\nconfig:  " << config.ToString() << "\nsampled  "
            << engine.stats().elements << " elements in "
            << engine.stats().runs << " runs\n\n";

  // --- 3. One batched query: dectile brackets + the exact median (all
  //        exact requests in a batch share ONE extra pass). ---
  auto answers = session->Query({
      QueryRequest<uint64_t>::EquiQuantiles(10),
      QueryRequest<uint64_t>::Quantile(0.5, /*exact=*/true),
  });
  OPAQ_CHECK_OK(answers.status());
  std::cout << "dectile   lower-bound   upper-bound   (rank error <= "
            << answers->max_rank_error << " of " << answers->total_elements
            << ")\n";
  const auto& dectiles = answers->results[0].estimates;
  for (size_t d = 0; d < dectiles.size(); ++d) {
    std::cout << "  " << (d + 1) * 10 << "%     " << dectiles[d].lower
              << "\t" << dectiles[d].upper << "\n";
  }
  const uint64_t exact_median = answers->results[1].exact[0];
  std::cout << "\nexact median via second pass: " << exact_median << "\n";

  // --- 4. Rank estimation without touching the data again. ---
  RankEstimate rank = session->EstimateRank(exact_median);
  std::cout << "rank(<=) bracket of that value: [" << rank.min_rank_le
            << ", " << rank.max_rank_le << "] (true rank " << n / 2
            << ")\n";
  return 0;
}
