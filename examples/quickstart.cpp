// Quickstart: estimate quantiles of a disk-resident dataset in one pass.
//
// Builds a 2M-key dataset on a real temp file, streams it through an
// OpaqSketch (one pass, bounded memory), and prints certified brackets for
// the dectiles plus the exact median recovered with the optional second
// pass.
//
// Run:  ./quickstart [--n=2000000] [--run-size=262144] [--samples=1024]

#include <iostream>

#include "core/exact.h"
#include "core/opaq.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "io/tempdir.h"
#include "util/flags.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const uint64_t n = flags->GetInt("n", 2000000);
  OpaqConfig config;
  config.run_size = flags->GetInt("run-size", 262144);
  config.samples_per_run = flags->GetInt("samples", 1024);
  OPAQ_CHECK_OK(config.Validate());

  // --- 1. Put a dataset on "disk" (a real file under /tmp). ---
  auto dir = TempDir::Make("opaq-quickstart");
  OPAQ_CHECK_OK(dir.status());
  auto device = FileBlockDevice::Make(dir->FilePath("data.opaq"),
                                      FileBlockDevice::Mode::kCreate);
  OPAQ_CHECK_OK(device.status());
  DatasetSpec spec;
  spec.n = n;
  spec.distribution = Distribution::kZipf;  // skewed, like real key columns
  OPAQ_CHECK_OK(GenerateDatasetToDevice<uint64_t>(spec, device->get()));
  auto file = TypedDataFile<uint64_t>::Open(device->get());
  OPAQ_CHECK_OK(file.status());
  std::cout << "dataset: " << spec.ToString() << " on " << dir->path()
            << "\nconfig:  " << config.ToString() << "\n\n";

  // --- 2. One pass: sample every run, merge the sample lists. ---
  OpaqSketch<uint64_t> sketch(config);
  OPAQ_CHECK_OK(sketch.ConsumeFile(&*file));
  OpaqEstimator<uint64_t> estimator = sketch.Finalize();

  // --- 3. Query: every quantile costs O(1) beyond the first. ---
  std::cout << "dectile   lower-bound   upper-bound   (rank error <= "
            << estimator.max_rank_error() << " of " << n << ")\n";
  for (int d = 1; d <= 9; ++d) {
    auto e = estimator.Quantile(d / 10.0);
    std::cout << "  " << d * 10 << "%     " << e.lower << "\t" << e.upper
              << "\n";
  }

  // --- 4. Optional second pass: the exact median. ---
  auto median = estimator.Quantile(0.5);
  auto exact = ExactQuantileSecondPass(&*file, median, config.run_size);
  OPAQ_CHECK_OK(exact.status());
  std::cout << "\nexact median via second pass: " << *exact << "\n";

  // --- 5. Rank estimation without touching the data again. ---
  RankEstimate rank = estimator.EstimateRank(*exact);
  std::cout << "rank bracket of that value: [" << rank.min_rank_le << ", "
            << rank.max_rank_lt << "] (true rank " << n / 2 << ")\n";
  return 0;
}
