// Parallel OPAQ (paper §3) on the simulated message-passing cluster, with
// each processor's shard named by a facade `Source`: eight "processors"
// each own a shard of the data on a bandwidth-throttled disk; one parallel
// pass produces globally certified dectiles, and the phase breakdown shows
// where the time goes (the paper's Table 12 view).
//
// Run:  ./parallel_quantiles [--procs=8] [--per-rank=1000000]
//       [--merge=sample|bitonic]

#include <iomanip>
#include <iostream>

#include "opaq/data.h"
#include "opaq/io.h"
#include "opaq/metrics.h"
#include "opaq/parallel.h"
#include "opaq/util.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const int p = static_cast<int>(flags->GetInt("procs", 8));
  const uint64_t per_rank = flags->GetInt("per-rank", 1000000);
  const std::string merge = flags->GetString("merge", "sample");

  // Build each processor's shard on its own throttled "disk".
  std::vector<std::unique_ptr<ThrottledDevice>> devices;
  std::vector<TypedDataFile<uint64_t>> files;
  std::vector<uint64_t> union_data;
  for (int r = 0; r < p; ++r) {
    DatasetSpec spec;
    spec.n = per_rank;
    spec.seed = 40 + r;
    spec.distribution = Distribution::kZipf;
    auto data = GenerateDataset<uint64_t>(spec);
    union_data.insert(union_data.end(), data.begin(), data.end());
    auto memory = std::make_unique<MemoryBlockDevice>();
    OPAQ_CHECK_OK(WriteDataset(data, memory.get()));
    devices.push_back(std::make_unique<ThrottledDevice>(
        std::move(memory), DiskModel(), ThrottledDevice::Mode::kSleep));
    auto file = TypedDataFile<uint64_t>::Open(devices.back().get());
    OPAQ_CHECK_OK(file.status());
    files.push_back(std::move(file).value());
  }
  std::vector<Source<uint64_t>> shards;
  for (auto& f : files) shards.push_back(Source<uint64_t>::FromFile(&f));

  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  cluster_options.comm_mode = Cluster::CommMode::kSleep;
  Cluster cluster(cluster_options);

  ParallelOpaqOptions options;
  options.config.run_size = 1 << 17;
  options.config.samples_per_run = 1024;
  options.merge_method =
      merge == "bitonic" ? MergeMethod::kBitonic : MergeMethod::kSample;

  auto result = RunParallelOpaq(cluster, shards, options);
  OPAQ_CHECK_OK(result.status());

  std::cout << p << " processors x " << per_rank << " keys, " << merge
            << " merge: " << std::fixed << std::setprecision(2)
            << result->total_wall_seconds << "s total\n\ndectiles:\n";
  for (size_t i = 0; i < result->estimates.size(); ++i) {
    const auto& e = result->estimates[i];
    std::cout << "  " << (i + 1) * 10 << "%  [" << e.lower << ", " << e.upper
              << "]\n";
  }

  PhaseTimer timers = cluster.AveragedTimers();
  std::cout << "\nphase breakdown (avg across processors):\n";
  for (int phase = 0; phase < timers.num_phases(); ++phase) {
    std::cout << "  " << std::left << std::setw(14) << timers.name(phase)
              << std::setprecision(1) << timers.Fraction(phase) * 100
              << "%\n";
  }

  GroundTruth<uint64_t> truth(std::move(union_data));
  auto report = ComputeRer(truth, result->estimates, 10);
  std::cout << "\nmax RER_A over dectiles: " << std::setprecision(3)
            << report.max_rer_a() << "% (paper-style bound "
            << 200.0 * static_cast<double>(
                           result->global_accounting.subrun_size) *
                   static_cast<double>(result->global_accounting.num_runs) /
                   static_cast<double>(result->global_accounting
                                           .total_elements)
            << "%)\n";
  for (const auto& e : result->estimates) OPAQ_CHECK(BracketHolds(truth, e));
  std::cout << "verified: all brackets contain their true quantiles\n";
  return 0;
}
