// External-sort scenario (paper §1: "data can be partitioned using
// quantiles into a number of partitions such that each partition fits into
// main memory") on the public facade: one `Engine::Build()` picks the
// range-partition splitters, `Source::OpenRuns` streams the second pass
// that routes records to partition files, each partition then sorts in
// memory — a two-pass external sort with certified partition sizes.
//
// Run:  ./external_sort [--n=4000000] [--memory=600000]

#include <algorithm>
#include <iostream>

#include "opaq/opaq.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const uint64_t n = flags->GetInt("n", 4000000);
  const uint64_t memory = flags->GetInt("memory", 600000);  // elements

  DatasetSpec spec;
  spec.n = n;
  spec.distribution = Distribution::kNormal;
  spec.duplicate_fraction = 0.0;
  std::vector<uint64_t> data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice input_device;
  OPAQ_CHECK_OK(WriteDataset(data, &input_device));
  auto input = TypedDataFile<uint64_t>::Open(&input_device);
  OPAQ_CHECK_OK(input.status());
  Source<uint64_t> source = Source<uint64_t>::FromFile(&*input);

  // --- Pass 1: Engine -> splitters. ---
  OpaqConfig config;
  config.run_size = memory / 2;  // run buffer is half the memory budget
  config.samples_per_run = 1024;
  while (config.run_size % config.samples_per_run != 0) --config.run_size;
  auto session = Engine<uint64_t>(config, source).Build();
  OPAQ_CHECK_OK(session.status());

  // Enough partitions that the certified worst case fits in memory.
  int parts = 2;
  while (n / parts + 2 * session->max_rank_error() + 1 > memory) ++parts;
  auto partitioner = BuildRangePartitioner(*session, parts);
  OPAQ_CHECK_OK(partitioner.status());
  std::cout << "external sort of " << n << " keys with memory for " << memory
            << " keys\n"
            << "partitions: " << parts << " (certified max size "
            << partitioner->MaxPartitionSize() << ")\n";

  // --- Pass 2: route to partition "files". ---
  std::vector<std::vector<uint64_t>> partitions(parts);
  auto reader = source.OpenRuns(config.read_options());
  std::vector<uint64_t> buffer;
  while (true) {
    auto more = reader->NextRun(&buffer);
    OPAQ_CHECK_OK(more.status());
    if (!*more) break;
    for (uint64_t v : buffer) {
      partitions[partitioner->PartitionOf(v)].push_back(v);
    }
  }

  // --- Phase 3: sort each partition in memory, emit in order. ---
  uint64_t emitted = 0;
  uint64_t previous_max = 0;
  uint64_t largest_partition = 0;
  for (int part = 0; part < parts; ++part) {
    auto& chunk = partitions[part];
    largest_partition = std::max<uint64_t>(largest_partition, chunk.size());
    OPAQ_CHECK_LE(chunk.size(), partitioner->MaxPartitionSize())
        << "partition " << part << " exceeded the certified bound";
    std::sort(chunk.begin(), chunk.end());
    if (!chunk.empty()) {
      OPAQ_CHECK(emitted == 0 || previous_max <= chunk.front())
          << "partition ranges overlap";
      previous_max = chunk.back();
    }
    emitted += chunk.size();
  }
  OPAQ_CHECK_EQ(emitted, n);
  std::cout << "largest partition: " << largest_partition << " keys ("
            << 100.0 * static_cast<double>(largest_partition) /
                   static_cast<double>(memory)
            << "% of the memory budget)\n"
            << "verified: all " << n
            << " keys emitted in globally sorted order\n";
  return 0;
}
