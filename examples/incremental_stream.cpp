// Incremental maintenance (paper §4): "if the sorted samples are kept from
// the runs of the old data, one need only compute the sorted samples from
// the new runs and merge". A nightly-ingest scenario: every batch of new
// rows is sampled and folded into the persistent sample list, and a
// `QuerySession` is opened directly over the maintained list (no Engine
// needed — the facade's path for systems that persist sketches
// themselves); quantile brackets stay certified over the union of
// everything seen so far.
//
// Run:  ./incremental_stream [--batches=12] [--batch-size=250000]

#include <iostream>

#include "opaq/opaq.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const int batches = static_cast<int>(flags->GetInt("batches", 12));
  const uint64_t batch_size = flags->GetInt("batch-size", 250000);

  OpaqConfig config;
  config.run_size = 1 << 16;
  config.samples_per_run = 512;

  SampleList<uint64_t> persistent;  // what a real system would keep on disk
  std::vector<uint64_t> everything;  // only for scoring the demo

  std::cout << "batch  total-rows  samples-kept  median-bracket\n";
  for (int b = 0; b < batches; ++b) {
    // Each day's batch drifts: the key distribution shifts upward over
    // time, so quantiles genuinely move.
    DatasetSpec spec;
    spec.n = batch_size;
    spec.seed = 7000 + b;
    spec.distribution = b % 3 == 2 ? Distribution::kZipf
                                   : Distribution::kUniform;
    std::vector<uint64_t> batch = GenerateDataset<uint64_t>(spec);
    for (auto& v : batch) v = v / 4 + b * (UINT64_MAX / 64);  // drift
    everything.insert(everything.end(), batch.begin(), batch.end());

    // Sample ONLY the new batch, then merge sample lists (no old data
    // touched).
    OpaqEstimator<uint64_t> batch_est =
        EstimateQuantilesInMemory(batch, config);
    auto merged =
        SampleList<uint64_t>::Merge(persistent, batch_est.sample_list());
    OPAQ_CHECK_OK(merged.status());
    persistent = std::move(merged).value();

    QuerySession<uint64_t> current{persistent};
    auto median = current.Quantile(0.5);
    std::cout << "  " << b + 1 << "    " << current.total_elements() << "   "
              << persistent.samples().size() << "      [" << median.lower
              << ", " << median.upper << "]\n";
  }

  // Final audit: the incrementally maintained sketch is exactly as good as
  // a from-scratch pass over the union.
  QuerySession<uint64_t> final_session{persistent};
  GroundTruth<uint64_t> truth(everything);
  auto report = ComputeRer(truth, final_session.EquiQuantiles(10), 10);
  std::cout << "\nafter " << batches << " merges: max RER_A = "
            << report.max_rer_a() << "%, RER_N = " << report.rer_n
            << "% (bound " << 200.0 / config.samples_per_run << "%... all "
            << "brackets certified over " << truth.n() << " rows)\n";
  for (const auto& e : final_session.EquiQuantiles(10)) {
    OPAQ_CHECK(BracketHolds(truth, e));
  }
  std::cout << "verified: every dectile bracket contains its true quantile\n";
  return 0;
}
