// Query-optimizer scenario (the paper's §1 motivation) on the public
// facade: one `Engine::Build()` over an in-memory key column, then the
// equi-depth histogram and every range-predicate selectivity come out of
// the same batched `QuerySession` — certified brackets, checked against
// the true selectivities.
//
// Run:  ./db_selectivity [--n=4000000] [--buckets=20]

#include <iomanip>
#include <iostream>
#include <sstream>

#include "opaq/opaq.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const uint64_t n = flags->GetInt("n", 4000000);
  const int buckets = static_cast<int>(flags->GetInt("buckets", 20));

  // A heavily skewed "order_amount" column: the regime where classic
  // equi-depth histograms historically struggled (paper §1).
  DatasetSpec spec;
  spec.n = n;
  spec.distribution = Distribution::kZipf;
  spec.zipf_z = 0.7;  // stronger skew than the paper's 0.86
  std::vector<uint64_t> column = GenerateDataset<uint64_t>(spec);

  OpaqConfig config;
  config.run_size = 1 << 19;
  config.samples_per_run = 2048;
  auto session =
      Engine<uint64_t>(config, Source<uint64_t>::FromVector(column)).Build();
  OPAQ_CHECK_OK(session.status());

  auto histogram = BuildEquiDepthHistogram(*session, buckets);
  OPAQ_CHECK_OK(histogram.status());
  std::cout << "equi-depth histogram with " << histogram->num_buckets()
            << " buckets over " << n << " rows (depth ~"
            << histogram->NominalDepth() << " +- "
            << histogram->max_rank_error() << ")\n";
  std::cout << "first boundaries:";
  for (size_t i = 0; i < 5 && i < histogram->boundaries().size(); ++i) {
    std::cout << " " << histogram->boundaries()[i].lower;
  }
  std::cout << " ...\n\n";

  // Range predicates a planner might see, scored against the truth.
  GroundTruth<uint64_t> truth(column);
  struct Predicate {
    uint64_t lo, hi;
  } predicates[] = {
      {1, 10},          // the hot head of the Zipf distribution
      {100, 1000},      // mid range
      {n / 2, n},       // cold tail
      {1, n},           // everything
  };
  std::cout << std::left << std::setw(24) << "predicate" << std::setw(22)
            << "certified fraction" << std::setw(12) << "point"
            << "true\n";
  for (const auto& p : predicates) {
    auto sel = EstimateRangeSelectivity(*session, p.lo, p.hi);
    OPAQ_CHECK_OK(sel.status());
    const double truth_fraction =
        static_cast<double>(truth.RankLe(p.hi) - truth.RankLt(p.lo)) /
        static_cast<double>(n);
    std::ostringstream pred, bracket;
    pred << "[" << p.lo << ", " << p.hi << "]";
    bracket << "[" << std::fixed << std::setprecision(4)
            << sel->min_fraction(n) << ", " << sel->max_fraction(n) << "]";
    std::cout << std::left << std::setw(24) << pred.str() << std::setw(22)
              << bracket.str() << std::setw(12) << std::fixed
              << std::setprecision(4) << sel->point_fraction << truth_fraction
              << "\n";
    OPAQ_CHECK(truth_fraction >= sel->min_fraction(n) - 1e-12);
    OPAQ_CHECK(truth_fraction <= sel->max_fraction(n) + 1e-12);
  }
  std::cout << "\nevery true selectivity fell inside its certified bracket\n";
  return 0;
}
