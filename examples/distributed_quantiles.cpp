// Distributed quantiles over OPAQ data nodes: N loopback `NodeServer`s
// (the engine inside `opaq_noded`) each serve one shard of the data; one
// multi-shard `Engine` consumes them through `Source::OpenRemote` and
// answers a batched query with certified brackets plus exact values.
//
// Under wire v2 (the default) each node runs the paper's sample phase and
// §4 filter scan itself and ships only sample lists and bracket survivors;
// under `--wire-version=1` the client streams every run over the wire and
// computes locally. Either way the punchline of the RunProvider seam
// holds: the distributed answers are asserted IDENTICAL
// (bracket-for-bracket, value-for-value) to a single-process run over the
// same logical data. The network, like prefetching and striping before
// it, moves time and bytes — never data values.
//
// Run:  ./distributed_quantiles [--shards=3] [--per-shard=200000]
//       [--samples=256] [--wire-version=2]

#include <iostream>
#include <memory>
#include <vector>

#include "opaq/opaq.h"

using namespace opaq;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const int shards = static_cast<int>(flags->GetInt("shards", 3));
  const uint64_t per_shard = flags->GetInt("per-shard", 200000);
  const uint64_t samples = flags->GetInt("samples", 256);
  const int wire_version = static_cast<int>(flags->GetInt("wire-version", 2));
  OPAQ_CHECK(shards >= 1);
  OPAQ_CHECK(wire_version >= 1 && wire_version <= 2);
  NodeClientOptions client_options;
  client_options.max_wire_version = static_cast<uint16_t>(wire_version);

  OpaqConfig config;
  config.run_size = 1 << 14;
  config.samples_per_run = samples;
  config.io_mode = IoMode::kAsync;  // pipelined request-ahead per shard

  // --- Data nodes: one per shard, each serving its own dataset. A real
  // deployment runs `opaq_noded --export=shard=...` on other machines;
  // here the nodes live in-process on loopback ports.
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  std::vector<std::unique_ptr<TypedDataFile<uint64_t>>> files;
  std::vector<std::unique_ptr<NodeServer>> nodes;
  std::vector<Source<uint64_t>> remote_shards, local_shards;
  for (int s = 0; s < shards; ++s) {
    DatasetSpec spec;
    spec.n = per_shard;
    spec.seed = 1234 + s;
    spec.distribution = s % 2 ? Distribution::kZipf : Distribution::kUniform;
    devices.push_back(std::make_unique<MemoryBlockDevice>());
    OPAQ_CHECK_OK(WriteDataset(GenerateDataset<uint64_t>(spec),
                               devices.back().get()));
    auto file = TypedDataFile<uint64_t>::Open(devices.back().get());
    OPAQ_CHECK_OK(file.status());
    files.push_back(
        std::make_unique<TypedDataFile<uint64_t>>(std::move(file).value()));

    NodeServerOptions options;  // loopback, ephemeral port
    nodes.push_back(std::make_unique<NodeServer>(options));
    nodes.back()->Export("shard", files.back().get());
    OPAQ_CHECK_OK(nodes.back()->Start());
    const std::string spec_text = nodes.back()->address() + "/shard";
    std::cout << "node " << s << ": serving " << per_shard << " keys at "
              << spec_text << "\n";

    auto remote = Source<uint64_t>::OpenRemote(spec_text, client_options);
    OPAQ_CHECK_OK(remote.status());
    std::cout << "       wire v"
              << (remote->remote_compute() ? 2 : 1) << " ("
              << (remote->remote_compute() ? "node-side compute"
                                           : "range streaming")
              << ")\n";
    remote_shards.push_back(std::move(remote).value());
    local_shards.push_back(Source<uint64_t>::FromFile(files.back().get()));
  }

  // --- One Engine across all nodes, one batched query: dectile brackets
  // and exact 10/50/90th percentiles sharing a single second pass (which
  // also streams over the network).
  auto session = Engine<uint64_t>(config, remote_shards).Build();
  OPAQ_CHECK_OK(session.status());
  auto batch = session->Query({
      QueryRequest<uint64_t>::EquiQuantiles(10),
      QueryRequest<uint64_t>::Quantile(0.1, /*exact=*/true),
      QueryRequest<uint64_t>::Quantile(0.5, /*exact=*/true),
      QueryRequest<uint64_t>::Quantile(0.9, /*exact=*/true),
  });
  OPAQ_CHECK_OK(batch.status());

  std::cout << "\n" << shards << " nodes x " << per_shard
            << " keys -> dectile brackets (rank error <= "
            << batch->max_rank_error << "):\n";
  const auto& dectiles = batch->results[0].estimates;
  for (size_t i = 0; i < dectiles.size(); ++i) {
    std::cout << "  " << (i + 1) * 10 << "%  [" << dectiles[i].lower << ", "
              << dectiles[i].upper << "]\n";
  }
  std::cout << "exact p10/p50/p90: " << batch->results[1].exact[0] << " / "
            << batch->results[2].exact[0] << " / "
            << batch->results[3].exact[0] << "\n";

  // --- The certificate of the subsystem: a single-process Engine over the
  // same shards (local backend, same order) must answer IDENTICALLY.
  auto local_session = Engine<uint64_t>(config, local_shards).Build();
  OPAQ_CHECK_OK(local_session.status());
  auto local_batch = local_session->Query({
      QueryRequest<uint64_t>::EquiQuantiles(10),
      QueryRequest<uint64_t>::Quantile(0.1, /*exact=*/true),
      QueryRequest<uint64_t>::Quantile(0.5, /*exact=*/true),
      QueryRequest<uint64_t>::Quantile(0.9, /*exact=*/true),
  });
  OPAQ_CHECK_OK(local_batch.status());
  const auto& local_dectiles = local_batch->results[0].estimates;
  OPAQ_CHECK_EQ(dectiles.size(), local_dectiles.size());
  for (size_t i = 0; i < dectiles.size(); ++i) {
    OPAQ_CHECK_EQ(dectiles[i].lower, local_dectiles[i].lower);
    OPAQ_CHECK_EQ(dectiles[i].upper, local_dectiles[i].upper);
    OPAQ_CHECK_EQ(dectiles[i].target_rank, local_dectiles[i].target_rank);
  }
  for (size_t r = 1; r <= 3; ++r) {
    OPAQ_CHECK_EQ(batch->results[r].exact[0], local_batch->results[r].exact[0]);
  }
  std::cout << "\nverified: distributed answers identical to a "
               "single-process run over the same data\n";

  for (auto& node : nodes) node->Stop();
  return 0;
}
