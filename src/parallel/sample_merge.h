#ifndef OPAQ_PARALLEL_SAMPLE_MERGE_H_
#define OPAQ_PARALLEL_SAMPLE_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kway_merge.h"
#include "parallel/collectives.h"
#include "util/check.h"

namespace opaq {

/// A rank's slice of a globally sorted, distributed list: `values` hold the
/// global index range [global_offset, global_offset + values.size()).
template <typename K>
struct DistributedList {
  std::vector<K> values;
  uint64_t global_offset = 0;
  uint64_t global_size = 0;
};

/// Redistributes an already globally-ordered-by-rank list so every rank
/// holds an equal share (±1): rank r receives global indices
/// [r*floor(N/p) + min(r, N mod p), ...). The paper's global merge leaves
/// processor i with sample-list elements [i*rs, (i+1)*rs); this implements
/// that balancing step for the sample merge, whose bucket sizes are only
/// balanced within the regular-sampling expansion factor.
template <typename K>
DistributedList<K> RebalanceSorted(ProcessorContext& ctx,
                                   const std::vector<K>& local_sorted) {
  const int p = ctx.size();
  uint64_t total = 0;
  const uint64_t my_start = collectives::ExclusiveScanU64(
      ctx, local_sorted.size(), &total);
  const uint64_t base = total / p;
  const uint64_t rem = total % p;
  auto target_start = [&](int r) {
    return static_cast<uint64_t>(r) * base +
           std::min<uint64_t>(static_cast<uint64_t>(r), rem);
  };
  auto target_len = [&](int r) {
    return base + (static_cast<uint64_t>(r) < rem ? 1 : 0);
  };
  // Intersect my global span with each rank's target span.
  const uint64_t my_end = my_start + local_sorted.size();
  std::vector<std::vector<K>> outgoing(p);
  for (int r = 0; r < p; ++r) {
    const uint64_t t_start = target_start(r);
    const uint64_t t_end = t_start + target_len(r);
    const uint64_t lo = std::max(my_start, t_start);
    const uint64_t hi = std::min(my_end, t_end);
    if (lo < hi) {
      outgoing[r].assign(local_sorted.begin() + (lo - my_start),
                         local_sorted.begin() + (hi - my_start));
    }
  }
  std::vector<std::vector<K>> incoming =
      collectives::AllToAllVectors(ctx, outgoing);
  DistributedList<K> out;
  out.global_offset = target_start(ctx.rank());
  out.global_size = total;
  // Pieces from lower ranks hold globally smaller elements; concatenation in
  // rank order is already sorted.
  for (int r = 0; r < p; ++r) {
    out.values.insert(out.values.end(), incoming[r].begin(),
                      incoming[r].end());
  }
  OPAQ_CHECK_EQ(out.values.size(), target_len(ctx.rank()));
  return out;
}

/// Sample merge of p sorted lists (paper §3, option B): parallel sorting by
/// regular sampling [LLS+93] minus the local sort ("the only difference ...
/// is that the initial sorting step is not required").
///
/// Steps, with the paper's cost terms in parentheses:
///  1. each rank draws `oversample` regular samples of its list   (s')
///  2. gather at rank 0, sort, pick p-1 splitters, broadcast      ((1+log p) rounds)
///  3. partition the local list by the splitters                  ((p-1) log rs)
///  4. all-to-all the partitions                                  (beta*(p + rs))
///  5. merge the received sorted pieces                           (rs log p)
///  6. rebalance so every rank holds an equal slice
///
/// Works for any p >= 1 (no power-of-two requirement) and tolerates unequal
/// input sizes.
template <typename K>
DistributedList<K> SampleMergeBlocks(ProcessorContext& ctx,
                                     const std::vector<K>& local_sorted,
                                     uint64_t oversample = 0) {
  const int p = ctx.size();
  OPAQ_DCHECK(std::is_sorted(local_sorted.begin(), local_sorted.end()));
  if (p == 1) {
    DistributedList<K> out;
    out.values = local_sorted;
    out.global_size = local_sorted.size();
    return out;
  }
  if (oversample == 0) oversample = static_cast<uint64_t>(p);

  // 1. Regular samples of the local sorted list (ranks j*|L|/s').
  std::vector<K> my_samples;
  if (!local_sorted.empty()) {
    my_samples.reserve(oversample);
    const uint64_t len = local_sorted.size();
    for (uint64_t j = 1; j <= oversample; ++j) {
      uint64_t idx = j * len / oversample;
      if (idx == 0) idx = 1;
      my_samples.push_back(local_sorted[idx - 1]);
    }
  }

  // 2. Root sorts the gathered samples and selects p-1 regular splitters.
  std::vector<std::vector<K>> gathered =
      collectives::GatherVectors(ctx, 0, my_samples);
  std::vector<K> splitters;
  if (ctx.rank() == 0) {
    std::vector<K> all;
    for (auto& g : gathered) all.insert(all.end(), g.begin(), g.end());
    std::sort(all.begin(), all.end());
    for (int r = 1; r < p; ++r) {
      uint64_t idx = static_cast<uint64_t>(r) * all.size() / p;
      if (!all.empty()) splitters.push_back(all[std::min<uint64_t>(
          idx, all.size() - 1)]);
    }
  }
  collectives::BroadcastVector(ctx, 0, &splitters);

  // 3. Partition the local list by the splitters (binary searches).
  std::vector<std::vector<K>> outgoing(p);
  size_t begin = 0;
  for (int r = 0; r < p; ++r) {
    size_t end;
    if (r + 1 < p && static_cast<size_t>(r) < splitters.size()) {
      end = static_cast<size_t>(
          std::upper_bound(local_sorted.begin() + begin, local_sorted.end(),
                           splitters[r]) -
          local_sorted.begin());
    } else {
      end = local_sorted.size();
    }
    outgoing[r].assign(local_sorted.begin() + begin,
                       local_sorted.begin() + end);
    begin = end;
  }

  // 4. Exchange partitions; 5. p-way merge of the received sorted pieces.
  std::vector<std::vector<K>> incoming =
      collectives::AllToAllVectors(ctx, outgoing);
  std::vector<K> merged = KWayMergeSorted(incoming);

  // 6. Balance to equal slices (the paper's processor-i-holds-[i*rs,..)
  //    postcondition).
  return RebalanceSorted(ctx, merged);
}

}  // namespace opaq

#endif  // OPAQ_PARALLEL_SAMPLE_MERGE_H_
