#ifndef OPAQ_PARALLEL_PARALLEL_OPAQ_H_
#define OPAQ_PARALLEL_PARALLEL_OPAQ_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.h"
#include "core/opaq.h"
#include "parallel/collectives.h"
#include "parallel/global_merge.h"
#include "util/status.h"
#include "util/timer.h"

namespace opaq {

/// Phase ids used with Cluster's PhaseTimer; order matches the default
/// Options::phase_names and the paper's Table 12 rows.
///
/// Attribution under the two I/O modes: kPhaseIo is the time the processor
/// thread spends *blocked waiting for run data*. In sync mode that equals the
/// device time (the thread performs every read itself); in async mode the
/// reads happen on a prefetch thread and kPhaseIo captures only the stalls
/// that sampling could not hide — so overlapped I/O honestly disappears from
/// the processor's critical path instead of being double-counted.
enum ParallelPhase {
  kPhaseIo = 0,
  kPhaseSampling = 1,
  kPhaseLocalMerge = 2,
  kPhaseGlobalMerge = 3,
  kPhaseQuantile = 4,
  kPhaseOther = 5,
};

struct ParallelOpaqOptions {
  /// Per-processor run shape (m, s) — the paper's r = (n/p)/m runs each.
  OpaqConfig config;
  MergeMethod merge_method = MergeMethod::kSample;
  /// Quantile fractions to estimate (dectiles by default).
  std::vector<double> phis = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
};

template <typename K>
struct ParallelOpaqResult {
  std::vector<QuantileEstimate<K>> estimates;
  SampleAccounting global_accounting;
  /// Driver-side wall time of the whole parallel run.
  double total_wall_seconds = 0;
};

namespace internal_parallel {
constexpr int kAnswerTag = 301;
}  // namespace internal_parallel

/// The parallel OPAQ algorithm (paper §3), executed on a simulated
/// message-passing cluster. `local_data[rank]` is the storage backend
/// holding that processor's n/p elements — a plain file on one (possibly
/// throttled) device, or a `StripedFileProvider` over that processor's own
/// disk array. Phase timings accumulate in the cluster's per-rank
/// PhaseTimers (Table 12); quantile answers are assembled at rank 0 and
/// returned.
///
/// Algorithm per processor:
///   1. read local data as runs, regular-sample each run        (I/O + sampling)
///   2. merge the r local sample lists                          (local merge)
///   3. merge the p sample lists globally (bitonic or sample)   (global merge)
///   4. evaluate the index formulas with r*p total runs; owners
///      of the indexed samples report values to rank 0          (quantile)
template <typename K>
Result<ParallelOpaqResult<K>> RunParallelOpaq(
    Cluster& cluster, const std::vector<const RunProvider<K>*>& local_data,
    const ParallelOpaqOptions& options) {
  OPAQ_RETURN_IF_ERROR(options.config.Validate());
  if (static_cast<int>(local_data.size()) != cluster.num_processors()) {
    return Status::InvalidArgument(
        "need exactly one local data source per processor");
  }
  ParallelOpaqResult<K> result;
  WallTimer total_timer;

  Status run_status = cluster.Run([&](ProcessorContext& ctx) -> Status {
    PhaseTimer& timer = ctx.timer();
    const RunProvider<K>* provider = local_data[ctx.rank()];

    // --- Sample phase: read runs, select regular samples per run. ---
    OpaqConfig config = options.config;
    config.seed += static_cast<uint64_t>(ctx.rank());  // independent pivots
    OpaqSketch<K> sketch(config);
    std::unique_ptr<RunSource<K>> reader = MakeRunSource<K>(*provider, config);
    std::vector<K> buffer;
    Status local_status;
    while (true) {
      timer.Start(kPhaseIo);
      auto more = reader->NextRun(&buffer);
      if (!more.ok()) {
        local_status = more.status();
        break;
      }
      if (!*more) break;
      timer.Start(kPhaseSampling);
      sketch.AddRun(std::move(buffer));
      buffer = std::vector<K>();
    }

    // --- Local merge of the r per-run sample lists. ---
    timer.Start(kPhaseLocalMerge);
    SampleList<K> local = sketch.FinalizeSampleList();

    // Health check: collectives block on peers, so a rank whose disk failed
    // cannot just return — everyone would deadlock waiting for its
    // messages. All ranks exchange their status codes and abort together if
    // any pass failed.
    std::vector<uint64_t> health = {
        static_cast<uint64_t>(local_status.code())};
    std::vector<std::vector<uint64_t>> peer_health =
        collectives::AllGatherVectors(ctx, health);
    for (int r = 0; r < ctx.size(); ++r) {
      if (peer_health[r][0] != 0) {
        if (!local_status.ok()) return local_status;  // the actual error
        return Status(static_cast<StatusCode>(peer_health[r][0]),
                      "processor " + std::to_string(r) +
                          " failed during the sample phase");
      }
    }

    // Wait for stragglers under the "other" phase: the time a fast rank
    // spends here is load imbalance in the sample phase, not global-merge
    // cost, and booking it separately keeps Table 12's phase fractions
    // faithful to what they measure.
    timer.Start(kPhaseOther);
    ctx.Barrier();

    // --- Global merge of the p local sample lists. ---
    timer.Start(kPhaseGlobalMerge);
    const SampleAccounting& la = local.accounting();
    std::vector<uint64_t> acc_fields = {la.num_runs, la.num_samples,
                                        la.num_uncovered, la.total_elements};
    std::vector<uint64_t> global_fields =
        collectives::AllReduceSumU64(ctx, acc_fields);
    SampleAccounting global;
    global.subrun_size = options.config.subrun_size();
    global.num_runs = global_fields[0];
    global.num_samples = global_fields[1];
    global.num_uncovered = global_fields[2];
    global.total_elements = global_fields[3];
    OPAQ_CHECK(global.Valid());

    DistributedList<K> dist =
        GlobalMerge(ctx, local.samples(), options.merge_method);
    OPAQ_CHECK_EQ(dist.global_size, global.num_samples);

    // --- Quantile phase: identical index computation on every rank
    //     (formulas (2)/(5) with r*p total runs), owners answer to root. ---
    timer.Start(kPhaseQuantile);
    std::vector<QuantileEstimate<K>> estimates;
    std::vector<uint64_t> wanted;  // 1-based sample indices, per estimate x2
    for (double phi : options.phis) {
      OPAQ_CHECK(phi > 0.0 && phi <= 1.0);
      uint64_t psi = static_cast<uint64_t>(
          std::ceil(phi * static_cast<double>(global.total_elements)));
      psi = std::max<uint64_t>(1, std::min(psi, global.total_elements));
      QuantileEstimate<K> e;
      e.target_rank = psi;
      e.max_rank_error = MaxRankError(global);
      SampleIndex lower = LowerBoundIndex(global, psi);
      SampleIndex upper = UpperBoundIndex(global, psi);
      e.lower_index = lower.index;
      e.upper_index = upper.index;
      e.lower_clamped = lower.clamped;
      e.upper_clamped = upper.clamped;
      estimates.push_back(e);
      wanted.push_back(lower.index);
      wanted.push_back(upper.index);
    }
    // Report (position, value) for every wanted index this rank owns.
    std::vector<uint64_t> owned_positions;
    std::vector<K> owned_values;
    for (uint64_t idx1 : wanted) {
      const uint64_t idx0 = idx1 - 1;  // 0-based global sample index
      if (idx0 >= dist.global_offset &&
          idx0 < dist.global_offset + dist.values.size()) {
        owned_positions.push_back(idx1);
        owned_values.push_back(dist.values[idx0 - dist.global_offset]);
      }
    }
    std::vector<std::vector<uint64_t>> all_positions =
        collectives::GatherVectors(ctx, 0, owned_positions);
    std::vector<std::vector<K>> all_values =
        collectives::GatherVectors(ctx, 0, owned_values);
    if (ctx.rank() == 0) {
      for (int r = 0; r < ctx.size(); ++r) {
        OPAQ_CHECK_EQ(all_positions[r].size(), all_values[r].size());
        for (size_t i = 0; i < all_positions[r].size(); ++i) {
          for (auto& e : estimates) {
            if (e.lower_index == all_positions[r][i]) {
              e.lower = all_values[r][i];
            }
            if (e.upper_index == all_positions[r][i]) {
              e.upper = all_values[r][i];
            }
          }
        }
      }
      result.estimates = std::move(estimates);
      result.global_accounting = global;
    }
    timer.Stop();
    return Status::OK();
  });
  OPAQ_RETURN_IF_ERROR(run_status);
  result.total_wall_seconds = total_timer.ElapsedSeconds();
  return result;
}

/// Deprecated back-compat wrapper: one plain data file per processor.
template <typename K>
[[deprecated(
    "wrap each file in a FileRunProvider (or opaq::Source) and call the "
    "RunProvider overload")]]
Result<ParallelOpaqResult<K>> RunParallelOpaq(
    Cluster& cluster, const std::vector<const TypedDataFile<K>*>& local_files,
    const ParallelOpaqOptions& options) {
  std::vector<FileRunProvider<K>> providers;
  providers.reserve(local_files.size());
  std::vector<const RunProvider<K>*> pointers;
  pointers.reserve(local_files.size());
  for (const TypedDataFile<K>* file : local_files) {
    providers.emplace_back(file);
  }
  for (const FileRunProvider<K>& provider : providers) {
    pointers.push_back(&provider);
  }
  return RunParallelOpaq(cluster, pointers, options);
}

}  // namespace opaq

#endif  // OPAQ_PARALLEL_PARALLEL_OPAQ_H_
