#include "parallel/cost_model.h"

#include <sstream>

namespace opaq {

std::string CostModel::ToString() const {
  std::ostringstream os;
  os << "CostModel(tau=" << tau_seconds * 1e6 << "us, bandwidth="
     << 1.0 / mu_seconds_per_byte / (1024.0 * 1024.0) << "MB/s)";
  return os.str();
}

}  // namespace opaq
