#ifndef OPAQ_PARALLEL_COLLECTIVES_H_
#define OPAQ_PARALLEL_COLLECTIVES_H_

#include <cstdint>
#include <vector>

#include "parallel/cluster.h"
#include "util/check.h"

namespace opaq {

/// Collective operations built from point-to-point messages, in the style of
/// an MPI subset. All processors of the cluster must call the same sequence
/// of collectives (SPMD); per-(source,tag) FIFO ordering in the mailboxes
/// then guarantees correct matching. Root-based implementations are used
/// throughout: the paper's p is 1..16, where a star pattern is within a
/// small constant of tree algorithms and the modeled cost stays transparent.
namespace collectives {

namespace internal_tags {
constexpr int kGather = 101;
constexpr int kBroadcast = 102;
constexpr int kAllToAll = 103;
constexpr int kScan = 104;
}  // namespace internal_tags

/// Gathers each rank's vector at `root`. Returns (at root) a vector indexed
/// by rank; other ranks get an empty result.
template <typename K>
std::vector<std::vector<K>> GatherVectors(ProcessorContext& ctx, int root,
                                          const std::vector<K>& local) {
  std::vector<std::vector<K>> out;
  if (ctx.rank() == root) {
    out.resize(ctx.size());
    out[root] = local;
    for (int r = 0; r < ctx.size(); ++r) {
      if (r == root) continue;
      out[r] = ctx.RecvVector<K>(r, internal_tags::kGather);
    }
  } else {
    OPAQ_CHECK_OK(ctx.SendVector(root, internal_tags::kGather, local));
  }
  return out;
}

/// Broadcasts `values` from `root` to every rank (in/out parameter).
template <typename K>
void BroadcastVector(ProcessorContext& ctx, int root, std::vector<K>* values) {
  if (ctx.rank() == root) {
    for (int r = 0; r < ctx.size(); ++r) {
      if (r == root) continue;
      OPAQ_CHECK_OK(ctx.SendVector(r, internal_tags::kBroadcast, *values));
    }
  } else {
    *values = ctx.RecvVector<K>(root, internal_tags::kBroadcast);
  }
}

/// All ranks end up with every rank's vector (gather at 0 + broadcast of the
/// concatenation with a length prefix).
template <typename K>
std::vector<std::vector<K>> AllGatherVectors(ProcessorContext& ctx,
                                             const std::vector<K>& local) {
  std::vector<std::vector<K>> gathered = GatherVectors(ctx, 0, local);
  // Flatten with a length header so one broadcast carries everything.
  std::vector<uint64_t> lengths(ctx.size());
  std::vector<K> flat;
  if (ctx.rank() == 0) {
    for (int r = 0; r < ctx.size(); ++r) {
      lengths[r] = gathered[r].size();
      flat.insert(flat.end(), gathered[r].begin(), gathered[r].end());
    }
  }
  BroadcastVector(ctx, 0, &lengths);
  BroadcastVector(ctx, 0, &flat);
  std::vector<std::vector<K>> out(ctx.size());
  size_t offset = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    out[r].assign(flat.begin() + offset, flat.begin() + offset + lengths[r]);
    offset += lengths[r];
  }
  return out;
}

/// Personalised all-to-all: `outgoing[r]` goes to rank r; returns the vector
/// received from each rank (incoming[r] came from rank r).
template <typename K>
std::vector<std::vector<K>> AllToAllVectors(
    ProcessorContext& ctx, const std::vector<std::vector<K>>& outgoing) {
  OPAQ_CHECK_EQ(static_cast<int>(outgoing.size()), ctx.size());
  std::vector<std::vector<K>> incoming(ctx.size());
  incoming[ctx.rank()] = outgoing[ctx.rank()];
  // Send everything first (mailboxes are unbounded), then drain receives;
  // no cyclic wait is possible.
  for (int r = 0; r < ctx.size(); ++r) {
    if (r == ctx.rank()) continue;
    OPAQ_CHECK_OK(ctx.SendVector(r, internal_tags::kAllToAll, outgoing[r]));
  }
  for (int r = 0; r < ctx.size(); ++r) {
    if (r == ctx.rank()) continue;
    incoming[r] = ctx.RecvVector<K>(r, internal_tags::kAllToAll);
  }
  return incoming;
}

/// Exclusive prefix sum over one uint64 per rank: rank r receives
/// sum(values of ranks < r); also returns the global total via out param.
inline uint64_t ExclusiveScanU64(ProcessorContext& ctx, uint64_t value,
                                 uint64_t* total = nullptr) {
  std::vector<uint64_t> one{value};
  std::vector<std::vector<uint64_t>> all = AllGatherVectors(ctx, one);
  uint64_t prefix = 0, sum = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    if (r < ctx.rank()) prefix += all[r][0];
    sum += all[r][0];
  }
  if (total != nullptr) *total = sum;
  return prefix;
}

/// Element-wise sum of a fixed-size uint64 vector across all ranks; every
/// rank gets the totals (used to combine SampleAccounting).
inline std::vector<uint64_t> AllReduceSumU64(ProcessorContext& ctx,
                                             const std::vector<uint64_t>& v) {
  std::vector<std::vector<uint64_t>> all = AllGatherVectors(ctx, v);
  std::vector<uint64_t> out(v.size(), 0);
  for (int r = 0; r < ctx.size(); ++r) {
    OPAQ_CHECK_EQ(all[r].size(), v.size());
    for (size_t i = 0; i < v.size(); ++i) out[i] += all[r][i];
  }
  return out;
}

}  // namespace collectives
}  // namespace opaq

#endif  // OPAQ_PARALLEL_COLLECTIVES_H_
