#ifndef OPAQ_PARALLEL_PARALLEL_EXACT_H_
#define OPAQ_PARALLEL_PARALLEL_EXACT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.h"
#include "io/async_run_reader.h"
#include "io/run_reader.h"
#include "parallel/collectives.h"
#include "select/select.h"
#include "util/random.h"
#include "util/status.h"

namespace opaq {

/// Distributed version of the paper's §4 exact-quantile extension: after a
/// parallel OPAQ run produced certified brackets, one extra parallel pass
/// recovers the exact values.
///
/// Each processor scans its local shard once, counting elements below each
/// bracket and keeping the (at most ~2n/s per quantile, globally) elements
/// inside it. Below-counts are all-reduced; the kept elements are gathered
/// at rank 0, which selects the element of rank `psi - below_total` within
/// each bracket. Communication is O(q * n/s) — tiny next to the data.
///
/// The local scan streams through `RunProvider::OpenRuns(options)`, so each
/// processor's shard may live on any storage backend, and with
/// `options.io_mode == kAsync` the bracket filtering overlaps with the next
/// run's read(s).
///
/// Returns the exact values at rank 0 (empty vector on other ranks). Must be
/// called from within a Cluster::Run body with the same SPMD discipline as
/// the other collectives; `estimates` must be identical on every rank.
template <typename K>
Result<std::vector<K>> ParallelExactQuantiles(
    ProcessorContext& ctx, const RunProvider<K>& local_data,
    const std::vector<QuantileEstimate<K>>& estimates,
    const ReadOptions& options, uint64_t local_memory_budget = 0) {
  for (const auto& e : estimates) {
    if (e.lower_clamped || e.upper_clamped) {
      return Status::FailedPrecondition(
          "an estimate's bounds were clamped; its bracket is not certified");
    }
  }
  if (local_memory_budget == 0 && !estimates.empty()) {
    local_memory_budget =
        4 * estimates.size() * estimates.front().max_rank_error;
  }

  // Local pass: below-counts and kept elements per bracket.
  std::vector<uint64_t> below(estimates.size(), 0);
  std::vector<std::vector<K>> kept(estimates.size());
  uint64_t held = 0;
  Status local_status;
  {
    std::vector<K> buffer;
    std::unique_ptr<RunSource<K>> reader = local_data.OpenRuns(options);
    while (local_status.ok()) {
      auto more = reader->NextRun(&buffer);
      if (!more.ok()) {
        local_status = more.status();
        break;
      }
      if (!*more) break;
      for (const K& v : buffer) {
        for (size_t q = 0; q < estimates.size(); ++q) {
          if (v < estimates[q].lower) {
            ++below[q];
          } else if (!(estimates[q].upper < v)) {
            kept[q].push_back(v);
            if (++held > local_memory_budget) {
              local_status = Status::ResourceExhausted(
                  "brackets exceed the local memory budget");
            }
          }
        }
      }
    }
  }

  // Health check before any blocking exchange (same pattern as
  // RunParallelOpaq): all ranks abort together if any local pass failed.
  std::vector<uint64_t> health = {
      static_cast<uint64_t>(local_status.code())};
  auto peer_health = collectives::AllGatherVectors(ctx, health);
  for (int r = 0; r < ctx.size(); ++r) {
    if (peer_health[r][0] != 0) {
      if (!local_status.ok()) return local_status;
      return Status(static_cast<StatusCode>(peer_health[r][0]),
                    "processor " + std::to_string(r) +
                        " failed during the exact pass");
    }
  }

  // Combine: total below-counts everywhere, kept elements at root.
  std::vector<uint64_t> below_total =
      collectives::AllReduceSumU64(ctx, below);
  std::vector<K> out;
  for (size_t q = 0; q < estimates.size(); ++q) {
    std::vector<std::vector<K>> shards =
        collectives::GatherVectors(ctx, 0, kept[q]);
    if (ctx.rank() != 0) continue;
    std::vector<K> all;
    for (auto& shard : shards) {
      all.insert(all.end(), shard.begin(), shard.end());
    }
    const QuantileEstimate<K>& e = estimates[q];
    if (e.target_rank <= below_total[q] ||
        e.target_rank > below_total[q] + all.size()) {
      return Status::Internal(
          "target rank falls outside its bracket; estimates must come from "
          "these exact shards");
    }
    Xoshiro256 rng(e.target_rank);
    out.push_back(SelectKth(all.data(), all.size(),
                            e.target_rank - below_total[q] - 1,
                            SelectAlgorithm::kIntroSelect, rng));
  }
  return out;
}

/// Deprecated back-compat wrapper: synchronous scan of one plain local file.
template <typename K>
[[deprecated(
    "wrap the file in a FileRunProvider (or opaq::Source) and call the "
    "RunProvider overload")]]
Result<std::vector<K>> ParallelExactQuantiles(
    ProcessorContext& ctx, const TypedDataFile<K>* local_file,
    const std::vector<QuantileEstimate<K>>& estimates, uint64_t run_size,
    uint64_t local_memory_budget = 0) {
  ReadOptions options;
  options.run_size = run_size;
  return ParallelExactQuantiles(ctx, FileRunProvider<K>(local_file),
                                estimates, options, local_memory_budget);
}

}  // namespace opaq

#endif  // OPAQ_PARALLEL_PARALLEL_EXACT_H_
