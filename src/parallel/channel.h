#ifndef OPAQ_PARALLEL_CHANNEL_H_
#define OPAQ_PARALLEL_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace opaq {

/// A bounded multi-producer/multi-consumer queue with close semantics —
/// the building block for producer/consumer pipelines (the async run
/// reader uses two: a free-buffer channel and a full-buffer channel).
///
/// Semantics:
///  - `Send` blocks while the channel holds `capacity` items; it returns
///    false (dropping the value) once the channel is closed.
///  - `Receive` blocks while the channel is empty and open; after `Close`
///    it keeps draining queued items and returns false only when empty.
///  - `Close` is idempotent and wakes every blocked sender and receiver.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) capacity_ = 1;
  }

  /// Blocks until there is room (or the channel closes). Returns whether
  /// the value was enqueued.
  bool Send(T value) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      send_cv_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    recv_cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the channel closes empty).
  /// Returns whether `*out` was populated.
  bool Receive(T* out) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      recv_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;  // closed and drained
      *out = std::move(items_.front());
      items_.pop_front();
    }
    send_cv_.notify_one();
    return true;
  }

  /// Closes the channel: senders fail fast, receivers drain then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    send_cv_.notify_all();
    recv_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable send_cv_;
  std::condition_variable recv_cv_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

/// One untyped message in flight between simulated processors.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<uint8_t> payload;
};

/// A processor's inbox. Messages are matched on (source, tag) like MPI's
/// point-to-point semantics; order is preserved per (source, tag) pair.
/// Thread-safe: senders push from their own threads, the owner blocks on
/// Receive.
class Mailbox {
 public:
  void Deliver(Message message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queues_[{message.source, message.tag}].push_back(std::move(message));
    }
    cv_.notify_all();
  }

  /// Blocks until a message from `source` with `tag` arrives.
  Message Receive(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto key = std::make_pair(source, tag);
    cv_.wait(lock, [&] {
      auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    auto it = queues_.find(key);
    Message out = std::move(it->second.front());
    it->second.pop_front();
    return out;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Message>> queues_;
};

}  // namespace opaq

#endif  // OPAQ_PARALLEL_CHANNEL_H_
