#ifndef OPAQ_PARALLEL_CHANNEL_H_
#define OPAQ_PARALLEL_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace opaq {

/// One untyped message in flight between simulated processors.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<uint8_t> payload;
};

/// A processor's inbox. Messages are matched on (source, tag) like MPI's
/// point-to-point semantics; order is preserved per (source, tag) pair.
/// Thread-safe: senders push from their own threads, the owner blocks on
/// Receive.
class Mailbox {
 public:
  void Deliver(Message message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queues_[{message.source, message.tag}].push_back(std::move(message));
    }
    cv_.notify_all();
  }

  /// Blocks until a message from `source` with `tag` arrives.
  Message Receive(int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto key = std::make_pair(source, tag);
    cv_.wait(lock, [&] {
      auto it = queues_.find(key);
      return it != queues_.end() && !it->second.empty();
    });
    auto it = queues_.find(key);
    Message out = std::move(it->second.front());
    it->second.pop_front();
    return out;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Message>> queues_;
};

}  // namespace opaq

#endif  // OPAQ_PARALLEL_CHANNEL_H_
