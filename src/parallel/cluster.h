#ifndef OPAQ_PARALLEL_CLUSTER_H_
#define OPAQ_PARALLEL_CLUSTER_H_

#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "parallel/channel.h"
#include "parallel/cost_model.h"
#include "util/status.h"
#include "util/timer.h"

namespace opaq {

class Cluster;

/// Reusable cyclic barrier (std::barrier is C++20; the project is C++17).
/// Generation counting makes back-to-back waits safe.
class ThreadBarrier {
 public:
  explicit ThreadBarrier(int parties) : parties_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

/// The face a simulated processor sees: its rank, point-to-point messaging,
/// and collectives built on top (in collectives.h). One ProcessorContext per
/// thread per Cluster::Run call; not shared across threads.
class ProcessorContext {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking point-to-point send. Charges tau + mu*bytes to this
  /// processor's modeled communication time; in kSleep mode also delays the
  /// calling thread by that amount (making wall-clock match the SP-2-flavour
  /// model).
  Status Send(int to, int tag, const void* data, size_t bytes);

  /// Blocking receive of the next message from `from` with `tag`.
  Message Recv(int from, int tag);

  /// Typed helpers for vectors of trivially copyable elements.
  template <typename K>
  Status SendVector(int to, int tag, const std::vector<K>& values) {
    static_assert(std::is_trivially_copyable_v<K>);
    return Send(to, tag, values.data(), values.size() * sizeof(K));
  }
  template <typename K>
  std::vector<K> RecvVector(int from, int tag) {
    static_assert(std::is_trivially_copyable_v<K>);
    Message m = Recv(from, tag);
    std::vector<K> out(m.payload.size() / sizeof(K));
    if (!out.empty()) {
      std::memcpy(out.data(), m.payload.data(), out.size() * sizeof(K));
    }
    return out;
  }

  /// Typed helpers for single trivially copyable values.
  template <typename T>
  Status SendValue(int to, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Send(to, tag, &value, sizeof(T));
  }
  template <typename T>
  T RecvValue(int from, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = Recv(from, tag);
    T out;
    OPAQ_CHECK_EQ(m.payload.size(), sizeof(T));
    std::memcpy(&out, m.payload.data(), sizeof(T));
    return out;
  }

  /// Synchronises all processors (ThreadBarrier underneath; charges one
  /// tau-cost message per participant).
  void Barrier();

  /// Wall-clock phase accounting for this processor (Table 12).
  PhaseTimer& timer() { return *timer_; }

  CommStats& comm_stats();

 private:
  friend class Cluster;
  ProcessorContext(Cluster* cluster, int rank, PhaseTimer* timer)
      : cluster_(cluster), rank_(rank), timer_(timer) {}

  Cluster* cluster_;
  int rank_;
  PhaseTimer* timer_;
};

/// A simulated message-passing machine: p OS threads with private state,
/// mailbox-based point-to-point channels, and the paper's two-level cost
/// model billed on every message.
///
/// This substitutes for the paper's 16-node IBM SP-2 (see DESIGN.md): the
/// algorithmic behaviour under study (which merge wins, how phases scale)
/// depends only on message counts/volumes and local computation, both of
/// which are real here.
class Cluster {
 public:
  /// kAccount only tallies modeled communication seconds; kSleep also delays
  /// senders so wall-clock times reflect the model (used by the figure
  /// benches).
  enum class CommMode { kAccount, kSleep };

  struct Options {
    int num_processors = 4;
    CostModel cost_model;
    CommMode comm_mode = CommMode::kAccount;
    /// Phase names for the per-processor PhaseTimer (callers may override to
    /// match their phase enum).
    std::vector<std::string> phase_names = {"io", "sampling", "local_merge",
                                            "global_merge", "quantile",
                                            "other"};
  };

  explicit Cluster(Options options);

  /// Runs `body(ctx)` on every processor thread and joins. Returns the first
  /// non-OK status (by rank order) if any processor fails. Reusable: each
  /// call resets mailboxes, stats and timers.
  Status Run(const std::function<Status(ProcessorContext&)>& body);

  int num_processors() const { return options_.num_processors; }
  const CostModel& cost_model() const { return options_.cost_model; }

  /// Post-run inspection.
  const CommStats& comm_stats(int rank) const { return *comm_stats_[rank]; }
  const PhaseTimer& phase_timer(int rank) const { return *timers_[rank]; }

  /// Sum of modeled communication seconds over all ranks.
  double TotalModeledCommSeconds() const;

  /// Phase-wise average of the per-rank timers (Table 12 view).
  PhaseTimer AveragedTimers() const;

 private:
  friend class ProcessorContext;

  Options options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<CommStats>> comm_stats_;
  std::vector<std::unique_ptr<PhaseTimer>> timers_;
  std::unique_ptr<ThreadBarrier> barrier_;
};

}  // namespace opaq

#endif  // OPAQ_PARALLEL_CLUSTER_H_
