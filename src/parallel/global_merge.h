#ifndef OPAQ_PARALLEL_GLOBAL_MERGE_H_
#define OPAQ_PARALLEL_GLOBAL_MERGE_H_

#include <vector>

#include "parallel/bitonic_merge.h"
#include "parallel/sample_merge.h"

namespace opaq {

/// Which algorithm merges the p per-processor sample lists (paper §3
/// investigates both; Figure 3 compares them).
enum class MergeMethod {
  kBitonic,
  kSample,
};

inline const char* MergeMethodName(MergeMethod m) {
  return m == MergeMethod::kBitonic ? "bitonic" : "sample";
}

/// Bitonic path wrapped to the DistributedList interface. Blocks are equal
/// by construction, so each rank's slice is [rank*block, (rank+1)*block).
template <typename K>
DistributedList<K> BitonicMergeToDistributed(ProcessorContext& ctx,
                                             std::vector<K> local_sorted) {
  const uint64_t block = local_sorted.size();
  std::vector<K> merged = BitonicMergeBlocks(ctx, std::move(local_sorted));
  DistributedList<K> out;
  out.values = std::move(merged);
  out.global_offset = static_cast<uint64_t>(ctx.rank()) * block;
  out.global_size = block * static_cast<uint64_t>(ctx.size());
  return out;
}

/// Merges every rank's sorted list into a globally sorted distributed list
/// using `method`. Postcondition: ascending across ranks, each rank knows
/// its global offset.
template <typename K>
DistributedList<K> GlobalMerge(ProcessorContext& ctx,
                               std::vector<K> local_sorted,
                               MergeMethod method) {
  switch (method) {
    case MergeMethod::kBitonic:
      return BitonicMergeToDistributed(ctx, std::move(local_sorted));
    case MergeMethod::kSample:
      return SampleMergeBlocks(ctx, local_sorted);
  }
  OPAQ_CHECK(false) << "unreachable";
  return {};
}

}  // namespace opaq

#endif  // OPAQ_PARALLEL_GLOBAL_MERGE_H_
