#ifndef OPAQ_PARALLEL_COST_MODEL_H_
#define OPAQ_PARALLEL_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace opaq {

/// The paper's two-level machine model (§3): a message of b bytes costs
/// `tau + mu * b` independent of which processors communicate (virtual
/// crossbar), and local work has unit cost delta (we measure local work with
/// real timers instead of counting operations).
///
/// Defaults approximate the IBM SP-2's switch as reported in the mid-90s
/// literature: ~40 microseconds start-up and ~35 MB/s point-to-point
/// bandwidth. The shapes of Figure 3 (bitonic vs sample merge) depend on the
/// tau/mu ratio, not the absolute values.
struct CostModel {
  double tau_seconds = 40e-6;
  double mu_seconds_per_byte = 1.0 / (35.0 * 1024 * 1024);

  double MessageSeconds(uint64_t bytes) const {
    return tau_seconds + mu_seconds_per_byte * static_cast<double>(bytes);
  }

  std::string ToString() const;
};

/// Per-processor communication counters (relaxed atomics: written by the
/// owning processor thread, read by the driver after Run()).
struct CommStats {
  std::atomic<uint64_t> messages_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> messages_received{0};
  std::atomic<uint64_t> bytes_received{0};
  /// Modeled communication seconds charged against this processor
  /// (microsecond resolution).
  std::atomic<uint64_t> modeled_comm_micros{0};

  double modeled_comm_seconds() const {
    return static_cast<double>(
               modeled_comm_micros.load(std::memory_order_relaxed)) *
           1e-6;
  }

  void Reset() {
    messages_sent = 0;
    bytes_sent = 0;
    messages_received = 0;
    bytes_received = 0;
    modeled_comm_micros = 0;
  }
};

}  // namespace opaq

#endif  // OPAQ_PARALLEL_COST_MODEL_H_
