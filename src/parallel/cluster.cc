#include "parallel/cluster.h"

#include <chrono>
#include <thread>

namespace opaq {

int ProcessorContext::size() const { return cluster_->num_processors(); }

CommStats& ProcessorContext::comm_stats() {
  return *cluster_->comm_stats_[rank_];
}

Status ProcessorContext::Send(int to, int tag, const void* data,
                              size_t bytes) {
  if (to < 0 || to >= size()) {
    return Status::InvalidArgument("Send: destination rank out of range");
  }
  Message message;
  message.source = rank_;
  message.tag = tag;
  message.payload.resize(bytes);
  if (bytes > 0) std::memcpy(message.payload.data(), data, bytes);

  CommStats& stats = comm_stats();
  stats.messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  const double cost = cluster_->cost_model().MessageSeconds(bytes);
  stats.modeled_comm_micros.fetch_add(static_cast<uint64_t>(cost * 1e6),
                                      std::memory_order_relaxed);
  if (cluster_->options_.comm_mode == Cluster::CommMode::kSleep) {
    std::this_thread::sleep_for(std::chrono::duration<double>(cost));
  }
  cluster_->mailboxes_[to]->Deliver(std::move(message));
  return Status::OK();
}

Message ProcessorContext::Recv(int from, int tag) {
  OPAQ_CHECK_GE(from, 0);
  OPAQ_CHECK_LT(from, size());
  Message m = cluster_->mailboxes_[rank_]->Receive(from, tag);
  CommStats& stats = comm_stats();
  stats.messages_received.fetch_add(1, std::memory_order_relaxed);
  stats.bytes_received.fetch_add(m.payload.size(),
                                 std::memory_order_relaxed);
  return m;
}

void ProcessorContext::Barrier() {
  CommStats& stats = comm_stats();
  stats.modeled_comm_micros.fetch_add(
      static_cast<uint64_t>(cluster_->cost_model().tau_seconds * 1e6),
      std::memory_order_relaxed);
  cluster_->barrier_->ArriveAndWait();
}

Cluster::Cluster(Options options) : options_(std::move(options)) {
  OPAQ_CHECK_GT(options_.num_processors, 0);
  barrier_ = std::make_unique<ThreadBarrier>(options_.num_processors);
  for (int i = 0; i < options_.num_processors; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comm_stats_.push_back(std::make_unique<CommStats>());
    timers_.push_back(std::make_unique<PhaseTimer>(options_.phase_names));
  }
}

Status Cluster::Run(const std::function<Status(ProcessorContext&)>& body) {
  const int p = options_.num_processors;
  // Fresh mailboxes/stats/timers per run so the cluster is reusable.
  for (int i = 0; i < p; ++i) {
    mailboxes_[i] = std::make_unique<Mailbox>();
    comm_stats_[i]->Reset();
    timers_[i] = std::make_unique<PhaseTimer>(options_.phase_names);
  }
  std::vector<Status> statuses(p);
  std::vector<std::thread> threads;
  threads.reserve(p);
  for (int rank = 0; rank < p; ++rank) {
    threads.emplace_back([this, rank, &body, &statuses] {
      ProcessorContext ctx(this, rank, timers_[rank].get());
      statuses[rank] = body(ctx);
      ctx.timer().Stop();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

double Cluster::TotalModeledCommSeconds() const {
  double total = 0;
  for (const auto& stats : comm_stats_) total += stats->modeled_comm_seconds();
  return total;
}

PhaseTimer Cluster::AveragedTimers() const {
  PhaseTimer avg(options_.phase_names);
  for (const auto& timer : timers_) avg.Merge(*timer);
  PhaseTimer scaled(options_.phase_names);
  for (int i = 0; i < avg.num_phases(); ++i) {
    scaled.AddSeconds(i, avg.Seconds(i) / options_.num_processors);
  }
  return scaled;
}

}  // namespace opaq
