#ifndef OPAQ_PARALLEL_BITONIC_MERGE_H_
#define OPAQ_PARALLEL_BITONIC_MERGE_H_

#include <algorithm>
#include <vector>

#include "parallel/cluster.h"
#include "util/check.h"
#include "util/math.h"

namespace opaq {

namespace internal_bitonic {
constexpr int kExchangeTag = 201;

/// Compare-split: both partners exchange whole blocks; the "low" side keeps
/// the smaller half of the merged sequence, the "high" side the larger half.
/// Both halves come out sorted ascending. This is the block-level
/// compare-exchange of Batcher's network [Bat68] as used for block bitonic
/// sorting on distributed machines [KGGK94].
template <typename K>
std::vector<K> CompareSplit(ProcessorContext& ctx, int partner,
                            std::vector<K> mine, bool keep_low) {
  OPAQ_CHECK_OK(ctx.SendVector(partner, kExchangeTag, mine));
  std::vector<K> theirs = ctx.RecvVector<K>(partner, kExchangeTag);
  OPAQ_CHECK_EQ(mine.size(), theirs.size())
      << "bitonic merge requires equal block sizes on all processors";
  const size_t block = mine.size();
  std::vector<K> kept(block);
  if (keep_low) {
    // Merge from the front, keep the smallest `block` elements.
    size_t i = 0, j = 0;
    for (size_t k = 0; k < block; ++k) {
      if (j >= block || (i < block && !(theirs[j] < mine[i]))) {
        kept[k] = mine[i++];
      } else {
        kept[k] = theirs[j++];
      }
    }
  } else {
    // Merge from the back, keep the largest `block` elements.
    size_t i = block, j = block;
    for (size_t k = block; k-- > 0;) {
      if (j == 0 || (i > 0 && !(mine[i - 1] < theirs[j - 1]))) {
        kept[k] = mine[--i];
      } else {
        kept[k] = theirs[--j];
      }
    }
  }
  return kept;
}

}  // namespace internal_bitonic

/// Bitonic merge of p sorted blocks (paper §3, option A for the global
/// merge of per-processor sample lists).
///
/// Every rank contributes an ascending `local_sorted` block of identical
/// length; on return, blocks are globally ordered by rank (rank 0 holds the
/// smallest elements). Because the inputs are already locally sorted, only
/// the block-level network runs — the "initial sorting step is not
/// required" observation the paper makes when adapting bitonic *sort* to a
/// bitonic *merge*.
///
/// Stages: for k = 2,4,..,p and j = k/2..1 (halving), partner = rank XOR j,
/// direction from bit (rank AND k): the classic O(log^2 p) compare-split
/// schedule, each stage moving a whole block over the network — matching the
/// paper's O(rs log p (1 + log p)) communication term.
///
/// Requires: power-of-two cluster size, equal block sizes (checked).
template <typename K>
std::vector<K> BitonicMergeBlocks(ProcessorContext& ctx,
                                  std::vector<K> local_sorted) {
  const int p = ctx.size();
  OPAQ_CHECK(IsPowerOfTwo(static_cast<uint64_t>(p)))
      << "bitonic merge requires a power-of-two processor count, got " << p;
  OPAQ_DCHECK(std::is_sorted(local_sorted.begin(), local_sorted.end()));
  if (p == 1) return local_sorted;
  const int rank = ctx.rank();
  for (int k = 2; k <= p; k <<= 1) {
    for (int j = k >> 1; j > 0; j >>= 1) {
      const int partner = rank ^ j;
      const bool ascending = (rank & k) == 0;
      const bool i_am_low = rank < partner;
      const bool keep_low = ascending == i_am_low;
      local_sorted = internal_bitonic::CompareSplit(
          ctx, partner, std::move(local_sorted), keep_low);
    }
  }
  return local_sorted;
}

}  // namespace opaq

#endif  // OPAQ_PARALLEL_BITONIC_MERGE_H_
