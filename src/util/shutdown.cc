#include "util/shutdown.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

namespace opaq {
namespace {

std::atomic<bool> g_triggered{false};
int g_pipe_read = -1;
int g_pipe_write = -1;

// Async-signal-safe by construction: one write to a non-blocking pipe, no
// locks, no allocation. A full pipe (signal storm) just drops the byte —
// the first one already woke the waiter.
void OnSignal(int /*signo*/) {
  const int saved_errno = errno;
  g_triggered.store(true, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = write(g_pipe_write, &byte, 1);
  errno = saved_errno;
}

Status SetCloexecNonblock(int fd) {
  if (fcntl(fd, F_SETFD, FD_CLOEXEC) != 0 ||
      fcntl(fd, F_SETFL, O_NONBLOCK) != 0) {
    return Status::IoError(std::string("fcntl on the shutdown pipe: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status ShutdownSignal::Install() {
  if (g_pipe_read >= 0) return Status::OK();
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::IoError(std::string("pipe for the shutdown latch: ") +
                           std::strerror(errno));
  }
  OPAQ_RETURN_IF_ERROR(SetCloexecNonblock(fds[0]));
  OPAQ_RETURN_IF_ERROR(SetCloexecNonblock(fds[1]));
  g_pipe_read = fds[0];
  g_pipe_write = fds[1];
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps unrelated slow syscalls (accept, read) from spraying
  // EINTR; the self-pipe wakes our poll regardless.
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGINT, &action, nullptr) != 0 ||
      sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::IoError(std::string("sigaction: ") + std::strerror(errno));
  }
  return Status::OK();
}

bool ShutdownSignal::Wait(double duration_seconds) {
  OPAQ_CHECK(g_pipe_read >= 0) << "ShutdownSignal::Wait before Install";
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(duration_seconds));
  for (;;) {
    if (g_triggered.load(std::memory_order_acquire)) return true;
    int timeout_ms = -1;  // poll forever
    if (duration_seconds > 0) {
      const auto remaining = deadline - std::chrono::steady_clock::now();
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          remaining)
                          .count();
      if (ms <= 0) return g_triggered.load(std::memory_order_acquire);
      // Clamp before narrowing: a --duration past ~24.8 days would
      // otherwise overflow int and hand poll a negative (infinite)
      // timeout. The loop re-checks the deadline after each wakeup, so
      // clamped waits still honor the full duration.
      timeout_ms = ms > std::numeric_limits<int>::max()
                       ? std::numeric_limits<int>::max()
                       : static_cast<int>(ms);
    }
    struct pollfd pfd;
    pfd.fd = g_pipe_read;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno != EINTR && errno != EAGAIN) {
      // poll on a private pipe "cannot" fail; treat it as a wakeup so the
      // daemon shuts down rather than spinning.
      return true;
    }
    if (ready > 0) {
      char drain[64];
      while (read(g_pipe_read, drain, sizeof(drain)) > 0) {
      }
      return true;
    }
    // ready == 0 (timeout) loops once more to re-check the deadline; EINTR
    // retries.
    if (ready == 0 && duration_seconds > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      return g_triggered.load(std::memory_order_acquire);
    }
  }
}

bool ShutdownSignal::triggered() {
  return g_triggered.load(std::memory_order_acquire);
}

}  // namespace opaq
