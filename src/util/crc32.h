#ifndef OPAQ_UTIL_CRC32_H_
#define OPAQ_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace opaq {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `len` bytes.
/// The classic check value: Crc32("123456789", 9) == 0xCBF43926. Shared by
/// the wire protocol frames (net/wire.h) and the on-disk extent format
/// (io/extent.h) — both pin it with golden blobs.
uint32_t Crc32(const void* data, size_t len);

}  // namespace opaq

#endif  // OPAQ_UTIL_CRC32_H_
