#include "util/random.h"

namespace opaq {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : state_) word = seeder.Next();
  // All-zero state is the one invalid state; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway for belt and braces.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  OPAQ_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

}  // namespace opaq
