#include "util/crc32.h"

namespace opaq {
namespace {

/// Builds the reflected CRC-32 table once (thread-safe static init).
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const Crc32Table table;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace opaq
