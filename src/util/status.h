#ifndef OPAQ_UTIL_STATUS_H_
#define OPAQ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace opaq {

/// Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// This project follows the Google style guide's no-exceptions rule; every
/// operation that can fail at runtime (I/O, malformed input, configuration
/// validation) reports through `Status` or `Result<T>`. Programmer errors are
/// enforced with `OPAQ_CHECK` instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Analogous to
/// `absl::StatusOr<T>`.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status so `return value;` and
  /// `return Status::IoError(...);` both work in functions returning
  /// `Result<T>`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    OPAQ_CHECK(!std::get<Status>(storage_).ok())
        << "Result<T> constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(storage_);
  }

  /// Accessors die if the result holds an error; callers must test `ok()`
  /// (or use `value_or`) on any path where failure is possible.
  T& value() & {
    OPAQ_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(storage_);
  }
  const T& value() const& {
    OPAQ_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(storage_);
  }
  T&& value() && {
    OPAQ_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(storage_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

/// Propagates a non-OK status out of the current function.
#define OPAQ_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::opaq::Status opaq_status_ = (expr);       \
    if (!opaq_status_.ok()) return opaq_status_; \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its status, otherwise
/// assigns the value to `lhs` (declaration or existing variable).
#define OPAQ_ASSIGN_OR_RETURN(lhs, expr)             \
  OPAQ_ASSIGN_OR_RETURN_IMPL_(                       \
      OPAQ_STATUS_CONCAT_(opaq_result_, __LINE__), lhs, expr)
#define OPAQ_STATUS_CONCAT_INNER_(a, b) a##b
#define OPAQ_STATUS_CONCAT_(a, b) OPAQ_STATUS_CONCAT_INNER_(a, b)
#define OPAQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace opaq

#endif  // OPAQ_UTIL_STATUS_H_
