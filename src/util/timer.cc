#include "util/timer.h"

#include "util/check.h"

namespace opaq {

PhaseTimer::PhaseTimer(std::vector<std::string> phase_names)
    : names_(std::move(phase_names)), seconds_(names_.size(), 0.0) {
  OPAQ_CHECK(!names_.empty());
}

void PhaseTimer::Start(int phase) {
  Stop();
  OPAQ_CHECK_GE(phase, 0);
  OPAQ_CHECK_LT(phase, num_phases());
  running_ = phase;
  started_at_ = Clock::now();
}

void PhaseTimer::Stop() {
  if (running_ < 0) return;
  seconds_[running_] +=
      std::chrono::duration<double>(Clock::now() - started_at_).count();
  running_ = -1;
}

double PhaseTimer::Seconds(int phase) const {
  OPAQ_CHECK_GE(phase, 0);
  OPAQ_CHECK_LT(phase, num_phases());
  return seconds_[phase];
}

double PhaseTimer::TotalSeconds() const {
  double total = 0;
  for (double s : seconds_) total += s;
  return total;
}

double PhaseTimer::Fraction(int phase) const {
  double total = TotalSeconds();
  return total > 0 ? Seconds(phase) / total : 0.0;
}

void PhaseTimer::AddSeconds(int phase, double seconds) {
  OPAQ_CHECK_GE(phase, 0);
  OPAQ_CHECK_LT(phase, num_phases());
  seconds_[phase] += seconds;
}

void PhaseTimer::Merge(const PhaseTimer& other) {
  OPAQ_CHECK_EQ(num_phases(), other.num_phases());
  for (int i = 0; i < num_phases(); ++i) seconds_[i] += other.seconds_[i];
}

}  // namespace opaq
