#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace opaq {

void TextTable::AddHeader(std::vector<std::string> cells) {
  headers_.push_back(std::move(cells));
}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TextTable::Print(std::ostream& os) const {
  size_t columns = 0;
  for (const auto& row : headers_) columns = std::max(columns, row.size());
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> width(columns, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  for (const auto& row : headers_) measure(row);
  for (const auto& row : rows_) measure(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      } else {
        os << "  " << std::right << std::setw(static_cast<int>(width[c]))
           << cell;
      }
    }
    os << "\n";
  };

  if (!title_.empty()) os << title_ << "\n";
  for (const auto& row : headers_) emit(row);
  if (!headers_.empty()) {
    size_t total = 0;
    for (size_t c = 0; c < columns; ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  for (const auto& row : headers_) emit(row);
  for (const auto& row : rows_) emit(row);
}

}  // namespace opaq
