#ifndef OPAQ_UTIL_FLAGS_H_
#define OPAQ_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace opaq {

/// Minimal `--key=value` command-line parser for benches and examples.
///
/// Accepted forms: `--key=value`, `--key value`, and bare `--key` (treated as
/// boolean true). Underscores in key names normalize to dashes at parse time
/// (`--run_size` == `--run-size`); code looks flags up dash-style.
/// Unrecognised positional arguments are collected in `positional()`.
class Flags {
 public:
  /// Parses argv; returns InvalidArgument on malformed input (e.g. `--=x`).
  static Result<Flags> Parse(int argc, char** argv);

  /// Status-returning typed getters with defaults: the daemon/CLI path.
  /// A present-but-unparseable value — empty (`--port=`), out of range
  /// (ERANGE overflow), no digits, or trailing junk — is an
  /// InvalidArgument naming the flag, never a silent 0 and never an abort,
  /// so tools can print their usage text and exit cleanly.
  Result<int64_t> TryGetInt(const std::string& key,
                            int64_t default_value) const;
  Result<double> TryGetDouble(const std::string& key,
                              double default_value) const;
  Result<bool> TryGetBool(const std::string& key, bool default_value) const;

  /// Typed getters with defaults. Die (OPAQ_CHECK) if the value is present
  /// but unparseable — bad CLI input should fail loudly in a bench harness.
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Every flag key the command line actually provided (dash-normalized,
  /// sorted) — lets tools validate the input against a declared flag table.
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& kv : values_) out.push_back(kv.first);
    return out;
  }
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace opaq

#endif  // OPAQ_UTIL_FLAGS_H_
