#ifndef OPAQ_UTIL_TIMER_H_
#define OPAQ_UTIL_TIMER_H_

#include <chrono>
#include <string>
#include <vector>

namespace opaq {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time into named phases. Used by the parallel harness to
/// reproduce the paper's Table 12 (fraction of execution time per phase).
///
/// Phases are identified by small dense integer ids supplied by the caller
/// (e.g. an enum), so accumulation on the hot path is an array add, not a map
/// lookup.
class PhaseTimer {
 public:
  /// `phase_names[i]` labels phase id `i`.
  explicit PhaseTimer(std::vector<std::string> phase_names);

  /// Starts timing `phase`; any running phase is stopped first.
  void Start(int phase);

  /// Stops the running phase (no-op if none).
  void Stop();

  /// Total seconds accumulated in `phase`.
  double Seconds(int phase) const;

  /// Sum over all phases.
  double TotalSeconds() const;

  /// `Seconds(phase) / TotalSeconds()` (0 if total is 0).
  double Fraction(int phase) const;

  /// Adds externally measured time (e.g. modeled I/O time) into a phase.
  void AddSeconds(int phase, double seconds);

  const std::string& name(int phase) const { return names_[phase]; }
  int num_phases() const { return static_cast<int>(names_.size()); }

  /// Merges another timer's accumulations into this one (phase-wise add).
  void Merge(const PhaseTimer& other);

 private:
  using Clock = std::chrono::steady_clock;
  std::vector<std::string> names_;
  std::vector<double> seconds_;
  int running_ = -1;
  Clock::time_point started_at_;
};

}  // namespace opaq

#endif  // OPAQ_UTIL_TIMER_H_
