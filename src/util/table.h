#ifndef OPAQ_UTIL_TABLE_H_
#define OPAQ_UTIL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace opaq {

/// Plain-text table builder used by the benchmark harness to print
/// paper-style tables (Tables 3–12) with aligned columns.
///
/// Usage:
///   TextTable t;
///   t.SetTitle("Table 3: RER_A ...");
///   t.AddHeader({"Dectile", "s=250", "s=500", "s=1000"});
///   t.AddRow({"10%", "0.33", "0.17", "0.08"});
///   t.Print(std::cout);
class TextTable {
 public:
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Header rows render above a separator line. Multiple header rows are
  /// allowed (e.g. a distribution-group row above the column-name row).
  void AddHeader(std::vector<std::string> cells);
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double value, int precision = 2);

  /// Renders with single-space-padded, right-aligned numeric columns
  /// (first column left-aligned).
  void Print(std::ostream& os) const;

  /// Renders as comma-separated values (headers then rows), for plotting.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::vector<std::string>> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opaq

#endif  // OPAQ_UTIL_TABLE_H_
