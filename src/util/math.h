#ifndef OPAQ_UTIL_MATH_H_
#define OPAQ_UTIL_MATH_H_

#include <cstdint>

#include "util/check.h"

namespace opaq {

/// ceil(a / b) for non-negative integers. Requires b > 0.
constexpr uint64_t DivCeil(uint64_t a, uint64_t b) {
  return (a + b - 1) / b;
}

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Largest power of two <= x (x > 0).
constexpr uint64_t FloorPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p * 2 <= x && p * 2 != 0) p *= 2;
  return p;
}

/// floor(log2(x)) for x > 0.
constexpr int Log2Floor(uint64_t x) {
  int log = 0;
  while (x > 1) {
    x >>= 1;
    ++log;
  }
  return log;
}

/// Clamps v into [lo, hi].
template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace opaq

#endif  // OPAQ_UTIL_MATH_H_
