#ifndef OPAQ_UTIL_SHUTDOWN_H_
#define OPAQ_UTIL_SHUTDOWN_H_

#include "util/status.h"

namespace opaq {

/// Process-wide SIGINT/SIGTERM latch for the daemons (`opaq_noded`,
/// `opaq_queryd`), built on the classic self-pipe pattern: the signal
/// handler does nothing but write one byte to a non-blocking pipe (the only
/// async-signal-safe thing worth doing), and the main thread sleeps in
/// `poll` on the read end. That turns "Ctrl-C killed us mid-frame" into a
/// clean ordered shutdown — the server `Stop()`s, every connection thread
/// is joined, and the final counters actually get printed.
///
/// `Install` once near the top of main, then `Wait` instead of the old
/// `for (;;) sleep(...)` serving loop.
class ShutdownSignal {
 public:
  /// Creates the self-pipe and installs the SIGINT/SIGTERM handlers.
  /// Idempotent; fails only when the pipe or sigaction syscalls do.
  static Status Install();

  /// Blocks until a signal arrives or `duration_seconds` elapses
  /// (0 = no time limit, signal only). Returns true when a signal ended
  /// the wait, false on timeout. `Install` must have succeeded first.
  static bool Wait(double duration_seconds);

  /// Whether SIGINT/SIGTERM has been received since Install.
  static bool triggered();
};

}  // namespace opaq

#endif  // OPAQ_UTIL_SHUTDOWN_H_
