#ifndef OPAQ_UTIL_RANDOM_H_
#define OPAQ_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace opaq {

/// SplitMix64: tiny, fast 64-bit PRNG used for seeding and for cheap
/// independent streams. Reference: Steele, Lea, Flood (2014), as published in
/// the xoshiro project's seeding recommendations.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): the project's workhorse generator.
/// Deterministic across platforms, 2^256-1 period, passes BigCrush. All data
/// generation in src/data derives from this so experiments are reproducible
/// from a single seed.
class Xoshiro256 {
 public:
  /// Seeds the four state words from SplitMix64(seed), per the authors'
  /// recommendation (never all-zero).
  explicit Xoshiro256(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Jump ahead 2^128 steps: yields a non-overlapping stream, used to give
  /// each simulated processor an independent generator from one seed.
  void Jump();

 private:
  uint64_t state_[4];
};

/// Fisher–Yates shuffle driven by `rng`.
template <typename T>
void Shuffle(std::vector<T>& values, Xoshiro256& rng) {
  if (values.empty()) return;
  for (size_t i = values.size() - 1; i > 0; --i) {
    size_t j = static_cast<size_t>(rng.NextBounded(i + 1));
    std::swap(values[i], values[j]);
  }
}

}  // namespace opaq

#endif  // OPAQ_UTIL_RANDOM_H_
