#include "util/flags.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace opaq {

namespace {
// Flag keys are stored and looked up dash-style, so --run_size and
// --run-size name the same flag everywhere.
std::string NormalizeKey(std::string key) {
  std::replace(key.begin(), key.end(), '_', '-');
  return key;
}
}  // namespace

Result<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  if (argc > 0) flags.program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    std::string body(arg + 2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string key = body.substr(0, eq);
      if (key.empty()) {
        return Status::InvalidArgument(std::string("malformed flag: ") + arg);
      }
      flags.values_[NormalizeKey(key)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values_[NormalizeKey(body)] = argv[++i];
    } else {
      flags.values_[NormalizeKey(body)] = "true";
    }
  }
  return flags;
}

Result<int64_t> Flags::TryGetInt(const std::string& key,
                                 int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  // strtoll quietly "parses" an empty string to 0 (end == begin == '\0'),
  // so --port= would bind port 0; and it reports overflow only via errno,
  // which a bare end-pointer check never sees. Demand at least one digit
  // consumed, a clean errno, and no trailing junk.
  if (it->second.empty()) {
    return Status::InvalidArgument("flag --" + key +
                                   " has an empty value; expected an integer");
  }
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  int64_t value = std::strtoll(begin, &end, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument("flag --" + key + " value '" + it->second +
                                   "' overflows a 64-bit integer");
  }
  if (end == begin || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("flag --" + key +
                                   " expects an integer, got '" + it->second +
                                   "'");
  }
  return value;
}

Result<double> Flags::TryGetDouble(const std::string& key,
                                   double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  if (it->second.empty()) {
    return Status::InvalidArgument("flag --" + key +
                                   " has an empty value; expected a number");
  }
  const char* begin = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(begin, &end);
  // ERANGE covers overflow (+-HUGE_VAL) and underflow (denormal/0); only
  // overflow loses the magnitude entirely, so only overflow is rejected.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::InvalidArgument("flag --" + key + " value '" + it->second +
                                   "' overflows a double");
  }
  if (end == begin || end == nullptr || *end != '\0' || std::isnan(value)) {
    return Status::InvalidArgument("flag --" + key +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return value;
}

Result<bool> Flags::TryGetBool(const std::string& key,
                               bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("flag --" + key + " expects a boolean, got '" +
                                 v + "'");
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto value = TryGetInt(key, default_value);
  OPAQ_CHECK(value.ok()) << value.status().message();
  return *value;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto value = TryGetDouble(key, default_value);
  OPAQ_CHECK(value.ok()) << value.status().message();
  return *value;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto value = TryGetBool(key, default_value);
  OPAQ_CHECK(value.ok()) << value.status().message();
  return *value;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace opaq
