#include "util/flags.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace opaq {

namespace {
// Flag keys are stored and looked up dash-style, so --run_size and
// --run-size name the same flag everywhere.
std::string NormalizeKey(std::string key) {
  std::replace(key.begin(), key.end(), '_', '-');
  return key;
}
}  // namespace

Result<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  if (argc > 0) flags.program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    std::string body(arg + 2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string key = body.substr(0, eq);
      if (key.empty()) {
        return Status::InvalidArgument(std::string("malformed flag: ") + arg);
      }
      flags.values_[NormalizeKey(key)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values_[NormalizeKey(body)] = argv[++i];
    } else {
      flags.values_[NormalizeKey(body)] = "true";
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  OPAQ_CHECK(end != nullptr && *end == '\0')
      << "flag --" << key << " expects an integer, got '" << it->second << "'";
  return value;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  OPAQ_CHECK(end != nullptr && *end == '\0')
      << "flag --" << key << " expects a number, got '" << it->second << "'";
  return value;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  OPAQ_CHECK(false) << "flag --" << key << " expects a boolean, got '" << v
                    << "'";
  return default_value;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace opaq
