#ifndef OPAQ_UTIL_CHECK_H_
#define OPAQ_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace opaq {
namespace internal_check {

/// Accumulates the streamed failure message and aborts the process when
/// destroyed. Used only via the OPAQ_CHECK macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << " OPAQ_CHECK failed: " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message on the success path at zero cost.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_check
}  // namespace opaq

/// Dies with a message if `condition` is false. For programmer errors
/// (precondition violations), not for runtime failures — those use Status.
/// Extra context can be streamed: OPAQ_CHECK(x > 0) << "x was " << x;
/// (the stream temporary's destructor aborts at the end of the statement).
#define OPAQ_CHECK(condition)                                     \
  while (!(condition))                                            \
  ::opaq::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)

#define OPAQ_CHECK_OK(status_expr)                                       \
  do {                                                                   \
    const auto& opaq_check_status_ = (status_expr);                      \
    if (!opaq_check_status_.ok()) {                                      \
      ::opaq::internal_check::CheckFailureStream(#status_expr, __FILE__, \
                                                 __LINE__)               \
          << opaq_check_status_.ToString();                              \
    }                                                                    \
  } while (false)

#define OPAQ_CHECK_EQ(a, b) OPAQ_CHECK((a) == (b))
#define OPAQ_CHECK_NE(a, b) OPAQ_CHECK((a) != (b))
#define OPAQ_CHECK_LT(a, b) OPAQ_CHECK((a) < (b))
#define OPAQ_CHECK_LE(a, b) OPAQ_CHECK((a) <= (b))
#define OPAQ_CHECK_GT(a, b) OPAQ_CHECK((a) > (b))
#define OPAQ_CHECK_GE(a, b) OPAQ_CHECK((a) >= (b))

#ifndef NDEBUG
#define OPAQ_DCHECK(condition) OPAQ_CHECK(condition)
#else
#define OPAQ_DCHECK(condition) \
  while (false) ::opaq::internal_check::NullStream() << !(condition)
#endif

#endif  // OPAQ_UTIL_CHECK_H_
