#ifndef OPAQ_NET_NODE_COMPUTE_H_
#define OPAQ_NET_NODE_COMPUTE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/exact.h"
#include "core/opaq.h"
#include "core/opaq_config.h"
#include "net/wire_compute.h"
#include "util/status.h"

namespace opaq {

/// Node-side halves of the v2 compute ops: given one exported dataset's
/// `RunProvider`, run the requested phase and produce the complete response
/// payload. These are free templates over the provider seam — the same
/// plain/striped/async readers local mode uses — so a node-side sample list
/// is byte-identical to client-side sketching of the same data, and the
/// whole compute layer stays independent of `NodeServer`'s type-erased
/// export plumbing (which merely binds these into per-dataset hooks).
///
/// Requests arrive off the network, so every field is validated with a
/// `Status` — never a CHECK — and the caller turns failures into `kError`
/// frames that keep the connection alive.

/// Translates a `kSampleRuns` request into the `OpaqConfig` it describes,
/// rejecting unknown enum tags and configs the core would refuse.
/// `max_run_bytes` bounds the node-side run buffer (a remote peer must not
/// be able to make the node allocate arbitrarily much).
template <typename K>
Result<OpaqConfig> SampleRunsConfig(const WireSampleRunsRequest& request,
                                    uint64_t max_run_bytes) {
  if (request.select_algorithm >
      static_cast<uint32_t>(SelectAlgorithm::kIntroSelect)) {
    return Status::InvalidArgument(
        "SAMPLE_RUNS carries unknown select_algorithm tag " +
        std::to_string(request.select_algorithm));
  }
  if (request.io_mode > static_cast<uint32_t>(IoMode::kAsync)) {
    return Status::InvalidArgument("SAMPLE_RUNS carries unknown io_mode tag " +
                                   std::to_string(request.io_mode));
  }
  if (request.run_size > max_run_bytes / sizeof(K)) {
    return Status::ResourceExhausted(
        "SAMPLE_RUNS run_size of " + std::to_string(request.run_size) +
        " elements exceeds this node's per-run memory bound");
  }
  OpaqConfig config;
  config.run_size = request.run_size;
  config.samples_per_run = request.samples_per_run;
  config.seed = request.seed;
  config.select_algorithm =
      static_cast<SelectAlgorithm>(request.select_algorithm);
  config.io_mode = static_cast<IoMode>(request.io_mode);
  config.prefetch_depth = request.prefetch_depth;
  OPAQ_RETURN_IF_ERROR(config.Validate());
  return config;
}

/// `kSampleRuns`: runs the paper's one-pass sample phase over the dataset's
/// runs — the exact computation `OpaqSketch::Consume` performs locally —
/// and returns the serialized sample list (O(s) bytes instead of the O(n)
/// the v1 range protocol would ship).
template <typename K>
Result<std::vector<uint8_t>> NodeSampleRuns(
    const RunProvider<K>& provider, const WireSampleRunsRequest& request,
    uint64_t max_run_bytes) {
  OPAQ_ASSIGN_OR_RETURN(OpaqConfig config,
                        SampleRunsConfig<K>(request, max_run_bytes));
  OpaqSketch<K> sketch(config);
  OPAQ_RETURN_IF_ERROR(sketch.Consume(provider));
  return EncodeSampleListPayload(sketch.FinalizeSampleList());
}

/// `kExactPass`: one §4 filter scan over the dataset's runs — the same
/// `internal_exact::AccumulateBrackets` the local second pass uses — and
/// returns per-bracket below-counts plus kept candidates for the
/// coordinator to merge.
template <typename K>
Result<std::vector<uint8_t>> NodeExactPass(const RunProvider<K>& provider,
                                           const WireExactPassRequest& request,
                                           const uint8_t* bracket_bytes,
                                           uint64_t max_run_bytes) {
  if (request.memory_budget == 0) {
    return Status::InvalidArgument(
        "EXACT_PASS memory_budget of 0 would keep nothing");
  }
  if (request.io_mode > static_cast<uint32_t>(IoMode::kAsync)) {
    return Status::InvalidArgument("EXACT_PASS carries unknown io_mode tag " +
                                   std::to_string(request.io_mode));
  }
  if (request.run_size == 0 || request.run_size > max_run_bytes / sizeof(K)) {
    return Status::ResourceExhausted(
        "EXACT_PASS run_size of " + std::to_string(request.run_size) +
        " elements exceeds this node's per-run memory bound");
  }
  OPAQ_ASSIGN_OR_RETURN(
      std::vector<QuantileEstimate<K>> estimates,
      DecodeExactBrackets<K>(bracket_bytes, request.num_brackets));
  ReadOptions options;
  options.run_size = request.run_size;
  options.io_mode = static_cast<IoMode>(request.io_mode);
  options.prefetch_depth =
      request.prefetch_depth == 0 ? 1 : request.prefetch_depth;
  if (options.prefetch_depth > kMaxPrefetchDepth) {
    return Status::InvalidArgument("EXACT_PASS prefetch_depth of " +
                                   std::to_string(request.prefetch_depth) +
                                   " exceeds the supported maximum");
  }
  internal_exact::BracketAccumulator<K> acc(estimates.size());
  OPAQ_RETURN_IF_ERROR(internal_exact::AccumulateBrackets(
      provider, estimates, options, request.memory_budget, &acc));
  WireExactScan<K> scan;
  scan.below = std::move(acc.below);
  scan.kept = std::move(acc.kept);
  return EncodeExactScanPayload(scan);
}

}  // namespace opaq

#endif  // OPAQ_NET_NODE_COMPUTE_H_
