#include "net/frame_io.h"

#include <cstring>
#include <string>

#include "telemetry/trace.h"

namespace opaq {
namespace {

Result<WireFrameHeader> ReceiveHeader(TcpConnection& conn) {
  WireFrameHeader header;
  OPAQ_RETURN_IF_ERROR(conn.ReadFull(&header, sizeof(header)));
  OPAQ_RETURN_IF_ERROR(ValidateFrameHeader(header));
  return header;
}

Status ProtocolViolation(const WireFrameHeader& header, WireOp expected) {
  return Status::IoError(std::string("protocol violation: expected a ") +
                         WireOpName(static_cast<uint16_t>(expected)) +
                         " frame, node sent " + WireOpName(header.op));
}

}  // namespace

Status SendFrame(TcpConnection& conn, WireOp op, const void* payload,
                 size_t len) {
  std::vector<uint8_t> frame = EncodeFrame(op, payload, len);
  TraceSpan span(TraceStage::kWireSend);
  return conn.WriteFull(frame.data(), frame.size());
}

Result<WireFrame> ReceiveFrame(TcpConnection& conn) {
  OPAQ_ASSIGN_OR_RETURN(WireFrameHeader header, ReceiveHeader(conn));
  WireFrame frame;
  frame.op = header.op;
  frame.payload.resize(header.payload_len);
  if (header.payload_len != 0) {
    TraceSpan span(TraceStage::kWireRecv);
    OPAQ_RETURN_IF_ERROR(
        conn.ReadFull(frame.payload.data(), frame.payload.size()));
  }
  if (Crc32(frame.payload.data(), frame.payload.size()) !=
      header.payload_crc) {
    return Status::IoError(std::string("payload CRC mismatch on a ") +
                           WireOpName(header.op) + " frame from " +
                           conn.peer());
  }
  return frame;
}

Result<WireFrame> ReceiveExpected(TcpConnection& conn, WireOp expected) {
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame, ReceiveFrame(conn));
  if (frame.op == static_cast<uint16_t>(WireOp::kError)) {
    return DecodeErrorPayload(frame.payload.data(), frame.payload.size());
  }
  if (frame.op != static_cast<uint16_t>(expected)) {
    WireFrameHeader header;
    header.op = frame.op;
    return ProtocolViolation(header, expected);
  }
  return frame;
}

Status ReceiveRangeData(TcpConnection& conn, void* out,
                        size_t expected_bytes) {
  OPAQ_ASSIGN_OR_RETURN(WireFrameHeader header, ReceiveHeader(conn));
  if (header.op == static_cast<uint16_t>(WireOp::kError)) {
    std::vector<uint8_t> payload(header.payload_len);
    if (!payload.empty()) {
      OPAQ_RETURN_IF_ERROR(conn.ReadFull(payload.data(), payload.size()));
    }
    if (Crc32(payload.data(), payload.size()) != header.payload_crc) {
      return Status::IoError("payload CRC mismatch on an ERROR frame from " +
                             conn.peer());
    }
    return DecodeErrorPayload(payload.data(), payload.size());
  }
  if (header.op != static_cast<uint16_t>(WireOp::kRangeData)) {
    return ProtocolViolation(header, WireOp::kRangeData);
  }
  if (header.payload_len != expected_bytes) {
    return Status::IoError(
        "RANGE_DATA length mismatch: requested " +
        std::to_string(expected_bytes) + " bytes, node sent " +
        std::to_string(header.payload_len));
  }
  if (expected_bytes != 0) {
    OPAQ_RETURN_IF_ERROR(conn.ReadFull(out, expected_bytes));
  }
  if (Crc32(out, expected_bytes) != header.payload_crc) {
    return Status::IoError("payload CRC mismatch on a RANGE_DATA frame from " +
                           conn.peer());
  }
  return Status::OK();
}

}  // namespace opaq
