#ifndef OPAQ_NET_QUERY_SERVER_H_
#define OPAQ_NET_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/data_file.h"
#include "net/frame_server.h"
#include "net/wire_query.h"
#include "opaq/query.h"
#include "telemetry/trace.h"
#include "util/status.h"

namespace opaq {

struct QueryServerOptions {
  /// IPv4 literal to bind. The protocol is unauthenticated, so the default
  /// stays on loopback; bind 0.0.0.0 only on trusted networks.
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port (see `port()` after `Start`).
  uint16_t port = 0;
  /// Artificial delay before every response frame (latency injection for
  /// benches). 0 = off.
  double response_delay_seconds = 0;
  /// Newest protocol version this server answers; see FrameServerOptions.
  uint16_t max_wire_version = kMaxWireVersion;
  /// Batching window for exact-flagged requests: how long the pass leader
  /// waits for stragglers before snapshotting the admission queue and
  /// running the shared §4 second pass. 0 (default) = run immediately;
  /// queued concurrent arrivals still coalesce into one pass. Tests raise
  /// it to make the coalescing deterministic.
  double exact_admission_delay_seconds = 0;
  /// Registry this server publishes into; see FrameServerOptions::metrics.
  MetricsRegistry* metrics = nullptr;
};

/// `opaq_queryd`'s engine: sketch once, serve millions. Each named session
/// is built ONCE at registration (the paper's one pass), then every
/// `kQuery` batch is answered off the in-memory sample list — O(1) per
/// bracket, no data I/O — so a single daemon turns one sketching pass into
/// an arbitrary stream of certified quantile answers.
///
/// Exact-flagged requests are admission-controlled per session: concurrent
/// arrivals queue, and ONE leader folds the whole queue into a single
/// shared §4 second pass over the data (the paper's "additional quantiles
/// cost one extra pass", lifted across connections). Per-request answers
/// are independent, so coalescing is invisible in the bytes — the loadgen's
/// conformance gate relies on that.
///
/// `Refresh` rebuilds a session via its registered builder (outside every
/// lock — queries keep being answered from the old epoch) and atomically
/// swaps the new one in; in-flight batches finish against the snapshot
/// they started with. The epoch counter travels in `WireSessionInfo`.
class QueryServer : public FrameServer {
 public:
  explicit QueryServer(QueryServerOptions options = QueryServerOptions());
  ~QueryServer() override;

  /// Registers a session under `name` (before `Start` only) and builds
  /// epoch 1 by running `builder` now — a daemon that cannot build its
  /// sessions should fail at startup, not at first query. The builder is
  /// kept for `Refresh`.
  ///
  /// An optional `refresher` makes refreshes INCREMENTAL: given the
  /// serving session, it returns the next epoch's session (typically by
  /// sketching only newly ingested data and `Absorb`ing it — `opaq_queryd
  /// --watch` live sessions do). `Refresh` prefers it and falls back to
  /// the full `builder` when it fails, so a refresher may simply error on
  /// conditions it cannot handle (e.g. the dataset shrank). Epoch 1 always
  /// comes from the builder.
  template <typename K>
  Status Serve(const std::string& name,
               std::function<Result<QuerySession<K>>()> builder,
               std::function<Result<QuerySession<K>>(const QuerySession<K>&)>
                   refresher = nullptr) {
    OPAQ_CHECK(!started()) << "Serve after Start: the session map is frozen "
                              "once connection threads may read it";
    OPAQ_CHECK(!name.empty()) << "served session needs a name";
    OPAQ_CHECK(builder != nullptr);
    auto session = std::make_unique<TypedSession<K>>();
    session->builder = std::move(builder);
    session->refresher = std::move(refresher);
    session->exact_admission_delay_seconds =
        options_.exact_admission_delay_seconds;
    session->exact_passes = &exact_passes_;
    OPAQ_RETURN_IF_ERROR(session->Rebuild());
    sessions_[name] = std::move(session);
    return Status::OK();
  }

  /// Rebuilds `name`'s session via its builder and swaps it in (epoch + 1).
  /// Safe while serving: the build runs outside every lock, queries keep
  /// answering from the old snapshot, and a failed build leaves the old
  /// epoch serving untouched.
  Status Refresh(const std::string& name);

  /// What `kOpenSession` would disclose about `name` — for tools and tests.
  Result<WireSessionInfo> SessionInfo(const std::string& name) const;

  /// §4 second passes attempted so far (across all sessions). N
  /// concurrent exact-flagged batches coalescing into one pass leave this
  /// at 1 — the coalescing tests' observable. When a combined pass fails
  /// and the round falls back to per-waiter queries, each retry counts
  /// too, so the counter tracks physical passes on every path.
  uint64_t exact_passes() const {
    return exact_passes_.load(std::memory_order_relaxed);
  }

 protected:
  Status ValidateStart() override;
  bool HandleFrame(TcpConnection* conn, const WireFrame& frame) override;
  /// Base `net.*` counters plus `query.exact_passes` and `query.sessions`.
  void PublishMetrics(MetricsRegistry* registry) override;

 private:
  /// Type-erased session slot: the server routes untyped payload bytes to
  /// it; the typed layer underneath decodes, queries, and encodes.
  struct SessionBase {
    virtual ~SessionBase() = default;
    virtual WireSessionInfo Info() const = 0;
    /// Decodes the request records of a validated `kQuery` payload,
    /// answers them, and returns the encoded `kQueryResult` payload.
    virtual Result<std::vector<uint8_t>> Answer(
        const uint8_t* payload, size_t len,
        const WireQueryHeader& header) = 0;
    virtual Status Rebuild() = 0;
  };

  template <typename K>
  struct TypedSession : SessionBase {
    /// One admitted exact-flagged batch waiting for the shared pass.
    struct Waiter {
      std::vector<QueryRequest<K>> requests;
      Result<QueryResults<K>> result = Status::Internal("pass never ran");
      bool done = false;
    };

    std::function<Result<QuerySession<K>>()> builder;
    std::function<Result<QuerySession<K>>(const QuerySession<K>&)> refresher;
    double exact_admission_delay_seconds = 0;
    std::atomic<uint64_t>* exact_passes = nullptr;

    /// Guards the served snapshot + epoch; held only to copy/swap the
    /// shared_ptr, never across a build or a query.
    mutable std::mutex swap_mutex;
    std::shared_ptr<const QuerySession<K>> session;
    uint64_t epoch = 0;

    /// The exact-pass admission queue (leader/waiter).
    std::mutex exact_mutex;
    std::condition_variable exact_cv;
    std::deque<Waiter*> exact_queue;
    bool pass_running = false;

    std::shared_ptr<const QuerySession<K>> Snapshot() const {
      std::lock_guard<std::mutex> lock(swap_mutex);
      return session;
    }

    Status Rebuild() override {
      // Incremental path first: hand the refresher the serving snapshot
      // (outside every lock — queries keep answering from it). Any
      // refresher failure falls back to the full builder, so a refresher
      // can punt on cases it cannot absorb.
      std::shared_ptr<const QuerySession<K>> current;
      {
        std::lock_guard<std::mutex> lock(swap_mutex);
        current = session;
      }
      Result<QuerySession<K>> built = Status::FailedPrecondition("no epoch");
      if (refresher && current != nullptr) {
        built = refresher(*current);
      }
      if (!built.ok()) built = builder();
      if (!built.ok()) return built.status();
      auto fresh = std::make_shared<const QuerySession<K>>(
          std::move(built).value());
      std::lock_guard<std::mutex> lock(swap_mutex);
      session = std::move(fresh);
      ++epoch;
      return Status::OK();
    }

    WireSessionInfo Info() const override {
      WireSessionInfo info;
      std::lock_guard<std::mutex> lock(swap_mutex);
      info.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
      info.element_size = sizeof(K);
      info.total_elements = session->total_elements();
      info.max_rank_error = session->max_rank_error();
      info.num_samples = session->sample_list().samples().size();
      info.epoch = epoch;
      info.exact_enabled = session->sources().empty() ? 0 : 1;
      return info;
    }

    Result<std::vector<uint8_t>> Answer(
        const uint8_t* payload, size_t len,
        const WireQueryHeader& header) override {
      auto requests = DecodeQueryRequests<K>(payload, len, header);
      if (!requests.ok()) return requests.status();
      bool any_exact = false;
      for (const QueryRequest<K>& request : *requests) {
        any_exact |= request.exact;
      }
      Result<QueryResults<K>> results =
          any_exact ? QueryCoalesced(std::move(*requests))
                    : Snapshot()->Query(
                          {requests->data(), requests->size()});
      if (!results.ok()) return results.status();
      return EncodeQueryResultsPayload(*results);
    }

    /// The admission-controlled path: enqueue, and either become the pass
    /// leader (first in) or wait for a leader to answer. The leader drains
    /// the queue in rounds — every batch queued by the time a round
    /// snapshots shares that round's single §4 pass.
    Result<QueryResults<K>> QueryCoalesced(
        std::vector<QueryRequest<K>> requests) {
      Waiter self;
      self.requests = std::move(requests);
      std::unique_lock<std::mutex> lock(exact_mutex);
      exact_queue.push_back(&self);
      if (pass_running) {
        exact_cv.wait(lock, [&self] { return self.done; });
        return std::move(self.result);
      }
      pass_running = true;
      while (!exact_queue.empty()) {
        if (exact_admission_delay_seconds > 0) {
          // Batching window: let stragglers join this round.
          lock.unlock();
          std::this_thread::sleep_for(std::chrono::duration<double>(
              exact_admission_delay_seconds));
          lock.lock();
        }
        std::vector<Waiter*> round(exact_queue.begin(), exact_queue.end());
        exact_queue.clear();
        lock.unlock();
        std::vector<Result<QueryResults<K>>> answers = RunRound(round);
        lock.lock();
        // Publish under exact_mutex: waiters re-evaluate their predicate
        // (self.done) under this mutex, so writing result/done anywhere
        // else would race with a spurious or previous-round wakeup.
        for (size_t i = 0; i < round.size(); ++i) {
          round[i]->result = std::move(answers[i]);
          round[i]->done = true;
        }
        exact_cv.notify_all();
      }
      pass_running = false;
      return std::move(self.result);
    }

    /// Runs one shared pass for every batch of `round` and returns one
    /// result per waiter, in round order. Requests are answered
    /// independently by QuerySession, so concatenating batches, querying
    /// once, and slicing the answers back apart is byte-identical to
    /// querying each batch alone. Runs with exact_mutex RELEASED — it
    /// must not touch waiter result/done fields; the leader publishes
    /// the returned results under the mutex.
    std::vector<Result<QueryResults<K>>> RunRound(
        const std::vector<Waiter*>& round) {
      std::shared_ptr<const QuerySession<K>> snapshot = Snapshot();
      std::vector<QueryRequest<K>> combined;
      for (const Waiter* waiter : round) {
        combined.insert(combined.end(), waiter->requests.begin(),
                        waiter->requests.end());
      }
      std::vector<Result<QueryResults<K>>> answers;
      answers.reserve(round.size());
      exact_passes->fetch_add(1, std::memory_order_relaxed);
      TraceSpan pass_span(TraceStage::kExactPass);
      auto batch = snapshot->Query({combined.data(), combined.size()});
      if (batch.ok()) {
        size_t offset = 0;
        for (const Waiter* waiter : round) {
          QueryResults<K> sliced;
          sliced.total_elements = batch->total_elements;
          sliced.max_rank_error = batch->max_rank_error;
          sliced.results.assign(
              std::make_move_iterator(batch->results.begin() + offset),
              std::make_move_iterator(batch->results.begin() + offset +
                                      waiter->requests.size()));
          offset += waiter->requests.size();
          answers.push_back(std::move(sliced));
        }
        return answers;
      }
      // One batch's bad request (or a failing source) poisoned the
      // combined pass; isolate the guilty by answering each batch alone,
      // so innocent concurrent clients get their answers, just slower.
      // Each retry is its own §4 pass, so each bumps the counter.
      for (const Waiter* waiter : round) {
        exact_passes->fetch_add(1, std::memory_order_relaxed);
        answers.push_back(snapshot->Query(
            {waiter->requests.data(), waiter->requests.size()}));
      }
      return answers;
    }
  };

  QueryServerOptions options_;
  std::map<std::string, std::unique_ptr<SessionBase>> sessions_;
  std::atomic<uint64_t> exact_passes_{0};
};

}  // namespace opaq

#endif  // OPAQ_NET_QUERY_SERVER_H_
