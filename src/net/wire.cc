#include "net/wire.h"

#include <cstring>

#include "util/crc32.h"

namespace opaq {

const char* WireOpName(uint16_t op) {
  switch (static_cast<WireOp>(op)) {
    case WireOp::kPing: return "PING";
    case WireOp::kPong: return "PONG";
    case WireOp::kOpenDataset: return "OPEN_DATASET";
    case WireOp::kDatasetInfo: return "DATASET_INFO";
    case WireOp::kReadRange: return "READ_RANGE";
    case WireOp::kRangeData: return "RANGE_DATA";
    case WireOp::kError: return "ERROR";
    case WireOp::kHello: return "HELLO";
    case WireOp::kHelloAck: return "HELLO_ACK";
    case WireOp::kSampleRuns: return "SAMPLE_RUNS";
    case WireOp::kSampleListData: return "SAMPLE_LIST_DATA";
    case WireOp::kExactPass: return "EXACT_PASS";
    case WireOp::kExactPassData: return "EXACT_PASS_DATA";
    case WireOp::kOpenSession: return "OPEN_SESSION";
    case WireOp::kSessionInfo: return "SESSION_INFO";
    case WireOp::kQuery: return "QUERY";
    case WireOp::kQueryResult: return "QUERY_RESULT";
    case WireOp::kOpenExtents: return "OPEN_EXTENTS";
    case WireOp::kExtentInfo: return "EXTENT_INFO";
    case WireOp::kReadExtents: return "READ_EXTENTS";
    case WireOp::kExtentData: return "EXTENT_DATA";
    case WireOp::kAppend: return "APPEND";
    case WireOp::kAppendAck: return "APPEND_ACK";
    case WireOp::kStats: return "STATS";
    case WireOp::kStatsData: return "STATS_DATA";
  }
  return "?";
}

uint16_t WireOpVersion(WireOp op) {
  // Explicit per-op mapping: the version an op stamps is fixed at the
  // protocol revision that introduced it, so bumping kMaxWireVersion never
  // re-stamps older frames (goldens wire_v1.bin / wire_v2.bin stay
  // byte-stable).
  switch (op) {
    case WireOp::kPing:
    case WireOp::kPong:
    case WireOp::kOpenDataset:
    case WireOp::kDatasetInfo:
    case WireOp::kReadRange:
    case WireOp::kRangeData:
    case WireOp::kError:
      return kWireVersion;
    case WireOp::kHello:
    case WireOp::kHelloAck:
    case WireOp::kSampleRuns:
    case WireOp::kSampleListData:
    case WireOp::kExactPass:
    case WireOp::kExactPassData:
      return kComputeWireVersion;
    case WireOp::kOpenSession:
    case WireOp::kSessionInfo:
    case WireOp::kQuery:
    case WireOp::kQueryResult:
      return kQueryWireVersion;
    case WireOp::kOpenExtents:
    case WireOp::kExtentInfo:
    case WireOp::kReadExtents:
    case WireOp::kExtentData:
      return kExtentWireVersion;
    case WireOp::kAppend:
    case WireOp::kAppendAck:
      return kAppendWireVersion;
    case WireOp::kStats:
    case WireOp::kStatsData:
      return kStatsWireVersion;
  }
  return kMaxWireVersion;
}

std::vector<uint8_t> EncodeFrame(WireOp op, const void* payload, size_t len) {
  OPAQ_CHECK_LE(len, static_cast<size_t>(kMaxWirePayload));
  WireFrameHeader header;
  header.version = WireOpVersion(op);
  header.op = static_cast<uint16_t>(op);
  header.payload_len = static_cast<uint32_t>(len);
  header.payload_crc = Crc32(payload, len);
  std::vector<uint8_t> out(sizeof(header) + len);
  std::memcpy(out.data(), &header, sizeof(header));
  if (len != 0) std::memcpy(out.data() + sizeof(header), payload, len);
  return out;
}

std::vector<uint8_t> EncodeFrame(WireOp op,
                                 const std::vector<uint8_t>& payload) {
  return EncodeFrame(op, payload.data(), payload.size());
}

std::vector<uint8_t> EncodeErrorFrame(const Status& status) {
  std::vector<uint8_t> payload(sizeof(uint32_t) + status.message().size());
  const uint32_t code = static_cast<uint32_t>(status.code());
  std::memcpy(payload.data(), &code, sizeof(code));
  std::memcpy(payload.data() + sizeof(code), status.message().data(),
              status.message().size());
  return EncodeFrame(WireOp::kError, payload);
}

Status DecodeErrorPayload(const uint8_t* payload, size_t len) {
  if (len < sizeof(uint32_t)) {
    return Status::IoError("error frame payload shorter than a status code");
  }
  uint32_t code = 0;
  std::memcpy(&code, payload, sizeof(code));
  if (code == static_cast<uint32_t>(StatusCode::kOk) ||
      code > static_cast<uint32_t>(StatusCode::kUnimplemented)) {
    return Status::IoError("error frame carries an invalid status code " +
                           std::to_string(code));
  }
  std::string message(reinterpret_cast<const char*>(payload) + sizeof(code),
                      len - sizeof(code));
  return Status(static_cast<StatusCode>(code), std::move(message));
}

Status ValidateFrameHeader(const WireFrameHeader& header) {
  if (header.magic != WireFrameHeader::kMagic) {
    return Status::IoError("bad frame magic: not OPAQ node traffic");
  }
  if (header.version < kWireVersion || header.version > kMaxWireVersion) {
    return Status::IoError("unsupported wire protocol version " +
                           std::to_string(header.version) +
                           " (this build speaks " +
                           std::to_string(kWireVersion) + ".." +
                           std::to_string(kMaxWireVersion) + ")");
  }
  if (header.payload_len > kMaxWirePayload) {
    return Status::IoError("frame payload of " +
                           std::to_string(header.payload_len) +
                           " bytes exceeds the protocol cap");
  }
  return Status::OK();
}

Result<WireFrame> DecodeFrame(const uint8_t* data, size_t size,
                              size_t* consumed) {
  if (size < sizeof(WireFrameHeader)) {
    return Status::IoError("truncated frame: " + std::to_string(size) +
                           " bytes is shorter than a frame header");
  }
  WireFrameHeader header;
  std::memcpy(&header, data, sizeof(header));
  OPAQ_RETURN_IF_ERROR(ValidateFrameHeader(header));
  if (size - sizeof(header) < header.payload_len) {
    return Status::IoError(
        "truncated frame: header promises " +
        std::to_string(header.payload_len) + " payload bytes, only " +
        std::to_string(size - sizeof(header)) + " present");
  }
  const uint8_t* payload = data + sizeof(header);
  if (Crc32(payload, header.payload_len) != header.payload_crc) {
    return Status::IoError(std::string("payload CRC mismatch on a ") +
                           WireOpName(header.op) + " frame");
  }
  WireFrame frame;
  frame.op = header.op;
  frame.payload.assign(payload, payload + header.payload_len);
  if (consumed != nullptr) {
    *consumed = sizeof(header) + header.payload_len;
  }
  return frame;
}

}  // namespace opaq
