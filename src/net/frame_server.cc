#include "net/frame_server.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <utility>

#include "net/wire_stats.h"
#include "telemetry/stats_format.h"
#include "telemetry/trace.h"
#include "util/shutdown.h"

namespace opaq {

FrameServer::FrameServer(FrameServerOptions options)
    : options_(std::move(options)) {}

FrameServer::~FrameServer() {
  // By contract the derived destructor already called Stop(); this repeat is
  // an idempotent no-op that still covers a FrameServer that never Started.
  Stop();
}

bool FrameServer::SendCounted(TcpConnection* conn, WireOp op,
                              const void* payload, size_t len) {
  std::vector<uint8_t> frame = EncodeFrame(op, payload, len);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  TraceSpan span(TraceStage::kWireSend);
  return conn->WriteFull(frame.data(), frame.size()).ok();
}

bool FrameServer::SendErrorCounted(TcpConnection* conn, const Status& status) {
  std::vector<uint8_t> frame = EncodeErrorFrame(status);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  TraceSpan span(TraceStage::kWireSend);
  return conn->WriteFull(frame.data(), frame.size()).ok();
}

MetricsRegistry* FrameServer::metrics_registry() const {
  return options_.metrics != nullptr ? options_.metrics
                                     : &MetricsRegistry::Global();
}

void FrameServer::PublishMetrics(MetricsRegistry* registry) {
  registry->GetCounter("net.connections_accepted")
      ->Set(connections_accepted());
  registry->GetCounter("net.requests_served")->Set(requests_served());
  registry->GetCounter("net.bytes_sent")->Set(bytes_sent());
  registry->GetCounter("net.bytes_received")->Set(bytes_received());
  // Flight-recorder per-stage aggregates ride along, so a stats snapshot
  // carries the trace layer's totals without shipping the ring itself.
  const FlightRecorder& recorder = FlightRecorder::Global();
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    const TraceStage stage = static_cast<TraceStage>(i);
    const std::string prefix = std::string("trace.") + TraceStageName(stage);
    registry->GetCounter(prefix + ".count")->Set(recorder.StageCount(stage));
    registry->GetCounter(prefix + ".ns")->Set(recorder.StageTotalNs(stage));
  }
}

MetricsSnapshot FrameServer::StatsSnapshot() {
  MetricsRegistry* registry = metrics_registry();
  PublishMetrics(registry);
  return registry->Snapshot();
}

Status FrameServer::Start() {
  OPAQ_CHECK(!started_) << "FrameServer::Start called twice";
  if (options_.max_wire_version < kWireVersion ||
      options_.max_wire_version > kMaxWireVersion) {
    return Status::InvalidArgument(
        "max_wire_version of " + std::to_string(options_.max_wire_version) +
        " is outside this build's supported range [" +
        std::to_string(kWireVersion) + ", " +
        std::to_string(kMaxWireVersion) + "]");
  }
  OPAQ_RETURN_IF_ERROR(ValidateStart());
  auto listener = TcpListener::Bind(options_.bind_address, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FrameServer::Stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    listener_.ShutdownNow();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // The accept loop is down, so connections_ gains no new entries; shake
  // every handler out of its blocking read, then join.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->conn.ShutdownNow();
  }
  for (;;) {
    std::unique_ptr<Connection> connection;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      connection = std::move(connections_.back());
      connections_.pop_back();
    }
    if (connection->thread.joinable()) connection->thread.join();
  }
}

std::string FrameServer::address() const {
  return options_.bind_address + ":" + std::to_string(port_);
}

void FrameServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void FrameServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinishedConnections();
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient accept failure (fd pressure, aborted handshake): keep
      // serving, but do not spin hot.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->conn = std::move(accepted).value();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] {
      Serve(&raw->conn);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void FrameServer::Serve(TcpConnection* conn) {
  for (;;) {
    WireFrameHeader header;
    if (!conn->ReadFull(&header, sizeof(header)).ok()) {
      return;  // peer went away (or Stop shut us down): normal end of stream
    }
    bytes_received_.fetch_add(sizeof(header), std::memory_order_relaxed);
    Status valid = ValidateFrameHeader(header);
    if (valid.ok() && header.version > options_.max_wire_version) {
      // This build could parse the frame, but the operator capped the server
      // below it — reject exactly as an old build would, so version-capped
      // servers are faithful stand-ins for real old nodes (and newer clients
      // read the "version" error as "fall back").
      valid = Status::IoError(
          "unsupported wire protocol version " +
          std::to_string(header.version) + " (this node speaks at most " +
          std::to_string(options_.max_wire_version) + ")");
    }
    if (!valid.ok()) {
      // The stream cannot be trusted past a malformed header (we may be
      // mid-garbage); answer once and hang up.
      SendErrorCounted(conn, valid);
      conn->ShutdownNow();
      return;
    }
    WireFrame frame;
    frame.op = header.op;
    frame.payload.resize(header.payload_len);
    if (header.payload_len != 0) {
      TraceSpan span(TraceStage::kWireRecv);
      if (!conn->ReadFull(frame.payload.data(), frame.payload.size()).ok()) {
        return;  // truncated mid-frame: nothing sane left to answer
      }
    }
    bytes_received_.fetch_add(header.payload_len, std::memory_order_relaxed);
    if (Crc32(frame.payload.data(), frame.payload.size()) !=
        header.payload_crc) {
      SendErrorCounted(conn, Status::IoError(
                                 std::string("payload CRC mismatch on a ") +
                                 WireOpName(header.op) + " request"));
      conn->ShutdownNow();
      return;
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (options_.response_delay_seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.response_delay_seconds));
    }
    if (static_cast<WireOp>(frame.op) == WireOp::kStats) {
      // Served here, in the shared transport loop, so EVERY daemon built on
      // FrameServer answers stats — derived HandleFrames never see the op.
      std::vector<uint8_t> payload = EncodeStatsPayload(StatsSnapshot());
      if (!SendCounted(conn, WireOp::kStatsData, payload.data(),
                       payload.size())) {
        conn->ShutdownNow();
        return;
      }
      continue;
    }
    if (!HandleFrame(conn, frame)) {
      conn->ShutdownNow();
      return;
    }
  }
}

bool ServeUntilShutdown(FrameServer* server, double duration_seconds,
                        double stats_interval_seconds, std::ostream& os) {
  if (stats_interval_seconds <= 0) {
    return ShutdownSignal::Wait(duration_seconds);
  }
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    double chunk = stats_interval_seconds;
    if (duration_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double remaining = duration_seconds - elapsed;
      if (remaining <= 0) return false;
      chunk = std::min(chunk, remaining);
    }
    // chunk > 0 always holds here; Wait(0) would mean "no time limit".
    if (ShutdownSignal::Wait(chunk)) return true;
    os << "stats:\n" << FormatStatsText(server->StatsSnapshot());
    os.flush();
  }
}

}  // namespace opaq
