#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace opaq {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// The loopback/data-node traffic is many small frames; Nagle would add
/// 40ms-class delays to the pipelined request stream, so turn it off.
void DisableNagle(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ------------------------------------------------------- TcpConnection ----

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    peer_ = std::move(other.peer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             uint16_t port,
                                             double receive_timeout_seconds) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                               &results);
  if (rc != 0) {
    return Status::IoError("cannot resolve host '" + host +
                           "': " + ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for host '" + host + "'");
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect to " + host + ":" + port_text);
      ::close(fd);
      continue;
    }
    DisableNagle(fd);
    if (receive_timeout_seconds > 0) {
      struct timeval tv;
      tv.tv_sec = static_cast<time_t>(receive_timeout_seconds);
      tv.tv_usec = static_cast<suseconds_t>(
          (receive_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    ::freeaddrinfo(results);
    return TcpConnection(fd, host + ":" + port_text);
  }
  ::freeaddrinfo(results);
  return last;
}

Status TcpConnection::ReadFull(void* buffer, size_t length) {
  if (fd_ < 0) return Status::IoError("read on a closed connection");
  uint8_t* out = static_cast<uint8_t*>(buffer);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::recv(fd_, out + done, length - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::IoError("connection to " + peer_ + " closed after " +
                             std::to_string(done) + " of " +
                             std::to_string(length) + " bytes");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError("receive from " + peer_ +
                             " timed out (node unresponsive)");
    }
    return Errno("recv from " + peer_);
  }
  return Status::OK();
}

Status TcpConnection::WriteFull(const void* buffer, size_t length) {
  if (fd_ < 0) return Status::IoError("write on a closed connection");
  const uint8_t* in = static_cast<const uint8_t*>(buffer);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::send(fd_, in + done, length - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("send to " + peer_);
  }
  return Status::OK();
}

void TcpConnection::ShutdownNow() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// --------------------------------------------------------- TcpListener ----

TcpListener::~TcpListener() { Close(); }

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(const std::string& address,
                                      uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" + address +
                                   "' (need an IPv4 literal)");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Errno("bind " + address + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpConnection> TcpListener::Accept() {
  if (fd_ < 0) return Status::IoError("accept on a closed listener");
  struct sockaddr_in addr;
  socklen_t addr_len = sizeof(addr);
  for (;;) {
    const int fd = ::accept(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                            &addr_len);
    if (fd >= 0) {
      DisableNagle(fd);
      char text[INET_ADDRSTRLEN] = {0};
      ::inet_ntop(AF_INET, &addr.sin_addr, text, sizeof(text));
      return TcpConnection(
          fd, std::string(text) + ":" + std::to_string(ntohs(addr.sin_port)));
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::ShutdownNow() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace opaq
