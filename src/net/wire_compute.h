#ifndef OPAQ_NET_WIRE_COMPUTE_H_
#define OPAQ_NET_WIRE_COMPUTE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/sample_list.h"
#include "net/wire.h"
#include "util/status.h"

namespace opaq {

/// Payload codecs of the v2 compute ops (`kSampleRuns` / `kSampleListData`
/// / `kExactPass` / `kExactPassData`): the typed layer both sides of the
/// wire share. Every decoder validates structurally (sizes, accounting
/// invariants, sortedness) and fails with a `Status` — a corrupt or hostile
/// payload must surface as an error frame / sticky stream error, never as a
/// CHECK-abort in either process.

/// The decoded result of one node-side §4 filter scan: per bracket, the
/// count of elements strictly below the bracket and the elements kept
/// inside it.
template <typename K>
struct WireExactScan {
  std::vector<uint64_t> below;
  std::vector<std::vector<K>> kept;
};

/// `kSampleRuns` request payload: fixed prefix + dataset name.
inline std::vector<uint8_t> EncodeSampleRunsPayload(
    const WireSampleRunsRequest& request, const std::string& dataset) {
  std::vector<uint8_t> payload(sizeof(request) + dataset.size());
  std::memcpy(payload.data(), &request, sizeof(request));
  std::memcpy(payload.data() + sizeof(request), dataset.data(),
              dataset.size());
  return payload;
}

/// `kSampleListData` response payload: accounting header + the raw sorted
/// samples. Fails with ResourceExhausted when the list cannot fit one
/// frame (raise the sub-run size / lower samples_per_run).
template <typename K>
Result<std::vector<uint8_t>> EncodeSampleListPayload(
    const SampleList<K>& list) {
  const SampleAccounting& acc = list.accounting();
  WireSampleListHeader header;
  header.subrun_size = acc.subrun_size;
  header.num_runs = acc.num_runs;
  header.num_samples = acc.num_samples;
  header.num_uncovered = acc.num_uncovered;
  header.total_elements = acc.total_elements;
  const uint64_t sample_bytes = acc.num_samples * sizeof(K);
  if (sizeof(header) + sample_bytes > kMaxWirePayload) {
    return Status::ResourceExhausted(
        "sample list of " + std::to_string(acc.num_samples) +
        " samples does not fit one wire frame; lower samples_per_run or "
        "raise run_size");
  }
  std::vector<uint8_t> payload(sizeof(header) + sample_bytes);
  std::memcpy(payload.data(), &header, sizeof(header));
  if (sample_bytes != 0) {
    std::memcpy(payload.data() + sizeof(header), list.samples().data(),
                sample_bytes);
  }
  return payload;
}

/// Decodes and validates a `kSampleListData` payload back into a
/// `SampleList<K>`. Every invariant the `SampleList` constructor CHECKs is
/// verified here first, so a malicious node yields an IoError, not an
/// abort.
template <typename K>
Result<SampleList<K>> DecodeSampleListPayload(const uint8_t* payload,
                                              size_t len) {
  WireSampleListHeader header;
  if (len < sizeof(header)) {
    return Status::IoError(
        "SAMPLE_LIST_DATA payload shorter than its header");
  }
  std::memcpy(&header, payload, sizeof(header));
  if (header.num_samples != (len - sizeof(header)) / sizeof(K) ||
      (len - sizeof(header)) % sizeof(K) != 0) {
    return Status::IoError(
        "SAMPLE_LIST_DATA header promises " +
        std::to_string(header.num_samples) + " samples, payload holds " +
        std::to_string(len - sizeof(header)) + " bytes");
  }
  SampleAccounting acc;
  acc.subrun_size = header.subrun_size;
  acc.num_runs = header.num_runs;
  acc.num_samples = header.num_samples;
  acc.num_uncovered = header.num_uncovered;
  acc.total_elements = header.total_elements;
  if (!acc.Valid()) {
    return Status::IoError(
        "SAMPLE_LIST_DATA carries inconsistent sample accounting");
  }
  std::vector<K> samples(static_cast<size_t>(header.num_samples));
  if (!samples.empty()) {
    std::memcpy(samples.data(), payload + sizeof(header),
                samples.size() * sizeof(K));
  }
  if (!std::is_sorted(samples.begin(), samples.end())) {
    return Status::IoError("SAMPLE_LIST_DATA samples are not sorted");
  }
  return SampleList<K>(std::move(samples), acc);
}

/// `kExactPass` request payload: fixed prefix + dataset name + `num_brackets`
/// (lower, upper) element pairs. Only the bracket bounds travel; target
/// ranks stay coordinator-side (the node's filter scan does not need them).
/// Fills in the request's own `num_brackets` / `name_len` framing fields.
template <typename K>
std::vector<uint8_t> EncodeExactPassPayload(
    WireExactPassRequest request,
    const std::vector<QuantileEstimate<K>>& estimates,
    const std::string& dataset) {
  request.num_brackets = static_cast<uint32_t>(estimates.size());
  request.name_len = static_cast<uint32_t>(dataset.size());
  std::vector<uint8_t> payload(sizeof(request) + dataset.size() +
                               estimates.size() * 2 * sizeof(K));
  uint8_t* out = payload.data();
  std::memcpy(out, &request, sizeof(request));
  out += sizeof(request);
  std::memcpy(out, dataset.data(), dataset.size());
  out += dataset.size();
  for (const QuantileEstimate<K>& e : estimates) {
    std::memcpy(out, &e.lower, sizeof(K));
    out += sizeof(K);
    std::memcpy(out, &e.upper, sizeof(K));
    out += sizeof(K);
  }
  return payload;
}

/// Decodes the bracket bounds of a `kExactPass` request (node side). The
/// fixed prefix and dataset name are the server's concern; `brackets` points
/// at the `num_brackets * 2 * sizeof(K)` bound bytes between them.
template <typename K>
Result<std::vector<QuantileEstimate<K>>> DecodeExactBrackets(
    const uint8_t* brackets, uint32_t num_brackets) {
  std::vector<QuantileEstimate<K>> estimates(num_brackets);
  const uint8_t* in = brackets;
  for (QuantileEstimate<K>& e : estimates) {
    std::memcpy(&e.lower, in, sizeof(K));
    in += sizeof(K);
    std::memcpy(&e.upper, in, sizeof(K));
    in += sizeof(K);
    if (e.upper < e.lower) {
      return Status::InvalidArgument(
          "EXACT_PASS bracket has upper < lower");
    }
  }
  return estimates;
}

/// `kExactPassData` response payload: header + below-counts + kept-counts +
/// concatenated kept elements. Fails with ResourceExhausted when the kept
/// sets cannot fit one frame (the coordinator's budget normally keeps them
/// far below the cap).
template <typename K>
Result<std::vector<uint8_t>> EncodeExactScanPayload(
    const WireExactScan<K>& scan) {
  OPAQ_CHECK_EQ(scan.below.size(), scan.kept.size());
  WireExactPassHeader header;
  header.num_brackets = static_cast<uint32_t>(scan.below.size());
  for (const std::vector<K>& kept : scan.kept) {
    header.kept_total += kept.size();
  }
  const uint64_t bytes = sizeof(header) +
                         scan.below.size() * 2 * sizeof(uint64_t) +
                         header.kept_total * sizeof(K);
  if (bytes > kMaxWirePayload) {
    return Status::ResourceExhausted(
        "EXACT_PASS kept sets of " + std::to_string(header.kept_total) +
        " elements do not fit one wire frame; lower the memory budget or "
        "raise samples_per_run");
  }
  std::vector<uint8_t> payload(static_cast<size_t>(bytes));
  uint8_t* out = payload.data();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  std::memcpy(out, scan.below.data(),
              scan.below.size() * sizeof(uint64_t));
  out += scan.below.size() * sizeof(uint64_t);
  for (const std::vector<K>& kept : scan.kept) {
    const uint64_t count = kept.size();
    std::memcpy(out, &count, sizeof(count));
    out += sizeof(count);
  }
  for (const std::vector<K>& kept : scan.kept) {
    if (!kept.empty()) {
      std::memcpy(out, kept.data(), kept.size() * sizeof(K));
      out += kept.size() * sizeof(K);
    }
  }
  return payload;
}

/// Decodes and validates a `kExactPassData` payload (client side).
template <typename K>
Result<WireExactScan<K>> DecodeExactScanPayload(const uint8_t* payload,
                                                size_t len,
                                                uint32_t expected_brackets) {
  WireExactPassHeader header;
  if (len < sizeof(header)) {
    return Status::IoError("EXACT_PASS_DATA payload shorter than its header");
  }
  std::memcpy(&header, payload, sizeof(header));
  if (header.num_brackets != expected_brackets) {
    return Status::IoError(
        "EXACT_PASS_DATA answers " + std::to_string(header.num_brackets) +
        " brackets, " + std::to_string(expected_brackets) + " were asked");
  }
  const uint64_t counts_bytes =
      uint64_t{header.num_brackets} * 2 * sizeof(uint64_t);
  if (len < sizeof(header) + counts_bytes ||
      len - sizeof(header) - counts_bytes !=
          header.kept_total * sizeof(K) ||
      header.kept_total > kMaxWirePayload / sizeof(K)) {
    return Status::IoError(
        "EXACT_PASS_DATA payload length disagrees with its header");
  }
  WireExactScan<K> scan;
  scan.below.resize(header.num_brackets);
  const uint8_t* in = payload + sizeof(header);
  std::memcpy(scan.below.data(), in,
              scan.below.size() * sizeof(uint64_t));
  in += scan.below.size() * sizeof(uint64_t);
  std::vector<uint64_t> kept_counts(header.num_brackets);
  std::memcpy(kept_counts.data(), in,
              kept_counts.size() * sizeof(uint64_t));
  in += kept_counts.size() * sizeof(uint64_t);
  uint64_t total = 0;
  for (uint64_t count : kept_counts) total += count;
  if (total != header.kept_total) {
    return Status::IoError(
        "EXACT_PASS_DATA kept counts do not sum to the header total");
  }
  scan.kept.resize(header.num_brackets);
  for (uint32_t q = 0; q < header.num_brackets; ++q) {
    scan.kept[q].resize(static_cast<size_t>(kept_counts[q]));
    if (!scan.kept[q].empty()) {
      std::memcpy(scan.kept[q].data(), in, kept_counts[q] * sizeof(K));
      in += kept_counts[q] * sizeof(K);
    }
  }
  return scan;
}

}  // namespace opaq

#endif  // OPAQ_NET_WIRE_COMPUTE_H_
