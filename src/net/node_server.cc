#include "net/node_server.h"

#include <algorithm>
#include <cstring>

namespace opaq {

namespace {
FrameServerOptions ToFrameOptions(const NodeServerOptions& options) {
  FrameServerOptions frame_options;
  frame_options.bind_address = options.bind_address;
  frame_options.port = options.port;
  frame_options.response_delay_seconds = options.response_delay_seconds;
  frame_options.max_wire_version = options.max_wire_version;
  frame_options.metrics = options.metrics;
  return frame_options;
}
}  // namespace

NodeServer::NodeServer(NodeServerOptions options)
    : FrameServer(ToFrameOptions(options)), options_(std::move(options)) {}

NodeServer::~NodeServer() {
  // Joined here, not in ~FrameServer: connection threads virtual-call
  // HandleFrame, which must still exist while they run.
  Stop();
}

void NodeServer::Export(const std::string& name, ExportedDataset dataset) {
  OPAQ_CHECK(!started()) << "Export after Start: the export map is frozen "
                            "once connection threads may read it";
  OPAQ_CHECK(!name.empty()) << "exported dataset needs a name";
  OPAQ_CHECK(dataset.read != nullptr);
  OPAQ_CHECK_GT(dataset.element_size, 0u);
  exports_[name] = std::move(dataset);
}

void NodeServer::Export(const std::string& name, const DataFile* file) {
  OPAQ_CHECK(file != nullptr);
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(file->key_type());
  dataset.element_size = file->element_size();
  dataset.element_count = file->element_count();
  dataset.read = [file](uint64_t first, uint64_t count, void* out) {
    return file->ReadElements(first, count, out);
  };
  Export(name, std::move(dataset));
}

Status NodeServer::ValidateStart() {
  if (exports_.empty()) {
    return Status::FailedPrecondition(
        "a data node with nothing exported serves no purpose; call Export "
        "before Start");
  }
  if (options_.max_read_bytes == 0) {
    return Status::InvalidArgument("max_read_bytes must be positive");
  }
  if (options_.max_read_bytes > kMaxWirePayload) {
    return Status::InvalidArgument(
        "max_read_bytes of " + std::to_string(options_.max_read_bytes) +
        " exceeds the wire protocol's frame payload cap (" +
        std::to_string(kMaxWirePayload) + "); responses could not be framed");
  }
  if (options_.max_compute_run_bytes == 0) {
    return Status::InvalidArgument("max_compute_run_bytes must be positive");
  }
  return Status::OK();
}

void NodeServer::PublishMetrics(MetricsRegistry* registry) {
  FrameServer::PublishMetrics(registry);
  // Frozen at Start, so reading the map size without a lock is safe.
  registry->GetGauge("node.exports")
      ->Set(static_cast<int64_t>(exports_.size()));
}

uint64_t NodeServer::MaxExtentsPerRead(const ExportedDataset& dataset) const {
  const uint64_t worst = sizeof(ExtentHeader) +
                         dataset.extent_elements * dataset.element_size;
  const uint64_t cap =
      std::min<uint64_t>(options_.max_read_bytes, kMaxWirePayload);
  return std::max<uint64_t>(1, cap / worst);
}

bool NodeServer::HandleFrame(TcpConnection* conn, const WireFrame& frame) {
  switch (static_cast<WireOp>(frame.op)) {
    case WireOp::kPing:
      return SendCounted(conn, WireOp::kPong, nullptr, 0);

    case WireOp::kOpenDataset: {
      const std::string name(frame.payload.begin(), frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        // Recoverable: a client probing names keeps its connection.
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      WireDatasetInfo info;
      info.key_type = dataset.key_type;
      info.element_size = dataset.element_size;
      // A live export grows; disclose its current count, not the Export-
      // time snapshot.
      info.element_count = dataset.live_count ? dataset.live_count()
                                              : dataset.element_count;
      info.max_read_elements =
          std::max<uint64_t>(1, options_.max_read_bytes / dataset.element_size);
      return SendCounted(conn, WireOp::kDatasetInfo, &info, sizeof(info));
    }

    case WireOp::kReadRange: {
      if (frame.payload.size() < sizeof(WireReadRange)) {
        SendErrorCounted(conn,
                         Status::IoError("READ_RANGE payload shorter than its "
                                         "fixed prefix"));
        return false;  // framing is off; close
      }
      WireReadRange range;
      std::memcpy(&range, frame.payload.data(), sizeof(range));
      const std::string name(frame.payload.begin() + sizeof(range),
                             frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (range.count == 0) {
        return SendErrorCounted(
            conn, Status::InvalidArgument("READ_RANGE of zero elements"));
      }
      // Enforce exactly the bound OpenDataset advertised (so a client
      // slicing at max_read_elements is never rejected), plus the frame
      // cap for exotic element sizes.
      const uint64_t max_elements = std::max<uint64_t>(
          1, options_.max_read_bytes / dataset.element_size);
      if (range.count > max_elements ||
          range.count > kMaxWirePayload / dataset.element_size) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "READ_RANGE of " + std::to_string(range.count) +
                      " elements exceeds this node's per-request bound of " +
                      std::to_string(max_elements) + " elements"));
      }
      const uint64_t element_count = dataset.live_count
                                         ? dataset.live_count()
                                         : dataset.element_count;
      if (range.first > element_count ||
          range.count > element_count - range.first) {
        return SendErrorCounted(
            conn, Status::OutOfRange(
                      "READ_RANGE [" + std::to_string(range.first) + ", +" +
                      std::to_string(range.count) + ") passes the end (" +
                      std::to_string(element_count) + " elements)"));
      }
      std::vector<uint8_t> data(range.count * dataset.element_size);
      Status read = dataset.read(range.first, range.count, data.data());
      if (!read.ok()) {
        // The disk under the dataset failed; the connection itself is fine.
        return SendErrorCounted(conn, read);
      }
      return SendCounted(conn, WireOp::kRangeData, data.data(), data.size());
    }

    case WireOp::kHello: {
      if (frame.payload.size() < sizeof(WireHello)) {
        SendErrorCounted(conn, Status::IoError(
                                   "HELLO payload shorter than its header"));
        return false;  // framing is off; close
      }
      // The peer's announced version needs no inspection: each side simply
      // discloses its own newest, and both use the minimum.
      WireHello ack;
      ack.max_version = options_.max_wire_version;
      return SendCounted(conn, WireOp::kHelloAck, &ack, sizeof(ack));
    }

    case WireOp::kSampleRuns: {
      if (frame.payload.size() < sizeof(WireSampleRunsRequest)) {
        SendErrorCounted(
            conn, Status::IoError(
                      "SAMPLE_RUNS payload shorter than its fixed prefix"));
        return false;  // framing is off; close
      }
      WireSampleRunsRequest request;
      std::memcpy(&request, frame.payload.data(), sizeof(request));
      const std::string name(frame.payload.begin() + sizeof(request),
                             frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (!dataset.sample_runs) {
        // Untyped export: the node cannot sample what it cannot interpret.
        // Recoverable — the client falls back to v1 range streaming.
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is exported untyped; this node can only serve its "
                      "raw ranges, not compute over it"));
      }
      auto payload =
          dataset.sample_runs(request, options_.max_compute_run_bytes);
      if (!payload.ok()) {
        // A bad request or a failing disk; the connection itself is fine.
        return SendErrorCounted(conn, payload.status());
      }
      return SendCounted(conn, WireOp::kSampleListData, payload->data(),
                         payload->size());
    }

    case WireOp::kExactPass: {
      if (frame.payload.size() < sizeof(WireExactPassRequest)) {
        SendErrorCounted(
            conn, Status::IoError(
                      "EXACT_PASS payload shorter than its fixed prefix"));
        return false;  // framing is off; close
      }
      WireExactPassRequest request;
      std::memcpy(&request, frame.payload.data(), sizeof(request));
      if (frame.payload.size() - sizeof(request) < request.name_len) {
        SendErrorCounted(
            conn, Status::IoError("EXACT_PASS name_len passes the end of "
                                  "the payload"));
        return false;  // framing is off; close
      }
      const std::string name(frame.payload.begin() + sizeof(request),
                             frame.payload.begin() + sizeof(request) +
                                 request.name_len);
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (!dataset.exact_pass) {
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is exported untyped; this node can only serve its "
                      "raw ranges, not compute over it"));
      }
      const uint64_t bracket_bytes =
          frame.payload.size() - sizeof(request) - request.name_len;
      if (bracket_bytes !=
          uint64_t{request.num_brackets} * 2 * dataset.element_size) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "EXACT_PASS carries " + std::to_string(bracket_bytes) +
                      " bracket bytes where " +
                      std::to_string(request.num_brackets) + " brackets of " +
                      std::to_string(dataset.element_size) +
                      "-byte elements need " +
                      std::to_string(uint64_t{request.num_brackets} * 2 *
                                     dataset.element_size)));
      }
      auto payload = dataset.exact_pass(
          request,
          frame.payload.data() + sizeof(request) + request.name_len,
          options_.max_compute_run_bytes);
      if (!payload.ok()) {
        return SendErrorCounted(conn, payload.status());
      }
      return SendCounted(conn, WireOp::kExactPassData, payload->data(),
                         payload->size());
    }

    case WireOp::kOpenExtents: {
      const std::string name(frame.payload.begin(), frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (dataset.extent_elements == 0) {
        // Recoverable: the v4 client falls back to kReadRange streaming.
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is not stored as compressed extents; stream its "
                      "ranges instead"));
      }
      WireExtentInfo info;
      info.key_type = dataset.key_type;
      info.element_size = dataset.element_size;
      info.element_count = dataset.element_count;
      info.extent_elements = dataset.extent_elements;
      info.num_extents = dataset.num_extents;
      info.max_extents_per_read = MaxExtentsPerRead(dataset);
      info.default_codec = dataset.extent_codec;
      return SendCounted(conn, WireOp::kExtentInfo, &info, sizeof(info));
    }

    case WireOp::kReadExtents: {
      if (frame.payload.size() < sizeof(WireReadExtents)) {
        SendErrorCounted(conn, Status::IoError(
                                   "READ_EXTENTS payload shorter than its "
                                   "fixed prefix"));
        return false;  // framing is off; close
      }
      WireReadExtents range;
      std::memcpy(&range, frame.payload.data(), sizeof(range));
      const std::string name(frame.payload.begin() + sizeof(range),
                             frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (dataset.extent_elements == 0) {
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is not stored as compressed extents; stream its "
                      "ranges instead"));
      }
      if (range.count == 0) {
        return SendErrorCounted(
            conn, Status::InvalidArgument("READ_EXTENTS of zero extents"));
      }
      // Enforce exactly the bound kOpenExtents advertised, so a client
      // slicing at max_extents_per_read is never rejected.
      if (range.count > MaxExtentsPerRead(dataset)) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "READ_EXTENTS of " + std::to_string(range.count) +
                      " extents exceeds this node's per-request bound of " +
                      std::to_string(MaxExtentsPerRead(dataset)) +
                      " extents"));
      }
      if (range.first_extent > dataset.num_extents ||
          range.count > dataset.num_extents - range.first_extent) {
        return SendErrorCounted(
            conn, Status::OutOfRange(
                      "READ_EXTENTS [" + std::to_string(range.first_extent) +
                      ", +" + std::to_string(range.count) +
                      ") passes the end (" +
                      std::to_string(dataset.num_extents) + " extents)"));
      }
      std::vector<uint8_t> data;
      for (uint64_t e = 0; e < range.count; ++e) {
        Status read =
            dataset.read_stored_extent(range.first_extent + e, &data);
        if (!read.ok()) {
          // The disk under the dataset failed; the connection itself is
          // fine.
          return SendErrorCounted(conn, read);
        }
      }
      return SendCounted(conn, WireOp::kExtentData, data.data(), data.size());
    }

    case WireOp::kAppend: {
      if (frame.payload.size() < sizeof(WireAppendRequest)) {
        SendErrorCounted(conn,
                         Status::IoError("APPEND payload shorter than its "
                                         "fixed prefix"));
        return false;  // framing is off; close
      }
      WireAppendRequest request;
      std::memcpy(&request, frame.payload.data(), sizeof(request));
      if (frame.payload.size() - sizeof(request) < request.name_len) {
        SendErrorCounted(conn, Status::IoError(
                                   "APPEND name_len passes the end of the "
                                   "payload"));
        return false;  // framing is off; close
      }
      if (request.flags != 0) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "APPEND carries reserved flags this node does not "
                      "understand"));
      }
      if (request.count == 0) {
        return SendErrorCounted(
            conn, Status::InvalidArgument("APPEND of zero elements"));
      }
      const std::string name(frame.payload.begin() + sizeof(request),
                             frame.payload.begin() + sizeof(request) +
                                 request.name_len);
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (!dataset.append) {
        // Recoverable: static exports stay queryable on this connection.
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is a static export; only live datasets "
                      "(--live) accept appends"));
      }
      const uint64_t data_bytes =
          frame.payload.size() - sizeof(request) - request.name_len;
      // Divide, don't multiply: a huge count must not wrap into a product
      // that happens to match the payload.
      if (request.count > kMaxWirePayload / dataset.element_size ||
          data_bytes != request.count * dataset.element_size) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "APPEND carries " + std::to_string(data_bytes) +
                      " element bytes where " + std::to_string(request.count) +
                      " elements of " + std::to_string(dataset.element_size) +
                      " bytes need " +
                      std::to_string(request.count * dataset.element_size)));
      }
      auto ack = dataset.append(
          frame.payload.data() + sizeof(request) + request.name_len,
          request.count);
      if (!ack.ok()) {
        // The disk under the dataset failed; the connection itself is fine.
        return SendErrorCounted(conn, ack.status());
      }
      return SendCounted(conn, WireOp::kAppendAck, &*ack, sizeof(*ack));
    }

    default:
      SendErrorCounted(conn, Status::Unimplemented(
                                 std::string("node does not speak op ") +
                                 WireOpName(frame.op) + " (" +
                                 std::to_string(frame.op) + ")"));
      return false;  // unknown op: assume version skew and close
  }
}

}  // namespace opaq
