#include "net/node_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "net/frame_io.h"

namespace opaq {

NodeServer::NodeServer(NodeServerOptions options)
    : options_(std::move(options)) {}

bool NodeServer::SendCounted(TcpConnection* conn, WireOp op,
                             const void* payload, size_t len) {
  std::vector<uint8_t> frame = EncodeFrame(op, payload, len);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  return conn->WriteFull(frame.data(), frame.size()).ok();
}

/// Answers a request with the error frame carrying `status`. Returns
/// whether the connection is still usable (i.e. the send itself worked).
bool NodeServer::SendErrorCounted(TcpConnection* conn, const Status& status) {
  std::vector<uint8_t> frame = EncodeErrorFrame(status);
  bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  return conn->WriteFull(frame.data(), frame.size()).ok();
}

NodeServer::~NodeServer() { Stop(); }

void NodeServer::Export(const std::string& name, ExportedDataset dataset) {
  OPAQ_CHECK(!started_) << "Export after Start: the export map is frozen "
                           "once connection threads may read it";
  OPAQ_CHECK(!name.empty()) << "exported dataset needs a name";
  OPAQ_CHECK(dataset.read != nullptr);
  OPAQ_CHECK_GT(dataset.element_size, 0u);
  exports_[name] = std::move(dataset);
}

void NodeServer::Export(const std::string& name, const DataFile* file) {
  OPAQ_CHECK(file != nullptr);
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(file->key_type());
  dataset.element_size = file->element_size();
  dataset.element_count = file->element_count();
  dataset.read = [file](uint64_t first, uint64_t count, void* out) {
    return file->ReadElements(first, count, out);
  };
  Export(name, std::move(dataset));
}

Status NodeServer::Start() {
  OPAQ_CHECK(!started_) << "NodeServer::Start called twice";
  if (exports_.empty()) {
    return Status::FailedPrecondition(
        "a data node with nothing exported serves no purpose; call Export "
        "before Start");
  }
  if (options_.max_read_bytes == 0) {
    return Status::InvalidArgument("max_read_bytes must be positive");
  }
  if (options_.max_read_bytes > kMaxWirePayload) {
    return Status::InvalidArgument(
        "max_read_bytes of " + std::to_string(options_.max_read_bytes) +
        " exceeds the wire protocol's frame payload cap (" +
        std::to_string(kMaxWirePayload) + "); responses could not be framed");
  }
  if (options_.max_wire_version < kWireVersion ||
      options_.max_wire_version > kMaxWireVersion) {
    return Status::InvalidArgument(
        "max_wire_version of " + std::to_string(options_.max_wire_version) +
        " is outside this build's supported range [" +
        std::to_string(kWireVersion) + ", " +
        std::to_string(kMaxWireVersion) + "]");
  }
  if (options_.max_compute_run_bytes == 0) {
    return Status::InvalidArgument("max_compute_run_bytes must be positive");
  }
  auto listener = TcpListener::Bind(options_.bind_address, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NodeServer::Stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    listener_.ShutdownNow();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // The accept loop is down, so connections_ gains no new entries; shake
  // every handler out of its blocking read, then join.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->conn.ShutdownNow();
  }
  for (;;) {
    std::unique_ptr<Connection> connection;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      connection = std::move(connections_.back());
      connections_.pop_back();
    }
    if (connection->thread.joinable()) connection->thread.join();
  }
}

std::string NodeServer::address() const {
  return options_.bind_address + ":" + std::to_string(port_);
}

void NodeServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void NodeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinishedConnections();
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient accept failure (fd pressure, aborted handshake): keep
      // serving, but do not spin hot.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->conn = std::move(accepted).value();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] {
      Serve(&raw->conn);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void NodeServer::Serve(TcpConnection* conn) {
  for (;;) {
    WireFrameHeader header;
    if (!conn->ReadFull(&header, sizeof(header)).ok()) {
      return;  // peer went away (or Stop shut us down): normal end of stream
    }
    bytes_received_.fetch_add(sizeof(header), std::memory_order_relaxed);
    Status valid = ValidateFrameHeader(header);
    if (valid.ok() && header.version > options_.max_wire_version) {
      // This build could parse the frame, but the operator capped the node
      // below it — reject exactly as an old build would, so version-capped
      // nodes are faithful stand-ins for real v1 nodes (and v2 clients
      // read the "version" error as "fall back to v1").
      valid = Status::IoError(
          "unsupported wire protocol version " +
          std::to_string(header.version) + " (this node speaks at most " +
          std::to_string(options_.max_wire_version) + ")");
    }
    if (!valid.ok()) {
      // The stream cannot be trusted past a malformed header (we may be
      // mid-garbage); answer once and hang up.
      SendErrorCounted(conn, valid);
      conn->ShutdownNow();
      return;
    }
    WireFrame frame;
    frame.op = header.op;
    frame.payload.resize(header.payload_len);
    if (header.payload_len != 0 &&
        !conn->ReadFull(frame.payload.data(), frame.payload.size()).ok()) {
      return;  // truncated mid-frame: nothing sane left to answer
    }
    bytes_received_.fetch_add(header.payload_len, std::memory_order_relaxed);
    if (Crc32(frame.payload.data(), frame.payload.size()) !=
        header.payload_crc) {
      SendErrorCounted(conn, Status::IoError(
                                 std::string("payload CRC mismatch on a ") +
                                 WireOpName(header.op) + " request"));
      conn->ShutdownNow();
      return;
    }
    if (!HandleFrame(conn, frame)) {
      conn->ShutdownNow();
      return;
    }
  }
}

bool NodeServer::HandleFrame(TcpConnection* conn, const WireFrame& frame) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.response_delay_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.response_delay_seconds));
  }
  switch (static_cast<WireOp>(frame.op)) {
    case WireOp::kPing:
      return SendCounted(conn, WireOp::kPong, nullptr, 0);

    case WireOp::kOpenDataset: {
      const std::string name(frame.payload.begin(), frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        // Recoverable: a client probing names keeps its connection.
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      WireDatasetInfo info;
      info.key_type = dataset.key_type;
      info.element_size = dataset.element_size;
      info.element_count = dataset.element_count;
      info.max_read_elements =
          std::max<uint64_t>(1, options_.max_read_bytes / dataset.element_size);
      return SendCounted(conn, WireOp::kDatasetInfo, &info, sizeof(info));
    }

    case WireOp::kReadRange: {
      if (frame.payload.size() < sizeof(WireReadRange)) {
        SendErrorCounted(conn,
                         Status::IoError("READ_RANGE payload shorter than its "
                                         "fixed prefix"));
        return false;  // framing is off; close
      }
      WireReadRange range;
      std::memcpy(&range, frame.payload.data(), sizeof(range));
      const std::string name(frame.payload.begin() + sizeof(range),
                             frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (range.count == 0) {
        return SendErrorCounted(
            conn, Status::InvalidArgument("READ_RANGE of zero elements"));
      }
      // Enforce exactly the bound OpenDataset advertised (so a client
      // slicing at max_read_elements is never rejected), plus the frame
      // cap for exotic element sizes.
      const uint64_t max_elements = std::max<uint64_t>(
          1, options_.max_read_bytes / dataset.element_size);
      if (range.count > max_elements ||
          range.count > kMaxWirePayload / dataset.element_size) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "READ_RANGE of " + std::to_string(range.count) +
                      " elements exceeds this node's per-request bound of " +
                      std::to_string(max_elements) + " elements"));
      }
      if (range.first > dataset.element_count ||
          range.count > dataset.element_count - range.first) {
        return SendErrorCounted(
            conn, Status::OutOfRange(
                      "READ_RANGE [" + std::to_string(range.first) + ", +" +
                      std::to_string(range.count) + ") passes the end (" +
                      std::to_string(dataset.element_count) + " elements)"));
      }
      std::vector<uint8_t> data(range.count * dataset.element_size);
      Status read = dataset.read(range.first, range.count, data.data());
      if (!read.ok()) {
        // The disk under the dataset failed; the connection itself is fine.
        return SendErrorCounted(conn, read);
      }
      return SendCounted(conn, WireOp::kRangeData, data.data(), data.size());
    }

    case WireOp::kHello: {
      if (frame.payload.size() < sizeof(WireHello)) {
        SendErrorCounted(conn, Status::IoError(
                                   "HELLO payload shorter than its header"));
        return false;  // framing is off; close
      }
      // The peer's announced version needs no inspection: each side simply
      // discloses its own newest, and both use the minimum.
      WireHello ack;
      ack.max_version = options_.max_wire_version;
      return SendCounted(conn, WireOp::kHelloAck, &ack, sizeof(ack));
    }

    case WireOp::kSampleRuns: {
      if (frame.payload.size() < sizeof(WireSampleRunsRequest)) {
        SendErrorCounted(
            conn, Status::IoError(
                      "SAMPLE_RUNS payload shorter than its fixed prefix"));
        return false;  // framing is off; close
      }
      WireSampleRunsRequest request;
      std::memcpy(&request, frame.payload.data(), sizeof(request));
      const std::string name(frame.payload.begin() + sizeof(request),
                             frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (!dataset.sample_runs) {
        // Untyped export: the node cannot sample what it cannot interpret.
        // Recoverable — the client falls back to v1 range streaming.
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is exported untyped; this node can only serve its "
                      "raw ranges, not compute over it"));
      }
      auto payload =
          dataset.sample_runs(request, options_.max_compute_run_bytes);
      if (!payload.ok()) {
        // A bad request or a failing disk; the connection itself is fine.
        return SendErrorCounted(conn, payload.status());
      }
      return SendCounted(conn, WireOp::kSampleListData, payload->data(),
                         payload->size());
    }

    case WireOp::kExactPass: {
      if (frame.payload.size() < sizeof(WireExactPassRequest)) {
        SendErrorCounted(
            conn, Status::IoError(
                      "EXACT_PASS payload shorter than its fixed prefix"));
        return false;  // framing is off; close
      }
      WireExactPassRequest request;
      std::memcpy(&request, frame.payload.data(), sizeof(request));
      if (frame.payload.size() - sizeof(request) < request.name_len) {
        SendErrorCounted(
            conn, Status::IoError("EXACT_PASS name_len passes the end of "
                                  "the payload"));
        return false;  // framing is off; close
      }
      const std::string name(frame.payload.begin() + sizeof(request),
                             frame.payload.begin() + sizeof(request) +
                                 request.name_len);
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendErrorCounted(
            conn,
            Status::NotFound("node exports no dataset named '" + name + "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (!dataset.exact_pass) {
        return SendErrorCounted(
            conn, Status::Unimplemented(
                      "dataset '" + name +
                      "' is exported untyped; this node can only serve its "
                      "raw ranges, not compute over it"));
      }
      const uint64_t bracket_bytes =
          frame.payload.size() - sizeof(request) - request.name_len;
      if (bracket_bytes !=
          uint64_t{request.num_brackets} * 2 * dataset.element_size) {
        return SendErrorCounted(
            conn, Status::InvalidArgument(
                      "EXACT_PASS carries " + std::to_string(bracket_bytes) +
                      " bracket bytes where " +
                      std::to_string(request.num_brackets) + " brackets of " +
                      std::to_string(dataset.element_size) +
                      "-byte elements need " +
                      std::to_string(uint64_t{request.num_brackets} * 2 *
                                     dataset.element_size)));
      }
      auto payload = dataset.exact_pass(
          request,
          frame.payload.data() + sizeof(request) + request.name_len,
          options_.max_compute_run_bytes);
      if (!payload.ok()) {
        return SendErrorCounted(conn, payload.status());
      }
      return SendCounted(conn, WireOp::kExactPassData, payload->data(),
                         payload->size());
    }

    default:
      SendErrorCounted(conn, Status::Unimplemented(
                                 std::string("node does not speak op ") +
                                 WireOpName(frame.op) + " (" +
                                 std::to_string(frame.op) + ")"));
      return false;  // unknown op: assume version skew and close
  }
}

}  // namespace opaq
