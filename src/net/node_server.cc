#include "net/node_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "net/frame_io.h"

namespace opaq {
namespace {

/// Answers a request with the error frame carrying `status`. Returns
/// whether the connection is still usable (i.e. the send itself worked).
bool SendError(TcpConnection* conn, const Status& status) {
  std::vector<uint8_t> frame = EncodeErrorFrame(status);
  return conn->WriteFull(frame.data(), frame.size()).ok();
}

}  // namespace

NodeServer::NodeServer(NodeServerOptions options)
    : options_(std::move(options)) {}

NodeServer::~NodeServer() { Stop(); }

void NodeServer::Export(const std::string& name, ExportedDataset dataset) {
  OPAQ_CHECK(!started_) << "Export after Start: the export map is frozen "
                           "once connection threads may read it";
  OPAQ_CHECK(!name.empty()) << "exported dataset needs a name";
  OPAQ_CHECK(dataset.read != nullptr);
  OPAQ_CHECK_GT(dataset.element_size, 0u);
  exports_[name] = std::move(dataset);
}

void NodeServer::Export(const std::string& name, const DataFile* file) {
  OPAQ_CHECK(file != nullptr);
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(file->key_type());
  dataset.element_size = file->element_size();
  dataset.element_count = file->element_count();
  dataset.read = [file](uint64_t first, uint64_t count, void* out) {
    return file->ReadElements(first, count, out);
  };
  Export(name, std::move(dataset));
}

Status NodeServer::Start() {
  OPAQ_CHECK(!started_) << "NodeServer::Start called twice";
  if (exports_.empty()) {
    return Status::FailedPrecondition(
        "a data node with nothing exported serves no purpose; call Export "
        "before Start");
  }
  if (options_.max_read_bytes == 0) {
    return Status::InvalidArgument("max_read_bytes must be positive");
  }
  if (options_.max_read_bytes > kMaxWirePayload) {
    return Status::InvalidArgument(
        "max_read_bytes of " + std::to_string(options_.max_read_bytes) +
        " exceeds the wire protocol's frame payload cap (" +
        std::to_string(kMaxWirePayload) + "); responses could not be framed");
  }
  auto listener = TcpListener::Bind(options_.bind_address, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NodeServer::Stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    listener_.ShutdownNow();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // The accept loop is down, so connections_ gains no new entries; shake
  // every handler out of its blocking read, then join.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->conn.ShutdownNow();
  }
  for (;;) {
    std::unique_ptr<Connection> connection;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      connection = std::move(connections_.back());
      connections_.pop_back();
    }
    if (connection->thread.joinable()) connection->thread.join();
  }
}

std::string NodeServer::address() const {
  return options_.bind_address + ":" + std::to_string(port_);
}

void NodeServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void NodeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinishedConnections();
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient accept failure (fd pressure, aborted handshake): keep
      // serving, but do not spin hot.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->conn = std::move(accepted).value();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] {
      Serve(&raw->conn);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void NodeServer::Serve(TcpConnection* conn) {
  for (;;) {
    WireFrameHeader header;
    if (!conn->ReadFull(&header, sizeof(header)).ok()) {
      return;  // peer went away (or Stop shut us down): normal end of stream
    }
    Status valid = ValidateFrameHeader(header);
    if (!valid.ok()) {
      // The stream cannot be trusted past a malformed header (we may be
      // mid-garbage); answer once and hang up.
      SendError(conn, valid);
      conn->ShutdownNow();
      return;
    }
    WireFrame frame;
    frame.op = header.op;
    frame.payload.resize(header.payload_len);
    if (header.payload_len != 0 &&
        !conn->ReadFull(frame.payload.data(), frame.payload.size()).ok()) {
      return;  // truncated mid-frame: nothing sane left to answer
    }
    if (Crc32(frame.payload.data(), frame.payload.size()) !=
        header.payload_crc) {
      SendError(conn, Status::IoError(
                          std::string("payload CRC mismatch on a ") +
                          WireOpName(header.op) + " request"));
      conn->ShutdownNow();
      return;
    }
    if (!HandleFrame(conn, frame)) {
      conn->ShutdownNow();
      return;
    }
  }
}

bool NodeServer::HandleFrame(TcpConnection* conn, const WireFrame& frame) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.response_delay_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.response_delay_seconds));
  }
  switch (static_cast<WireOp>(frame.op)) {
    case WireOp::kPing:
      return SendFrame(*conn, WireOp::kPong, nullptr, 0).ok();

    case WireOp::kOpenDataset: {
      const std::string name(frame.payload.begin(), frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        // Recoverable: a client probing names keeps its connection.
        return SendError(conn, Status::NotFound(
                                   "node exports no dataset named '" + name +
                                   "'"));
      }
      const ExportedDataset& dataset = it->second;
      WireDatasetInfo info;
      info.key_type = dataset.key_type;
      info.element_size = dataset.element_size;
      info.element_count = dataset.element_count;
      info.max_read_elements =
          std::max<uint64_t>(1, options_.max_read_bytes / dataset.element_size);
      return SendFrame(*conn, WireOp::kDatasetInfo, &info, sizeof(info)).ok();
    }

    case WireOp::kReadRange: {
      if (frame.payload.size() < sizeof(WireReadRange)) {
        SendError(conn, Status::IoError("READ_RANGE payload shorter than its "
                                        "fixed prefix"));
        return false;  // framing is off; close
      }
      WireReadRange range;
      std::memcpy(&range, frame.payload.data(), sizeof(range));
      const std::string name(frame.payload.begin() + sizeof(range),
                             frame.payload.end());
      auto it = exports_.find(name);
      if (it == exports_.end()) {
        return SendError(conn, Status::NotFound(
                                   "node exports no dataset named '" + name +
                                   "'"));
      }
      const ExportedDataset& dataset = it->second;
      if (range.count == 0) {
        return SendError(conn, Status::InvalidArgument(
                                   "READ_RANGE of zero elements"));
      }
      // Enforce exactly the bound OpenDataset advertised (so a client
      // slicing at max_read_elements is never rejected), plus the frame
      // cap for exotic element sizes.
      const uint64_t max_elements = std::max<uint64_t>(
          1, options_.max_read_bytes / dataset.element_size);
      if (range.count > max_elements ||
          range.count > kMaxWirePayload / dataset.element_size) {
        return SendError(
            conn, Status::InvalidArgument(
                      "READ_RANGE of " + std::to_string(range.count) +
                      " elements exceeds this node's per-request bound of " +
                      std::to_string(max_elements) + " elements"));
      }
      if (range.first > dataset.element_count ||
          range.count > dataset.element_count - range.first) {
        return SendError(
            conn, Status::OutOfRange(
                      "READ_RANGE [" + std::to_string(range.first) + ", +" +
                      std::to_string(range.count) + ") passes the end (" +
                      std::to_string(dataset.element_count) + " elements)"));
      }
      std::vector<uint8_t> data(range.count * dataset.element_size);
      Status read = dataset.read(range.first, range.count, data.data());
      if (!read.ok()) {
        // The disk under the dataset failed; the connection itself is fine.
        return SendError(conn, read);
      }
      return SendFrame(*conn, WireOp::kRangeData, data.data(), data.size())
          .ok();
    }

    default:
      SendError(conn, Status::Unimplemented(
                          std::string("node does not speak op ") +
                          WireOpName(frame.op) + " (" +
                          std::to_string(frame.op) + ")"));
      return false;  // unknown op: assume version skew and close
  }
}

}  // namespace opaq
