#ifndef OPAQ_NET_NODE_SERVER_H_
#define OPAQ_NET_NODE_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/data_file.h"
#include "io/extent.h"
#include "io/striped_data_file.h"
#include "net/frame_server.h"
#include "net/node_compute.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace opaq {

/// One dataset a node exports, type-erased: the server only needs the
/// geometry plus a bounds-checked element reader — it never interprets the
/// elements, so a single node can serve any key type (and any storage
/// layout: plain files, striped arrays, custom devices) uniformly.
struct ExportedDataset {
  uint32_t key_type = 0;
  uint32_t element_size = 0;
  uint64_t element_count = 0;
  /// Reads `count` elements starting at `first` into `out` (already
  /// bounds-checked by the server against `element_count`).
  std::function<Status(uint64_t first, uint64_t count, void* out)> read;
  /// Optional v2 compute hooks: run the paper's sample phase / §4 filter
  /// scan over this dataset's runs and return the complete response payload
  /// (see node_compute.h). The typed `Export` overloads bind these; an
  /// untyped export leaves them empty, and the node then answers compute
  /// requests with Unimplemented so a v2 client falls back to v1 range
  /// streaming for that dataset. `max_run_bytes` is the server's
  /// `max_compute_run_bytes` bound.
  std::function<Result<std::vector<uint8_t>>(
      const WireSampleRunsRequest& request, uint64_t max_run_bytes)>
      sample_runs;
  std::function<Result<std::vector<uint8_t>>(
      const WireExactPassRequest& request, const uint8_t* bracket_bytes,
      uint64_t max_run_bytes)>
      exact_pass;
  /// Optional v4 extent hooks, bound when the export is stored as
  /// compressed extents (io/extent.h): the geometry `kOpenExtents`
  /// discloses, and a reader that appends the stored (packed) bytes of one
  /// logical extent to `out` — shipped verbatim, decoded client-side.
  /// `extent_elements == 0` means "not an extent export"; the node then
  /// answers `kOpenExtents` with Unimplemented and a v4 client falls back
  /// to `kReadRange` streaming (extent exports keep a `read` hook too, so
  /// v1-v3 clients are served decoded ranges as always).
  uint64_t extent_elements = 0;
  uint64_t num_extents = 0;
  uint16_t extent_codec = 0;
  std::function<Status(uint64_t extent, std::vector<uint8_t>* out)>
      read_stored_extent;
  /// Optional v5 ingest hooks, bound for live (appendable) dataset exports
  /// (`opaq_noded --live`). `append` durably commits `count` elements as
  /// one new segment and returns the dataset's new totals (the ack IS the
  /// commit receipt); empty means the export is static and the node
  /// answers `kAppend` with Unimplemented. `live_count` reports the
  /// current logical element count — live exports grow, so the static
  /// `element_count` snapshot above would go stale; when bound, it
  /// overrides `element_count` for `kOpenDataset`/`kReadRange` bounds.
  /// Both must be safe to call from concurrent connection threads (the
  /// live bundle in `opaq_noded` serializes internally).
  std::function<Result<WireAppendAck>(const uint8_t* elements,
                                      uint64_t count)>
      append;
  std::function<uint64_t()> live_count;
  /// Optional ownership hook: keeps backing objects (devices, files) alive
  /// for exports the caller does not keep alive itself (`opaq_noded` uses
  /// this; the borrow-style `Export` overloads leave it empty).
  std::shared_ptr<void> owner;
};

struct NodeServerOptions {
  /// IPv4 literal to bind. The protocol is unauthenticated, so the default
  /// stays on loopback; bind 0.0.0.0 only on trusted networks.
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port (see `port()` after `Start`).
  uint16_t port = 0;
  /// Per-request read bound: a `kReadRange` may ask for at most this many
  /// bytes of elements (at least one element is always readable, so tiny
  /// bounds degrade throughput, never availability). Bounds both the
  /// node's buffer and the client's pipelining grain (disclosed as
  /// `WireDatasetInfo::max_read_elements`). Must not exceed
  /// `kMaxWirePayload` — `Start` rejects configs whose responses could
  /// not be framed.
  uint64_t max_read_bytes = 4u << 20;
  /// Artificial delay before every response frame — the latency-injectable
  /// loopback transport the remote-vs-local benches are built on. 0 = off.
  double response_delay_seconds = 0;
  /// Newest protocol version this node answers. Frames announcing a newer
  /// version are rejected with an error frame mentioning "version" — the
  /// signal a v2 client's `kHello` probe reads as "speak v1". Lower to 1 to
  /// emulate a pre-compute node (tests and the bench's v1 rows do). Must be
  /// in [1, kMaxWireVersion]; `Start` rejects anything else.
  uint16_t max_wire_version = kMaxWireVersion;
  /// Per-request bound on the node-side run buffer a `kSampleRuns` /
  /// `kExactPass` may ask for (`run_size * element_size`). Compute runs
  /// node-side, so this is a memory bound, not a frame bound — hence far
  /// above `max_read_bytes`.
  uint64_t max_compute_run_bytes = 256u << 20;
  /// Registry this server publishes into; see FrameServerOptions::metrics.
  MetricsRegistry* metrics = nullptr;
};

/// `opaq_noded`'s engine: serves exported datasets over the wire protocol
/// (v1 range streaming, and — for typed exports — the v2 compute ops) with
/// one thread per connection (the paper's workload is few long sequential
/// streams per node, not thousands of short ones). The transport half —
/// accept loop, frame validation, counters, ordered shutdown — lives in
/// `FrameServer`; this class is the dataset registry plus the per-op
/// handlers.
///
/// Lifecycle: construct, `Export` every dataset, `Start()`, eventually
/// `Stop()` (idempotent; the destructor calls it). Exports are frozen at
/// `Start` — the map is read concurrently by connection threads without
/// locking afterwards. Per-request failures (unknown dataset, out-of-range
/// or oversized reads, a dying disk) answer with an error frame and keep
/// the connection open; protocol violations (bad magic/version/CRC) answer
/// with an error frame and close, since the byte stream can no longer be
/// trusted.
class NodeServer : public FrameServer {
 public:
  explicit NodeServer(NodeServerOptions options = NodeServerOptions());
  ~NodeServer() override;

  /// Registers `dataset` under `name` (before `Start` only).
  void Export(const std::string& name, ExportedDataset dataset);

  /// Exports a typed plain data file, borrowed (caller keeps it alive).
  /// Typed exports are full compute nodes: the v2 `kSampleRuns` /
  /// `kExactPass` hooks run over the same `FileRunProvider` local mode
  /// uses (sync and async alike).
  template <typename K>
  void Export(const std::string& name, const TypedDataFile<K>* file) {
    OPAQ_CHECK(file != nullptr);
    ExportedDataset dataset;
    dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
    dataset.element_size = sizeof(K);
    dataset.element_count = file->size();
    dataset.read = [file](uint64_t first, uint64_t count, void* out) {
      return file->Read(first, count, static_cast<K*>(out));
    };
    dataset.sample_runs = [file](const WireSampleRunsRequest& request,
                                 uint64_t max_run_bytes) {
      return NodeSampleRuns<K>(FileRunProvider<K>(file), request,
                               max_run_bytes);
    };
    dataset.exact_pass = [file](const WireExactPassRequest& request,
                                const uint8_t* bracket_bytes,
                                uint64_t max_run_bytes) {
      return NodeExactPass<K>(FileRunProvider<K>(file), request,
                              bracket_bytes, max_run_bytes);
    };
    Export(name, std::move(dataset));
  }

  /// Exports a striped multi-disk data file, borrowed. The node gathers
  /// across stripes locally and serves one flat logical element space — a
  /// client cannot tell (and need not care) how a node lays its data out.
  /// Compute requests drive the striped readers directly (kAsync = one
  /// thread per stripe), so node-side sampling enjoys the full array
  /// bandwidth.
  template <typename K>
  void Export(const std::string& name, const StripedDataFile<K>* file) {
    OPAQ_CHECK(file != nullptr);
    ExportedDataset dataset;
    dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
    dataset.element_size = sizeof(K);
    dataset.element_count = file->size();
    dataset.read = [file](uint64_t first, uint64_t count, void* out) {
      return file->Read(first, count, static_cast<K*>(out));
    };
    dataset.sample_runs = [file](const WireSampleRunsRequest& request,
                                 uint64_t max_run_bytes) {
      return NodeSampleRuns<K>(StripedFileProvider<K>(file), request,
                               max_run_bytes);
    };
    dataset.exact_pass = [file](const WireExactPassRequest& request,
                                const uint8_t* bracket_bytes,
                                uint64_t max_run_bytes) {
      return NodeExactPass<K>(StripedFileProvider<K>(file), request,
                              bracket_bytes, max_run_bytes);
    };
    Export(name, std::move(dataset));
  }

  /// Exports a compressed extent file, borrowed. Serves all four client
  /// generations of the same logical dataset: v1 `kReadRange` decodes
  /// node-side (`ExtentFile::ReadElements`), v2 compute runs over the
  /// extent-decoding provider, and v4 `kReadExtents` ships the stored
  /// extents verbatim so the wire carries packed bytes and the client
  /// decodes on its own streaming thread.
  template <typename K>
  void Export(const std::string& name, const ExtentFile* file) {
    OPAQ_CHECK(file != nullptr);
    OPAQ_CHECK_EQ(static_cast<uint32_t>(KeyTraits<K>::kType),
                  file->key_type());
    ExportedDataset dataset;
    dataset.key_type = file->key_type();
    dataset.element_size = file->element_size();
    dataset.element_count = file->size();
    dataset.read = [file](uint64_t first, uint64_t count, void* out) {
      return file->ReadElements(first, count, out);
    };
    dataset.sample_runs = [file](const WireSampleRunsRequest& request,
                                 uint64_t max_run_bytes) {
      return NodeSampleRuns<K>(ExtentFileProvider<K>(file), request,
                               max_run_bytes);
    };
    dataset.exact_pass = [file](const WireExactPassRequest& request,
                                const uint8_t* bracket_bytes,
                                uint64_t max_run_bytes) {
      return NodeExactPass<K>(ExtentFileProvider<K>(file), request,
                              bracket_bytes, max_run_bytes);
    };
    dataset.extent_elements = file->extent_elements();
    dataset.num_extents = file->num_extents();
    dataset.extent_codec = static_cast<uint16_t>(file->default_codec());
    dataset.read_stored_extent = [file](uint64_t extent,
                                        std::vector<uint8_t>* out) {
      std::vector<uint8_t> stored;
      OPAQ_RETURN_IF_ERROR(file->ReadStoredExtent(extent, &stored));
      out->insert(out->end(), stored.begin(), stored.end());
      return Status::OK();
    };
    Export(name, std::move(dataset));
  }

  /// Exports an untyped data file, borrowed (what `opaq_noded` uses for
  /// plain files: any key type without template dispatch).
  void Export(const std::string& name, const DataFile* file);

 protected:
  Status ValidateStart() override;
  /// Handles one request frame; returns false when the connection must
  /// close (protocol violation or transport failure).
  bool HandleFrame(TcpConnection* conn, const WireFrame& frame) override;
  /// Base `net.*` counters plus `node.exports`.
  void PublishMetrics(MetricsRegistry* registry) override;

 private:
  /// Per-request `kReadExtents` bound for one extent export: as many
  /// extents as fit `max_read_bytes` at the worst-case stored size (header
  /// + unpacked payload — the no-expansion invariant's ceiling), never
  /// exceeding the frame cap, and at least one so tiny bounds degrade
  /// throughput, never availability (one extent always fits a frame:
  /// kMaxExtentBytes < kMaxWirePayload).
  uint64_t MaxExtentsPerRead(const ExportedDataset& dataset) const;

  NodeServerOptions options_;
  std::map<std::string, ExportedDataset> exports_;
};

}  // namespace opaq

#endif  // OPAQ_NET_NODE_SERVER_H_
