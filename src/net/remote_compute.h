#ifndef OPAQ_NET_REMOTE_COMPUTE_H_
#define OPAQ_NET_REMOTE_COMPUTE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/opaq_config.h"
#include "core/sample_list.h"
#include "net/client.h"
#include "net/frame_io.h"
#include "net/wire_compute.h"
#include "util/status.h"

namespace opaq {

/// Client half of the v2 compute ops: asks a data node to run the paper's
/// sample phase (`SampleRuns`) or §4 filter scan (`ExactPass`) over one of
/// its exported datasets, and decodes the O(s) response — the counterpart
/// of `RemoteRunSource`, which ships the O(n) raw runs instead.
///
/// The node executes the identical computation local mode would
/// (`OpaqSketch::Consume` / `internal_exact::AccumulateBrackets` over its
/// own `RunProvider`), so the decoded results merge into coordinator state
/// byte-identical to a single-process run over the same data.
///
/// Each call dials its own connection, like `RemoteRunProvider::OpenRuns`
/// — the methods are const and safe to call concurrently from the engine's
/// shard threads. Failure semantics: a node that answers Unimplemented
/// (untyped export, or a dataset it cannot compute over) surfaces that code
/// verbatim, which callers treat as "fall back to v1 range streaming";
/// every other error (node death mid-request, corrupt response payloads,
/// the node's own disk failing) propagates as the `Status` it is.
template <typename K>
class RemoteComputeClient {
 public:
  /// `spec`/`options` as validated by `RemoteRunProvider::Connect` (the
  /// facade constructs this only after the handshake admitted the dataset's
  /// key type and a `kHello` probe negotiated version >= 2).
  RemoteComputeClient(RemoteSpec spec, NodeClientOptions options)
      : spec_(std::move(spec)), options_(std::move(options)) {}

  const RemoteSpec& spec() const { return spec_; }

  /// Runs the one-pass sample phase node-side under `config` (the node
  /// validates it exactly as a local sketch would) and returns the sample
  /// list — byte-identical to local sketching of the same dataset.
  Result<SampleList<K>> SampleRuns(const OpaqConfig& config) const {
    WireSampleRunsRequest request;
    request.run_size = config.run_size;
    request.samples_per_run = config.samples_per_run;
    request.seed = config.seed;
    request.select_algorithm =
        static_cast<uint32_t>(config.select_algorithm);
    request.io_mode = static_cast<uint32_t>(config.io_mode);
    request.prefetch_depth = static_cast<uint32_t>(config.prefetch_depth);
    const std::vector<uint8_t> payload =
        EncodeSampleRunsPayload(request, spec_.dataset);
    OPAQ_ASSIGN_OR_RETURN(
        NodeClient client,
        NodeClient::Connect(spec_.host, spec_.port, options_));
    OPAQ_RETURN_IF_ERROR(client.SendRequest(WireOp::kSampleRuns,
                                            payload.data(), payload.size()));
    OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                          client.ReceiveResponse(WireOp::kSampleListData));
    return DecodeSampleListPayload<K>(frame.payload.data(),
                                      frame.payload.size());
  }

  /// Runs the §4 bracket filter scan node-side: per bracket, how many of
  /// the node's elements fall below it and which fall inside it, under
  /// `memory_budget` kept elements node-side. The coordinator merges the
  /// per-node scans exactly as the multi-shard local path merges its
  /// per-shard accumulators.
  Result<WireExactScan<K>> ExactPass(
      const std::vector<QuantileEstimate<K>>& estimates,
      const ReadOptions& options, uint64_t memory_budget) const {
    WireExactPassRequest request;
    request.memory_budget = memory_budget;
    request.run_size = options.run_size;
    request.io_mode = static_cast<uint32_t>(options.io_mode);
    request.prefetch_depth = static_cast<uint32_t>(options.prefetch_depth);
    const std::vector<uint8_t> payload =
        EncodeExactPassPayload(request, estimates, spec_.dataset);
    OPAQ_ASSIGN_OR_RETURN(
        NodeClient client,
        NodeClient::Connect(spec_.host, spec_.port, options_));
    OPAQ_RETURN_IF_ERROR(client.SendRequest(WireOp::kExactPass,
                                            payload.data(), payload.size()));
    OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                          client.ReceiveResponse(WireOp::kExactPassData));
    return DecodeExactScanPayload<K>(
        frame.payload.data(), frame.payload.size(),
        static_cast<uint32_t>(estimates.size()));
  }

 private:
  RemoteSpec spec_;
  NodeClientOptions options_;
};

}  // namespace opaq

#endif  // OPAQ_NET_REMOTE_COMPUTE_H_
