#ifndef OPAQ_NET_WIRE_H_
#define OPAQ_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace opaq {

/// OPAQ data-node wire protocol, version 1.
///
/// Every message is one length-prefixed frame: a fixed 16-byte header
/// followed by `payload_len` payload bytes. The header carries a magic, the
/// protocol version, the operation code, and a CRC-32 (IEEE) of the payload,
/// so a receiver can reject foreign traffic, version skew, truncation and
/// corruption before interpreting a single payload byte. Multi-byte fields
/// are little-endian on the wire (the repo's on-disk headers share this
/// convention); the frame layout is pinned by a committed golden byte
/// stream (`tests/golden/wire_v1.bin`).
///
/// The protocol is a strict request/response alternation per frame, but
/// clients may PIPELINE requests: send k `kReadRange` frames back to back,
/// then consume the k responses in order. The server answers frames in
/// arrival order on each connection, which is what makes pipelining safe
/// and what `RemoteRunSource` exploits to overlap network latency with
/// compute.
///
/// Security caveat: v1 is UNAUTHENTICATED and unencrypted — a data node
/// trusts every peer that can reach its port. Deploy on trusted/loopback
/// networks only (see README "Distributed mode").
struct WireFrameHeader {
  static constexpr uint32_t kMagic = 0x4e51504f;  // "OPQN" little-endian
  uint32_t magic = kMagic;
  uint16_t version = 1;
  uint16_t op = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;  // CRC-32 (IEEE 802.3) of the payload bytes
};
static_assert(sizeof(WireFrameHeader) == 16);
static_assert(std::is_trivially_copyable_v<WireFrameHeader>);

/// The wire protocol version this build speaks.
inline constexpr uint16_t kWireVersion = 1;

/// Hard cap on a frame payload: protects both sides from allocation bombs
/// when a corrupted or hostile header claims an absurd length. The server's
/// per-request read bound (`NodeServerOptions::max_read_bytes`) is far
/// below this.
inline constexpr uint32_t kMaxWirePayload = 64u << 20;

/// Operation codes of protocol v1. Requests flow client -> node, responses
/// node -> client. `kError` may answer any request; its payload carries a
/// `Status` the client latches as a sticky stream error.
enum class WireOp : uint16_t {
  kPing = 1,         // -> empty; liveness probe
  kPong = 2,         // <- empty
  kOpenDataset = 3,  // -> payload: dataset name (raw bytes)
  kDatasetInfo = 4,  // <- payload: WireDatasetInfo
  kReadRange = 5,    // -> payload: WireReadRange + dataset name bytes
  kRangeData = 6,    // <- payload: count * element_size raw element bytes
  kError = 7,        // <- payload: u32 StatusCode + message bytes
};

/// Stable short name for an op ("PING", "READ_RANGE", ...); "?" when
/// unknown.
const char* WireOpName(uint16_t op);

/// `kDatasetInfo` payload: what a node discloses about one exported
/// dataset. `max_read_elements` is the node's per-request read bound for
/// this dataset — clients must split larger ranges into that many elements
/// per `kReadRange` (which is also the natural pipelining grain).
struct WireDatasetInfo {
  uint32_t key_type = 0;      // KeyType tag, matches data-file headers
  uint32_t element_size = 0;  // bytes per element
  uint64_t element_count = 0;
  uint64_t max_read_elements = 0;
};
static_assert(sizeof(WireDatasetInfo) == 24);
static_assert(std::is_trivially_copyable_v<WireDatasetInfo>);

/// Fixed prefix of a `kReadRange` payload; the dataset name (raw bytes)
/// follows so the protocol stays stateless per request.
struct WireReadRange {
  uint64_t first = 0;
  uint64_t count = 0;
};
static_assert(sizeof(WireReadRange) == 16);
static_assert(std::is_trivially_copyable_v<WireReadRange>);

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `len` bytes.
/// The classic check value: Crc32("123456789", 9) == 0xCBF43926.
uint32_t Crc32(const void* data, size_t len);

/// One decoded frame.
struct WireFrame {
  uint16_t op = 0;
  std::vector<uint8_t> payload;
};

/// Encodes a frame (header + payload copy) ready to put on the wire.
std::vector<uint8_t> EncodeFrame(WireOp op, const void* payload, size_t len);
std::vector<uint8_t> EncodeFrame(WireOp op,
                                 const std::vector<uint8_t>& payload);

/// Encodes the `kError` frame carrying `status`.
std::vector<uint8_t> EncodeErrorFrame(const Status& status);

/// Decodes the `kError` payload back into the `Status` it carries; a
/// malformed payload decodes to an IoError describing the malformation.
/// Never returns OK (error frames carry errors by construction).
Status DecodeErrorPayload(const uint8_t* payload, size_t len);

/// Validates a received header: magic, version, and payload-length cap.
/// (Op codes are NOT validated here — an unknown op is a dispatch-level
/// error so that the receiver can answer it with a clean error frame.)
Status ValidateFrameHeader(const WireFrameHeader& header);

/// Decodes one frame off the front of `data` (header validation + CRC
/// check). On success stores the frame and sets `*consumed` to the bytes
/// eaten; fails with IoError on truncation, corruption, or a foreign/
/// incompatible header.
Result<WireFrame> DecodeFrame(const uint8_t* data, size_t size,
                              size_t* consumed);

}  // namespace opaq

#endif  // OPAQ_NET_WIRE_H_
