#ifndef OPAQ_NET_WIRE_H_
#define OPAQ_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace opaq {

/// OPAQ data-node wire protocol, versions 1 through 6.
///
/// Every message is one length-prefixed frame: a fixed 16-byte header
/// followed by `payload_len` payload bytes. The header carries a magic, the
/// protocol version, the operation code, and a CRC-32 (IEEE) of the payload,
/// so a receiver can reject foreign traffic, version skew, truncation and
/// corruption before interpreting a single payload byte. Multi-byte fields
/// are little-endian on the wire (the repo's on-disk headers share this
/// convention); the frame layouts are pinned by committed golden byte
/// streams (`tests/golden/wire_v1.bin` .. `wire_v6.bin`).
///
/// Version 1 is the byte-serving protocol: open a dataset, stream element
/// ranges. Version 2 adds COMPUTE ops that push the paper's work to the
/// data node: `kSampleRuns` runs the one-pass sample phase node-side and
/// returns only the O(s) serialized sample list, and `kExactPass` runs the
/// §4 bracket filter scan node-side and returns per-bracket counts plus
/// candidates — turning O(n) bytes on the wire into O(s). Version 3 adds
/// QUERY ops for the long-lived serving daemon (`opaq_queryd` /
/// `QueryServer`): `kOpenSession` resolves a named, already-built
/// `QuerySession` and `kQuery` answers a whole batch of phi-quantile /
/// rank-bracket / equi-depth requests against it — sketch once, serve
/// millions, each answer O(1) off the sample list. Version 4 adds EXTENT
/// ops for datasets stored as compressed extents (io/extent.h):
/// `kReadExtents` ships stored extents verbatim — packed payloads, CRCs
/// and all — so the client decodes and verifies on its own streaming
/// thread and the wire carries the packed byte count, not the logical
/// one. Version 5 adds the INGEST op pair for live (appendable) datasets
/// (src/ingest/live_dataset.h): `kAppend` ships a batch of raw elements
/// the node durably appends as one new segment of a live dataset, and
/// `kAppendAck` answers with the dataset's new totals — turning a data
/// node from a read-only byte/compute server into a continuously
/// ingesting one. Version 6 adds the STATS op pair (observability):
/// `kStats` asks any daemon built on `FrameServer` for a versioned
/// snapshot of its live metrics registry (src/telemetry/), and
/// `kStatsData` answers with per-metric records — counters, gauges, and
/// latency histograms self-hosted on the paper's own sample-list sketch
/// (see net/wire_stats.h for the payload codec). Each op's frame header
/// carries the op's own minimum version (v1 ops stay version 1, compute
/// ops stay version 2), so an older peer rejects exactly the frames it
/// cannot serve: a newer client probes with `kHello` and downgrades when
/// the node answers with a version error (see README's compatibility
/// matrix).
///
/// The protocol is a strict request/response alternation per frame, but
/// clients may PIPELINE requests: send k `kReadRange` frames back to back,
/// then consume the k responses in order. The server answers frames in
/// arrival order on each connection, which is what makes pipelining safe
/// and what `RemoteRunSource` exploits to overlap network latency with
/// compute.
///
/// Security caveat: the protocol is UNAUTHENTICATED and unencrypted — a
/// data node trusts every peer that can reach its port. Deploy on
/// trusted/loopback networks only (see README "Distributed mode").
struct WireFrameHeader {
  static constexpr uint32_t kMagic = 0x4e51504f;  // "OPQN" little-endian
  uint32_t magic = kMagic;
  uint16_t version = 1;
  uint16_t op = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;  // CRC-32 (IEEE 802.3) of the payload bytes
};
static_assert(sizeof(WireFrameHeader) == 16);
static_assert(std::is_trivially_copyable_v<WireFrameHeader>);

/// The baseline (byte-serving) protocol version every build speaks.
inline constexpr uint16_t kWireVersion = 1;

/// The version that introduced the compute ops (`kHello`..`kExactPassData`)
/// — their frames stamp this forever, keeping `wire_v2.bin` byte-stable.
inline constexpr uint16_t kComputeWireVersion = 2;

/// The version that introduced the query-serving ops
/// (`kOpenSession`..`kQueryResult`).
inline constexpr uint16_t kQueryWireVersion = 3;

/// The version that introduced the compressed-extent streaming ops
/// (`kOpenExtents`..`kExtentData`): datasets stored as compressed extents
/// (io/extent.h) ship PACKED over the wire and decode client-side, so the
/// network sees the same bytes-from-disk cut the codecs buy locally.
inline constexpr uint16_t kExtentWireVersion = 4;

/// The version that introduced the streaming-ingest ops
/// (`kAppend`/`kAppendAck`): remote writers append element batches that a
/// node persists as new segments of a live dataset.
inline constexpr uint16_t kAppendWireVersion = 5;

/// The version that introduced the observability ops
/// (`kStats`/`kStatsData`): any daemon serves a snapshot of its live
/// metrics registry to `opaq_cli stats`.
inline constexpr uint16_t kStatsWireVersion = 6;

/// The newest protocol version this build speaks.
inline constexpr uint16_t kMaxWireVersion = kStatsWireVersion;

/// Hard cap on a frame payload: protects both sides from allocation bombs
/// when a corrupted or hostile header claims an absurd length. The server's
/// per-request read bound (`NodeServerOptions::max_read_bytes`) is far
/// below this.
inline constexpr uint32_t kMaxWirePayload = 64u << 20;

/// Operation codes. Requests flow client -> node, responses node -> client.
/// `kError` may answer any request; its payload carries a `Status` the
/// client latches as a sticky stream error. Ops 1-7 are protocol v1; ops
/// 8+ are the v2 compute extension and travel in version-2 frames (see
/// `WireOpVersion`).
enum class WireOp : uint16_t {
  kPing = 1,         // -> empty; liveness probe
  kPong = 2,         // <- empty
  kOpenDataset = 3,  // -> payload: dataset name (raw bytes)
  kDatasetInfo = 4,  // <- payload: WireDatasetInfo
  kReadRange = 5,    // -> payload: WireReadRange + dataset name bytes
  kRangeData = 6,    // <- payload: count * element_size raw element bytes
  kError = 7,        // <- payload: u32 StatusCode + message bytes
  // ----- v2: compute ops -----
  kHello = 8,           // -> payload: WireHello (client's newest version)
  kHelloAck = 9,        // <- payload: WireHello (node's newest version)
  kSampleRuns = 10,     // -> payload: WireSampleRunsRequest + dataset name
  kSampleListData = 11, // <- payload: WireSampleListHeader + sorted samples
  kExactPass = 12,      // -> payload: WireExactPassRequest + dataset name
                        //    (name_len bytes) + bracket bounds ((lower,
                        //    upper) element pairs)
  kExactPassData = 13,  // <- payload: WireExactPassHeader + u64 below[] +
                        //    u64 kept_count[] + kept element bytes
  // ----- v3: query-serving ops (opaq_queryd / QueryServer) -----
  kOpenSession = 14,  // -> payload: session name (raw bytes)
  kSessionInfo = 15,  // <- payload: WireSessionInfo
  kQuery = 16,        // -> payload: WireQueryHeader + session name +
                      //    num_requests * (WireQueryRequest + one element)
  kQueryResult = 17,  // <- payload: WireQueryResultHeader + per result
                      //    (WireQueryResultRecord + estimates + exact
                      //    values); see net/wire_query.h
  // ----- v4: compressed-extent streaming ops -----
  kOpenExtents = 18,  // -> payload: dataset name (raw bytes)
  kExtentInfo = 19,   // <- payload: WireExtentInfo
  kReadExtents = 20,  // -> payload: WireReadExtents + dataset name bytes
  kExtentData = 21,   // <- payload: `count` stored extents back to back,
                      //    each self-describing (40-byte ExtentHeader +
                      //    packed payload; decode with DecodeStoredExtent)
  // ----- v5: streaming-ingest ops (live datasets) -----
  kAppend = 22,     // -> payload: WireAppendRequest + dataset name
                    //    (name_len bytes) + count * element_size raw
                    //    element bytes, appended as ONE new segment
  kAppendAck = 23,  // <- payload: WireAppendAck (new dataset totals)
  // ----- v6: observability ops (stats snapshot) -----
  kStats = 24,      // -> empty payload: request a stats snapshot
  kStatsData = 25,  // <- payload: WireStatsHeader + per-metric records
                    //    (see net/wire_stats.h)
};

/// Stable short name for an op ("PING", "READ_RANGE", ...); "?" when
/// unknown.
const char* WireOpName(uint16_t op);

/// The minimum protocol version that carries `op` — and the version
/// `EncodeFrame` stamps into the frame header, so v1 ops stay byte-stable
/// (golden `wire_v1.bin`), compute ops stamp exactly 2 forever (golden
/// `wire_v2.bin`), and query ops announce themselves as v3 — each cleanly
/// rejected by peers too old to speak it.
uint16_t WireOpVersion(WireOp op);

/// `kDatasetInfo` payload: what a node discloses about one exported
/// dataset. `max_read_elements` is the node's per-request read bound for
/// this dataset — clients must split larger ranges into that many elements
/// per `kReadRange` (which is also the natural pipelining grain).
struct WireDatasetInfo {
  uint32_t key_type = 0;      // KeyType tag, matches data-file headers
  uint32_t element_size = 0;  // bytes per element
  uint64_t element_count = 0;
  uint64_t max_read_elements = 0;
};
static_assert(sizeof(WireDatasetInfo) == 24);
static_assert(std::is_trivially_copyable_v<WireDatasetInfo>);

/// Fixed prefix of a `kReadRange` payload; the dataset name (raw bytes)
/// follows so the protocol stays stateless per request.
struct WireReadRange {
  uint64_t first = 0;
  uint64_t count = 0;
};
static_assert(sizeof(WireReadRange) == 16);
static_assert(std::is_trivially_copyable_v<WireReadRange>);

/// `kExtentInfo` payload: what a node discloses about a dataset stored as
/// compressed extents — the full trusted geometry a client needs to decode
/// and validate every stored extent it receives (the stored headers are
/// NEVER trusted for buffer sizing; see `DecodeStoredExtent`). A node
/// answers `kOpenExtents` with Unimplemented when the dataset is not stored
/// as extents — the signal to fall back to `kReadRange` streaming.
/// `max_extents_per_read` is the node's per-request bound on `kReadExtents`.
struct WireExtentInfo {
  uint32_t key_type = 0;      // KeyType tag, matches data-file headers
  uint32_t element_size = 0;  // bytes per element
  uint64_t element_count = 0;
  uint64_t extent_elements = 0;  // logical elements per full extent
  uint64_t num_extents = 0;
  uint64_t max_extents_per_read = 0;
  uint16_t default_codec = 0;  // ExtentCodec tag (informational)
  uint16_t reserved16 = 0;
  uint32_t reserved32 = 0;
};
static_assert(sizeof(WireExtentInfo) == 48);
static_assert(std::is_trivially_copyable_v<WireExtentInfo>);

/// Fixed prefix of a `kReadExtents` payload; the dataset name (raw bytes)
/// follows. Requests the stored (packed) bytes of logical extents
/// `[first_extent, first_extent + count)`.
struct WireReadExtents {
  uint64_t first_extent = 0;
  uint64_t count = 0;
};
static_assert(sizeof(WireReadExtents) == 16);
static_assert(std::is_trivially_copyable_v<WireReadExtents>);

/// `kHello` / `kHelloAck` payload: each side announces the newest protocol
/// version it speaks; the effective version is the minimum of the two. A
/// v1-only node never parses this — it rejects the version-2 frame header
/// itself with an error frame mentioning "version", which a v2 client
/// treats as "speak v1" (fallback to range streaming).
struct WireHello {
  uint16_t max_version = kMaxWireVersion;
  uint16_t reserved = 0;
};
static_assert(sizeof(WireHello) == 4);
static_assert(std::is_trivially_copyable_v<WireHello>);

/// Fixed prefix of a `kSampleRuns` payload (the dataset name follows): the
/// full `OpaqConfig` of the sample phase the node must run, so the node-side
/// sketch is the SAME computation the client would have run locally — the
/// returned sample list is byte-identical to client-side sketching of the
/// same data (samples are order statistics; the seed only steers selection
/// pivots, never results).
struct WireSampleRunsRequest {
  uint64_t run_size = 0;
  uint64_t samples_per_run = 0;
  uint64_t seed = 0;
  uint32_t select_algorithm = 0;  // SelectAlgorithm tag
  uint32_t io_mode = 0;           // 0 = sync, 1 = async
  uint32_t prefetch_depth = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(WireSampleRunsRequest) == 40);
static_assert(std::is_trivially_copyable_v<WireSampleRunsRequest>);

/// Fixed prefix of a `kSampleListData` payload; `num_samples` raw sorted
/// element bytes follow. Mirrors `SampleAccounting` field for field, so a
/// received list reconstructs losslessly (and merges with any other list of
/// the same sub-run size).
struct WireSampleListHeader {
  uint64_t subrun_size = 0;
  uint64_t num_runs = 0;
  uint64_t num_samples = 0;
  uint64_t num_uncovered = 0;
  uint64_t total_elements = 0;
};
static_assert(sizeof(WireSampleListHeader) == 40);
static_assert(std::is_trivially_copyable_v<WireSampleListHeader>);

/// Fixed prefix of a `kExactPass` payload; the dataset name (`name_len`
/// bytes) follows, then `num_brackets` (lower, upper) element pairs. The
/// name travels with its own length because the bracket region's size
/// depends on the dataset's element size — which the node only knows after
/// resolving the name. The node scans its runs once, counting elements
/// below each bracket and keeping the elements inside it (the paper's §4
/// filter pass), under `memory_budget` kept elements.
struct WireExactPassRequest {
  uint64_t memory_budget = 0;  // max kept elements node-side (0 invalid)
  uint64_t run_size = 0;
  uint32_t num_brackets = 0;
  uint32_t io_mode = 0;  // 0 = sync, 1 = async
  uint32_t prefetch_depth = 0;
  uint32_t name_len = 0;  // dataset-name bytes following this prefix
};
static_assert(sizeof(WireExactPassRequest) == 32);
static_assert(std::is_trivially_copyable_v<WireExactPassRequest>);

/// Fixed prefix of a `kExactPassData` payload; `num_brackets` u64
/// below-counts follow, then `num_brackets` u64 kept-counts, then the kept
/// elements of every bracket concatenated in bracket order (`kept_total`
/// elements in all).
struct WireExactPassHeader {
  uint64_t kept_total = 0;
  uint32_t num_brackets = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(WireExactPassHeader) == 16);
static_assert(std::is_trivially_copyable_v<WireExactPassHeader>);

/// Fixed prefix of a `kAppend` payload; the dataset name (`name_len`
/// bytes) follows, then `count` raw element bytes. The name travels with
/// its own length because the element region's size depends on the
/// dataset's element size — which the node only knows after resolving the
/// name. The node appends the whole batch as ONE durable segment (fsync'd
/// file, then fsync'd manifest record — see src/ingest/live_dataset.h), so
/// an acked append is crash-safe and visible to every later reader.
struct WireAppendRequest {
  uint64_t count = 0;     // elements in the trailing region (0 invalid)
  uint32_t name_len = 0;  // dataset-name bytes following this prefix
  uint32_t flags = 0;     // reserved, must be 0
};
static_assert(sizeof(WireAppendRequest) == 16);
static_assert(std::is_trivially_copyable_v<WireAppendRequest>);

/// Fixed prefix of a `kStatsData` payload: the snapshot's own layout
/// version (independent of the wire version, so records can grow fields
/// without a protocol bump) and the metric-record count. `num_metrics`
/// records follow, each a `WireStatsMetric` prefix + name bytes + the
/// type-specific value region (see net/wire_stats.h for the codec and its
/// hostile-input validation).
struct WireStatsHeader {
  uint32_t stats_version = 1;
  uint32_t num_metrics = 0;
};
static_assert(sizeof(WireStatsHeader) == 8);
static_assert(std::is_trivially_copyable_v<WireStatsHeader>);

/// Fixed prefix of one metric record inside a `kStatsData` payload. After
/// it: `name_len` name bytes, then the value region — counters and gauges
/// carry one u64 (gauges two's-complement), histograms a
/// `WireStatsHistogram` + `num_samples` sorted u64 samples.
struct WireStatsMetric {
  uint16_t name_len = 0;
  uint8_t type = 0;      // MetricType tag: 0 counter | 1 gauge | 2 histogram
  uint8_t reserved = 0;  // must be 0
};
static_assert(sizeof(WireStatsMetric) == 4);
static_assert(std::is_trivially_copyable_v<WireStatsMetric>);

/// Histogram value region of a stats metric record: the flattened
/// sample-list sketch the `LatencyHistogram` accumulated (`num_samples`
/// sorted u64 samples follow this prefix).
struct WireStatsHistogram {
  uint64_t count = 0;        // values recorded
  uint64_t sum = 0;          // sum of recorded values
  uint64_t subrun_size = 0;  // the sketch's sub-run size (> 0)
  uint64_t num_runs = 0;
  uint32_t num_samples = 0;
  uint32_t reserved = 0;  // must be 0
};
static_assert(sizeof(WireStatsHistogram) == 40);
static_assert(std::is_trivially_copyable_v<WireStatsHistogram>);

/// `kAppendAck` payload: the live dataset's totals AFTER the append was
/// made durable — the writer's commit receipt. `total_elements` is also
/// what an incremental refresher needs to know which tail it has not yet
/// absorbed.
struct WireAppendAck {
  uint64_t total_elements = 0;  // logical elements now in the dataset
  uint64_t num_segments = 0;    // durable manifest records (segments)
};
static_assert(sizeof(WireAppendAck) == 16);
static_assert(std::is_trivially_copyable_v<WireAppendAck>);

/// `kSessionInfo` payload: what `opaq_queryd` discloses about one served
/// session — the dataset geometry plus the session-level certificates every
/// answer will carry. `epoch` counts atomic session swaps (startup build =
/// 1); a client seeing it change knows the dataset was refreshed.
/// `exact_enabled` is 0 when the session was built without attached
/// sources, in which case exact-flagged requests answer FailedPrecondition.
struct WireSessionInfo {
  uint32_t key_type = 0;      // KeyType tag, matches data-file headers
  uint32_t element_size = 0;  // bytes per element
  uint64_t total_elements = 0;
  uint64_t max_rank_error = 0;  // Lemma 1-3 budget (~ n/s)
  uint64_t num_samples = 0;
  uint64_t epoch = 0;
  uint32_t exact_enabled = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(WireSessionInfo) == 48);
static_assert(std::is_trivially_copyable_v<WireSessionInfo>);

/// Fixed prefix of a `kQuery` payload; the session name (`name_len` bytes)
/// follows, then `num_requests` request records. The name travels with its
/// own length because each record carries one element-sized probe value —
/// whose size the server only knows after resolving the name.
struct WireQueryHeader {
  uint32_t name_len = 0;
  uint32_t num_requests = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(WireQueryHeader) == 16);
static_assert(std::is_trivially_copyable_v<WireQueryHeader>);

/// One request record of a `kQuery` payload: the wire form of
/// `QueryRequest<K>` (opaq/query.h). One element of probe-value bytes
/// follows each record (meaningful for kind 2 = rank-of; zero-filled
/// otherwise, so every record has the same size and the payload length is
/// checkable before interpreting a single field).
struct WireQueryRequest {
  uint32_t kind = 0;   // 0 quantile(phi) | 1 by-rank | 2 rank-of | 3 equi-q
  uint32_t flags = 0;  // bit 0: exact (§4 second pass; shared per batch)
  double phi = 0;      // kind 0
  uint64_t rank = 0;   // kind 1
  uint32_t q = 0;      // kind 3
  uint32_t reserved = 0;
};
static_assert(sizeof(WireQueryRequest) == 32);
static_assert(std::is_trivially_copyable_v<WireQueryRequest>);

/// Fixed prefix of a `kQueryResult` payload: the batch-level certificates,
/// then `num_results` results (one `WireQueryResultRecord` each, in request
/// order).
struct WireQueryResultHeader {
  uint64_t total_elements = 0;
  uint64_t max_rank_error = 0;
  uint32_t num_results = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(WireQueryResultHeader) == 24);
static_assert(std::is_trivially_copyable_v<WireQueryResultHeader>);

/// One result of a `kQueryResult` payload: the wire form of
/// `QueryResult<K>`. After each record come `num_estimates` estimate
/// records (`WireQuantileEstimate` + the two element-sized bracket bounds
/// each), then `num_exact` element-sized exact values (0 or num_estimates).
/// The rank-bracket fields are meaningful for kind 2 only.
struct WireQueryResultRecord {
  uint32_t kind = 0;
  uint32_t num_estimates = 0;
  uint32_t num_exact = 0;
  uint32_t reserved = 0;
  uint64_t min_rank_le = 0;
  uint64_t max_rank_le = 0;
  uint64_t min_rank_lt = 0;
  uint64_t max_rank_lt = 0;
};
static_assert(sizeof(WireQueryResultRecord) == 48);
static_assert(std::is_trivially_copyable_v<WireQueryResultRecord>);

/// One quantile estimate inside a `kQueryResult` payload: the wire form of
/// `QuantileEstimate<K>` minus the bounds, which follow as two element-sized
/// values (lower, upper) right after the record.
struct WireQuantileEstimate {
  uint64_t target_rank = 0;
  uint64_t lower_index = 0;
  uint64_t upper_index = 0;
  uint64_t max_rank_error = 0;
  uint32_t clamp_flags = 0;  // bit 0: lower_clamped, bit 1: upper_clamped
  uint32_t reserved = 0;
};
static_assert(sizeof(WireQuantileEstimate) == 40);
static_assert(std::is_trivially_copyable_v<WireQuantileEstimate>);

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `len` bytes.
/// The classic check value: Crc32("123456789", 9) == 0xCBF43926.
uint32_t Crc32(const void* data, size_t len);

/// One decoded frame.
struct WireFrame {
  uint16_t op = 0;
  std::vector<uint8_t> payload;
};

/// Encodes a frame (header + payload copy) ready to put on the wire. The
/// header's version field is `WireOpVersion(op)`: v1 ops encode exactly as
/// they always have, v2 ops stamp version 2.
std::vector<uint8_t> EncodeFrame(WireOp op, const void* payload, size_t len);
std::vector<uint8_t> EncodeFrame(WireOp op,
                                 const std::vector<uint8_t>& payload);

/// Encodes the `kError` frame carrying `status`.
std::vector<uint8_t> EncodeErrorFrame(const Status& status);

/// Decodes the `kError` payload back into the `Status` it carries; a
/// malformed payload decodes to an IoError describing the malformation.
/// Never returns OK (error frames carry errors by construction).
Status DecodeErrorPayload(const uint8_t* payload, size_t len);

/// Validates a received header: magic, version (1..kMaxWireVersion), and
/// payload-length cap. (Op codes are NOT validated here — an unknown op is
/// a dispatch-level error so that the receiver can answer it with a clean
/// error frame.)
Status ValidateFrameHeader(const WireFrameHeader& header);

/// Decodes one frame off the front of `data` (header validation + CRC
/// check). On success stores the frame and sets `*consumed` to the bytes
/// eaten; fails with IoError on truncation, corruption, or a foreign/
/// incompatible header.
Result<WireFrame> DecodeFrame(const uint8_t* data, size_t size,
                              size_t* consumed);

}  // namespace opaq

#endif  // OPAQ_NET_WIRE_H_
