#ifndef OPAQ_NET_REMOTE_EXTENT_SOURCE_H_
#define OPAQ_NET_REMOTE_EXTENT_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/data_file.h"
#include "io/extent.h"
#include "net/client.h"
#include "parallel/channel.h"
#include "util/math.h"
#include "util/status.h"

namespace opaq {

/// Streams the runs of a COMPRESSED dataset served by a remote data node
/// (wire v4): the node ships each stored extent verbatim — packed payload,
/// CRC and all — and this source validates and decodes it CLIENT-SIDE, so
/// the wire carries the packed byte count, not the logical one (the same
/// bytes-from-disk cut the codecs buy locally, applied to the network).
/// The network sibling of `ExtentRunSource`, and the extent sibling of
/// `RemoteRunSource`.
///
/// Under `IoMode::kSync` each extent is a blocking request/response decoded
/// inline. Under `IoMode::kAsync` a streaming thread pipelines up to
/// `prefetch_depth` single-extent requests on the wire and decodes each
/// response on the streaming thread — CRC check and codec work never touch
/// the sampling thread — feeding decoded chunks through a bounded channel.
///
/// Every stored extent is validated with `DecodeStoredExtent` against the
/// geometry negotiated at open (`WireExtentInfo`), NEVER against the bytes
/// the node sent — a lying or corrupt extent header is a clean sticky
/// `Status`, not an allocation bomb or a crash, even though the peer is the
/// one choosing the bytes. Error semantics match every other source: runs
/// wholly before the first failing extent are delivered, then the failure
/// latches; the destructor closes the channel, shakes the streaming thread
/// out of any blocked socket read, and joins it.
template <typename K>
class RemoteExtentSource : public RunSource<K> {
 public:
  RemoteExtentSource(const RemoteSpec& spec, const WireExtentInfo& info,
                     const NodeClientOptions& client_options,
                     const ReadOptions& options,
                     std::shared_ptr<ExtentStats> stats, uint64_t first = 0,
                     uint64_t count = UINT64_MAX)
      : spec_(spec), info_(info), run_size_(options.run_size),
        threaded_(options.io_mode == IoMode::kAsync),
        verify_checksums_(options.verify_checksums), begin_(first),
        next_(first), end_(first), stats_(std::move(stats)) {
    OPAQ_CHECK_GT(run_size_, 0u);
    OPAQ_CHECK_EQ(info.element_size, sizeof(K))
        << "provider handshake admitted a mismatched element size";
    OPAQ_CHECK_LE(first, info.element_count);
    end_ = first + std::min(count, info.element_count - first);
    next_extent_ = next_ / info_.extent_elements;
    auto client = NodeClient::Connect(spec_.host, spec_.port, client_options);
    if (!client.ok()) {
      status_ = client.status();
      return;
    }
    client_ = std::make_unique<NodeClient>(std::move(client).value());
    if (!threaded_ || next_ >= end_) return;
    OPAQ_CHECK_GE(options.prefetch_depth, 1u);
    OPAQ_CHECK_LE(options.prefetch_depth, kMaxPrefetchDepth);
    window_ = options.prefetch_depth;
    channel_ = std::make_unique<Channel<ChunkMessage>>(
        static_cast<size_t>(options.prefetch_depth));
    thread_ = std::thread([this] { StreamLoop(); });
  }

  ~RemoteExtentSource() override {
    if (channel_ != nullptr) channel_->Close();
    // Wake the streaming thread out of any blocked socket transfer; the
    // descriptor stays valid until `client_` dies below.
    if (client_ != nullptr) client_->ShutdownNow();
    if (thread_.joinable()) thread_.join();
  }

  RemoteExtentSource(const RemoteExtentSource&) = delete;
  RemoteExtentSource& operator=(const RemoteExtentSource&) = delete;

  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (!status_.ok()) return status_;
    if (next_ >= end_) return false;
    const uint64_t len = std::min(run_size_, end_ - next_);
    while (pending_total_ < len) {
      ChunkMessage message;
      if (threaded_) {
        if (!channel_->Receive(&message)) {
          // The streaming thread closes only after delivering every extent
          // (or its error); running dry earlier means the source broke.
          status_ = Status::Internal(
              "node extent stream stopped short of extent " +
              std::to_string(next_extent_));
          return status_;
        }
      } else {
        message.status = FetchChunk(next_extent_, &message.data);
      }
      if (!message.status.ok()) {
        status_ = message.status;
        return status_;
      }
      pending_total_ += message.data.size();
      pending_.push_back(std::move(message.data));
      ++next_extent_;
    }
    // Splice the run off the front of the pending chunk queue.
    buffer->resize(len);
    uint64_t filled = 0;
    while (filled < len) {
      std::vector<K>& front = pending_.front();
      const uint64_t take =
          std::min<uint64_t>(len - filled, front.size() - pending_head_);
      std::copy_n(front.begin() + static_cast<size_t>(pending_head_),
                  static_cast<size_t>(take),
                  buffer->begin() + static_cast<size_t>(filled));
      filled += take;
      pending_head_ += take;
      if (pending_head_ == front.size()) {
        pending_.pop_front();
        pending_head_ = 0;
      }
    }
    pending_total_ -= len;
    next_ += len;
    return true;
  }

 private:
  struct ChunkMessage {
    Status status;
    std::vector<K> data;
  };

  /// Elements of logical extent `e` (only the last extent may be ragged) —
  /// from the geometry negotiated at open, the trusted side of every
  /// decode.
  uint64_t ExtentLength(uint64_t e) const {
    const uint64_t start = e * info_.extent_elements;
    return std::min(info_.extent_elements, info_.element_count - start);
  }

  /// Validates + decodes the stored bytes of extent `e`, trimmed to the
  /// requested element range. `extent_buf` is caller-owned so each thread
  /// reuses its own full-extent buffer for clipped extents.
  Status DecodeChunk(uint64_t e, const std::vector<uint8_t>& stored,
                     std::vector<K>* data, std::vector<K>* extent_buf) const {
    const uint64_t extent_start = e * info_.extent_elements;
    const uint64_t extent_len = ExtentLength(e);
    const uint64_t expected_unpacked = extent_len * sizeof(K);
    // Trim against the immutable range bounds (begin_/end_), never the
    // consumer's moving cursor — the streaming thread shares this object.
    const uint64_t start = std::max(extent_start, begin_);
    const uint64_t stop = std::min(extent_start + extent_len, end_);
    data->resize(stop - start);
    if (start == extent_start && stop == extent_start + extent_len) {
      // Whole extent wanted: decode straight into the chunk.
      return DecodeStoredExtent(stored.data(), stored.size(), e,
                                expected_unpacked, sizeof(K),
                                verify_checksums_, data->data(),
                                stats_.get());
    }
    extent_buf->resize(extent_len);
    OPAQ_RETURN_IF_ERROR(DecodeStoredExtent(
        stored.data(), stored.size(), e, expected_unpacked, sizeof(K),
        verify_checksums_, extent_buf->data(), stats_.get()));
    std::copy_n(extent_buf->begin() +
                    static_cast<size_t>(start - extent_start),
                static_cast<size_t>(stop - start), data->begin());
    return Status::OK();
  }

  /// Inline (sync) path: one blocking request/response + decode.
  Status FetchChunk(uint64_t e, std::vector<K>* data) {
    OPAQ_RETURN_IF_ERROR(client_->SendReadExtents(spec_.dataset, e, 1));
    auto stored = client_->ReceiveExtents();
    if (!stored.ok()) return stored.status();
    return DecodeChunk(e, *stored, data, &extent_buf_);
  }

  /// Body of the streaming thread: keeps `window_` single-extent requests
  /// on the wire, receives responses in order, decodes each on THIS thread,
  /// and feeds decoded chunks through the bounded channel.
  void StreamLoop() {
    std::vector<K> extent_buf;
    const uint64_t end_extent = DivCeil(end_, info_.extent_elements);
    uint64_t send_cursor = next_extent_;
    uint64_t recv_cursor = next_extent_;
    uint64_t outstanding = 0;
    while (recv_cursor < end_extent) {
      while (outstanding < window_ && send_cursor < end_extent) {
        Status s = client_->SendReadExtents(spec_.dataset, send_cursor, 1);
        if (!s.ok()) {
          EmitFailure(s);
          return;
        }
        ++send_cursor;
        ++outstanding;
      }
      auto stored = client_->ReceiveExtents();
      if (!stored.ok()) {
        EmitFailure(stored.status());
        return;
      }
      ChunkMessage message;
      message.status =
          DecodeChunk(recv_cursor, *stored, &message.data, &extent_buf);
      if (!message.status.ok()) {
        EmitFailure(message.status);
        return;
      }
      ++recv_cursor;
      --outstanding;
      if (!channel_->Send(std::move(message))) return;  // consumer gone
    }
    channel_->Close();
  }

  void EmitFailure(Status status) {
    ChunkMessage message;
    message.status = std::move(status);
    message.data.clear();
    channel_->Send(std::move(message));
    channel_->Close();
  }

  RemoteSpec spec_;
  WireExtentInfo info_;
  uint64_t run_size_;
  bool threaded_;
  bool verify_checksums_;
  uint64_t begin_;        // first element of the range (immutable)
  uint64_t next_;         // next logical element to deliver (consumer only)
  uint64_t end_;          // one past the last element (immutable)
  uint64_t next_extent_;  // next logical extent to pop/decode
  uint64_t window_ = 0;   // pipelined requests in flight (immutable)
  Status status_;         // sticky failure state

  std::deque<std::vector<K>> pending_;  // chunks popped but not yet spliced
  uint64_t pending_head_ = 0;           // consumed prefix of pending_.front()
  uint64_t pending_total_ = 0;          // elements across pending_ minus head

  std::vector<K> extent_buf_;  // inline-mode clipped-extent decode buffer
  std::shared_ptr<ExtentStats> stats_;

  std::unique_ptr<NodeClient> client_;
  std::unique_ptr<Channel<ChunkMessage>> channel_;
  std::thread thread_;
};

/// A compressed remote dataset as a `RunProvider`: the wire-v4 network
/// storage backend. `Connect` fetches the extent geometry (`kOpenExtents`)
/// and validates the node's key type against `K`; a node that answers
/// Unimplemented is simply not serving extents for that dataset — the
/// caller (Source::OpenRemote) falls back to `RemoteRunProvider` range
/// streaming. Every `OpenRuns` dials its own connection, like the other
/// remote provider; the pack/unpack accounting of all its streams lands in
/// one shared `ExtentStats` surfaced through `pack_stats()`.
template <typename K>
class RemoteExtentProvider : public RunProvider<K> {
 public:
  static Result<RemoteExtentProvider<K>> Connect(
      const std::string& spec_text,
      const NodeClientOptions& options = NodeClientOptions()) {
    auto spec = ParseRemoteSpec(spec_text);
    if (!spec.ok()) return spec.status();
    return Connect(*spec, options);
  }

  static Result<RemoteExtentProvider<K>> Connect(
      const RemoteSpec& spec,
      const NodeClientOptions& options = NodeClientOptions()) {
    auto client = NodeClient::Connect(spec.host, spec.port, options);
    if (!client.ok()) return client.status();
    auto info = client->OpenExtents(spec.dataset);
    if (!info.ok()) return info.status();
    if (info->key_type != static_cast<uint32_t>(KeyTraits<K>::kType) ||
        info->element_size != sizeof(K)) {
      return Status::InvalidArgument(
          "remote dataset '" + spec.ToString() +
          "' holds a different key type than " + KeyTraits<K>::kName);
    }
    return RemoteExtentProvider<K>(spec, *info, options);
  }

  uint64_t size() const override { return info_.element_count; }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    return std::make_unique<RemoteExtentSource<K>>(
        spec_, info_, client_options_, options, stats_, first, count);
  }

  const ExtentStats* pack_stats() const override { return stats_.get(); }

  const RemoteSpec& spec() const { return spec_; }
  const WireExtentInfo& info() const { return info_; }

 private:
  RemoteExtentProvider(RemoteSpec spec, WireExtentInfo info,
                       NodeClientOptions client_options)
      : spec_(std::move(spec)), info_(info),
        client_options_(client_options),
        stats_(std::make_shared<ExtentStats>()) {}

  RemoteSpec spec_;
  WireExtentInfo info_;
  NodeClientOptions client_options_;
  std::shared_ptr<ExtentStats> stats_;
};

}  // namespace opaq

#endif  // OPAQ_NET_REMOTE_EXTENT_SOURCE_H_
