#include "net/export_spec.h"

#include <set>
#include <sstream>
#include <utility>

namespace opaq {

Result<std::vector<ExportSpecEntry>> ParseExportSpecs(
    const std::string& text) {
  std::vector<ExportSpecEntry> entries;
  std::set<std::string> seen;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return Status::InvalidArgument("bad --export entry '" + item +
                                     "': want name=path[+path...]");
    }
    ExportSpecEntry entry;
    entry.name = item.substr(0, eq);
    if (!seen.insert(entry.name).second) {
      return Status::InvalidArgument(
          "duplicate dataset name '" + entry.name +
          "' in --export: each name must map to exactly one dataset");
    }
    const std::string path_list = item.substr(eq + 1);
    if (path_list.back() == '+') {
      // getline() would silently drop the empty token after a trailing '+'.
      return Status::InvalidArgument(
          "empty stripe path in --export entry '" + item + "'");
    }
    std::stringstream paths(path_list);
    std::string path;
    while (std::getline(paths, path, '+')) {
      if (path.empty()) {
        return Status::InvalidArgument(
            "empty stripe path in --export entry '" + item + "'");
      }
      entry.paths.push_back(path);
    }
    if (entry.paths.empty()) {
      return Status::InvalidArgument("no paths in --export entry '" + item +
                                     "'");
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    return Status::InvalidArgument("--export names no datasets");
  }
  return entries;
}

}  // namespace opaq
