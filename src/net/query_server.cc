#include "net/query_server.h"

#include "telemetry/trace.h"

namespace opaq {

namespace {
FrameServerOptions ToFrameOptions(const QueryServerOptions& options) {
  FrameServerOptions frame_options;
  frame_options.bind_address = options.bind_address;
  frame_options.port = options.port;
  frame_options.response_delay_seconds = options.response_delay_seconds;
  frame_options.max_wire_version = options.max_wire_version;
  frame_options.metrics = options.metrics;
  return frame_options;
}
}  // namespace

QueryServer::QueryServer(QueryServerOptions options)
    : FrameServer(ToFrameOptions(options)), options_(std::move(options)) {}

QueryServer::~QueryServer() {
  // Joined here, not in ~FrameServer: connection threads virtual-call
  // HandleFrame, which must still exist while they run.
  Stop();
}

Status QueryServer::ValidateStart() {
  if (sessions_.empty()) {
    return Status::FailedPrecondition(
        "a query daemon with nothing to serve serves no purpose; call "
        "Serve before Start");
  }
  if (options_.max_wire_version < kQueryWireVersion) {
    return Status::InvalidArgument(
        "max_wire_version of " + std::to_string(options_.max_wire_version) +
        " cannot carry the query ops; they need version " +
        std::to_string(kQueryWireVersion));
  }
  if (options_.exact_admission_delay_seconds < 0) {
    return Status::InvalidArgument(
        "exact_admission_delay_seconds must be non-negative");
  }
  return Status::OK();
}

Status QueryServer::Refresh(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("query server serves no session named '" + name +
                            "'");
  }
  return it->second->Rebuild();
}

Result<WireSessionInfo> QueryServer::SessionInfo(
    const std::string& name) const {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("query server serves no session named '" + name +
                            "'");
  }
  return it->second->Info();
}

void QueryServer::PublishMetrics(MetricsRegistry* registry) {
  FrameServer::PublishMetrics(registry);
  registry->GetCounter("query.exact_passes")->Set(exact_passes());
  // Frozen at Start, so reading the map size without a lock is safe.
  registry->GetGauge("query.sessions")
      ->Set(static_cast<int64_t>(sessions_.size()));
}

bool QueryServer::HandleFrame(TcpConnection* conn, const WireFrame& frame) {
  switch (static_cast<WireOp>(frame.op)) {
    case WireOp::kPing:
      return SendCounted(conn, WireOp::kPong, nullptr, 0);

    case WireOp::kHello: {
      if (frame.payload.size() < sizeof(WireHello)) {
        SendErrorCounted(conn, Status::IoError(
                                   "HELLO payload shorter than its header"));
        return false;  // framing is off; close
      }
      WireHello ack;
      ack.max_version = frame_options().max_wire_version;
      return SendCounted(conn, WireOp::kHelloAck, &ack, sizeof(ack));
    }

    case WireOp::kOpenSession: {
      const std::string name(frame.payload.begin(), frame.payload.end());
      auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        // Recoverable: a client probing names keeps its connection.
        return SendErrorCounted(
            conn, Status::NotFound("query server serves no session named '" +
                                   name + "'"));
      }
      WireSessionInfo info = it->second->Info();
      return SendCounted(conn, WireOp::kSessionInfo, &info, sizeof(info));
    }

    case WireOp::kQuery: {
      auto decoded = DecodeQueryName(frame.payload.data(),
                                     frame.payload.size());
      if (!decoded.ok()) {
        // IoError means the framing itself lies (name_len past the end);
        // a bad-but-well-framed batch (0 or too many requests) keeps the
        // connection.
        SendErrorCounted(conn, decoded.status());
        return decoded.status().code() != StatusCode::kIoError;
      }
      auto it = sessions_.find(decoded->second);
      if (it == sessions_.end()) {
        return SendErrorCounted(
            conn, Status::NotFound("query server serves no session named '" +
                                   decoded->second + "'"));
      }
      const uint64_t start_ns = FlightRecorder::NowNs();
      auto answer = it->second->Answer(frame.payload.data(),
                                       frame.payload.size(), decoded->first);
      MetricsRegistry* registry = metrics_registry();
      if (registry->enabled()) {
        registry->GetHistogram("query.batch_latency_us")
            ->Record((FlightRecorder::NowNs() - start_ns) / 1000);
      }
      if (!answer.ok()) {
        // Same split: length lies close the stream, per-request rejections
        // (bad phi / rank / q, exact without sources) keep it.
        SendErrorCounted(conn, answer.status());
        return answer.status().code() != StatusCode::kIoError;
      }
      return SendCounted(conn, WireOp::kQueryResult, answer->data(),
                         answer->size());
    }

    default:
      SendErrorCounted(conn, Status::Unimplemented(
                                 std::string("query server does not speak "
                                             "op ") +
                                 WireOpName(frame.op) + " (" +
                                 std::to_string(frame.op) + ")"));
      return false;  // unknown op: assume version skew and close
  }
}

}  // namespace opaq
