#ifndef OPAQ_NET_WIRE_STATS_H_
#define OPAQ_NET_WIRE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "telemetry/metrics.h"
#include "util/status.h"

namespace opaq {

/// Payload codec of the v6 observability ops (`kStats` / `kStatsData`):
/// a `MetricsSnapshot` flattened into one frame. The decoder validates
/// structurally and fails with a `Status` — a corrupt or hostile payload
/// must surface as a sticky stream error, never a CHECK-abort — matching
/// the v1–v5 codec discipline (net/wire_query.h is the exemplar).
///
/// The encoder is deterministic byte-for-byte (fixed-layout structs,
/// metrics in registry order = sorted by name), which is what lets the
/// golden `wire_v6.bin` pin the layout.

/// Decode-side cap on metrics per snapshot: far above any sane registry,
/// far below what could amplify into trouble.
inline constexpr uint32_t kMaxWireStatsMetrics = 4096;
/// Decode-side cap on one metric's name length.
inline constexpr uint32_t kMaxWireStatsNameLen = 512;
/// Decode-side cap on one histogram's retained samples.
inline constexpr uint32_t kMaxWireStatsSamples = 1u << 20;
/// The snapshot layout version this build encodes and decodes.
inline constexpr uint32_t kWireStatsVersion = 1;

/// `kStatsData` payload: header + one record per metric.
inline std::vector<uint8_t> EncodeStatsPayload(
    const MetricsSnapshot& snapshot) {
  WireStatsHeader header;
  header.stats_version = snapshot.stats_version;
  header.num_metrics = static_cast<uint32_t>(snapshot.metrics.size());
  size_t bytes = sizeof(header);
  for (const MetricSample& metric : snapshot.metrics) {
    bytes += sizeof(WireStatsMetric) + metric.name.size();
    if (metric.type == MetricType::kHistogram) {
      bytes += sizeof(WireStatsHistogram) +
               metric.histogram.samples.size() * sizeof(uint64_t);
    } else {
      bytes += sizeof(uint64_t);
    }
  }
  std::vector<uint8_t> payload(bytes);
  uint8_t* out = payload.data();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  for (const MetricSample& metric : snapshot.metrics) {
    WireStatsMetric record;
    record.name_len = static_cast<uint16_t>(metric.name.size());
    record.type = static_cast<uint8_t>(metric.type);
    std::memcpy(out, &record, sizeof(record));
    out += sizeof(record);
    std::memcpy(out, metric.name.data(), metric.name.size());
    out += metric.name.size();
    if (metric.type == MetricType::kHistogram) {
      WireStatsHistogram hist;
      hist.count = metric.histogram.count;
      hist.sum = metric.histogram.sum;
      hist.subrun_size = metric.histogram.subrun_size;
      hist.num_runs = metric.histogram.num_runs;
      hist.num_samples =
          static_cast<uint32_t>(metric.histogram.samples.size());
      std::memcpy(out, &hist, sizeof(hist));
      out += sizeof(hist);
      if (!metric.histogram.samples.empty()) {
        std::memcpy(out, metric.histogram.samples.data(),
                    metric.histogram.samples.size() * sizeof(uint64_t));
        out += metric.histogram.samples.size() * sizeof(uint64_t);
      }
    } else {
      const uint64_t value = metric.value;
      std::memcpy(out, &value, sizeof(value));
      out += sizeof(value);
    }
  }
  return payload;
}

/// Decodes and validates a `kStatsData` payload. Every record boundary is
/// length-checked before being read; counts are bounded by the bytes
/// actually present BEFORE any reserve (attacker-controlled counts must
/// never turn into allocation bombs); histogram samples must be sorted
/// (the invariant every renderer's rank arithmetic relies on).
inline Result<MetricsSnapshot> DecodeStatsPayload(const uint8_t* payload,
                                                  size_t len) {
  WireStatsHeader header;
  if (len < sizeof(header)) {
    return Status::IoError("STATS_DATA payload shorter than its header");
  }
  std::memcpy(&header, payload, sizeof(header));
  if (header.stats_version != kWireStatsVersion) {
    return Status::IoError("STATS_DATA snapshot layout version " +
                           std::to_string(header.stats_version) +
                           " is not the supported version " +
                           std::to_string(kWireStatsVersion));
  }
  if (header.num_metrics > kMaxWireStatsMetrics) {
    return Status::IoError(
        "STATS_DATA claims " + std::to_string(header.num_metrics) +
        " metrics (protocol cap " + std::to_string(kMaxWireStatsMetrics) +
        ")");
  }
  const uint8_t* in = payload + sizeof(header);
  size_t remaining = len - sizeof(header);
  // Bound the count by the bytes actually present BEFORE reserving.
  if (header.num_metrics > remaining / sizeof(WireStatsMetric)) {
    return Status::IoError(
        "STATS_DATA claims " + std::to_string(header.num_metrics) +
        " metrics but carries only " + std::to_string(remaining) +
        " payload bytes");
  }
  MetricsSnapshot out;
  out.stats_version = header.stats_version;
  out.metrics.reserve(header.num_metrics);
  for (uint32_t m = 0; m < header.num_metrics; ++m) {
    WireStatsMetric record;
    if (remaining < sizeof(record)) {
      return Status::IoError("STATS_DATA truncated inside metric " +
                             std::to_string(m));
    }
    std::memcpy(&record, in, sizeof(record));
    in += sizeof(record);
    remaining -= sizeof(record);
    if (record.reserved != 0) {
      return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                             " sets reserved bits");
    }
    if (record.type > static_cast<uint8_t>(MetricType::kHistogram)) {
      return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                             " has unknown type tag " +
                             std::to_string(record.type));
    }
    if (record.name_len == 0 || record.name_len > kMaxWireStatsNameLen) {
      return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                             " has invalid name length " +
                             std::to_string(record.name_len));
    }
    if (remaining < record.name_len) {
      return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                             " name passes the end of the payload");
    }
    MetricSample metric;
    metric.name.assign(reinterpret_cast<const char*>(in), record.name_len);
    metric.type = static_cast<MetricType>(record.type);
    in += record.name_len;
    remaining -= record.name_len;
    if (metric.type == MetricType::kHistogram) {
      WireStatsHistogram hist;
      if (remaining < sizeof(hist)) {
        return Status::IoError("STATS_DATA truncated inside metric " +
                               std::to_string(m) + "'s histogram");
      }
      std::memcpy(&hist, in, sizeof(hist));
      in += sizeof(hist);
      remaining -= sizeof(hist);
      if (hist.reserved != 0) {
        return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                               "'s histogram sets reserved bits");
      }
      if (hist.num_samples > kMaxWireStatsSamples) {
        return Status::IoError(
            "STATS_DATA metric " + std::to_string(m) + " claims " +
            std::to_string(hist.num_samples) + " samples (protocol cap " +
            std::to_string(kMaxWireStatsSamples) + ")");
      }
      if (hist.num_samples != 0 && hist.subrun_size == 0) {
        return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                               "'s histogram has sub-run size 0");
      }
      const uint64_t sample_bytes =
          uint64_t{hist.num_samples} * sizeof(uint64_t);
      if (remaining < sample_bytes) {
        return Status::IoError("STATS_DATA truncated inside metric " +
                               std::to_string(m) + "'s samples");
      }
      metric.histogram.count = hist.count;
      metric.histogram.sum = hist.sum;
      metric.histogram.subrun_size = hist.subrun_size;
      metric.histogram.num_runs = hist.num_runs;
      metric.histogram.samples.resize(hist.num_samples);
      if (hist.num_samples != 0) {
        std::memcpy(metric.histogram.samples.data(), in, sample_bytes);
        in += sample_bytes;
      }
      remaining -= static_cast<size_t>(sample_bytes);
      if (!std::is_sorted(metric.histogram.samples.begin(),
                          metric.histogram.samples.end())) {
        return Status::IoError("STATS_DATA metric " + std::to_string(m) +
                               "'s histogram samples are not sorted");
      }
      metric.value = metric.histogram.count;
    } else {
      uint64_t value = 0;
      if (remaining < sizeof(value)) {
        return Status::IoError("STATS_DATA truncated inside metric " +
                               std::to_string(m) + "'s value");
      }
      std::memcpy(&value, in, sizeof(value));
      in += sizeof(value);
      remaining -= sizeof(value);
      metric.value = value;
    }
    out.metrics.push_back(std::move(metric));
  }
  if (remaining != 0) {
    return Status::IoError("STATS_DATA carries " +
                           std::to_string(remaining) +
                           " trailing bytes past its last metric");
  }
  return out;
}

}  // namespace opaq

#endif  // OPAQ_NET_WIRE_STATS_H_
