#ifndef OPAQ_NET_EXPORT_SPEC_H_
#define OPAQ_NET_EXPORT_SPEC_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace opaq {

/// One parsed `--export` entry: a dataset name plus the path(s) backing it
/// (one path = a plain data file, several = the stripes of one striped
/// file, logical order).
struct ExportSpecEntry {
  std::string name;
  std::vector<std::string> paths;
};

/// Parses `opaq_noded`'s `--export` value:
/// "name=path[+path...][,name=path...]". Each entry splits on its FIRST
/// '=' — names cannot contain '=', but paths can ("ds=/data/run=3.opaq"
/// works). Duplicate dataset names are a hard error (silently letting the
/// last one win would serve different bytes than the operator listed), as
/// are empty names, empty path lists, and empty stripe paths.
Result<std::vector<ExportSpecEntry>> ParseExportSpecs(
    const std::string& text);

}  // namespace opaq

#endif  // OPAQ_NET_EXPORT_SPEC_H_
