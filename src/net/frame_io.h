#ifndef OPAQ_NET_FRAME_IO_H_
#define OPAQ_NET_FRAME_IO_H_

#include <cstddef>

#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace opaq {

/// Frame transfer over a `TcpConnection` — the thin layer both the node
/// server and the client share. Every receive path validates the header and
/// checks the payload CRC before the caller sees a byte, so truncation and
/// corruption surface as IoError exactly at the frame boundary.

/// Sends one frame (header + payload) atomically from the caller's view.
Status SendFrame(TcpConnection& conn, WireOp op, const void* payload,
                 size_t len);

/// Receives the next frame, whatever its op (bounded by `kMaxWirePayload`).
Result<WireFrame> ReceiveFrame(TcpConnection& conn);

/// Receives the next frame and demands op `expected`, decoding a `kError`
/// frame into the `Status` it carries (the node's sticky-error channel) and
/// rejecting any other op as a protocol violation.
Result<WireFrame> ReceiveExpected(TcpConnection& conn, WireOp expected);

/// Zero-copy receive of a `kRangeData` frame directly into `out` (exactly
/// `expected_bytes` long). A `kError` frame decodes into its carried
/// `Status`; a length mismatch or any other op is a protocol violation.
Status ReceiveRangeData(TcpConnection& conn, void* out, size_t expected_bytes);

}  // namespace opaq

#endif  // OPAQ_NET_FRAME_IO_H_
