#ifndef OPAQ_NET_FRAME_SERVER_H_
#define OPAQ_NET_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "telemetry/metrics.h"
#include "util/status.h"

namespace opaq {

struct FrameServerOptions {
  /// IPv4 literal to bind. The protocol is unauthenticated, so the default
  /// stays on loopback; bind 0.0.0.0 only on trusted networks.
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port (see `port()` after `Start`).
  uint16_t port = 0;
  /// Artificial delay before every response frame — the latency-injectable
  /// loopback transport the remote-vs-local benches are built on. 0 = off.
  double response_delay_seconds = 0;
  /// Newest protocol version this server answers. Frames announcing a newer
  /// version are rejected with an error frame mentioning "version" — the
  /// signal a client's `kHello` probe reads as "speak older". Must be in
  /// [1, kMaxWireVersion]; `Start` rejects anything else.
  uint16_t max_wire_version = kMaxWireVersion;
  /// Registry this server publishes its metrics into and serves over the
  /// wire (`kStats`). nullptr = the process-global registry; tests running
  /// several servers in one process inject private registries to keep
  /// their counters apart.
  MetricsRegistry* metrics = nullptr;
};

/// The transport half every OPAQ wire daemon shares: bind/listen, one
/// thread per connection, bounded frame reads with CRC and version checks,
/// per-frame response delay injection, traffic counters, and an ordered
/// `Stop()` that joins every thread. `NodeServer` (data/compute ops) and
/// `QueryServer` (query-serving ops) are thin `HandleFrame` overrides on
/// top — the byte-level discipline lives here exactly once.
///
/// Per-request failures answer with an error frame and keep the connection
/// open (HandleFrame returns true); protocol violations (bad magic /
/// version / CRC, unknown op) answer with an error frame and close, since
/// the byte stream can no longer be trusted.
///
/// Derived classes MUST call `Stop()` from their own destructor: the base
/// destructor runs after the derived object is gone, and a connection
/// thread still inside `HandleFrame` by then would be a virtual call into
/// a destroyed object.
class FrameServer {
 public:
  explicit FrameServer(FrameServerOptions options);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Fails (without aborting)
  /// on an unusable address/port, an out-of-range `max_wire_version`, or
  /// whatever the derived `ValidateStart` rejects.
  Status Start();

  /// Shuts the listener and every live connection down and joins all
  /// threads. Safe to call more than once, and from any thread but a
  /// connection handler.
  void Stop();

  /// The bound port (real one when options asked for 0). Valid after Start.
  uint16_t port() const { return port_; }
  /// "bind_address:port" — prepend to "/dataset" for remote specs.
  std::string address() const;

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Application bytes this server put on / took off the wire (headers and
  /// payloads of every frame) — what the benches read to show bytes-on-wire
  /// without packet capture.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  /// Publishes this server's live counters into its registry (via
  /// `PublishMetrics`) and returns the registry's snapshot — exactly what a
  /// `kStats` request answers with, so a daemon's local dump
  /// (`--stats-interval` ticks, SIGTERM shutdown summary) and its remote
  /// `opaq_cli stats` view render the same data through the same formatter.
  MetricsSnapshot StatsSnapshot();

  /// The registry this server publishes into (options or global).
  MetricsRegistry* metrics_registry() const;

 protected:
  /// Derived-class config checks, run by `Start` before binding. Also the
  /// freeze point: once it returns OK, connection threads may be reading
  /// derived state without locks.
  virtual Status ValidateStart() { return Status::OK(); }

  /// Handles one request frame (header already validated, CRC checked,
  /// `requests_served` counted, response delay applied). Returns false when
  /// the connection must close (protocol violation or transport failure).
  /// `kStats` never reaches this — the base `Serve` loop answers it, so
  /// every daemon built on FrameServer serves stats without opting in.
  virtual bool HandleFrame(TcpConnection* conn, const WireFrame& frame) = 0;

  /// Copies this server's counters into `registry` under stable names
  /// (base: the four `net.*` traffic counters). Derived servers override to
  /// add their own, calling the base first. Runs on whatever thread asked
  /// for a snapshot; everything it reads must be safe to read concurrently.
  virtual void PublishMetrics(MetricsRegistry* registry);

  /// All response traffic funnels through these so `bytes_sent` counts
  /// every frame (header + payload) exactly once.
  bool SendCounted(TcpConnection* conn, WireOp op, const void* payload,
                   size_t len);
  /// Answers a request with the error frame carrying `status`. Returns
  /// whether the connection is still usable (i.e. the send itself worked).
  bool SendErrorCounted(TcpConnection* conn, const Status& status);

  bool started() const { return started_; }
  const FrameServerOptions& frame_options() const { return options_; }

 private:
  struct Connection {
    TcpConnection conn;
    std::thread thread;
    /// Set by the handler thread on exit; the accept loop reaps done
    /// entries so a long-running daemon's fd/thread footprint tracks LIVE
    /// connections, not historical ones.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  /// Joins and discards every finished connection (never blocks on a live
  /// one).
  void ReapFinishedConnections();
  void Serve(TcpConnection* conn);

  FrameServerOptions options_;
  TcpListener listener_;
  std::thread accept_thread_;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

/// The daemons' shared serving loop: blocks until SIGINT/SIGTERM or
/// `duration_seconds` elapses (0 = no limit), printing `server`'s stats
/// snapshot to `os` every `stats_interval_seconds` (0 = never) — rendered
/// by the same formatter that serves `kStats`, so the periodic log, the
/// shutdown summary, and `opaq_cli stats` all show identical rows. Runs on
/// the calling thread off the `ShutdownSignal` wait (no extra thread).
/// Returns true when a signal ended the wait, false on timeout.
/// `ShutdownSignal::Install` must have succeeded first.
bool ServeUntilShutdown(FrameServer* server, double duration_seconds,
                        double stats_interval_seconds, std::ostream& os);

}  // namespace opaq

#endif  // OPAQ_NET_FRAME_SERVER_H_
