#ifndef OPAQ_NET_FRAME_SERVER_H_
#define OPAQ_NET_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace opaq {

struct FrameServerOptions {
  /// IPv4 literal to bind. The protocol is unauthenticated, so the default
  /// stays on loopback; bind 0.0.0.0 only on trusted networks.
  std::string bind_address = "127.0.0.1";
  /// 0 = pick an ephemeral port (see `port()` after `Start`).
  uint16_t port = 0;
  /// Artificial delay before every response frame — the latency-injectable
  /// loopback transport the remote-vs-local benches are built on. 0 = off.
  double response_delay_seconds = 0;
  /// Newest protocol version this server answers. Frames announcing a newer
  /// version are rejected with an error frame mentioning "version" — the
  /// signal a client's `kHello` probe reads as "speak older". Must be in
  /// [1, kMaxWireVersion]; `Start` rejects anything else.
  uint16_t max_wire_version = kMaxWireVersion;
};

/// The transport half every OPAQ wire daemon shares: bind/listen, one
/// thread per connection, bounded frame reads with CRC and version checks,
/// per-frame response delay injection, traffic counters, and an ordered
/// `Stop()` that joins every thread. `NodeServer` (data/compute ops) and
/// `QueryServer` (query-serving ops) are thin `HandleFrame` overrides on
/// top — the byte-level discipline lives here exactly once.
///
/// Per-request failures answer with an error frame and keep the connection
/// open (HandleFrame returns true); protocol violations (bad magic /
/// version / CRC, unknown op) answer with an error frame and close, since
/// the byte stream can no longer be trusted.
///
/// Derived classes MUST call `Stop()` from their own destructor: the base
/// destructor runs after the derived object is gone, and a connection
/// thread still inside `HandleFrame` by then would be a virtual call into
/// a destroyed object.
class FrameServer {
 public:
  explicit FrameServer(FrameServerOptions options);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Fails (without aborting)
  /// on an unusable address/port, an out-of-range `max_wire_version`, or
  /// whatever the derived `ValidateStart` rejects.
  Status Start();

  /// Shuts the listener and every live connection down and joins all
  /// threads. Safe to call more than once, and from any thread but a
  /// connection handler.
  void Stop();

  /// The bound port (real one when options asked for 0). Valid after Start.
  uint16_t port() const { return port_; }
  /// "bind_address:port" — prepend to "/dataset" for remote specs.
  std::string address() const;

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Application bytes this server put on / took off the wire (headers and
  /// payloads of every frame) — what the benches read to show bytes-on-wire
  /// without packet capture.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 protected:
  /// Derived-class config checks, run by `Start` before binding. Also the
  /// freeze point: once it returns OK, connection threads may be reading
  /// derived state without locks.
  virtual Status ValidateStart() { return Status::OK(); }

  /// Handles one request frame (header already validated, CRC checked,
  /// `requests_served` counted, response delay applied). Returns false when
  /// the connection must close (protocol violation or transport failure).
  virtual bool HandleFrame(TcpConnection* conn, const WireFrame& frame) = 0;

  /// All response traffic funnels through these so `bytes_sent` counts
  /// every frame (header + payload) exactly once.
  bool SendCounted(TcpConnection* conn, WireOp op, const void* payload,
                   size_t len);
  /// Answers a request with the error frame carrying `status`. Returns
  /// whether the connection is still usable (i.e. the send itself worked).
  bool SendErrorCounted(TcpConnection* conn, const Status& status);

  bool started() const { return started_; }
  const FrameServerOptions& frame_options() const { return options_; }

 private:
  struct Connection {
    TcpConnection conn;
    std::thread thread;
    /// Set by the handler thread on exit; the accept loop reaps done
    /// entries so a long-running daemon's fd/thread footprint tracks LIVE
    /// connections, not historical ones.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  /// Joins and discards every finished connection (never blocks on a live
  /// one).
  void ReapFinishedConnections();
  void Serve(TcpConnection* conn);

  FrameServerOptions options_;
  TcpListener listener_;
  std::thread accept_thread_;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace opaq

#endif  // OPAQ_NET_FRAME_SERVER_H_
