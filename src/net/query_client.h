#ifndef OPAQ_NET_QUERY_CLIENT_H_
#define OPAQ_NET_QUERY_CLIENT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "io/data_file.h"
#include "net/client.h"
#include "net/wire_query.h"
#include "opaq/query.h"
#include "opaq/span.h"
#include "util/status.h"

namespace opaq {

/// One client connection to a query daemon (`opaq_queryd`): opens a named
/// session, then fires batched v3 `kQuery` requests at it. Single-owner,
/// single-thread use, like `NodeClient` underneath — the loadgen dials one
/// per worker thread.
template <typename K>
class QueryClient {
 public:
  QueryClient() = default;
  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  static Result<QueryClient> Connect(
      const std::string& host, uint16_t port, const std::string& session,
      const NodeClientOptions& options = NodeClientOptions()) {
    auto client = NodeClient::Connect(host, port, options);
    if (!client.ok()) return client.status();
    QueryClient out;
    out.client_ = std::move(client).value();
    out.session_ = session;
    auto info = out.OpenSession();
    if (!info.ok()) return info.status();
    out.info_ = *info;
    return out;
  }

  /// Re-fetches the session's disclosure (geometry, certificates, epoch).
  /// Fails with FailedPrecondition when the daemon serves the session with
  /// a different key type than this client's K.
  Result<WireSessionInfo> OpenSession() {
    OPAQ_RETURN_IF_ERROR(client_.SendRequest(
        WireOp::kOpenSession, session_.data(), session_.size()));
    auto response = client_.ReceiveResponse(WireOp::kSessionInfo);
    if (!response.ok()) return response.status();
    if (response->payload.size() != sizeof(WireSessionInfo)) {
      return Status::IoError("SESSION_INFO payload has the wrong size");
    }
    WireSessionInfo info;
    std::memcpy(&info, response->payload.data(), sizeof(info));
    if (info.key_type != static_cast<uint32_t>(KeyTraits<K>::kType) ||
        info.element_size != sizeof(K)) {
      return Status::FailedPrecondition(
          "session '" + session_ + "' serves key type " +
          std::to_string(info.key_type) + " (" +
          std::to_string(info.element_size) +
          "-byte elements); this client expects type " +
          std::to_string(static_cast<uint32_t>(KeyTraits<K>::kType)) + " (" +
          std::to_string(sizeof(K)) + "-byte)");
    }
    return info;
  }

  /// Answers a batch, decoded. The convenience wrapper over QueryPayload.
  Result<QueryResults<K>> Query(Span<const QueryRequest<K>> requests) {
    auto payload = QueryPayload(requests);
    if (!payload.ok()) return payload.status();
    return DecodeQueryResultsPayload<K>(payload->data(), payload->size());
  }

  /// Answers a batch and returns the RAW `kQueryResult` payload bytes —
  /// what the loadgen's conformance gate memcmps against a local
  /// `EncodeQueryResultsPayload` of the same batch.
  Result<std::vector<uint8_t>> QueryPayload(
      Span<const QueryRequest<K>> requests) {
    std::vector<uint8_t> payload = EncodeQueryPayload(session_, requests);
    OPAQ_RETURN_IF_ERROR(client_.SendRequest(WireOp::kQuery, payload.data(),
                                             payload.size()));
    auto response = client_.ReceiveResponse(WireOp::kQueryResult);
    if (!response.ok()) return response.status();
    return std::move(response->payload);
  }

  /// The disclosure captured at Connect (epoch may be stale; OpenSession
  /// refreshes it).
  const WireSessionInfo& info() const { return info_; }
  const std::string& session() const { return session_; }
  bool connected() const { return client_.connected(); }
  /// Wakes any blocked transfer (callable from another thread).
  void ShutdownNow() { client_.ShutdownNow(); }

 private:
  NodeClient client_;
  std::string session_;
  WireSessionInfo info_;
};

}  // namespace opaq

#endif  // OPAQ_NET_QUERY_CLIENT_H_
