#ifndef OPAQ_NET_CLIENT_H_
#define OPAQ_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "net/frame_io.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace opaq {

/// A parsed "host:port/dataset" remote-dataset spec (the string form
/// `Source<K>::OpenRemote` and `opaq_cli --remote` take). Hosts containing
/// ':' (IPv6 literals) are written bracketed: "[::1]:9000/ds".
struct RemoteSpec {
  std::string host;
  uint16_t port = 0;
  std::string dataset;

  std::string ToString() const {
    const bool bracket = host.find(':') != std::string::npos;
    return (bracket ? "[" + host + "]" : host) + ":" +
           std::to_string(port) + "/" + dataset;
  }
};

/// Parses "host:port/dataset" (dataset names may contain further '/').
/// Accepts bracketed IPv6 hosts ("[::1]:9000/ds") and bare hosts with
/// extra colons by splitting on the LAST colon before the first '/'; an
/// empty host, port, or dataset name is an InvalidArgument.
Result<RemoteSpec> ParseRemoteSpec(const std::string& spec);

/// Client-side connection knobs.
struct NodeClientOptions {
  /// SO_RCVTIMEO on the connection: a node that stops responding surfaces
  /// as IoError after this long instead of hanging the consumer. 0 = wait
  /// forever.
  double receive_timeout_seconds = 60;
  /// Newest protocol version this client will speak. Lower to 1 to force
  /// v1 range streaming even against a v2 node (the bench's apples-to-
  /// apples bytes-on-wire rows do).
  uint16_t max_wire_version = kMaxWireVersion;
  /// When false, `Source::OpenRemote` never attaches the v2+ node-side
  /// compute handle, so the engine streams the dataset instead — over v4
  /// packed extents when the node stores it compressed. Bytes-on-wire
  /// comparisons (compressed vs raw streaming) flip this off.
  bool node_compute = true;
};

/// One client connection to a data node: typed request/response (and
/// pipelined request-ahead) over the v1 wire protocol. Single-owner,
/// single-thread use — `RemoteRunProvider` dials one per run stream.
/// `ShutdownNow` is the only cross-thread-safe member (it wakes a blocked
/// receive when a consumer abandons the stream).
class NodeClient {
 public:
  NodeClient() = default;
  NodeClient(NodeClient&&) = default;
  NodeClient& operator=(NodeClient&&) = default;

  static Result<NodeClient> Connect(
      const std::string& host, uint16_t port,
      const NodeClientOptions& options = NodeClientOptions());

  /// Liveness round trip.
  Status Ping();

  /// v2 version probe: announces `my_max_version` and returns the node's
  /// newest version. Against a v1-only node the `kHello` frame itself is
  /// rejected (its header already says version 2) — that surfaces here as
  /// an error `Status` mentioning "version", and the node hangs up, so
  /// callers probe on a disposable connection (`NegotiateWireVersion`
  /// does).
  Result<uint16_t> Hello(uint16_t my_max_version = kMaxWireVersion);

  /// Fetches the node's description of `name` (geometry + read bound).
  Result<WireDatasetInfo> OpenDataset(const std::string& name);

  /// Fires a `kReadRange` request WITHOUT waiting for the response — the
  /// pipelining half. Responses arrive in request order; collect each one
  /// with `ReceiveRange`.
  Status SendReadRange(const std::string& name, uint64_t first,
                       uint64_t count);

  /// Receives the response to the oldest in-flight `SendReadRange`,
  /// directly into `out` (`expected_bytes` = count * element_size). An
  /// error frame decodes into the `Status` the node sent.
  Status ReceiveRange(void* out, size_t expected_bytes);

  /// Blocking convenience: request + response in one call.
  Status ReadRange(const std::string& name, uint64_t first, uint64_t count,
                   void* out, size_t out_bytes);

  /// v4: fetches the node's extent geometry for `name`. A node answers
  /// Unimplemented when the dataset is not stored as compressed extents —
  /// the signal to stream `kReadRange` instead (see `WireExtentInfo`).
  Result<WireExtentInfo> OpenExtents(const std::string& name);

  /// Fires a `kReadExtents` request WITHOUT waiting for the response — the
  /// pipelining half, like `SendReadRange`.
  Status SendReadExtents(const std::string& name, uint64_t first_extent,
                         uint64_t count);

  /// Receives the response to the oldest in-flight `SendReadExtents`: the
  /// stored extents back to back, exactly as packed on the node's disk
  /// (validate + decode with `DecodeStoredExtent`). An error frame decodes
  /// into the `Status` the node sent.
  Result<std::vector<uint8_t>> ReceiveExtents();

  /// v5: durably appends `count` elements (`count * element_size` raw
  /// bytes at `elements`) to the live dataset the node exports as `name`,
  /// as ONE new segment. The returned ack carries the dataset's new totals
  /// — a commit receipt: when it arrives, the segment's manifest record is
  /// durable on the node. A node answers Unimplemented when the export is
  /// not appendable (static file exports), NotFound for an unknown name,
  /// and InvalidArgument when `elements` does not match the dataset's
  /// element size.
  Result<WireAppendAck> Append(const std::string& name, const void* elements,
                               uint64_t count, uint32_t element_size);

  /// Generic frame round-trip halves for ops whose payloads the caller
  /// codes itself (the v2 compute layer does): send any request frame,
  /// then receive a response demanding op `expected` — a `kError` response
  /// decodes into the `Status` the node sent.
  Status SendRequest(WireOp op, const void* payload, size_t len) {
    return SendFrame(conn_, op, payload, len);
  }
  Result<WireFrame> ReceiveResponse(WireOp expected) {
    return ReceiveExpected(conn_, expected);
  }

  /// Wakes any blocked transfer on this connection (callable from another
  /// thread while the client stays alive).
  void ShutdownNow() { conn_.ShutdownNow(); }

  bool connected() const { return conn_.connected(); }
  const std::string& peer() const { return conn_.peer(); }

 private:
  explicit NodeClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

/// Determines the wire version to speak to `spec`'s node: dials a
/// disposable connection, probes with `Hello`, and returns
/// min(client max, node max). A node that rejects the probe as a version
/// it does not speak negotiates down to 1 (that IS the v1 fallback, not an
/// error); failing to reach the node at all is a real error. With
/// `options.max_wire_version <= 1` no probe is sent — the answer is 1 by
/// configuration.
Result<uint16_t> NegotiateWireVersion(const RemoteSpec& spec,
                                      const NodeClientOptions& options);

}  // namespace opaq

#endif  // OPAQ_NET_CLIENT_H_
