#ifndef OPAQ_NET_CLIENT_H_
#define OPAQ_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "net/frame_io.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace opaq {

/// A parsed "host:port/dataset" remote-dataset spec (the string form
/// `Source<K>::OpenRemote` and `opaq_cli --remote` take).
struct RemoteSpec {
  std::string host;
  uint16_t port = 0;
  std::string dataset;

  std::string ToString() const {
    return host + ":" + std::to_string(port) + "/" + dataset;
  }
};

/// Parses "host:port/dataset" (dataset names may contain further '/').
Result<RemoteSpec> ParseRemoteSpec(const std::string& spec);

/// Client-side connection knobs.
struct NodeClientOptions {
  /// SO_RCVTIMEO on the connection: a node that stops responding surfaces
  /// as IoError after this long instead of hanging the consumer. 0 = wait
  /// forever.
  double receive_timeout_seconds = 60;
};

/// One client connection to a data node: typed request/response (and
/// pipelined request-ahead) over the v1 wire protocol. Single-owner,
/// single-thread use — `RemoteRunProvider` dials one per run stream.
/// `ShutdownNow` is the only cross-thread-safe member (it wakes a blocked
/// receive when a consumer abandons the stream).
class NodeClient {
 public:
  NodeClient() = default;
  NodeClient(NodeClient&&) = default;
  NodeClient& operator=(NodeClient&&) = default;

  static Result<NodeClient> Connect(
      const std::string& host, uint16_t port,
      const NodeClientOptions& options = NodeClientOptions());

  /// Liveness round trip.
  Status Ping();

  /// Fetches the node's description of `name` (geometry + read bound).
  Result<WireDatasetInfo> OpenDataset(const std::string& name);

  /// Fires a `kReadRange` request WITHOUT waiting for the response — the
  /// pipelining half. Responses arrive in request order; collect each one
  /// with `ReceiveRange`.
  Status SendReadRange(const std::string& name, uint64_t first,
                       uint64_t count);

  /// Receives the response to the oldest in-flight `SendReadRange`,
  /// directly into `out` (`expected_bytes` = count * element_size). An
  /// error frame decodes into the `Status` the node sent.
  Status ReceiveRange(void* out, size_t expected_bytes);

  /// Blocking convenience: request + response in one call.
  Status ReadRange(const std::string& name, uint64_t first, uint64_t count,
                   void* out, size_t out_bytes);

  /// Wakes any blocked transfer on this connection (callable from another
  /// thread while the client stays alive).
  void ShutdownNow() { conn_.ShutdownNow(); }

  bool connected() const { return conn_.connected(); }
  const std::string& peer() const { return conn_.peer(); }

 private:
  explicit NodeClient(TcpConnection conn) : conn_(std::move(conn)) {}

  TcpConnection conn_;
};

}  // namespace opaq

#endif  // OPAQ_NET_CLIENT_H_
