#ifndef OPAQ_NET_REMOTE_SOURCE_H_
#define OPAQ_NET_REMOTE_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/data_file.h"
#include "io/run_reader.h"
#include "net/client.h"
#include "parallel/channel.h"
#include "util/status.h"

namespace opaq {

/// Streams the runs of a dataset served by a remote data node, in exact
/// logical order — the network sibling of `AsyncRunReader` (one device) and
/// `StripedRunSource` (one array). Because it implements `RunSource<K>`
/// over the same logical element stream, every downstream sketch is
/// byte-identical to any local backend over the same data (enforced by
/// `backend_conformance_test`).
///
/// The range `[first, first + count)` is fetched as fixed slices of
/// `min(node's max_read_elements, run_size)` elements. Under
/// `IoMode::kSync` each slice is a blocking request/response issued inline
/// from `NextRun`. Under `IoMode::kAsync` a streaming thread PIPELINES the
/// slice requests — up to `prefetch_depth` in flight on the wire while up
/// to `prefetch_depth` received slices queue in a bounded `Channel` — so
/// network latency and the node's own disk time overlap the consumer's
/// sampling exactly as async disk I/O does. Peak client memory is
/// ~`2 * prefetch_depth + 1` slices on top of the run being assembled.
///
/// Error semantics match the other sources: runs wholly before the first
/// failing slice are delivered, then the failure — a node death, a
/// truncated or corrupted frame, an error frame relaying the node's own
/// disk failure — latches as the sticky `Status` every later `NextRun`
/// repeats. The destructor closes the channel, shakes the streaming thread
/// out of any blocked socket read, and joins it: abandoning the source
/// mid-stream can neither hang nor leak.
template <typename K>
class RemoteRunSource : public RunSource<K> {
 public:
  RemoteRunSource(const RemoteSpec& spec, const WireDatasetInfo& info,
                  const NodeClientOptions& client_options,
                  const ReadOptions& options, uint64_t first = 0,
                  uint64_t count = UINT64_MAX)
      : spec_(spec), run_size_(options.run_size),
        threaded_(options.io_mode == IoMode::kAsync), next_(first),
        end_(first) {
    OPAQ_CHECK_GT(run_size_, 0u);
    OPAQ_CHECK_EQ(info.element_size, sizeof(K))
        << "provider handshake admitted a mismatched element size";
    OPAQ_CHECK_LE(first, info.element_count);
    end_ = first + std::min(count, info.element_count - first);
    slice_ = std::max<uint64_t>(
        1, std::min<uint64_t>(info.max_read_elements, run_size_));
    auto client = NodeClient::Connect(spec_.host, spec_.port, client_options);
    if (!client.ok()) {
      status_ = client.status();
      return;
    }
    client_ = std::make_unique<NodeClient>(std::move(client).value());
    if (!threaded_ || next_ >= end_) return;
    OPAQ_CHECK_GE(options.prefetch_depth, 1u);
    OPAQ_CHECK_LE(options.prefetch_depth, kMaxPrefetchDepth);
    window_ = options.prefetch_depth;
    channel_ = std::make_unique<Channel<SliceMessage>>(
        static_cast<size_t>(options.prefetch_depth));
    thread_ = std::thread([this] { StreamLoop(); });
  }

  ~RemoteRunSource() override {
    if (channel_ != nullptr) channel_->Close();
    // Wake the streaming thread out of any blocked socket transfer; the
    // descriptor stays valid until `client_` dies below.
    if (client_ != nullptr) client_->ShutdownNow();
    if (thread_.joinable()) thread_.join();
  }

  RemoteRunSource(const RemoteRunSource&) = delete;
  RemoteRunSource& operator=(const RemoteRunSource&) = delete;

  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (!status_.ok()) return status_;
    if (next_ >= end_) return false;
    const uint64_t len = std::min(run_size_, end_ - next_);
    if (!threaded_) {
      // Inline request/response per slice, straight into the run buffer.
      buffer->resize(len);
      uint64_t filled = 0;
      while (filled < len) {
        const uint64_t take = std::min(slice_, len - filled);
        Status s = client_->ReadRange(spec_.dataset, next_ + filled, take,
                                      buffer->data() + filled,
                                      take * sizeof(K));
        if (!s.ok()) {
          buffer->clear();
          status_ = s;
          return status_;
        }
        filled += take;
      }
      next_ += len;
      return true;
    }
    while (pending_total_ < len) {
      SliceMessage message;
      if (!channel_->Receive(&message)) {
        // The streaming thread closes only after delivering every slice (or
        // its error); running dry earlier means the source itself broke.
        status_ = Status::Internal("node stream stopped short at element " +
                                   std::to_string(next_ + pending_total_));
        return status_;
      }
      if (!message.status.ok()) {
        status_ = message.status;
        return status_;
      }
      pending_total_ += message.data.size();
      pending_.push_back(std::move(message.data));
    }
    // Splice the run off the front of the pending slice queue.
    buffer->resize(len);
    uint64_t filled = 0;
    while (filled < len) {
      std::vector<K>& front = pending_.front();
      const uint64_t take = std::min<uint64_t>(len - filled,
                                               front.size() - pending_head_);
      std::copy_n(front.begin() + static_cast<size_t>(pending_head_),
                  static_cast<size_t>(take),
                  buffer->begin() + static_cast<size_t>(filled));
      filled += take;
      pending_head_ += take;
      if (pending_head_ == front.size()) {
        pending_.pop_front();
        pending_head_ = 0;
      }
    }
    pending_total_ -= len;
    next_ += len;
    return true;
  }

 private:
  struct SliceMessage {
    Status status;
    std::vector<K> data;
  };

  /// Body of the streaming thread: keeps `window_` slice requests on the
  /// wire, receives responses in order, and feeds them through the bounded
  /// channel. The channel's backpressure (plus the window) bounds
  /// read-ahead memory.
  void StreamLoop() {
    uint64_t send_cursor = next_;
    uint64_t recv_cursor = next_;
    uint64_t outstanding = 0;
    while (recv_cursor < end_) {
      while (outstanding < window_ && send_cursor < end_) {
        const uint64_t len = std::min(slice_, end_ - send_cursor);
        Status s = client_->SendReadRange(spec_.dataset, send_cursor, len);
        if (!s.ok()) {
          EmitFailure(s);
          return;
        }
        send_cursor += len;
        ++outstanding;
      }
      const uint64_t len = std::min(slice_, end_ - recv_cursor);
      SliceMessage message;
      message.data.resize(len);
      Status s = client_->ReceiveRange(message.data.data(), len * sizeof(K));
      if (!s.ok()) {
        EmitFailure(s);
        return;
      }
      recv_cursor += len;
      --outstanding;
      if (!channel_->Send(std::move(message))) return;  // consumer gone
    }
    channel_->Close();
  }

  void EmitFailure(Status status) {
    SliceMessage message;
    message.status = std::move(status);
    channel_->Send(std::move(message));
    channel_->Close();
  }

  RemoteSpec spec_;
  uint64_t run_size_;
  bool threaded_;
  uint64_t next_;    // next logical element to deliver (consumer only)
  uint64_t end_;     // one past the last element of the range (immutable)
  uint64_t slice_ = 1;   // elements per kReadRange request (immutable)
  uint64_t window_ = 0;  // pipelined requests in flight (immutable)
  Status status_;        // sticky failure state

  std::deque<std::vector<K>> pending_;  // slices popped but not yet spliced
  uint64_t pending_head_ = 0;           // consumed prefix of pending_.front()
  uint64_t pending_total_ = 0;          // elements across pending_ minus head

  std::unique_ptr<NodeClient> client_;
  std::unique_ptr<Channel<SliceMessage>> channel_;
  std::thread thread_;
};

/// A dataset served by a remote data node as a `RunProvider`: the network
/// storage backend. `Connect` performs the handshake (one round trip) and
/// validates the node's key type against `K`; every `OpenRuns` then dials
/// its OWN connection, so concurrent run streams — multi-shard engines,
/// an exact second pass racing a sketch — never share socket state and the
/// node serves each from its own thread.
///
/// The dataset geometry is a snapshot from `Connect` time; like every
/// other provider, the provider describes one immutable logical dataset.
template <typename K>
class RemoteRunProvider : public RunProvider<K> {
 public:
  /// Connects per "host:port/dataset" spec text.
  static Result<RemoteRunProvider<K>> Connect(
      const std::string& spec_text,
      const NodeClientOptions& options = NodeClientOptions()) {
    auto spec = ParseRemoteSpec(spec_text);
    if (!spec.ok()) return spec.status();
    return Connect(*spec, options);
  }

  static Result<RemoteRunProvider<K>> Connect(
      const RemoteSpec& spec,
      const NodeClientOptions& options = NodeClientOptions()) {
    auto client = NodeClient::Connect(spec.host, spec.port, options);
    if (!client.ok()) return client.status();
    auto info = client->OpenDataset(spec.dataset);
    if (!info.ok()) return info.status();
    if (info->key_type != static_cast<uint32_t>(KeyTraits<K>::kType) ||
        info->element_size != sizeof(K)) {
      return Status::InvalidArgument(
          "remote dataset '" + spec.ToString() +
          "' holds a different key type than " + KeyTraits<K>::kName);
    }
    return RemoteRunProvider<K>(spec, *info, options);
  }

  uint64_t size() const override { return info_.element_count; }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    return std::make_unique<RemoteRunSource<K>>(spec_, info_, client_options_,
                                                options, first, count);
  }

  const RemoteSpec& spec() const { return spec_; }
  const WireDatasetInfo& info() const { return info_; }

 private:
  RemoteRunProvider(RemoteSpec spec, WireDatasetInfo info,
                    NodeClientOptions client_options)
      : spec_(std::move(spec)), info_(info),
        client_options_(client_options) {}

  RemoteSpec spec_;
  WireDatasetInfo info_;
  NodeClientOptions client_options_;
};

}  // namespace opaq

#endif  // OPAQ_NET_REMOTE_SOURCE_H_
