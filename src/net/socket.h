#ifndef OPAQ_NET_SOCKET_H_
#define OPAQ_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace opaq {

/// A connected TCP stream with exact-length transfer semantics — the byte
/// transport under the data-node wire protocol. Portable POSIX sockets
/// (IPv4; hostnames resolve through getaddrinfo).
///
/// Thread model: one thread drives `ReadFull`/`WriteFull` at a time (frame
/// I/O is inherently sequential); `ShutdownNow` may be called from ANY
/// thread to wake a peer blocked in a transfer — it half-closes the socket
/// without invalidating the descriptor, so the blocked call fails with a
/// clean Status instead of hanging (used when a consumer abandons a
/// streaming `RemoteRunSource` mid-run).
class TcpConnection {
 public:
  /// An empty (never-connected) connection; every transfer fails.
  TcpConnection() = default;
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept
      : fd_(other.fd_), peer_(std::move(other.peer_)) {
    other.fd_ = -1;
  }
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Dials `host:port`. `receive_timeout_seconds` > 0 arms SO_RCVTIMEO so a
  /// silent peer surfaces as an IoError instead of a hang; 0 disables it.
  static Result<TcpConnection> Connect(const std::string& host, uint16_t port,
                                       double receive_timeout_seconds = 0);

  /// Reads exactly `length` bytes. A peer close mid-transfer (or a receive
  /// timeout) is an IoError — the frame layer never sees partial data.
  Status ReadFull(void* buffer, size_t length);

  /// Writes exactly `length` bytes (SIGPIPE suppressed; a broken pipe is an
  /// IoError).
  Status WriteFull(const void* buffer, size_t length);

  /// Half-closes both directions, waking any thread blocked in a transfer
  /// on this connection. Idempotent; safe from any thread while the
  /// connection object stays alive.
  void ShutdownNow();

  bool connected() const { return fd_ >= 0; }
  /// "host:port" of the remote end (as dialed / accepted).
  const std::string& peer() const { return peer_; }

 private:
  friend class TcpListener;
  TcpConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  int fd_ = -1;
  std::string peer_;
};

/// A listening TCP socket. `Bind` with port 0 picks an ephemeral port —
/// `port()` reports the real one, which is how tests and the examples spawn
/// loopback nodes without port collisions.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Bind(const std::string& address, uint16_t port);

  /// Blocks for the next connection. Fails (instead of blocking forever)
  /// once `ShutdownNow` was called.
  Result<TcpConnection> Accept();

  /// Wakes a thread blocked in `Accept` (callable from any thread).
  void ShutdownNow();

  void Close();
  bool listening() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_NET_SOCKET_H_
