#include "net/client.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "io/io_mode.h"

namespace opaq {

Result<RemoteSpec> ParseRemoteSpec(const std::string& spec) {
  // The dataset starts at the first '/' (names may contain further '/');
  // the port is delimited by the LAST colon before it, so IPv6 literals —
  // whose host part is full of colons — parse whether bracketed
  // ("[::1]:9000/ds") or bare ("::1:9000/ds").
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0) {
    return Status::InvalidArgument(
        "bad remote spec '" + spec + "': want host:port/dataset");
  }
  const auto colon = spec.rfind(':', slash - 1);
  if (colon == std::string::npos || colon == 0 || colon + 1 == slash) {
    return Status::InvalidArgument(
        "bad remote spec '" + spec + "': want host:port/dataset");
  }
  RemoteSpec out;
  out.host = spec.substr(0, colon);
  if (out.host.size() >= 2 && out.host.front() == '[' &&
      out.host.back() == ']') {
    out.host = out.host.substr(1, out.host.size() - 2);
  } else if (out.host.front() == '[' || out.host.back() == ']') {
    return Status::InvalidArgument("unbalanced '[' in remote spec '" + spec +
                                   "'");
  }
  if (out.host.empty()) {
    return Status::InvalidArgument("empty host in remote spec '" + spec +
                                   "'");
  }
  const std::string port_text = spec.substr(colon + 1, slash - colon - 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument(
        "bad port '" + port_text + "' in remote spec '" + spec + "'");
  }
  out.port = static_cast<uint16_t>(port);
  out.dataset = spec.substr(slash + 1);
  if (out.dataset.empty()) {
    return Status::InvalidArgument("empty dataset name in remote spec '" +
                                   spec + "'");
  }
  return out;
}

Result<NodeClient> NodeClient::Connect(const std::string& host, uint16_t port,
                                       const NodeClientOptions& options) {
  auto conn = TcpConnection::Connect(host, port,
                                     options.receive_timeout_seconds);
  if (!conn.ok()) return conn.status();
  return NodeClient(std::move(conn).value());
}

Status NodeClient::Ping() {
  OPAQ_RETURN_IF_ERROR(SendFrame(conn_, WireOp::kPing, nullptr, 0));
  auto pong = ReceiveExpected(conn_, WireOp::kPong);
  return pong.status();
}

Result<uint16_t> NodeClient::Hello(uint16_t my_max_version) {
  WireHello hello;
  hello.max_version = my_max_version;
  OPAQ_RETURN_IF_ERROR(
      SendFrame(conn_, WireOp::kHello, &hello, sizeof(hello)));
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                        ReceiveExpected(conn_, WireOp::kHelloAck));
  if (frame.payload.size() < sizeof(WireHello)) {
    return Status::IoError("HELLO_ACK payload shorter than its header");
  }
  WireHello ack;
  std::memcpy(&ack, frame.payload.data(), sizeof(ack));
  if (ack.max_version < kWireVersion) {
    return Status::IoError("node announced nonsensical wire version " +
                           std::to_string(ack.max_version));
  }
  return ack.max_version;
}

Result<uint16_t> NegotiateWireVersion(const RemoteSpec& spec,
                                      const NodeClientOptions& options) {
  if (options.max_wire_version <= kWireVersion) return kWireVersion;
  OPAQ_ASSIGN_OR_RETURN(NodeClient probe,
                        NodeClient::Connect(spec.host, spec.port, options));
  auto node_max = probe.Hello(options.max_wire_version);
  if (!node_max.ok()) {
    // The kHello frame is itself a version-2 artifact: a v1-only node
    // rejects its header and hangs up. That is the fallback signal, not a
    // failure — the node is alive (Connect succeeded) and speaks v1.
    return kWireVersion;
  }
  return std::min<uint16_t>(options.max_wire_version, *node_max);
}

Result<WireDatasetInfo> NodeClient::OpenDataset(const std::string& name) {
  OPAQ_RETURN_IF_ERROR(
      SendFrame(conn_, WireOp::kOpenDataset, name.data(), name.size()));
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                        ReceiveExpected(conn_, WireOp::kDatasetInfo));
  if (frame.payload.size() != sizeof(WireDatasetInfo)) {
    return Status::IoError("DATASET_INFO payload has the wrong size");
  }
  WireDatasetInfo info;
  std::memcpy(&info, frame.payload.data(), sizeof(info));
  if (info.element_size == 0 || info.max_read_elements == 0) {
    return Status::IoError("node sent a nonsensical dataset geometry");
  }
  return info;
}

Status NodeClient::SendReadRange(const std::string& name, uint64_t first,
                                 uint64_t count) {
  std::vector<uint8_t> payload(sizeof(WireReadRange) + name.size());
  WireReadRange range;
  range.first = first;
  range.count = count;
  std::memcpy(payload.data(), &range, sizeof(range));
  std::memcpy(payload.data() + sizeof(range), name.data(), name.size());
  return SendFrame(conn_, WireOp::kReadRange, payload.data(), payload.size());
}

Status NodeClient::ReceiveRange(void* out, size_t expected_bytes) {
  return ReceiveRangeData(conn_, out, expected_bytes);
}

Status NodeClient::ReadRange(const std::string& name, uint64_t first,
                             uint64_t count, void* out, size_t out_bytes) {
  OPAQ_RETURN_IF_ERROR(SendReadRange(name, first, count));
  return ReceiveRange(out, out_bytes);
}

Result<WireExtentInfo> NodeClient::OpenExtents(const std::string& name) {
  OPAQ_RETURN_IF_ERROR(
      SendFrame(conn_, WireOp::kOpenExtents, name.data(), name.size()));
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                        ReceiveExpected(conn_, WireOp::kExtentInfo));
  if (frame.payload.size() != sizeof(WireExtentInfo)) {
    return Status::IoError("EXTENT_INFO payload has the wrong size");
  }
  WireExtentInfo info;
  std::memcpy(&info, frame.payload.data(), sizeof(info));
  if (info.element_size == 0 || info.extent_elements == 0 ||
      info.max_extents_per_read == 0 ||
      info.extent_elements > kMaxExtentBytes / info.element_size) {
    return Status::IoError("node sent a nonsensical extent geometry");
  }
  return info;
}

Status NodeClient::SendReadExtents(const std::string& name,
                                   uint64_t first_extent, uint64_t count) {
  std::vector<uint8_t> payload(sizeof(WireReadExtents) + name.size());
  WireReadExtents range;
  range.first_extent = first_extent;
  range.count = count;
  std::memcpy(payload.data(), &range, sizeof(range));
  std::memcpy(payload.data() + sizeof(range), name.data(), name.size());
  return SendFrame(conn_, WireOp::kReadExtents, payload.data(),
                   payload.size());
}

Result<WireAppendAck> NodeClient::Append(const std::string& name,
                                         const void* elements, uint64_t count,
                                         uint32_t element_size) {
  if (count == 0) {
    return Status::InvalidArgument("refusing to append zero elements");
  }
  const uint64_t data_bytes = count * element_size;
  const uint64_t total =
      sizeof(WireAppendRequest) + name.size() + data_bytes;
  if (element_size == 0 || data_bytes / element_size != count ||
      total > kMaxWirePayload) {
    return Status::InvalidArgument(
        "append batch exceeds the wire payload cap; split it");
  }
  std::vector<uint8_t> payload(total);
  WireAppendRequest request;
  request.count = count;
  request.name_len = static_cast<uint32_t>(name.size());
  std::memcpy(payload.data(), &request, sizeof(request));
  std::memcpy(payload.data() + sizeof(request), name.data(), name.size());
  std::memcpy(payload.data() + sizeof(request) + name.size(), elements,
              data_bytes);
  OPAQ_RETURN_IF_ERROR(
      SendFrame(conn_, WireOp::kAppend, payload.data(), payload.size()));
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                        ReceiveExpected(conn_, WireOp::kAppendAck));
  if (frame.payload.size() != sizeof(WireAppendAck)) {
    return Status::IoError("APPEND_ACK payload has the wrong size");
  }
  WireAppendAck ack;
  std::memcpy(&ack, frame.payload.data(), sizeof(ack));
  return ack;
}

Result<std::vector<uint8_t>> NodeClient::ReceiveExtents() {
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                        ReceiveExpected(conn_, WireOp::kExtentData));
  return std::move(frame.payload);
}

}  // namespace opaq
