#include "net/client.h"

#include <cstring>
#include <vector>

namespace opaq {

Result<RemoteSpec> ParseRemoteSpec(const std::string& spec) {
  const auto colon = spec.find(':');
  const auto slash = spec.find('/', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || slash == std::string::npos ||
      colon == 0 || slash < colon + 2 || slash + 1 >= spec.size()) {
    return Status::InvalidArgument(
        "bad remote spec '" + spec + "': want host:port/dataset");
  }
  RemoteSpec out;
  out.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1, slash - colon - 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument(
        "bad port '" + port_text + "' in remote spec '" + spec + "'");
  }
  out.port = static_cast<uint16_t>(port);
  out.dataset = spec.substr(slash + 1);
  return out;
}

Result<NodeClient> NodeClient::Connect(const std::string& host, uint16_t port,
                                       const NodeClientOptions& options) {
  auto conn = TcpConnection::Connect(host, port,
                                     options.receive_timeout_seconds);
  if (!conn.ok()) return conn.status();
  return NodeClient(std::move(conn).value());
}

Status NodeClient::Ping() {
  OPAQ_RETURN_IF_ERROR(SendFrame(conn_, WireOp::kPing, nullptr, 0));
  auto pong = ReceiveExpected(conn_, WireOp::kPong);
  return pong.status();
}

Result<WireDatasetInfo> NodeClient::OpenDataset(const std::string& name) {
  OPAQ_RETURN_IF_ERROR(
      SendFrame(conn_, WireOp::kOpenDataset, name.data(), name.size()));
  OPAQ_ASSIGN_OR_RETURN(WireFrame frame,
                        ReceiveExpected(conn_, WireOp::kDatasetInfo));
  if (frame.payload.size() != sizeof(WireDatasetInfo)) {
    return Status::IoError("DATASET_INFO payload has the wrong size");
  }
  WireDatasetInfo info;
  std::memcpy(&info, frame.payload.data(), sizeof(info));
  if (info.element_size == 0 || info.max_read_elements == 0) {
    return Status::IoError("node sent a nonsensical dataset geometry");
  }
  return info;
}

Status NodeClient::SendReadRange(const std::string& name, uint64_t first,
                                 uint64_t count) {
  std::vector<uint8_t> payload(sizeof(WireReadRange) + name.size());
  WireReadRange range;
  range.first = first;
  range.count = count;
  std::memcpy(payload.data(), &range, sizeof(range));
  std::memcpy(payload.data() + sizeof(range), name.data(), name.size());
  return SendFrame(conn_, WireOp::kReadRange, payload.data(), payload.size());
}

Status NodeClient::ReceiveRange(void* out, size_t expected_bytes) {
  return ReceiveRangeData(conn_, out, expected_bytes);
}

Status NodeClient::ReadRange(const std::string& name, uint64_t first,
                             uint64_t count, void* out, size_t out_bytes) {
  OPAQ_RETURN_IF_ERROR(SendReadRange(name, first, count));
  return ReceiveRange(out, out_bytes);
}

}  // namespace opaq
