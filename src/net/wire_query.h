#ifndef OPAQ_NET_WIRE_QUERY_H_
#define OPAQ_NET_WIRE_QUERY_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "opaq/query.h"
#include "opaq/span.h"
#include "util/status.h"

namespace opaq {

/// Payload codecs of the v3 query-serving ops (`kOpenSession` /
/// `kSessionInfo` / `kQuery` / `kQueryResult`): the typed layer
/// `QueryServer`, `QueryClient`, and the loadgen share. Every decoder
/// validates structurally and fails with a `Status` — a corrupt or hostile
/// payload must surface as an error frame / sticky stream error, never as
/// a CHECK-abort in either process.
///
/// The codecs are deterministic byte-for-byte (fixed-layout structs, no
/// padding left unwritten, requests and results kept in batch order), which
/// is what lets the loadgen's conformance gate compare a daemon's
/// `kQueryResult` payload against a local `EncodeQueryResultsPayload` of
/// the same batch with memcmp.

/// Decode-side cap on requests per batch: far above any sane batch, far
/// below what could amplify into trouble.
inline constexpr uint32_t kMaxWireQueryRequests = 4096;
/// Decode-side cap on an equi-depth request's q (the response carries q-1
/// brackets, so q bounds the response size).
inline constexpr uint32_t kMaxWireEquiDepth = 65536;

namespace wire_query_internal {
inline constexpr uint32_t kExactFlag = 1u << 0;
inline constexpr uint32_t kLowerClampedFlag = 1u << 0;
inline constexpr uint32_t kUpperClampedFlag = 1u << 1;
}  // namespace wire_query_internal

/// `kQuery` request payload: header + session name + one fixed-size record
/// (plus one element of probe-value bytes) per request.
template <typename K>
std::vector<uint8_t> EncodeQueryPayload(
    const std::string& session, Span<const QueryRequest<K>> requests) {
  WireQueryHeader header;
  header.name_len = static_cast<uint32_t>(session.size());
  header.num_requests = static_cast<uint32_t>(requests.size());
  std::vector<uint8_t> payload(
      sizeof(header) + session.size() +
      requests.size() * (sizeof(WireQueryRequest) + sizeof(K)));
  uint8_t* out = payload.data();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  std::memcpy(out, session.data(), session.size());
  out += session.size();
  for (const QueryRequest<K>& request : requests) {
    WireQueryRequest record;
    record.kind = static_cast<uint32_t>(request.kind);
    record.flags = request.exact ? wire_query_internal::kExactFlag : 0;
    record.phi = request.phi;
    record.rank = request.rank;
    record.q = request.q < 0 ? 0 : static_cast<uint32_t>(request.q);
    std::memcpy(out, &record, sizeof(record));
    out += sizeof(record);
    K value = request.value;
    std::memcpy(out, &value, sizeof(K));
    out += sizeof(K);
  }
  return payload;
}

/// First (untyped) half of decoding a `kQuery` payload: the header and the
/// session name — all a server can read before resolving the name to a
/// session and learning the element size. Returns the validated header.
inline Result<std::pair<WireQueryHeader, std::string>> DecodeQueryName(
    const uint8_t* payload, size_t len) {
  WireQueryHeader header;
  if (len < sizeof(header)) {
    return Status::IoError("QUERY payload shorter than its fixed prefix");
  }
  std::memcpy(&header, payload, sizeof(header));
  if (len - sizeof(header) < header.name_len) {
    return Status::IoError("QUERY name_len passes the end of the payload");
  }
  if (header.num_requests == 0) {
    return Status::InvalidArgument("QUERY batch holds no requests");
  }
  if (header.num_requests > kMaxWireQueryRequests) {
    return Status::InvalidArgument(
        "QUERY batch of " + std::to_string(header.num_requests) +
        " requests exceeds the protocol cap of " +
        std::to_string(kMaxWireQueryRequests));
  }
  std::string name(reinterpret_cast<const char*>(payload) + sizeof(header),
                   header.name_len);
  return std::make_pair(header, std::move(name));
}

/// Second (typed) half: the request records after the name. The remaining
/// length must match the header exactly — element size is the session's,
/// so a client that opened the wrong-typed session fails loudly here.
template <typename K>
Result<std::vector<QueryRequest<K>>> DecodeQueryRequests(
    const uint8_t* payload, size_t len, const WireQueryHeader& header) {
  const size_t record_size = sizeof(WireQueryRequest) + sizeof(K);
  const size_t expected =
      sizeof(header) + header.name_len +
      static_cast<size_t>(header.num_requests) * record_size;
  if (len != expected) {
    return Status::IoError(
        "QUERY payload of " + std::to_string(len) + " bytes does not match " +
        std::to_string(header.num_requests) + " requests of " +
        std::to_string(sizeof(K)) + "-byte elements (" +
        std::to_string(expected) + " expected)");
  }
  std::vector<QueryRequest<K>> requests;
  requests.reserve(header.num_requests);
  const uint8_t* in = payload + sizeof(header) + header.name_len;
  for (uint32_t i = 0; i < header.num_requests; ++i) {
    WireQueryRequest record;
    std::memcpy(&record, in, sizeof(record));
    in += sizeof(record);
    if (record.kind >
        static_cast<uint32_t>(QueryRequest<K>::Kind::kEquiQuantiles)) {
      return Status::InvalidArgument(
          "QUERY request " + std::to_string(i) + " has unknown kind " +
          std::to_string(record.kind));
    }
    if ((record.flags & ~wire_query_internal::kExactFlag) != 0) {
      return Status::InvalidArgument(
          "QUERY request " + std::to_string(i) + " sets unknown flag bits");
    }
    if (record.q > kMaxWireEquiDepth) {
      return Status::InvalidArgument(
          "QUERY request " + std::to_string(i) + " asks for q = " +
          std::to_string(record.q) + " (protocol cap " +
          std::to_string(kMaxWireEquiDepth) + ")");
    }
    QueryRequest<K> request;
    request.kind = static_cast<typename QueryRequest<K>::Kind>(record.kind);
    request.exact = (record.flags & wire_query_internal::kExactFlag) != 0;
    request.phi = record.phi;
    request.rank = record.rank;
    request.q = static_cast<int>(record.q);
    std::memcpy(&request.value, in, sizeof(K));
    in += sizeof(K);
    requests.push_back(request);
  }
  return requests;
}

/// `kQueryResult` response payload: batch certificates + per-result record
/// + estimates (each a fixed record plus the two element-sized bracket
/// bounds) + exact values. Fails with ResourceExhausted when the batch
/// cannot fit one frame (only reachable with q near the protocol cap).
template <typename K>
Result<std::vector<uint8_t>> EncodeQueryResultsPayload(
    const QueryResults<K>& results) {
  WireQueryResultHeader header;
  header.total_elements = results.total_elements;
  header.max_rank_error = results.max_rank_error;
  header.num_results = static_cast<uint32_t>(results.results.size());
  uint64_t bytes = sizeof(header);
  for (const QueryResult<K>& result : results.results) {
    bytes += sizeof(WireQueryResultRecord);
    bytes += result.estimates.size() *
             (sizeof(WireQuantileEstimate) + 2 * sizeof(K));
    bytes += result.exact.size() * sizeof(K);
  }
  if (bytes > kMaxWirePayload) {
    return Status::ResourceExhausted(
        "QUERY_RESULT batch of " + std::to_string(bytes) +
        " bytes does not fit one wire frame; split the batch or lower q");
  }
  std::vector<uint8_t> payload(static_cast<size_t>(bytes));
  uint8_t* out = payload.data();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  for (const QueryResult<K>& result : results.results) {
    WireQueryResultRecord record;
    record.kind = static_cast<uint32_t>(result.kind);
    record.num_estimates = static_cast<uint32_t>(result.estimates.size());
    record.num_exact = static_cast<uint32_t>(result.exact.size());
    record.min_rank_le = result.rank.min_rank_le;
    record.max_rank_le = result.rank.max_rank_le;
    record.min_rank_lt = result.rank.min_rank_lt;
    record.max_rank_lt = result.rank.max_rank_lt;
    std::memcpy(out, &record, sizeof(record));
    out += sizeof(record);
    for (const QuantileEstimate<K>& estimate : result.estimates) {
      WireQuantileEstimate wire;
      wire.target_rank = estimate.target_rank;
      wire.lower_index = estimate.lower_index;
      wire.upper_index = estimate.upper_index;
      wire.max_rank_error = estimate.max_rank_error;
      wire.clamp_flags =
          (estimate.lower_clamped ? wire_query_internal::kLowerClampedFlag
                                  : 0) |
          (estimate.upper_clamped ? wire_query_internal::kUpperClampedFlag
                                  : 0);
      std::memcpy(out, &wire, sizeof(wire));
      out += sizeof(wire);
      K lower = estimate.lower;
      K upper = estimate.upper;
      std::memcpy(out, &lower, sizeof(K));
      out += sizeof(K);
      std::memcpy(out, &upper, sizeof(K));
      out += sizeof(K);
    }
    if (!result.exact.empty()) {
      std::memcpy(out, result.exact.data(), result.exact.size() * sizeof(K));
      out += result.exact.size() * sizeof(K);
    }
  }
  return payload;
}

/// Decodes and validates a `kQueryResult` payload (client side). Every
/// record boundary is length-checked before being read, so a truncated or
/// lying payload yields an IoError at the exact field that broke.
template <typename K>
Result<QueryResults<K>> DecodeQueryResultsPayload(const uint8_t* payload,
                                                  size_t len) {
  WireQueryResultHeader header;
  if (len < sizeof(header)) {
    return Status::IoError("QUERY_RESULT payload shorter than its header");
  }
  std::memcpy(&header, payload, sizeof(header));
  QueryResults<K> out;
  out.total_elements = header.total_elements;
  out.max_rank_error = header.max_rank_error;
  const uint8_t* in = payload + sizeof(header);
  size_t remaining = len - sizeof(header);
  // Bound num_results by the bytes actually present BEFORE reserving:
  // the count is attacker-controlled, and an unchecked reserve of up to
  // 2^32 records is an allocation bomb, not a Status.
  if (header.num_results > remaining / sizeof(WireQueryResultRecord)) {
    return Status::IoError(
        "QUERY_RESULT claims " + std::to_string(header.num_results) +
        " results but carries only " + std::to_string(remaining) +
        " payload bytes");
  }
  out.results.reserve(header.num_results);
  for (uint32_t r = 0; r < header.num_results; ++r) {
    WireQueryResultRecord record;
    if (remaining < sizeof(record)) {
      return Status::IoError("QUERY_RESULT truncated inside result " +
                             std::to_string(r));
    }
    std::memcpy(&record, in, sizeof(record));
    in += sizeof(record);
    remaining -= sizeof(record);
    if (record.kind >
        static_cast<uint32_t>(QueryRequest<K>::Kind::kEquiQuantiles)) {
      return Status::IoError("QUERY_RESULT result " + std::to_string(r) +
                             " has unknown kind " +
                             std::to_string(record.kind));
    }
    if (record.num_exact != 0 && record.num_exact != record.num_estimates) {
      return Status::IoError(
          "QUERY_RESULT result " + std::to_string(r) + " carries " +
          std::to_string(record.num_exact) + " exact values for " +
          std::to_string(record.num_estimates) + " estimates");
    }
    const uint64_t estimate_bytes =
        uint64_t{record.num_estimates} *
        (sizeof(WireQuantileEstimate) + 2 * sizeof(K));
    const uint64_t exact_bytes = uint64_t{record.num_exact} * sizeof(K);
    if (remaining < estimate_bytes + exact_bytes) {
      return Status::IoError("QUERY_RESULT truncated inside result " +
                             std::to_string(r));
    }
    QueryResult<K> result;
    result.kind = static_cast<typename QueryRequest<K>::Kind>(record.kind);
    result.rank.min_rank_le = record.min_rank_le;
    result.rank.max_rank_le = record.max_rank_le;
    result.rank.min_rank_lt = record.min_rank_lt;
    result.rank.max_rank_lt = record.max_rank_lt;
    result.estimates.reserve(record.num_estimates);
    for (uint32_t e = 0; e < record.num_estimates; ++e) {
      WireQuantileEstimate wire;
      std::memcpy(&wire, in, sizeof(wire));
      in += sizeof(wire);
      if ((wire.clamp_flags & ~(wire_query_internal::kLowerClampedFlag |
                                wire_query_internal::kUpperClampedFlag)) !=
          0) {
        return Status::IoError("QUERY_RESULT estimate sets unknown clamp "
                               "flag bits");
      }
      QuantileEstimate<K> estimate;
      estimate.target_rank = wire.target_rank;
      estimate.lower_index = wire.lower_index;
      estimate.upper_index = wire.upper_index;
      estimate.max_rank_error = wire.max_rank_error;
      estimate.lower_clamped =
          (wire.clamp_flags & wire_query_internal::kLowerClampedFlag) != 0;
      estimate.upper_clamped =
          (wire.clamp_flags & wire_query_internal::kUpperClampedFlag) != 0;
      std::memcpy(&estimate.lower, in, sizeof(K));
      in += sizeof(K);
      std::memcpy(&estimate.upper, in, sizeof(K));
      in += sizeof(K);
      result.estimates.push_back(estimate);
    }
    result.exact.resize(record.num_exact);
    if (record.num_exact != 0) {
      std::memcpy(result.exact.data(), in, exact_bytes);
      in += exact_bytes;
    }
    remaining -= static_cast<size_t>(estimate_bytes + exact_bytes);
    out.results.push_back(std::move(result));
  }
  if (remaining != 0) {
    return Status::IoError("QUERY_RESULT carries " +
                           std::to_string(remaining) +
                           " trailing bytes past its last result");
  }
  return out;
}

}  // namespace opaq

#endif  // OPAQ_NET_WIRE_QUERY_H_
