#ifndef OPAQ_BASELINES_RESERVOIR_SAMPLE_H_
#define OPAQ_BASELINES_RESERVOIR_SAMPLE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/random.h"

namespace opaq {

/// Random-sampling baseline (paper §1, [Coc77]): keep a uniform sample of
/// fixed capacity via Vitter's reservoir algorithm R, sort it, and read
/// quantiles off the sorted sample. One pass, O(capacity) memory, but the
/// error guarantee is only probabilistic — the contrast OPAQ draws in
/// Table 7's "Random Sample" column.
template <typename K>
class ReservoirSampleEstimator : public StreamingQuantileEstimator<K> {
 public:
  ReservoirSampleEstimator(uint64_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    OPAQ_CHECK_GT(capacity, 0u);
    reservoir_.reserve(capacity);
  }

  void Add(const K& value) override {
    ++count_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(value);
    } else {
      // Element i (1-based) replaces a reservoir slot with prob capacity/i.
      uint64_t j = rng_.NextBounded(count_);
      if (j < capacity_) reservoir_[j] = value;
    }
    sorted_ = false;
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (reservoir_.empty()) {
      return Status::FailedPrecondition("no data observed");
    }
    if (!(phi > 0.0 && phi <= 1.0)) {
      return Status::InvalidArgument("phi must be in (0,1]");
    }
    if (!sorted_) {
      std::sort(reservoir_.begin(), reservoir_.end());
      sorted_ = true;
    }
    uint64_t idx = static_cast<uint64_t>(
        std::ceil(phi * static_cast<double>(reservoir_.size())));
    idx = std::max<uint64_t>(1, std::min<uint64_t>(idx, reservoir_.size()));
    return reservoir_[idx - 1];
  }

  uint64_t count() const override { return count_; }
  uint64_t MemoryElements() const override { return capacity_; }
  std::string name() const override { return "reservoir-sample"; }

 private:
  uint64_t capacity_;
  Xoshiro256 rng_;
  uint64_t count_ = 0;
  // Sorting is deferred to query time; both mutable so the const query API
  // can maintain the cache.
  mutable std::vector<K> reservoir_;
  mutable bool sorted_ = false;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_RESERVOIR_SAMPLE_H_
