#ifndef OPAQ_BASELINES_TDIGEST_H_
#define OPAQ_BASELINES_TDIGEST_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/check.h"

namespace opaq {

/// Dunning & Ertl, "Computing Extremely Accurate Quantiles Using t-Digests"
/// (2019). Published long *after* the paper under reproduction; included as
/// the mergeable sketch the streaming world standardised on — the natural
/// comparator for OPAQ's associative sample-list merge (paper §4), and the
/// one exercised alongside it in the windowed-session ring.
///
/// Clusters the stream into centroids (mean, weight) whose allowed weight
/// shrinks toward the tails under the k1 scale function
/// k(q) = (delta / 2π) · asin(2q − 1), so tail quantiles stay sharp while
/// the middle compresses hard. Estimates interpolate between adjacent
/// centroid means — accurate in practice but, unlike OPAQ's Lemmas 1-3, with
/// no deterministic rank bound; that contrast is the point of Table 7.
///
/// This is the merging variant: `Add` buffers raw points and folds them in
/// by the same sorted-merge pass `Merge` uses for another digest's
/// centroids, so single-stream and merged digests share one code path.
template <typename K>
class TDigest : public StreamingQuantileEstimator<K> {
 public:
  /// `compression` (the paper's delta) bounds the centroid count at roughly
  /// 2*delta; 100 is the customary default.
  explicit TDigest(double compression = 100.0) : compression_(compression) {
    OPAQ_CHECK(compression >= 10.0);
    buffer_limit_ = static_cast<size_t>(8.0 * compression_);
  }

  void Add(const K& value) override {
    ++count_;
    buffer_.push_back(Centroid{static_cast<double>(value), 1});
    if (buffer_.size() >= buffer_limit_) Compress();
  }

  /// Folds another digest in: their centroid sets are merged and
  /// re-compressed, which is exactly how per-window digests combine in a
  /// time-windowed ring. Merging is commutative up to centroid rounding.
  void Merge(const TDigest& other) {
    buffer_.insert(buffer_.end(), other.centroids_.begin(),
                   other.centroids_.end());
    buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
    count_ += other.count_;
    Compress();
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    if (!(phi > 0.0 && phi <= 1.0)) {
      return Status::InvalidArgument("phi must be in (0,1]");
    }
    Compress();
    const double target = phi * static_cast<double>(count_);
    // Walk centroids by cumulative weight; interpolate linearly between the
    // midpoints of adjacent centroids straddling the target rank.
    double seen = 0;
    for (size_t i = 0; i < centroids_.size(); ++i) {
      const double mid = seen + static_cast<double>(centroids_[i].weight) / 2;
      if (target <= mid || i + 1 == centroids_.size()) {
        if (i == 0 || target >= mid) return RoundToKey(centroids_[i].mean);
        const double prev_mid =
            seen - static_cast<double>(centroids_[i - 1].weight) / 2;
        const double t = (target - prev_mid) / (mid - prev_mid);
        return RoundToKey(centroids_[i - 1].mean +
                          t * (centroids_[i].mean - centroids_[i - 1].mean));
      }
      seen += static_cast<double>(centroids_[i].weight);
    }
    return RoundToKey(centroids_.back().mean);
  }

  uint64_t count() const override { return count_; }
  /// Two fields (mean, weight) per centroid; buffered raw points charge one.
  uint64_t MemoryElements() const override {
    return centroids_.size() * 2 + buffer_.size();
  }
  std::string name() const override { return "t-digest"; }

  size_t num_centroids() const {
    Compress();
    return centroids_.size();
  }
  double compression() const { return compression_; }

 private:
  struct Centroid {
    double mean;
    uint64_t weight;
  };

  static K RoundToKey(double v) {
    if (std::is_integral<K>::value) {
      return static_cast<K>(std::llround(std::max(0.0, v)));
    }
    return static_cast<K>(v);
  }

  /// k1 scale function: maps quantile q to cluster index k. A centroid may
  /// span [q0, q1] only while k(q1) − k(q0) <= 1.
  double ScaleK(double q) const {
    q = std::min(1.0, std::max(0.0, q));
    return compression_ / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
  }

  /// Sorted-merge compression: sort centroids + buffered points by mean,
  /// then greedily coalesce runs whose total weight keeps k(q) within one
  /// cluster width. This is the merging t-Digest's single building block.
  /// Const because queries flush the buffer lazily (the mutable state
  /// below); logically the digest is unchanged.
  void Compress() const {
    if (buffer_.empty() && compressed_) return;
    std::vector<Centroid> all = std::move(centroids_);
    all.insert(all.end(), buffer_.begin(), buffer_.end());
    buffer_.clear();
    if (all.empty()) return;
    std::sort(all.begin(), all.end(),
              [](const Centroid& a, const Centroid& b) {
                return a.mean < b.mean;
              });
    const double total = static_cast<double>(count_);
    centroids_.clear();
    Centroid cur = all.front();
    double q0 = 0;  // cumulative weight fraction before `cur`
    double cur_sum = cur.mean * static_cast<double>(cur.weight);
    for (size_t i = 1; i < all.size(); ++i) {
      const double q1 =
          q0 + static_cast<double>(cur.weight + all[i].weight) / total;
      if (ScaleK(q1) - ScaleK(q0) <= 1.0) {
        cur_sum += all[i].mean * static_cast<double>(all[i].weight);
        cur.weight += all[i].weight;
        cur.mean = cur_sum / static_cast<double>(cur.weight);
      } else {
        centroids_.push_back(cur);
        q0 += static_cast<double>(cur.weight) / total;
        cur = all[i];
        cur_sum = cur.mean * static_cast<double>(cur.weight);
      }
    }
    centroids_.push_back(cur);
    compressed_ = true;
  }

  double compression_;
  size_t buffer_limit_;
  uint64_t count_ = 0;
  mutable bool compressed_ = false;
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_TDIGEST_H_
