#ifndef OPAQ_BASELINES_KLL_H_
#define OPAQ_BASELINES_KLL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/check.h"
#include "util/random.h"

namespace opaq {

/// Karnin, Lang & Liberty, "Optimal Quantile Approximation in Streams"
/// (FOCS 2016) — the randomized compactor-stack sketch that modern systems
/// (DataSketches, DuckDB, ...) standardised on. Included, like GK, as a
/// post-1997 comparator: it shows where the buffer-merge lineage that OPAQ
/// and Munro–Paterson belong to ended up.
///
/// Structure: a stack of compactors; level i holds items of weight 2^i.
/// When a compactor overflows its capacity (k at the top, shrinking by
/// factor 2/3 per level below), it sorts itself and promotes every other
/// item — random offset — to the level above. O(k · (1/(1-c)) ) memory;
/// rank error eps·n with eps = O(1/k) with high probability (probabilistic,
/// unlike OPAQ's deterministic certificate).
template <typename K>
class KllEstimator : public StreamingQuantileEstimator<K> {
 public:
  explicit KllEstimator(size_t k, uint64_t seed = 1)
      : k_(k), rng_(seed), compactors_(1) {
    OPAQ_CHECK_GE(k, 8u);
  }

  void Add(const K& value) override {
    ++count_;
    compactors_[0].push_back(value);
    if (compactors_[0].size() >= Capacity(0)) Compress();
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    if (!(phi > 0.0 && phi <= 1.0)) {
      return Status::InvalidArgument("phi must be in (0,1]");
    }
    struct Entry {
      K value;
      uint64_t weight;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    for (size_t level = 0; level < compactors_.size(); ++level) {
      const uint64_t weight = uint64_t{1} << level;
      for (const K& v : compactors_[level]) {
        entries.push_back(Entry{v, weight});
        total += weight;
      }
    }
    if (entries.empty()) return Status::Internal("sketch lost all items");
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.value < b.value; });
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(phi * static_cast<double>(total))));
    uint64_t cumulative = 0;
    for (const Entry& e : entries) {
      cumulative += e.weight;
      if (cumulative >= target) return e.value;
    }
    return entries.back().value;
  }

  uint64_t count() const override { return count_; }

  uint64_t MemoryElements() const override {
    uint64_t held = 0;
    for (const auto& c : compactors_) held += c.size();
    return held;
  }

  std::string name() const override { return "kll"; }
  size_t num_levels() const { return compactors_.size(); }

 private:
  /// Capacity of the compactor at `level`: k at the top of the stack,
  /// decaying by 2/3 per level below it (never under 2).
  size_t Capacity(size_t level) const {
    const double c = 2.0 / 3.0;
    const double depth =
        static_cast<double>(compactors_.size() - 1 - level);
    const double cap = std::ceil(static_cast<double>(k_) * std::pow(c, depth));
    return std::max<size_t>(static_cast<size_t>(cap), 2);
  }

  /// Sweeps the stack bottom-up, compacting every over-capacity level:
  /// sort, promote alternate items (random parity) with doubled weight,
  /// discard the rest. Promotions only flow upward, so one upward sweep
  /// handles the full cascade.
  void Compress() {
    for (size_t level = 0; level < compactors_.size(); ++level) {
      if (compactors_[level].size() < Capacity(level)) continue;
      if (level + 1 == compactors_.size()) {
        compactors_.emplace_back();  // grow the stack; capacities shift
      }
      std::vector<K>& src = compactors_[level];
      std::sort(src.begin(), src.end());
      const size_t offset = rng_.Next() & 1;
      for (size_t i = offset; i < src.size(); i += 2) {
        compactors_[level + 1].push_back(src[i]);
      }
      src.clear();
    }
  }

  size_t k_;
  Xoshiro256 rng_;
  uint64_t count_ = 0;
  std::vector<std::vector<K>> compactors_;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_KLL_H_
