#ifndef OPAQ_BASELINES_MUNRO_PATERSON_H_
#define OPAQ_BASELINES_MUNRO_PATERSON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/check.h"

namespace opaq {

/// Munro & Paterson, "Selection and Sorting with Limited Storage" (TCS
/// 1980), the paper's [MP80]: the original buffer-collapse scheme (ancestor
/// of MRL and GK summaries).
///
/// Elements fill a level-0 buffer of `buffer_size` elements; whenever two
/// buffers share a level they *collapse*: merge the two sorted buffers and
/// keep alternate elements, producing one buffer at the next level with
/// twice the weight. At query time all surviving buffers merge (weighted)
/// and the value whose cumulative weight crosses phi*n is reported.
/// Memory is O(buffer_size * log(n / buffer_size)); the rank error grows
/// with the number of collapse levels.
template <typename K>
class MunroPatersonEstimator : public StreamingQuantileEstimator<K> {
 public:
  explicit MunroPatersonEstimator(uint64_t buffer_size)
      : buffer_size_(buffer_size) {
    OPAQ_CHECK_GE(buffer_size, 2u);
  }

  void Add(const K& value) override {
    ++count_;
    incoming_.push_back(value);
    if (incoming_.size() == buffer_size_) {
      std::sort(incoming_.begin(), incoming_.end());
      PlaceBuffer(std::move(incoming_), 0);
      incoming_ = std::vector<K>();
      incoming_.reserve(buffer_size_);
    }
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    if (!(phi > 0.0 && phi <= 1.0)) {
      return Status::InvalidArgument("phi must be in (0,1]");
    }
    // Weighted merge of all live buffers plus the partial level-0 buffer.
    struct Entry {
      K value;
      uint64_t weight;
    };
    std::vector<Entry> entries;
    for (size_t level = 0; level < levels_.size(); ++level) {
      const uint64_t weight = uint64_t{1} << level;
      for (const auto& buffer : levels_[level]) {
        for (const K& v : buffer) entries.push_back(Entry{v, weight});
      }
    }
    for (const K& v : incoming_) entries.push_back(Entry{v, 1});
    if (entries.empty()) {
      return Status::FailedPrecondition("no complete data yet");
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.value < b.value; });
    uint64_t total = 0;
    for (const Entry& e : entries) total += e.weight;
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(phi * static_cast<double>(total))));
    uint64_t cumulative = 0;
    for (const Entry& e : entries) {
      cumulative += e.weight;
      if (cumulative >= target) return e.value;
    }
    return entries.back().value;
  }

  uint64_t count() const override { return count_; }

  uint64_t MemoryElements() const override {
    uint64_t held = incoming_.capacity();
    for (const auto& level : levels_) {
      for (const auto& buffer : level) held += buffer.size();
    }
    return held;
  }

  std::string name() const override { return "munro-paterson"; }

  /// Number of collapse levels currently alive (error grows with this).
  size_t num_levels() const { return levels_.size(); }

 private:
  /// Inserts a sorted buffer at `level`, collapsing carries like binary
  /// addition: two buffers at a level merge into one at level+1.
  void PlaceBuffer(std::vector<K> buffer, size_t level) {
    while (true) {
      if (levels_.size() <= level) levels_.resize(level + 1);
      if (levels_[level].empty()) {
        levels_[level].push_back(std::move(buffer));
        return;
      }
      std::vector<K> other = std::move(levels_[level].back());
      levels_[level].pop_back();
      buffer = Collapse(std::move(other), std::move(buffer), level);
      ++level;
    }
  }

  /// Merges two sorted buffers and keeps alternate elements. The starting
  /// parity alternates per level-collapse to keep the rank bias centred
  /// (Munro-Paterson's odd/even trick).
  std::vector<K> Collapse(std::vector<K> a, std::vector<K> b, size_t level) {
    std::vector<K> merged(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), merged.begin());
    std::vector<K> kept;
    kept.reserve(merged.size() / 2);
    const uint64_t bit = uint64_t{1} << (level % 64);
    const size_t start = (collapse_parity_ & bit) != 0 ? 1 : 0;
    collapse_parity_ ^= bit;
    for (size_t i = start; i < merged.size(); i += 2) kept.push_back(merged[i]);
    return kept;
  }

  uint64_t buffer_size_;
  uint64_t count_ = 0;
  std::vector<K> incoming_;
  std::vector<std::vector<std::vector<K>>> levels_;
  uint64_t collapse_parity_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_MUNRO_PATERSON_H_
