#ifndef OPAQ_BASELINES_GK_H_
#define OPAQ_BASELINES_GK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/check.h"

namespace opaq {

/// Greenwald & Khanna, "Space-Efficient Online Computation of Quantile
/// Summaries" (SIGMOD 2001). Published *after* the paper under reproduction;
/// included as the modern deterministic comparator the later literature
/// standardised on (see DESIGN.md: novelty band notes GK/KLL abundance).
///
/// Maintains tuples (v, g, delta) where g is the rank gap to the previous
/// tuple and delta the uncertainty; the invariant g + delta <= 2*eps*n
/// guarantees answers within eps*n ranks — the same *kind* of deterministic
/// guarantee OPAQ's Lemmas 1-3 give with eps = 1/s per run.
template <typename K>
class GkEstimator : public StreamingQuantileEstimator<K> {
 public:
  explicit GkEstimator(double eps) : eps_(eps) {
    OPAQ_CHECK(eps > 0.0 && eps < 0.5);
    compress_every_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::floor(1.0 / (2.0 * eps_))));
  }

  void Add(const K& value) override {
    ++count_;
    // Find insertion point: first tuple with v >= value.
    auto it = std::lower_bound(
        tuples_.begin(), tuples_.end(), value,
        [](const Tuple& t, const K& v) { return t.value < v; });
    uint64_t delta = 0;
    if (it != tuples_.begin() && it != tuples_.end()) {
      delta = MaxGapBound() >= 1 ? MaxGapBound() - 1 : 0;
    }
    tuples_.insert(it, Tuple{value, 1, delta});
    if (count_ % compress_every_ == 0) Compress();
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    if (!(phi > 0.0 && phi <= 1.0)) {
      return Status::InvalidArgument("phi must be in (0,1]");
    }
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(phi * static_cast<double>(count_))));
    // Return the tuple minimising the worst-side rank uncertainty around the
    // target; by the GK invariant its error is at most eps*n.
    uint64_t rmin = 0;
    uint64_t best_error = UINT64_MAX;
    K best = tuples_.front().value;
    for (const Tuple& t : tuples_) {
      rmin += t.g;
      const uint64_t rmax = rmin + t.delta;
      const uint64_t low_side = target > rmin ? target - rmin : 0;
      const uint64_t high_side = rmax > target ? rmax - target : 0;
      const uint64_t error = std::max(low_side, high_side);
      if (error < best_error) {
        best_error = error;
        best = t.value;
      }
    }
    return best;
  }

  uint64_t count() const override { return count_; }
  /// 3 fields per tuple; charge one element per field-triple.
  uint64_t MemoryElements() const override { return tuples_.size() * 3; }
  std::string name() const override { return "greenwald-khanna"; }

  size_t num_tuples() const { return tuples_.size(); }
  double eps() const { return eps_; }

 private:
  struct Tuple {
    K value;
    uint64_t g;
    uint64_t delta;
  };

  /// 2*eps*n, the capacity bound on g + delta.
  uint64_t MaxGapBound() const {
    return std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::floor(2.0 * eps_ * static_cast<double>(count_))));
  }

  /// Merges tuples whose combined uncertainty stays within the bound.
  /// First and last tuples (exact min/max) are never absorbed.
  void Compress() {
    if (tuples_.size() < 3) return;
    const uint64_t bound = MaxGapBound();
    std::vector<Tuple> kept;
    kept.reserve(tuples_.size());
    kept.push_back(tuples_.front());
    // Walk middle tuples, greedily absorbing into the successor.
    uint64_t pending_g = 0;
    for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
      const Tuple& t = tuples_[i];
      const Tuple& next = tuples_[i + 1];
      if (pending_g + t.g + next.g + next.delta <= bound) {
        pending_g += t.g;  // absorb t into its successor
      } else {
        Tuple out = t;
        out.g += pending_g;
        pending_g = 0;
        kept.push_back(out);
      }
    }
    Tuple last = tuples_.back();
    last.g += pending_g;
    kept.push_back(last);
    tuples_ = std::move(kept);
  }

  double eps_;
  uint64_t compress_every_;
  uint64_t count_ = 0;
  std::vector<Tuple> tuples_;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_GK_H_
