#ifndef OPAQ_BASELINES_AS95_HISTOGRAM_H_
#define OPAQ_BASELINES_AS95_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/check.h"

namespace opaq {

/// One-pass adaptive-histogram baseline in the style of Agrawal & Swami,
/// "A One-Pass Space-Efficient Algorithm for Finding Quantiles" (COMAD'95),
/// the [AS95] column of the paper's Table 7.
///
/// Fidelity note (see DESIGN.md §5): the COMAD'95 text is not available
/// offline; this implements the algorithm as characterised by *this* paper's
/// §1 — "partitions the range of the values into k intervals and counts the
/// values in each interval; the boundaries of intervals are determined
/// on-the-fly and are continuously adjusted as data is read" — using
/// geometric range doubling with bucket-pair merging when a value falls
/// outside the current range. Quantiles are read off the cumulative counts
/// with linear interpolation inside the crossing bucket. As the paper notes,
/// this class of algorithm provides no deterministic error bound.
///
/// Bucket arithmetic happens in double; for 64-bit integer keys beyond 2^53
/// the boundaries quantise, which is inherent to value-range histograms.
template <typename K>
class As95HistogramEstimator : public StreamingQuantileEstimator<K> {
 public:
  explicit As95HistogramEstimator(uint64_t num_buckets)
      : counts_(num_buckets, 0) {
    OPAQ_CHECK_GE(num_buckets, 2u);
    OPAQ_CHECK_EQ(num_buckets % 2, 0u) << "bucket count must be even so "
                                          "range doubling can pair-merge";
  }

  void Add(const K& value) override {
    const double v = static_cast<double>(value);
    ++count_;
    if (count_ == 1) {
      // Degenerate initial range around the first value; it grows
      // geometrically as soon as a different value arrives.
      lo_ = v;
      width_ = InitialWidth(v);
      counts_.assign(counts_.size(), 0);
      counts_[0] = 1;
      return;
    }
    while (v < lo_) GrowDown();
    while (v >= hi()) GrowUp();
    size_t bucket = static_cast<size_t>((v - lo_) / width_);
    if (bucket >= counts_.size()) bucket = counts_.size() - 1;  // fp edge
    ++counts_[bucket];
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    if (!(phi > 0.0 && phi <= 1.0)) {
      return Status::InvalidArgument("phi must be in (0,1]");
    }
    const double target = phi * static_cast<double>(count_);
    double cumulative = 0;
    for (size_t b = 0; b < counts_.size(); ++b) {
      const double next = cumulative + static_cast<double>(counts_[b]);
      if (next >= target && counts_[b] > 0) {
        const double inside = (target - cumulative) /
                              static_cast<double>(counts_[b]);
        const double v = lo_ + (static_cast<double>(b) + inside) * width_;
        return static_cast<K>(v);
      }
      cumulative = next;
    }
    return static_cast<K>(hi());
  }

  uint64_t count() const override { return count_; }
  /// A bucket stores one counter: charge one element per bucket, matching
  /// the paper's equal-memory framing.
  uint64_t MemoryElements() const override { return counts_.size(); }
  std::string name() const override { return "as95-histogram"; }

  double bucket_width() const { return width_; }
  double range_lo() const { return lo_; }

 private:
  double hi() const {
    return lo_ + width_ * static_cast<double>(counts_.size());
  }

  static double InitialWidth(double v) {
    const double scale = std::abs(v);
    return scale > 1.0 ? scale * 1e-6 : 1e-6;
  }

  /// Doubles the range upward: pairs of buckets merge into the lower half.
  void GrowUp() {
    const size_t b = counts_.size();
    for (size_t i = 0; i < b / 2; ++i) {
      counts_[i] = counts_[2 * i] + counts_[2 * i + 1];
    }
    std::fill(counts_.begin() + b / 2, counts_.end(), uint64_t{0});
    width_ *= 2;
  }

  /// Doubles the range downward: pairs merge into the upper half and the
  /// origin moves down by the old range.
  void GrowDown() {
    const size_t b = counts_.size();
    for (size_t i = b; i-- > b / 2;) {
      counts_[i] = counts_[2 * (i - b / 2)] + counts_[2 * (i - b / 2) + 1];
    }
    std::fill(counts_.begin(), counts_.begin() + b / 2, uint64_t{0});
    lo_ -= width_ * static_cast<double>(b);
    width_ *= 2;
  }

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double lo_ = 0;
  double width_ = 1;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_AS95_HISTOGRAM_H_
