#ifndef OPAQ_BASELINES_QUANTILE_ESTIMATOR_H_
#define OPAQ_BASELINES_QUANTILE_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/run_reader.h"
#include "util/status.h"

namespace opaq {

/// Common face of the single-pass comparison algorithms (paper §1's related
/// work, used in Table 7): elements arrive one at a time, then point
/// estimates are queried. Unlike OPAQ these provide no (or only
/// probabilistic) error guarantees — that contrast is the paper's point.
template <typename K>
class StreamingQuantileEstimator {
 public:
  virtual ~StreamingQuantileEstimator() = default;

  /// Observes one element of the stream.
  virtual void Add(const K& value) = 0;

  /// Point estimate of the phi-quantile after (or during) the pass.
  /// Estimators that fix their quantile set up front (P2) fail with
  /// InvalidArgument for unregistered phi.
  virtual Result<K> EstimateQuantile(double phi) const = 0;

  /// Elements observed so far.
  virtual uint64_t count() const = 0;

  /// Memory footprint in "stored elements" (for the paper's equal-memory
  /// comparison: OPAQ's rs sample points vs the baseline's state).
  virtual uint64_t MemoryElements() const = 0;

  virtual std::string name() const = 0;

  /// Feeds an entire disk file through the estimator run by run.
  Status ConsumeFile(const TypedDataFile<K>* file, uint64_t run_size) {
    RunReader<K> reader(file, run_size);
    std::vector<K> buffer;
    while (true) {
      auto more = reader.NextRun(&buffer);
      if (!more.ok()) return more.status();
      if (!*more) break;
      for (const K& v : buffer) Add(v);
    }
    return Status::OK();
  }
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_QUANTILE_ESTIMATOR_H_
