#ifndef OPAQ_BASELINES_FRUGAL_H_
#define OPAQ_BASELINES_FRUGAL_H_

#include <cstdint>
#include <random>
#include <string>

#include "baselines/quantile_estimator.h"
#include "util/check.h"

namespace opaq {

/// Ma, Muthukrishnan & Sandler, "Frugal Streaming for Estimating Quantiles"
/// (2014): the 1-unit-of-memory estimator. Published after the paper under
/// reproduction; included as the opposite extreme of the memory/accuracy
/// trade-off OPAQ's Table 7 charts — ONE stored word against OPAQ's rs
/// sample points.
///
/// Frugal-1U tracks a single estimate m~ and nudges it one unit toward the
/// phi-quantile: on x > m~, step up with probability phi; on x < m~, step
/// down with probability 1−phi. The stationary point is the true quantile,
/// but convergence is slow and only stochastic — there is no rank
/// guarantee, and the estimate only visits values one step at a time, so
/// wide domains converge poorly. The phi is fixed at construction;
/// querying any other phi is an InvalidArgument (same contract as P2's
/// registered-marker restriction).
template <typename K>
class FrugalEstimator : public StreamingQuantileEstimator<K> {
 public:
  explicit FrugalEstimator(double phi, uint64_t seed = 1)
      : phi_(phi), rng_(seed) {
    OPAQ_CHECK(phi > 0.0 && phi < 1.0);
  }

  void Add(const K& value) override {
    ++count_;
    if (count_ == 1) {
      estimate_ = value;  // standard initialisation: first element
      return;
    }
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    if (value > estimate_) {
      if (unit(rng_) < phi_) estimate_ = estimate_ + 1;
    } else if (value < estimate_) {
      if (unit(rng_) < 1.0 - phi_) estimate_ = estimate_ - 1;
    }
  }

  Result<K> EstimateQuantile(double phi) const override {
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    if (phi != phi_) {
      return Status::InvalidArgument(
          "frugal-1u tracks one fixed quantile; phi " + std::to_string(phi) +
          " was not the one registered at construction");
    }
    return estimate_;
  }

  uint64_t count() const override { return count_; }
  /// The algorithm's entire selling point: one stored element.
  uint64_t MemoryElements() const override { return 1; }
  std::string name() const override { return "frugal-1u"; }

  double phi() const { return phi_; }

 private:
  double phi_;
  std::mt19937_64 rng_;
  uint64_t count_ = 0;
  K estimate_ = K{};
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_FRUGAL_H_
