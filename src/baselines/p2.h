#ifndef OPAQ_BASELINES_P2_H_
#define OPAQ_BASELINES_P2_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baselines/quantile_estimator.h"
#include "util/check.h"

namespace opaq {

namespace internal_p2 {

/// One P-squared marker set tracking a single quantile p — Jain & Chlamtac,
/// "The P² Algorithm for Dynamic Calculation of Quantiles and Histograms
/// Without Storing Observations" (CACM 1985), the paper's [RC85].
///
/// Five markers whose heights approximate the min, p/2, p, (1+p)/2 and max
/// quantiles; marker heights move by parabolic (falling back to linear)
/// interpolation as observations arrive. O(1) memory, no error bound.
class P2Single {
 public:
  explicit P2Single(double p) : p_(p) {
    OPAQ_CHECK(p > 0.0 && p < 1.0);
  }

  void Add(double x) {
    if (count_ < 5) {
      initial_[count_++] = x;
      if (count_ == 5) {
        std::sort(initial_, initial_ + 5);
        for (int i = 0; i < 5; ++i) {
          q_[i] = initial_[i];
          n_[i] = i + 1;
        }
        np_[0] = 1;
        np_[1] = 1 + 2 * p_;
        np_[2] = 1 + 4 * p_;
        np_[3] = 3 + 2 * p_;
        np_[4] = 5;
      }
      return;
    }
    ++count_;
    // Locate the cell containing x, extending the extremes if needed.
    int k;
    if (x < q_[0]) {
      q_[0] = x;
      k = 0;
    } else if (x >= q_[4]) {
      q_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && !(x < q_[k + 1])) ++k;
    }
    for (int i = k + 1; i < 5; ++i) n_[i] += 1;
    np_[1] += p_ / 2;
    np_[2] += p_;
    np_[3] += (1 + p_) / 2;
    np_[4] += 1;
    // Adjust the three interior markers if they drifted off their desired
    // positions by >= 1 and there is room to move.
    for (int i = 1; i <= 3; ++i) {
      const double d = np_[i] - n_[i];
      if ((d >= 1 && n_[i + 1] - n_[i] > 1) ||
          (d <= -1 && n_[i - 1] - n_[i] < -1)) {
        const int s = d >= 0 ? 1 : -1;
        const double qp = Parabolic(i, s);
        if (q_[i - 1] < qp && qp < q_[i + 1]) {
          q_[i] = qp;
        } else {
          q_[i] = Linear(i, s);
        }
        n_[i] += s;
      }
    }
  }

  /// Current estimate of the p-quantile.
  double Estimate() const {
    OPAQ_CHECK_GT(count_, 0u);
    if (count_ < 5) {
      // Too few observations for the marker machinery: exact small-sample
      // quantile.
      double tmp[5];
      std::copy(initial_, initial_ + count_, tmp);
      std::sort(tmp, tmp + count_);
      uint64_t idx = static_cast<uint64_t>(
          std::ceil(p_ * static_cast<double>(count_)));
      idx = std::max<uint64_t>(1, std::min<uint64_t>(idx, count_));
      return tmp[idx - 1];
    }
    return q_[2];
  }

  uint64_t count() const { return count_; }

 private:
  double Parabolic(int i, int s) const {
    const double d = static_cast<double>(s);
    return q_[i] +
           d / (n_[i + 1] - n_[i - 1]) *
               ((n_[i] - n_[i - 1] + d) * (q_[i + 1] - q_[i]) /
                    (n_[i + 1] - n_[i]) +
                (n_[i + 1] - n_[i] - d) * (q_[i] - q_[i - 1]) /
                    (n_[i] - n_[i - 1]));
  }

  double Linear(int i, int s) const {
    return q_[i] +
           static_cast<double>(s) * (q_[i + s] - q_[i]) / (n_[i + s] - n_[i]);
  }

  double p_;
  uint64_t count_ = 0;
  double initial_[5] = {0, 0, 0, 0, 0};
  double q_[5] = {0, 0, 0, 0, 0};   // marker heights
  double n_[5] = {0, 0, 0, 0, 0};   // marker positions (1-based)
  double np_[5] = {0, 0, 0, 0, 0};  // desired positions
};

}  // namespace internal_p2

/// P² baseline over a fixed set of target quantiles: one five-marker state
/// per phi (the algorithm needs its quantiles up front — one of the
/// flexibility contrasts with OPAQ, whose sample list serves any phi).
template <typename K>
class P2Estimator : public StreamingQuantileEstimator<K> {
 public:
  explicit P2Estimator(const std::vector<double>& phis) {
    OPAQ_CHECK(!phis.empty());
    for (double phi : phis) {
      markers_.emplace(phi, internal_p2::P2Single(phi));
    }
  }

  void Add(const K& value) override {
    ++count_;
    for (auto& [phi, marker] : markers_) {
      marker.Add(static_cast<double>(value));
    }
  }

  Result<K> EstimateQuantile(double phi) const override {
    auto it = markers_.find(phi);
    if (it == markers_.end()) {
      return Status::InvalidArgument(
          "P2 tracks only the quantiles registered at construction");
    }
    if (count_ == 0) return Status::FailedPrecondition("no data observed");
    return static_cast<K>(it->second.Estimate());
  }

  uint64_t count() const override { return count_; }
  /// 4 doubles x 5 markers per tracked quantile, expressed in elements.
  uint64_t MemoryElements() const override { return markers_.size() * 20; }
  std::string name() const override { return "p2"; }

 private:
  std::map<double, internal_p2::P2Single> markers_;
  uint64_t count_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_BASELINES_P2_H_
