#include "telemetry/stats_format.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace opaq {
namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "opaq_";
  for (char c : name) {
    const bool valid = std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  return out;
}

}  // namespace

std::string FormatStatsText(const MetricsSnapshot& snapshot) {
  size_t width = 0;
  for (const MetricSample& metric : snapshot.metrics) {
    width = std::max(width, metric.name.size());
  }
  std::ostringstream out;
  for (const MetricSample& metric : snapshot.metrics) {
    out << metric.name
        << std::string(width - metric.name.size() + 2, ' ');
    switch (metric.type) {
      case MetricType::kCounter:
        out << metric.value << "\n";
        break;
      case MetricType::kGauge:
        out << metric.gauge_value() << "\n";
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        out << "count=" << h.count << " sum=" << h.sum
            << " p50=" << h.QuantilePoint(0.5)
            << " p90=" << h.QuantilePoint(0.9)
            << " p99=" << h.QuantilePoint(0.99)
            << " max=" << h.QuantilePoint(1.0) << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string FormatStatsPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const MetricSample& metric : snapshot.metrics) {
    const std::string name = PrometheusName(metric.name);
    switch (metric.type) {
      case MetricType::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << metric.value << "\n";
        break;
      case MetricType::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << metric.gauge_value() << "\n";
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        out << "# TYPE " << name << " summary\n";
        for (double phi : {0.5, 0.9, 0.99}) {
          out << name << "{quantile=\"" << phi << "\"} "
              << h.QuantilePoint(phi) << "\n";
        }
        out << name << "_sum " << h.sum << "\n"
            << name << "_count " << h.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace opaq
