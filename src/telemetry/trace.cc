#include "telemetry/trace.h"

#include <chrono>
#include <functional>
#include <sstream>
#include <thread>

#include "util/check.h"

namespace opaq {
namespace {

uint32_t HashedThreadId() {
  static thread_local const uint32_t tid = static_cast<uint32_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  return tid;
}

size_t RoundUpPow2(size_t n) {
  size_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kRunRead: return "run_read";
    case TraceStage::kExtentDecode: return "extent_decode";
    case TraceStage::kSample: return "sample";
    case TraceStage::kMerge: return "merge";
    case TraceStage::kExactPass: return "exact_pass";
    case TraceStage::kWireSend: return "wire_send";
    case TraceStage::kWireRecv: return "wire_recv";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(RoundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(slots_.size() - 1) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint64_t FlightRecorder::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void FlightRecorder::Record(TraceStage stage, uint64_t start_ns,
                            uint64_t duration_ns) {
  const size_t index = static_cast<size_t>(stage);
  OPAQ_DCHECK(index < kNumTraceStages);
  stage_count_[index].fetch_add(1, std::memory_order_relaxed);
  stage_ns_[index].fetch_add(duration_ns, std::memory_order_relaxed);

  Slot& slot = slots_[next_.fetch_add(1, std::memory_order_relaxed) & mask_];
  // Per-slot seqlock: bump to odd, write payload, bump to even. Two writers
  // lapping each other on the same slot (a full ring wrap mid-write) leave
  // the seq transiently mismatched; readers discard such slots.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.meta.store((static_cast<uint64_t>(HashedThreadId()) << 8) |
                      static_cast<uint64_t>(stage),
                  std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::Events() const {
  const uint64_t written = next_.load(std::memory_order_acquire);
  const size_t capacity = slots_.size();
  const uint64_t retained = written < capacity ? written : capacity;
  std::vector<TraceEvent> out;
  out.reserve(retained);
  // Oldest retained ticket first.
  for (uint64_t ticket = written - retained; ticket < written; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    TraceEvent event;
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != before) continue;
    event.tid = static_cast<uint32_t>(meta >> 8);
    const uint8_t stage = static_cast<uint8_t>(meta & 0xff);
    if (stage >= kNumTraceStages) continue;  // torn overwrite
    event.stage = static_cast<TraceStage>(stage);
    out.push_back(event);
  }
  return out;
}

uint64_t FlightRecorder::StageCount(TraceStage stage) const {
  return stage_count_[static_cast<size_t>(stage)].load(
      std::memory_order_relaxed);
}

uint64_t FlightRecorder::StageTotalNs(TraceStage stage) const {
  return stage_ns_[static_cast<size_t>(stage)].load(
      std::memory_order_relaxed);
}

std::string FlightRecorder::ChromeTraceJson() const {
  // The trace-event format: complete ("ph":"X") events with microsecond
  // timestamps; pid is fixed (one process), tid is the hashed thread id.
  std::ostringstream json;
  json << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : Events()) {
    if (!first) json << ",";
    first = false;
    json << "{\"name\":\"" << TraceStageName(event.stage)
         << "\",\"cat\":\"opaq\",\"ph\":\"X\",\"ts\":"
         << event.start_ns / 1000 << "." << (event.start_ns % 1000) / 100
         << ",\"dur\":" << event.duration_ns / 1000 << "."
         << (event.duration_ns % 1000) / 100 << ",\"pid\":1,\"tid\":"
         << event.tid << "}";
  }
  json << "]}";
  return json.str();
}

}  // namespace opaq
