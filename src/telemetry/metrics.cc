#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace opaq {

uint64_t HistogramSnapshot::QuantilePoint(double phi) const {
  if (samples.empty()) return 0;
  if (phi < 0) phi = 0;
  if (phi > 1) phi = 1;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(phi * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

LatencyHistogram::LatencyHistogram(Config config)
    : run_size_(config.run_size),
      subrun_size_(config.run_size / config.samples_per_run) {
  OPAQ_CHECK_GT(config.samples_per_run, 0u);
  OPAQ_CHECK_GT(subrun_size_, 0u);
  OPAQ_CHECK_EQ(config.run_size % config.samples_per_run, 0u)
      << "run_size must be a whole number of sub-runs";
  pending_.reserve(run_size_);
}

void LatencyHistogram::FoldRun(std::vector<uint64_t> pending,
                               uint64_t subrun_size,
                               SampleList<uint64_t>* merged) {
  if (pending.empty()) return;
  std::sort(pending.begin(), pending.end());
  // Regular sampling: the last element of each full sub-run, exactly the
  // rule `RegularSamplesBySubrunSize` applies to data runs (a partial tail
  // sub-run contributes no sample, only `num_uncovered` accounting).
  SampleListBuilder<uint64_t> builder(subrun_size);
  std::vector<uint64_t> samples;
  samples.reserve(pending.size() / subrun_size);
  for (uint64_t j = subrun_size - 1; j < pending.size(); j += subrun_size) {
    samples.push_back(pending[j]);
  }
  builder.AddRunSamples(std::move(samples), pending.size());
  auto combined = SampleList<uint64_t>::Merge(*merged, builder.Finalize());
  OPAQ_CHECK_OK(combined.status());  // identical subrun sizes by construction
  *merged = std::move(combined).value();
}

void LatencyHistogram::Record(uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(value);
  sum_ += value;
  ++count_;
  if (pending_.size() >= run_size_) {
    FoldRun(std::move(pending_), subrun_size_, &merged_);
    pending_ = std::vector<uint64_t>();
    pending_.reserve(run_size_);
  }
}

uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

SampleList<uint64_t> LatencyHistogram::SnapshotList() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SampleList<uint64_t> out = merged_;
  FoldRun(pending_, subrun_size_, &out);  // copy: live state untouched
  return out;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SampleList<uint64_t> list = merged_;
  FoldRun(pending_, subrun_size_, &list);
  HistogramSnapshot out;
  out.sum = sum_;
  out.count = list.total_elements();
  out.subrun_size = subrun_size_;
  out.num_runs = list.accounting().num_runs;
  out.samples = list.samples();
  return out;
}

QuantileEstimate<uint64_t> LatencyHistogram::Quantile(double phi) const {
  SampleList<uint64_t> list = SnapshotList();
  if (list.samples().empty()) return QuantileEstimate<uint64_t>{};
  return OpaqEstimator<uint64_t>(std::move(list)).Quantile(phi);
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr) {
    OPAQ_CHECK(entry.gauge == nullptr && entry.histogram == nullptr)
        << "metric '" << name << "' already registered with another type";
    entry.type = MetricType::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.gauge == nullptr) {
    OPAQ_CHECK(entry.counter == nullptr && entry.histogram == nullptr)
        << "metric '" << name << "' already registered with another type";
    entry.type = MetricType::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, LatencyHistogram::Config config) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.histogram == nullptr) {
    OPAQ_CHECK(entry.counter == nullptr && entry.gauge == nullptr)
        << "metric '" << name << "' already registered with another type";
    entry.type = MetricType::kHistogram;
    entry.histogram = std::make_unique<LatencyHistogram>(config);
  }
  return entry.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.metrics.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {  // std::map: sorted by name
    MetricSample sample;
    sample.name = name;
    sample.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.value = entry.counter->value();
        break;
      case MetricType::kGauge:
        sample.value = static_cast<uint64_t>(entry.gauge->value());
        break;
      case MetricType::kHistogram:
        sample.histogram = entry.histogram->Snapshot();
        sample.value = sample.histogram.count;
        break;
    }
    out.metrics.push_back(std::move(sample));
  }
  return out;
}

}  // namespace opaq
