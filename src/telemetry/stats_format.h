#ifndef OPAQ_TELEMETRY_STATS_FORMAT_H_
#define OPAQ_TELEMETRY_STATS_FORMAT_H_

#include <string>

#include "telemetry/metrics.h"

namespace opaq {

/// Renders a snapshot for humans: one aligned `name  value` row per metric,
/// histograms expanded to count/sum/p50/p90/p99/max. Both daemons' shutdown
/// dumps and `--stats-interval` ticks and the CLI's default `stats` output
/// all go through this one function, so the layouts stay identical.
std::string FormatStatsText(const MetricsSnapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format (0.0.4):
/// counters/gauges as typed samples, histograms as summaries with
/// `quantile` labels plus `_sum`/`_count`. Metric names are sanitized
/// (dots become underscores) and prefixed `opaq_`.
std::string FormatStatsPrometheus(const MetricsSnapshot& snapshot);

}  // namespace opaq

#endif  // OPAQ_TELEMETRY_STATS_FORMAT_H_
