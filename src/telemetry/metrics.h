#ifndef OPAQ_TELEMETRY_METRICS_H_
#define OPAQ_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/sample_list.h"
#include "util/check.h"

namespace opaq {

/// The process-wide metric vocabulary: named counters, gauges, and latency
/// histograms, registered once and updated lock-free on the hot path. The
/// histograms are self-hosted on OPAQ's own mergeable sample-list sketch —
/// the system measures itself with the paper's algorithm, so a histogram
/// snapshot IS a `SampleList<uint64_t>` with certified quantile brackets.

/// Monotonically increasing event count. All updates are relaxed atomics:
/// a counter never orders anything, it only has to not lose increments.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// For mirroring an externally-maintained counter (e.g. a server's
  /// connection count) into the registry at snapshot time.
  void Set(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go both ways (resident sessions, queue depth).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Wire/render-safe flattened view of one histogram: a plain struct (no
/// CHECKed invariants), so hostile decoded bytes can be carried and
/// validated without aborting. `samples` is ascending; quantiles read
/// straight off it by regular-sampling rank arithmetic.
struct HistogramSnapshot {
  uint64_t count = 0;        ///< values recorded (== accounting total)
  uint64_t sum = 0;          ///< sum of recorded values (Prometheus _sum)
  uint64_t subrun_size = 0;  ///< the sketch's sub-run size
  uint64_t num_runs = 0;
  std::vector<uint64_t> samples;  ///< sorted regular samples

  /// Point estimate of the phi-quantile off the sample list (the sample at
  /// regular-sampling rank ceil(phi * num_samples)); 0 when empty.
  uint64_t QuantilePoint(double phi) const;
};

/// A latency histogram backed by the paper's sketch: recorded values fill a
/// run buffer; each full run is regular-sampled and merged into the
/// accumulated `SampleList<uint64_t>` (§4 associative merge), exactly as the
/// engine sketches a data file. Snapshots fold the partial run in as a tail
/// run without consuming it, so two snapshots of the same state are
/// byte-identical and recording can continue.
///
/// Thread-safe: one mutex guards the pending run buffer and merged list.
/// Record() is O(1) amortized (one push; every run_size-th call pays the
/// sort + merge).
class LatencyHistogram {
 public:
  struct Config {
    /// Values per run before the buffer is sampled and merged. Matches the
    /// loadgen's sketch geometry: 4096-value runs, 64 samples each.
    uint64_t run_size = 4096;
    uint64_t samples_per_run = 64;
  };

  LatencyHistogram() : LatencyHistogram(Config{}) {}
  explicit LatencyHistogram(Config config);

  void Record(uint64_t value);

  /// Total values recorded so far.
  uint64_t count() const;

  /// The accumulated sketch, including the current partial run (folded in
  /// as a tail run; the live state is not consumed).
  SampleList<uint64_t> SnapshotList() const;

  /// Flattened (wire/render) form of `SnapshotList`, plus the sum.
  HistogramSnapshot Snapshot() const;

  /// Certified quantile bracket off the snapshot sketch, the same answer an
  /// `OpaqEstimator` over the recorded stream would give. Returns a
  /// zero-filled estimate when nothing sampled yet (fewer than subrun_size
  /// values recorded).
  QuantileEstimate<uint64_t> Quantile(double phi) const;

  uint64_t subrun_size() const { return subrun_size_; }

 private:
  /// Samples + merges `pending` (sorted in place) into `merged` as one run.
  static void FoldRun(std::vector<uint64_t> pending, uint64_t subrun_size,
                      SampleList<uint64_t>* merged);

  const uint64_t run_size_;
  const uint64_t subrun_size_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> pending_;
  SampleList<uint64_t> merged_;
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

enum class MetricType : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

const char* MetricTypeName(MetricType type);

/// One metric's value at snapshot time. For kGauge the int64 value is
/// bit-cast into `value` (two's complement), matching the wire encoding.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  uint64_t value = 0;
  HistogramSnapshot histogram;

  int64_t gauge_value() const { return static_cast<int64_t>(value); }
};

/// A versioned point-in-time copy of every registered metric, sorted by
/// name (deterministic iteration: goldens and diffs depend on it). This is
/// what the v6 `kStatsData` payload carries and both formatters render.
struct MetricsSnapshot {
  /// Layout version of the snapshot payload itself (bumps independently of
  /// the wire version when records grow fields).
  uint32_t stats_version = 1;
  std::vector<MetricSample> metrics;
};

/// Owns the named metrics. Registration returns stable pointers (the hot
/// path caches them — no map lookups per event); re-registering a name
/// returns the existing instance. Registration takes a mutex; updates on
/// the returned objects never do (histograms excepted).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry every daemon and the engine publish into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(
      const std::string& name,
      LatencyHistogram::Config config = LatencyHistogram::Config());

  /// Copies every metric, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Runtime kill switch for overhead comparisons: while disabled,
  /// instrumentation sites that check it (trace spans, histogram records
  /// behind `enabled()`) become no-ops. Counters themselves stay live —
  /// a relaxed fetch_add is already as cheap as the check.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
  std::atomic<bool> enabled_{true};
};

}  // namespace opaq

#endif  // OPAQ_TELEMETRY_METRICS_H_
