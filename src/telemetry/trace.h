#ifndef OPAQ_TELEMETRY_TRACE_H_
#define OPAQ_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace opaq {

/// Per-stage tracing for the hot pipeline: scoped `TraceSpan`s record into a
/// bounded lock-free ring buffer (the flight recorder) plus per-stage
/// cumulative totals. The hooks are compiled in and cheap enough to leave
/// on — a disabled recorder costs one relaxed load per span; an enabled one
/// costs two clock reads and one ring-slot write per span, and spans sit at
/// run/frame granularity (thousands of elements each), not per element.

/// The instrumented pipeline stages.
enum class TraceStage : uint8_t {
  kRunRead = 0,      ///< one `NextRun` wait (disk or remote)
  kExtentDecode = 1, ///< one packed extent unpacked
  kSample = 2,       ///< one run regular-sampled (MultiSelect)
  kMerge = 3,        ///< one sample-list k-way merge / finalize
  kExactPass = 4,    ///< one §4 second pass (server round or local)
  kWireSend = 5,     ///< one frame written to a socket
  kWireRecv = 6,     ///< one frame read off a socket
};
inline constexpr size_t kNumTraceStages = 7;

const char* TraceStageName(TraceStage stage);

/// One completed span. Timestamps are steady-clock nanoseconds (process-
/// relative; only differences are meaningful).
struct TraceEvent {
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;  ///< hashed thread id
  TraceStage stage = TraceStage::kRunRead;
};

/// Bounded ring of the most recent spans — the flight recorder. Writers
/// claim slots with one `fetch_add` and publish through a per-slot seqlock
/// whose payload fields are themselves relaxed atomics, so concurrent
/// readers (stats snapshots, trace export) are data-race-free under TSan;
/// a reader simply discards any slot a writer touched mid-copy.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit FlightRecorder(size_t capacity = 4096);

  /// The recorder every built-in span records into.
  static FlightRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void Record(TraceStage stage, uint64_t start_ns, uint64_t duration_ns);

  /// Consistent copies of the retained spans, oldest first. Slots being
  /// overwritten during the scan are skipped, so under heavy concurrent
  /// writing the result may hold fewer than `size()` events.
  std::vector<TraceEvent> Events() const;

  size_t capacity() const { return slots_.size(); }
  /// Spans recorded since construction/Reset (may exceed `capacity`).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Cumulative per-stage totals (never evicted, unlike ring slots).
  uint64_t StageCount(TraceStage stage) const;
  uint64_t StageTotalNs(TraceStage stage) const;

  /// The retained spans as Chrome trace-event JSON ("Load profile" in
  /// chrome://tracing or Perfetto).
  std::string ChromeTraceJson() const;

  /// Steady-clock now, in the recorder's nanosecond timebase.
  static uint64_t NowNs();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< even = stable, odd = being written
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> meta{0};  ///< tid << 8 | stage
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> stage_count_[kNumTraceStages] = {};
  std::atomic<uint64_t> stage_ns_[kNumTraceStages] = {};
};

/// RAII span: stamps the clock at construction and records the stage on
/// destruction. When the recorder is disabled at construction the span is
/// free (no clock reads).
class TraceSpan {
 public:
  explicit TraceSpan(TraceStage stage, FlightRecorder* recorder = nullptr)
      : recorder_(recorder != nullptr ? recorder
                                      : &FlightRecorder::Global()),
        stage_(stage),
        armed_(recorder_->enabled()) {
    if (armed_) start_ns_ = FlightRecorder::NowNs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (armed_) {
      recorder_->Record(stage_, start_ns_,
                        FlightRecorder::NowNs() - start_ns_);
    }
  }

 private:
  FlightRecorder* recorder_;
  TraceStage stage_;
  bool armed_;
  uint64_t start_ns_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_TELEMETRY_TRACE_H_
