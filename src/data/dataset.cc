#include "data/dataset.h"

#include <sstream>

namespace opaq {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kZipf:
      return "zipf";
    case Distribution::kNormal:
      return "normal";
    case Distribution::kSequential:
      return "sequential";
    case Distribution::kReverseSequential:
      return "reverse_sequential";
    case Distribution::kConstant:
      return "constant";
    case Distribution::kSawtooth:
      return "sawtooth";
  }
  return "unknown";
}

std::string DatasetSpec::ToString() const {
  std::ostringstream os;
  os << DistributionName(distribution) << "(n=" << n << ", seed=" << seed;
  if (distribution == Distribution::kZipf) {
    os << ", z=" << zipf_z << ", universe="
       << (zipf_universe != 0 ? zipf_universe : n);
  } else if (distribution == Distribution::kUniform ||
             distribution == Distribution::kNormal) {
    os << ", dup=" << duplicate_fraction;
  }
  os << ")";
  return os.str();
}

}  // namespace opaq
