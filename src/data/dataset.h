#ifndef OPAQ_DATA_DATASET_H_
#define OPAQ_DATA_DATASET_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "data/zipf.h"
#include "io/data_file.h"
#include "util/random.h"
#include "util/status.h"

namespace opaq {

/// Shapes of synthetic key populations used in the experiments.
enum class Distribution {
  /// Independent uniform draws over the key space, with an explicit fraction
  /// of injected duplicates (paper §2.4: n/10 duplicates).
  kUniform,
  /// Zipf-skewed values: the k-th smallest key value occurs with frequency
  /// ∝ 1/k^θ, so a few small values carry most of the mass (paper §2.4,
  /// parameter 0.86 in the paper's z-convention; see ZipfSampler).
  kZipf,
  /// Gaussian values centred mid-keyspace (extra coverage beyond the paper).
  kNormal,
  /// 0,1,2,…,n−1 in order: sorted distinct input, adversarial for run-local
  /// sampling because every run covers a disjoint narrow range.
  kSequential,
  /// n−1,…,1,0: reverse-sorted variant.
  kReverseSequential,
  /// All elements equal: worst case for duplicate handling.
  kConstant,
  /// Repeating ramp 0..1023,0..1023,…: every run sees the whole value range.
  kSawtooth,
};

/// Returns a short stable name ("uniform", "zipf", ...).
const char* DistributionName(Distribution d);

/// Full description of a synthetic dataset. One spec + one seed =>
/// bit-identical data on every platform (generation uses only project PRNGs).
struct DatasetSpec {
  uint64_t n = 0;
  Distribution distribution = Distribution::kUniform;
  uint64_t seed = 42;

  /// kUniform/kNormal: fraction of elements that are duplicates of other
  /// elements (paper uses 0.1). Implemented by generating (1−f)·n base draws
  /// and then f·n uniform re-draws from the base population, then shuffling.
  double duplicate_fraction = 0.1;

  /// kZipf: paper-convention skew z (1 = uniform, 0 = max skew; paper: 0.86)
  /// and the number of distinct rank values (0 means n). Duplicates arise
  /// naturally from the frequency skew, so duplicate_fraction is ignored.
  double zipf_z = 0.86;
  uint64_t zipf_universe = 0;

  /// kZipf: when true, rank k maps to a hashed (order-scrambled) value, so
  /// frequency skew stays but values spread over the whole key space.
  bool scramble_zipf_values = false;

  std::string ToString() const;
};

namespace internal_dataset {

/// Maps a rank in [1, universe] onto the key space for key type K, spreading
/// ranks so that float and integer keys both get distinct representable
/// values.
template <typename K>
K ValueForRank(uint64_t rank, uint64_t universe, bool scramble) {
  if (scramble) {
    SplitMix64 mix(rank);
    uint64_t h = mix.Next() % universe;
    rank = h + 1;
  }
  if constexpr (std::is_floating_point_v<K>) {
    return static_cast<K>(static_cast<double>(rank) /
                          static_cast<double>(universe + 1));
  } else {
    return static_cast<K>(rank);
  }
}

template <typename K>
K UniformKey(Xoshiro256& rng) {
  if constexpr (std::is_floating_point_v<K>) {
    return static_cast<K>(rng.NextDouble());
  } else if constexpr (sizeof(K) == 4) {
    return static_cast<K>(rng.Next() >> 33);  // keep values positive in i32
  } else {
    return static_cast<K>(rng.Next() >> 1);  // keep values positive in i64
  }
}

template <typename K>
K NormalKey(Xoshiro256& rng) {
  // Box–Muller; mean .5, sd .15 of the unit range, clamped to [0,1).
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double g = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double unit = 0.5 + 0.15 * g;
  if (unit < 0) unit = 0;
  if (unit >= 1) unit = std::nextafter(1.0, 0.0);
  if constexpr (std::is_floating_point_v<K>) {
    return static_cast<K>(unit);
  } else {
    const double span = sizeof(K) == 4 ? 2147483647.0 : 9.22e18;
    return static_cast<K>(unit * span);
  }
}

}  // namespace internal_dataset

/// Generates the dataset in memory. For the sizes in the paper (≤ 32M keys)
/// this fits easily; callers that want disk-resident data write the result
/// through `WriteDataset`.
template <typename K>
std::vector<K> GenerateDataset(const DatasetSpec& spec) {
  Xoshiro256 rng(spec.seed);
  std::vector<K> out;
  out.reserve(spec.n);
  switch (spec.distribution) {
    case Distribution::kUniform:
    case Distribution::kNormal: {
      OPAQ_CHECK(spec.duplicate_fraction >= 0.0 &&
                 spec.duplicate_fraction < 1.0);
      const uint64_t dup = static_cast<uint64_t>(
          static_cast<double>(spec.n) * spec.duplicate_fraction);
      const uint64_t base = spec.n - dup;
      for (uint64_t i = 0; i < base; ++i) {
        out.push_back(spec.distribution == Distribution::kUniform
                          ? internal_dataset::UniformKey<K>(rng)
                          : internal_dataset::NormalKey<K>(rng));
      }
      for (uint64_t i = 0; i < dup; ++i) {
        // Duplicate a uniformly chosen earlier element (base > 0 whenever
        // dup > 0 because duplicate_fraction < 1).
        out.push_back(out[rng.NextBounded(base)]);
      }
      Shuffle(out, rng);
      break;
    }
    case Distribution::kZipf: {
      const uint64_t universe =
          spec.zipf_universe != 0 ? spec.zipf_universe : std::max<uint64_t>(
                                                             spec.n, 1);
      ZipfSampler sampler = ZipfSampler::FromPaperParameter(spec.zipf_z,
                                                            universe);
      for (uint64_t i = 0; i < spec.n; ++i) {
        out.push_back(internal_dataset::ValueForRank<K>(
            sampler.Sample(rng), universe, spec.scramble_zipf_values));
      }
      break;
    }
    case Distribution::kSequential:
      for (uint64_t i = 0; i < spec.n; ++i) {
        out.push_back(internal_dataset::ValueForRank<K>(i + 1, spec.n, false));
      }
      break;
    case Distribution::kReverseSequential:
      for (uint64_t i = spec.n; i > 0; --i) {
        out.push_back(internal_dataset::ValueForRank<K>(i, spec.n, false));
      }
      break;
    case Distribution::kConstant:
      out.assign(spec.n,
                 internal_dataset::ValueForRank<K>(1, std::max<uint64_t>(
                                                          spec.n, 1),
                                                   false));
      break;
    case Distribution::kSawtooth: {
      constexpr uint64_t kPeriod = 1024;
      for (uint64_t i = 0; i < spec.n; ++i) {
        out.push_back(internal_dataset::ValueForRank<K>((i % kPeriod) + 1,
                                                        kPeriod, false));
      }
      break;
    }
  }
  return out;
}

/// Writes `values` into a fresh data file on `device` in bounded chunks.
template <typename K>
Status WriteDataset(const std::vector<K>& values, BlockDevice* device) {
  auto file = TypedDataFile<K>::Create(device, values.size());
  if (!file.ok()) return file.status();
  constexpr uint64_t kChunk = 1 << 20;
  for (uint64_t first = 0; first < values.size(); first += kChunk) {
    uint64_t len = std::min<uint64_t>(kChunk, values.size() - first);
    OPAQ_RETURN_IF_ERROR(file->raw().WriteElements(first, len,
                                                   values.data() + first));
  }
  return Status::OK();
}

/// Generates per `spec` and writes to `device` (convenience).
template <typename K>
Status GenerateDatasetToDevice(const DatasetSpec& spec, BlockDevice* device) {
  return WriteDataset(GenerateDataset<K>(spec), device);
}

}  // namespace opaq

#endif  // OPAQ_DATA_DATASET_H_
