#ifndef OPAQ_DATA_ZIPF_H_
#define OPAQ_DATA_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace opaq {

/// Zipf(θ) sampler over ranks {1, …, universe} with P(k) ∝ 1/k^θ.
///
/// Uses Hörmann & Derflinger's rejection-inversion method (the same scheme as
/// Apache Commons' RejectionInversionZipfSampler): O(1) time per sample and
/// O(1) memory for any universe size, with no precomputed tables. Exact for
/// all θ > 0; θ == 0 degenerates to a uniform draw over the universe and is
/// special-cased.
///
/// Paper parameterisation note (§2.4): the paper's Zipf "parameter" z is 1
/// for uniform data and 0 for maximal skew, with experiments at z = 0.86.
/// That is the complement of the classical exponent; use
/// `ZipfSampler::FromPaperParameter(z, universe)` which maps θ = 1 − z, or
/// construct directly with a classical exponent θ.
class ZipfSampler {
 public:
  /// Classical constructor: exponent θ ≥ 0 over {1..universe}.
  ZipfSampler(double theta, uint64_t universe);

  /// Paper's z ∈ [0,1]: z=1 uniform, z=0 most skewed (θ = 1 − z).
  static ZipfSampler FromPaperParameter(double z, uint64_t universe) {
    return ZipfSampler(1.0 - z, universe);
  }

  /// Draws a rank in [1, universe].
  uint64_t Sample(Xoshiro256& rng) const;

  double theta() const { return theta_; }
  uint64_t universe() const { return universe_; }

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  double theta_;
  uint64_t universe_;
  // Precomputed constants of the rejection-inversion scheme.
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace opaq

#endif  // OPAQ_DATA_ZIPF_H_
