#include "data/zipf.h"

#include <cmath>

#include "util/check.h"

namespace opaq {
namespace {

/// exp(x) - 1 with good accuracy near 0 (helper used by the reference
/// implementation of rejection-inversion; std::expm1 does the job).
inline double ExpM1(double x) { return std::expm1(x); }

/// ln(1+x) with good accuracy near 0.
inline double Log1P(double x) { return std::log1p(x); }

}  // namespace

ZipfSampler::ZipfSampler(double theta, uint64_t universe)
    : theta_(theta), universe_(universe) {
  OPAQ_CHECK_GE(theta, 0.0);
  OPAQ_CHECK_GE(universe, 1u);
  if (theta_ == 0.0) {
    h_integral_x1_ = h_integral_n_ = s_ = 0.0;
    return;
  }
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(universe_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  // ((x^(1-θ)) - 1) / (1-θ), continuous at θ == 1 where it becomes ln x.
  const double t = (1.0 - theta_) * log_x;
  // Helper from Hörmann & Derflinger: (e^t - 1)/t * log_x, stable as t → 0.
  const double ratio = std::abs(t) > 1e-8 ? ExpM1(t) / t : 1.0 + t / 2.0;
  return ratio * log_x;
}

double ZipfSampler::H(double x) const {
  return std::exp(-theta_ * std::log(x));
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  const double ratio = std::abs(t) > 1e-8 ? Log1P(t) / t : 1.0 - t / 2.0;
  return std::exp(ratio * x);
}

uint64_t ZipfSampler::Sample(Xoshiro256& rng) const {
  if (theta_ == 0.0) return 1 + rng.NextBounded(universe_);
  while (true) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > universe_) {
      k = universe_;
    }
    // Acceptance tests from the rejection-inversion scheme.
    if (static_cast<double>(k) - x <= s_ ||
        u >= HIntegral(static_cast<double>(k) + 0.5) -
                 H(static_cast<double>(k))) {
      return k;
    }
  }
}

}  // namespace opaq
