#ifndef OPAQ_SELECT_SELECT_H_
#define OPAQ_SELECT_SELECT_H_

#include <algorithm>
#include <cstddef>

#include "select/floyd_rivest.h"
#include "select/introselect.h"
#include "select/median_of_medians.h"
#include "util/random.h"

namespace opaq {

/// Which single-element selection algorithm the sample phase uses. The paper
/// discusses both the deterministic [ea72] (worst-case O(m log s)) and the
/// randomized [FR75] (expected O(m log s)) options; we expose all of them so
/// the ablation bench can compare.
enum class SelectAlgorithm {
  /// std::nth_element — the standard library's introselect, as a reference.
  kStdNthElement,
  /// Blum–Floyd–Pratt–Rivest–Tarjan deterministic selection [ea72].
  kMedianOfMedians,
  /// Floyd–Rivest SELECT [FR75].
  kFloydRivest,
  /// Random-pivot quickselect with median-of-medians fallback (default).
  kIntroSelect,
};

/// Returns a short stable name for logging / bench tables.
inline const char* SelectAlgorithmName(SelectAlgorithm a) {
  switch (a) {
    case SelectAlgorithm::kStdNthElement:
      return "std::nth_element";
    case SelectAlgorithm::kMedianOfMedians:
      return "median-of-medians";
    case SelectAlgorithm::kFloydRivest:
      return "floyd-rivest";
    case SelectAlgorithm::kIntroSelect:
      return "introselect";
  }
  return "unknown";
}

/// Rearranges `data[0..n)` so `data[k]` is the k-th smallest (0-based) with
/// `[0,k)` <= it and `(k,n)` >= it, using `algorithm`; returns the value.
/// `rng` is only consumed by kIntroSelect.
template <typename K>
K SelectKth(K* data, size_t n, size_t k, SelectAlgorithm algorithm,
            Xoshiro256& rng) {
  switch (algorithm) {
    case SelectAlgorithm::kStdNthElement:
      std::nth_element(data, data + k, data + n);
      return data[k];
    case SelectAlgorithm::kMedianOfMedians:
      return MedianOfMediansSelect(data, n, k);
    case SelectAlgorithm::kFloydRivest:
      return FloydRivestSelect(data, n, k);
    case SelectAlgorithm::kIntroSelect:
      return IntroSelect(data, n, k, rng);
  }
  OPAQ_CHECK(false) << "unreachable";
  return data[k];
}

}  // namespace opaq

#endif  // OPAQ_SELECT_SELECT_H_
