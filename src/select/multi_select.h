#ifndef OPAQ_SELECT_MULTI_SELECT_H_
#define OPAQ_SELECT_MULTI_SELECT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "select/select.h"
#include "util/check.h"

namespace opaq {

namespace internal_select {

/// Recursive core of multi-selection: selects the middle target rank with a
/// single-element selector (which partitions the window around it), records
/// the sample, and recurses into the two halves with the remaining ranks.
/// Depth is O(log #ranks), each level does O(window) work, hence the paper's
/// O(m log s) bound for the sample phase (§2.1).
template <typename K>
void MultiSelectImpl(K* data, size_t n, const uint64_t* ranks,
                     size_t num_ranks, uint64_t base, K* out,
                     SelectAlgorithm algorithm, Xoshiro256& rng) {
  if (num_ranks == 0) return;
  const size_t mid = num_ranks / 2;
  const size_t local_rank = static_cast<size_t>(ranks[mid] - base);
  OPAQ_DCHECK(local_rank < n);
  out[mid] = SelectKth(data, n, local_rank, algorithm, rng);
  // Left half: ranks[0..mid) fall inside data[0..local_rank).
  MultiSelectImpl(data, local_rank, ranks, mid, base, out, algorithm, rng);
  // Right half: ranks(mid..) fall inside data(local_rank..n).
  MultiSelectImpl(data + local_rank + 1, n - local_rank - 1, ranks + mid + 1,
                  num_ranks - mid - 1, base + local_rank + 1, out + mid + 1,
                  algorithm, rng);
}

}  // namespace internal_select

/// Selects the elements at each 0-based rank in `ranks` (strictly increasing,
/// all < n) from `data[0..n)`, rearranging `data` in the process. The output
/// is sorted by construction. This is the paper's "find the s sample points
/// by recursive median splitting" generalised to arbitrary rank sets.
template <typename K>
std::vector<K> MultiSelect(K* data, size_t n, const std::vector<uint64_t>& ranks,
                           SelectAlgorithm algorithm, Xoshiro256& rng) {
  for (size_t i = 0; i < ranks.size(); ++i) {
    OPAQ_CHECK_LT(ranks[i], n);
    if (i > 0) OPAQ_CHECK_LT(ranks[i - 1], ranks[i]);
  }
  std::vector<K> out(ranks.size());
  internal_select::MultiSelectImpl(data, n, ranks.data(), ranks.size(),
                                   uint64_t{0}, out.data(), algorithm, rng);
  return out;
}

/// The paper's regular sampling (§2.1 / [LLS+93]): from a run of `m`
/// elements, the samples are the elements of 1-based rank c, 2c, …, within
/// the run, where `c = m/s` is the sub-run size. Each sample "covers" the c
/// elements at or below it; those disjoint sub-runs drive the error bounds.
///
/// Works for a short tail run too: only ⌊m'/c⌋ full sub-runs produce samples
/// and the `m' mod c` leftover elements are uncovered (the caller accounts
/// for them; see core/sample_list.h).
template <typename K>
std::vector<K> RegularSamplesBySubrunSize(K* data, size_t n, uint64_t subrun_size,
                                          SelectAlgorithm algorithm,
                                          Xoshiro256& rng) {
  OPAQ_CHECK_GT(subrun_size, 0u);
  const uint64_t num_samples = n / subrun_size;
  std::vector<uint64_t> ranks;
  ranks.reserve(num_samples);
  for (uint64_t j = 1; j <= num_samples; ++j) {
    ranks.push_back(j * subrun_size - 1);  // 0-based index of rank j*c
  }
  return MultiSelect(data, n, ranks, algorithm, rng);
}

/// Regular samples with an explicit sample count `s` (requires s | m, the
/// paper's footnote-1 assumption).
template <typename K>
std::vector<K> RegularSamples(K* data, size_t n, uint64_t s,
                              SelectAlgorithm algorithm, Xoshiro256& rng) {
  OPAQ_CHECK_GT(s, 0u);
  OPAQ_CHECK_EQ(n % s, 0u);
  return RegularSamplesBySubrunSize(data, n, n / s, algorithm, rng);
}

/// Baseline sampler for the ablation bench: sort the run (O(m log m)) and
/// read the samples off directly. Same output as RegularSamples*.
template <typename K>
std::vector<K> RegularSamplesBySorting(K* data, size_t n,
                                       uint64_t subrun_size) {
  OPAQ_CHECK_GT(subrun_size, 0u);
  std::sort(data, data + n);
  std::vector<K> out;
  out.reserve(n / subrun_size);
  for (uint64_t j = 1; j * subrun_size <= n; ++j) {
    out.push_back(data[j * subrun_size - 1]);
  }
  return out;
}

}  // namespace opaq

#endif  // OPAQ_SELECT_MULTI_SELECT_H_
