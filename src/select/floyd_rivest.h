#ifndef OPAQ_SELECT_FLOYD_RIVEST_H_
#define OPAQ_SELECT_FLOYD_RIVEST_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "select/partition.h"
#include "util/check.h"
#include "util/random.h"

namespace opaq {

namespace internal_select {

/// Core of the Floyd–Rivest SELECT algorithm, operating on the inclusive
/// index window [left, right]. Deterministic variant of the sampling bounds
/// (the classic constants 600 / 0.5); the only randomness in the original is
/// implicit in input order, so no RNG parameter is needed.
template <typename K>
void FloydRivestImpl(K* data, int64_t left, int64_t right, int64_t k) {
  while (right > left) {
    if (right - left > 600) {
      // Sample a subinterval around k whose size grows as n^(2/3) so the
      // recursive select positions near-optimal pivots (FR75, eq. 2.1).
      const double n = static_cast<double>(right - left + 1);
      const double i = static_cast<double>(k - left + 1);
      const double z = std::log(n);
      const double s = 0.5 * std::exp(2.0 * z / 3.0);
      const double sd = 0.5 * std::sqrt(z * s * (n - s) / n) *
                        ((i - n / 2.0) < 0 ? -1.0 : 1.0);
      const int64_t new_left =
          std::max(left, static_cast<int64_t>(k - i * s / n + sd));
      const int64_t new_right =
          std::min(right, static_cast<int64_t>(k + (n - i) * s / n + sd));
      FloydRivestImpl(data, new_left, new_right, k);
    }
    // Partition [left, right] around data[k] (three-way, for duplicates).
    K pivot = data[k];
    PartitionBounds bounds = ThreeWayPartition(
        data + left, static_cast<size_t>(right - left + 1), pivot);
    const int64_t lt = left + static_cast<int64_t>(bounds.lt);
    const int64_t gt = left + static_cast<int64_t>(bounds.gt);
    if (k < lt) {
      right = lt - 1;
    } else if (k < gt) {
      return;  // k lands in the equal band
    } else {
      left = gt;
    }
  }
}

}  // namespace internal_select

/// Expected-O(n) selection — Floyd & Rivest, "Expected Time Bounds for
/// Selection" (CACM 1975), cited by the paper as [FR75]; §2.1 recommends it
/// as "practically very efficient" for finding the sample points.
///
/// Postcondition matches std::nth_element: `data[k]` is the k-th smallest
/// and `[0,k)` / `(k,n)` hold only `<=` / `>=` elements. Returns the value.
template <typename K>
K FloydRivestSelect(K* data, size_t n, size_t k) {
  OPAQ_CHECK_LT(k, n);
  internal_select::FloydRivestImpl(data, int64_t{0},
                                   static_cast<int64_t>(n) - 1,
                                   static_cast<int64_t>(k));
  return data[k];
}

}  // namespace opaq

#endif  // OPAQ_SELECT_FLOYD_RIVEST_H_
