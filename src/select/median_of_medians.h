#ifndef OPAQ_SELECT_MEDIAN_OF_MEDIANS_H_
#define OPAQ_SELECT_MEDIAN_OF_MEDIANS_H_

#include <cstddef>

#include "select/partition.h"
#include "util/check.h"

namespace opaq {

/// Deterministic worst-case O(n) selection — Blum, Floyd, Pratt, Rivest,
/// Tarjan, "Time Bounds for Selection" (1972), cited by the paper as [ea72]
/// and used in §2.1 to bound the sample phase at O(m log s) worst case.
///
/// Rearranges `data[0..n)` so that `data[k]` is the k-th smallest (0-based)
/// and everything before/after it is `<=`/`>=`. Returns the selected value.
///
/// Implementation notes: groups of 5 with insertion-sorted medians swapped to
/// a prefix, pivot = recursive median of that prefix, then a three-way
/// partition so that duplicate-heavy inputs stay linear.
template <typename K>
K MedianOfMediansSelect(K* data, size_t n, size_t k) {
  OPAQ_CHECK_LT(k, n);
  while (true) {
    if (n <= 16) {
      InsertionSort(data, n);
      return data[k];
    }
    // Move the median of each full group of 5 into the prefix.
    const size_t groups = n / 5;
    for (size_t g = 0; g < groups; ++g) {
      K* group = data + 5 * g;
      InsertionSort(group, 5);
      std::swap(data[g], group[2]);
    }
    // Median of the group medians (recursive call on the prefix).
    K pivot = MedianOfMediansSelect(data, groups, groups / 2);
    PartitionBounds bounds = ThreeWayPartition(data, n, pivot);
    if (k < bounds.lt) {
      n = bounds.lt;
    } else if (k < bounds.gt) {
      return data[k];  // inside the equal band
    } else {
      data += bounds.gt;
      k -= bounds.gt;
      n -= bounds.gt;
    }
  }
}

}  // namespace opaq

#endif  // OPAQ_SELECT_MEDIAN_OF_MEDIANS_H_
