#ifndef OPAQ_SELECT_INTROSELECT_H_
#define OPAQ_SELECT_INTROSELECT_H_

#include <cstddef>

#include "select/median_of_medians.h"
#include "select/partition.h"
#include "util/check.h"
#include "util/math.h"
#include "util/random.h"

namespace opaq {

/// Quickselect with random pivots and a deterministic fallback: after
/// 2·log2(n) poorly-balanced rounds it switches to median-of-medians, giving
/// expected O(n) with an O(n) worst case. This is the project's default
/// selector (the "small constant, practically very efficient" behaviour the
/// paper wants from [FR75], with a hard worst-case guarantee bolted on).
template <typename K>
K IntroSelect(K* data, size_t n, size_t k, Xoshiro256& rng) {
  OPAQ_CHECK_LT(k, n);
  int budget = 2 * (Log2Floor(n) + 1);
  while (true) {
    if (n <= 16) {
      InsertionSort(data, n);
      return data[k];
    }
    if (budget-- == 0) {
      return MedianOfMediansSelect(data, n, k);
    }
    // Median of three random positions as pivot.
    K a = data[rng.NextBounded(n)];
    K b = data[rng.NextBounded(n)];
    K c = data[rng.NextBounded(n)];
    MedianOfThree(a, b, c);
    PartitionBounds bounds = ThreeWayPartition(data, n, b);
    if (k < bounds.lt) {
      n = bounds.lt;
    } else if (k < bounds.gt) {
      return data[k];
    } else {
      data += bounds.gt;
      k -= bounds.gt;
      n -= bounds.gt;
    }
  }
}

}  // namespace opaq

#endif  // OPAQ_SELECT_INTROSELECT_H_
