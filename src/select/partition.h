#ifndef OPAQ_SELECT_PARTITION_H_
#define OPAQ_SELECT_PARTITION_H_

#include <cstddef>
#include <utility>

namespace opaq {

/// Result of a three-way (Dutch national flag) partition: elements
/// `< pivot` occupy `[0, lt)`, `== pivot` occupy `[lt, gt)`, `> pivot`
/// occupy `[gt, n)`.
struct PartitionBounds {
  size_t lt;
  size_t gt;
};

/// Three-way partition of `data[0..n)` around `pivot`, in place.
///
/// Selection on duplicate-heavy inputs (Zipf data, the paper's n/10 forced
/// duplicates, the all-equal worst case) degrades to quadratic with two-way
/// partitioning; the equal band makes every selector in this project robust
/// to ties.
template <typename K>
PartitionBounds ThreeWayPartition(K* data, size_t n, const K& pivot) {
  size_t lt = 0;   // next slot for a < element
  size_t i = 0;    // scan cursor
  size_t gt = n;   // one past the last unexamined slot
  while (i < gt) {
    if (data[i] < pivot) {
      std::swap(data[lt], data[i]);
      ++lt;
      ++i;
    } else if (pivot < data[i]) {
      --gt;
      std::swap(data[i], data[gt]);
    } else {
      ++i;
    }
  }
  return PartitionBounds{lt, gt};
}

/// Insertion sort for the small subproblems all selectors bottom out on.
template <typename K>
void InsertionSort(K* data, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    K value = data[i];
    size_t j = i;
    while (j > 0 && value < data[j - 1]) {
      data[j] = data[j - 1];
      --j;
    }
    data[j] = value;
  }
}

/// Sorts {a,b,c} in place and leaves the median at `b` (3 comparisons).
template <typename K>
void MedianOfThree(K& a, K& b, K& c) {
  if (b < a) std::swap(a, b);
  if (c < b) std::swap(b, c);
  if (b < a) std::swap(a, b);
}

}  // namespace opaq

#endif  // OPAQ_SELECT_PARTITION_H_
