#ifndef OPAQ_APPS_SELECTIVITY_H_
#define OPAQ_APPS_SELECTIVITY_H_

#include <algorithm>
#include <cstdint>

#include "core/estimator.h"
#include "util/check.h"

namespace opaq {

/// Bracketed selectivity of a range predicate — the paper's motivating
/// query-optimizer use ([PS84]: "accurate estimates of the number of tuples
/// satisfying various predicates"). Derived purely from the sample list's
/// rank bounds; no pass over the data.
struct SelectivityEstimate {
  /// Certified bounds on the matching-row count.
  uint64_t min_count = 0;
  uint64_t max_count = 0;
  /// Midpoint fraction for planners that need one number.
  double point_fraction = 0;

  double min_fraction(uint64_t n) const {
    return n == 0 ? 0 : static_cast<double>(min_count) / n;
  }
  double max_fraction(uint64_t n) const {
    return n == 0 ? 0 : static_cast<double>(max_count) / n;
  }
};

/// Selectivity of `lo <= key <= hi` (closed range; lo <= hi required).
/// count = rank_le(hi) - rank_lt(lo), bracketed by combining the per-value
/// rank bounds in the conservative direction.
template <typename K>
SelectivityEstimate EstimateRangeSelectivity(const OpaqEstimator<K>& est,
                                             const K& lo, const K& hi) {
  OPAQ_CHECK(!(hi < lo));
  const RankEstimate at_hi = est.EstimateRank(hi);
  const RankEstimate at_lo = est.EstimateRank(lo);
  SelectivityEstimate out;
  out.min_count = at_hi.min_rank_le > at_lo.max_rank_lt
                      ? at_hi.min_rank_le - at_lo.max_rank_lt
                      : 0;
  out.max_count = at_hi.max_rank_le > at_lo.min_rank_lt
                      ? at_hi.max_rank_le - at_lo.min_rank_lt
                      : 0;
  const uint64_t n = est.total_elements();
  out.point_fraction =
      n == 0 ? 0.0
             : static_cast<double>(out.min_count + out.max_count) / 2.0 /
                   static_cast<double>(n);
  return out;
}

/// Selectivity of `key <= hi` (one-sided predicate).
template <typename K>
SelectivityEstimate EstimateAtMostSelectivity(const OpaqEstimator<K>& est,
                                              const K& hi) {
  const RankEstimate at_hi = est.EstimateRank(hi);
  SelectivityEstimate out;
  out.min_count = at_hi.min_rank_le;
  out.max_count = at_hi.max_rank_le;
  const uint64_t n = est.total_elements();
  out.point_fraction =
      n == 0 ? 0.0
             : static_cast<double>(out.min_count + out.max_count) / 2.0 /
                   static_cast<double>(n);
  return out;
}

}  // namespace opaq

#endif  // OPAQ_APPS_SELECTIVITY_H_
