#ifndef OPAQ_APPS_SELECTIVITY_H_
#define OPAQ_APPS_SELECTIVITY_H_

#include <algorithm>
#include <cstdint>

#include "core/estimator.h"
#include "util/check.h"

namespace opaq {

/// Bracketed selectivity of a range predicate — the paper's motivating
/// query-optimizer use ([PS84]: "accurate estimates of the number of tuples
/// satisfying various predicates"). Derived purely from the sample list's
/// rank bounds; no pass over the data.
struct SelectivityEstimate {
  /// Certified bounds on the matching-row count.
  uint64_t min_count = 0;
  uint64_t max_count = 0;
  /// Midpoint fraction for planners that need one number.
  double point_fraction = 0;

  double min_fraction(uint64_t n) const {
    return n == 0 ? 0 : static_cast<double>(min_count) / n;
  }
  double max_fraction(uint64_t n) const {
    return n == 0 ? 0 : static_cast<double>(max_count) / n;
  }
};

/// Combines the rank brackets at the two ends of `lo <= key <= hi` into a
/// selectivity bracket: count = rank_le(hi) - rank_lt(lo), each bound taken
/// in the conservative direction. Shared by the estimator-level functions
/// below and the facade's batched query path (`opaq/apps.h`).
inline SelectivityEstimate SelectivityFromRankBrackets(
    const RankEstimate& at_lo, const RankEstimate& at_hi, uint64_t n) {
  SelectivityEstimate out;
  out.min_count = at_hi.min_rank_le > at_lo.max_rank_lt
                      ? at_hi.min_rank_le - at_lo.max_rank_lt
                      : 0;
  out.max_count = at_hi.max_rank_le > at_lo.min_rank_lt
                      ? at_hi.max_rank_le - at_lo.min_rank_lt
                      : 0;
  out.point_fraction =
      n == 0 ? 0.0
             : static_cast<double>(out.min_count + out.max_count) / 2.0 /
                   static_cast<double>(n);
  return out;
}

/// Same, for the one-sided predicate `key <= hi`.
inline SelectivityEstimate SelectivityFromRankBracket(
    const RankEstimate& at_hi, uint64_t n) {
  SelectivityEstimate out;
  out.min_count = at_hi.min_rank_le;
  out.max_count = at_hi.max_rank_le;
  out.point_fraction =
      n == 0 ? 0.0
             : static_cast<double>(out.min_count + out.max_count) / 2.0 /
                   static_cast<double>(n);
  return out;
}

/// Selectivity of `lo <= key <= hi` (closed range; lo <= hi required).
template <typename K>
SelectivityEstimate EstimateRangeSelectivity(const OpaqEstimator<K>& est,
                                             const K& lo, const K& hi) {
  OPAQ_CHECK(!(hi < lo));
  return SelectivityFromRankBrackets(est.EstimateRank(lo),
                                     est.EstimateRank(hi),
                                     est.total_elements());
}

/// Selectivity of `key <= hi` (one-sided predicate).
template <typename K>
SelectivityEstimate EstimateAtMostSelectivity(const OpaqEstimator<K>& est,
                                              const K& hi) {
  return SelectivityFromRankBracket(est.EstimateRank(hi),
                                    est.total_elements());
}

}  // namespace opaq

#endif  // OPAQ_APPS_SELECTIVITY_H_
