#ifndef OPAQ_APPS_RANGE_PARTITIONER_H_
#define OPAQ_APPS_RANGE_PARTITIONER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/check.h"

namespace opaq {

/// Quantile-based range partitioner — the paper's external-sorting and
/// parallel-load-balancing applications (§1: "data can be partitioned using
/// quantiles into a number of partitions such that each partition fits into
/// main memory"; [DNS91]-style probabilistic splitting replaced by OPAQ's
/// deterministic bounds).
///
/// For P partitions, the P-1 splitters are the i/P quantile estimates.
/// Because each splitter's rank is within max_rank_error of its target, the
/// number of elements routed to any partition is certified to be at most
/// n/P + 2*max_rank_error (consecutive splitters can each drift by the
/// budget, in opposite directions).
template <typename K>
class RangePartitioner {
 public:
  static RangePartitioner Build(const OpaqEstimator<K>& estimator,
                                int num_partitions) {
    OPAQ_CHECK_GE(num_partitions, 2);
    RangePartitioner p;
    p.total_elements_ = estimator.total_elements();
    p.max_rank_error_ = estimator.max_rank_error();
    p.splitters_.reserve(num_partitions - 1);
    for (int i = 1; i < num_partitions; ++i) {
      // The upper bound of the bracket guarantees the first i partitions
      // jointly hold at least i*n/P elements (no partition starves), while
      // the rank bound caps overload; either bound works, we take the upper
      // sample so splitters are real data values.
      p.splitters_.push_back(
          estimator.Quantile(static_cast<double>(i) / num_partitions).upper);
    }
    return p;
  }

  /// Assembles a partitioner from already-computed splitter estimates (the
  /// P-1 equi-quantiles in ascending phi order; the upper bound of each
  /// bracket becomes the splitter, matching `Build`) — what the facade's
  /// batched query path feeds in (`opaq::BuildRangePartitioner`).
  static RangePartitioner FromQuantiles(
      const std::vector<QuantileEstimate<K>>& splitters,
      uint64_t total_elements, uint64_t max_rank_error) {
    OPAQ_CHECK_GE(splitters.size(), 1u);
    RangePartitioner p;
    p.total_elements_ = total_elements;
    p.max_rank_error_ = max_rank_error;
    p.splitters_.reserve(splitters.size());
    for (const QuantileEstimate<K>& e : splitters) {
      p.splitters_.push_back(e.upper);
    }
    return p;
  }

  int num_partitions() const {
    return static_cast<int>(splitters_.size()) + 1;
  }

  const std::vector<K>& splitters() const { return splitters_; }

  /// Partition a value belongs to: index of the first splitter >= v
  /// (binary search; values equal to a splitter go left, matching the
  /// "elements <= splitter" accounting the bound uses).
  int PartitionOf(const K& v) const {
    return static_cast<int>(
        std::lower_bound(splitters_.begin(), splitters_.end(), v) -
        splitters_.begin());
  }

  /// Ceiling on any partition's size, certified for distinct keys. All
  /// duplicates of a splitter value route to one side (no range partitioner
  /// can split ties without a secondary key), so the bound additionally
  /// admits the largest duplicate group.
  uint64_t MaxPartitionSize(uint64_t largest_duplicate_group = 1) const {
    return total_elements_ / static_cast<uint64_t>(num_partitions()) +
           2 * max_rank_error_ + largest_duplicate_group;
  }

  /// Routes a dataset: returns per-partition element counts (audit helper
  /// for tests/benches; real external sorts would write run files instead).
  std::vector<uint64_t> CountPartitionSizes(const std::vector<K>& data) const {
    std::vector<uint64_t> counts(num_partitions(), 0);
    for (const K& v : data) ++counts[PartitionOf(v)];
    return counts;
  }

 private:
  std::vector<K> splitters_;
  uint64_t total_elements_ = 0;
  uint64_t max_rank_error_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_APPS_RANGE_PARTITIONER_H_
