#ifndef OPAQ_APPS_EQUI_DEPTH_HISTOGRAM_H_
#define OPAQ_APPS_EQUI_DEPTH_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/check.h"

namespace opaq {

/// Equi-depth histogram built from OPAQ quantile estimates — the query-
/// optimizer application the paper's introduction leads with ([PIHS96],
/// [MD88], [Koo80]: equi-depth histograms for selectivity estimation, which
/// historically "have not worked well ... when data distribution skew has
/// been high"; OPAQ's bounded-error buckets address exactly that).
///
/// B buckets, each holding ~n/B elements; boundary i is OPAQ's certified
/// bracket for the i/B quantile. Because bucket boundaries carry rank
/// brackets, every selectivity answer is an interval, not a guess.
template <typename K>
class EquiDepthHistogram {
 public:
  /// Builds a B-bucket histogram (B >= 2) from a finished estimator.
  static EquiDepthHistogram Build(const OpaqEstimator<K>& estimator,
                                  int num_buckets) {
    OPAQ_CHECK_GE(num_buckets, 2);
    EquiDepthHistogram h;
    h.total_elements_ = estimator.total_elements();
    h.max_rank_error_ = estimator.max_rank_error();
    h.boundaries_.reserve(num_buckets - 1);
    for (int i = 1; i < num_buckets; ++i) {
      h.boundaries_.push_back(
          estimator.Quantile(static_cast<double>(i) / num_buckets));
    }
    return h;
  }

  int num_buckets() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }
  uint64_t total_elements() const { return total_elements_; }
  uint64_t max_rank_error() const { return max_rank_error_; }

  /// Boundary estimates (bracket per internal boundary, B-1 of them).
  const std::vector<QuantileEstimate<K>>& boundaries() const {
    return boundaries_;
  }

  /// Bucket index a value falls into, using the point (lower-bound) value of
  /// each boundary; 0-based.
  int BucketOf(const K& v) const {
    int b = 0;
    while (b < static_cast<int>(boundaries_.size()) &&
           !(v < boundaries_[b].point())) {
      ++b;
    }
    return b;
  }

  /// Nominal depth of each bucket (n/B) and the certified slop per boundary.
  uint64_t NominalDepth() const {
    return total_elements_ / static_cast<uint64_t>(num_buckets());
  }

 private:
  std::vector<QuantileEstimate<K>> boundaries_;
  uint64_t total_elements_ = 0;
  uint64_t max_rank_error_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_APPS_EQUI_DEPTH_HISTOGRAM_H_
