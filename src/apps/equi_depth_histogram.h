#ifndef OPAQ_APPS_EQUI_DEPTH_HISTOGRAM_H_
#define OPAQ_APPS_EQUI_DEPTH_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/check.h"

namespace opaq {

/// Equi-depth histogram built from OPAQ quantile estimates — the query-
/// optimizer application the paper's introduction leads with ([PIHS96],
/// [MD88], [Koo80]: equi-depth histograms for selectivity estimation, which
/// historically "have not worked well ... when data distribution skew has
/// been high"; OPAQ's bounded-error buckets address exactly that).
///
/// B buckets, each holding ~n/B elements; boundary i is OPAQ's certified
/// bracket for the i/B quantile. Because bucket boundaries carry rank
/// brackets, every selectivity answer is an interval, not a guess.
template <typename K>
class EquiDepthHistogram {
 public:
  /// Builds a B-bucket histogram (B >= 2) from a finished estimator.
  static EquiDepthHistogram Build(const OpaqEstimator<K>& estimator,
                                  int num_buckets) {
    OPAQ_CHECK_GE(num_buckets, 2);
    EquiDepthHistogram h;
    h.total_elements_ = estimator.total_elements();
    h.max_rank_error_ = estimator.max_rank_error();
    h.boundaries_.reserve(num_buckets - 1);
    for (int i = 1; i < num_buckets; ++i) {
      h.boundaries_.push_back(
          estimator.Quantile(static_cast<double>(i) / num_buckets));
    }
    return h;
  }

  /// Assembles a histogram from already-computed boundary estimates (the
  /// B-1 equi-quantiles in ascending phi order) — what the facade's batched
  /// query path feeds in (`opaq::BuildEquiDepthHistogram`).
  static EquiDepthHistogram FromBoundaries(
      std::vector<QuantileEstimate<K>> boundaries, uint64_t total_elements,
      uint64_t max_rank_error) {
    OPAQ_CHECK_GE(boundaries.size(), 1u);
    EquiDepthHistogram h;
    h.boundaries_ = std::move(boundaries);
    h.total_elements_ = total_elements;
    h.max_rank_error_ = max_rank_error;
    return h;
  }

  int num_buckets() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }
  uint64_t total_elements() const { return total_elements_; }
  uint64_t max_rank_error() const { return max_rank_error_; }

  /// Boundary estimates (bracket per internal boundary, B-1 of them).
  const std::vector<QuantileEstimate<K>>& boundaries() const {
    return boundaries_;
  }

  /// Bucket index a value falls into, using the point() value of each
  /// boundary; 0-based.
  int BucketOf(const K& v) const {
    int b = 0;
    while (b < static_cast<int>(boundaries_.size()) &&
           !(v < boundaries_[b].point())) {
      ++b;
    }
    return b;
  }

  /// Nominal depth of each bucket (n/B) and the certified slop per boundary.
  uint64_t NominalDepth() const {
    return total_elements_ / static_cast<uint64_t>(num_buckets());
  }

  /// Certified rank bracket on the depth of bucket `b` (0-based): how many
  /// elements `BucketOf` routes there. Each boundary's point() lies inside
  /// its certified value bracket, so on distinct-valued data the count of
  /// elements below it is within max_rank_error (+1 for the lower bound
  /// being 1-based) of the boundary's target rank; the bucket depth is the
  /// difference of two such counts. Heavy ties AT a boundary value can push
  /// the realized depth outside the bracket — value-based routing sends
  /// every tie to one side, like any splitter-based router.
  struct DepthBracket {
    uint64_t min_depth = 0;
    uint64_t max_depth = 0;
  };
  DepthBracket BucketDepthBracket(int b) const {
    OPAQ_CHECK_GE(b, 0);
    OPAQ_CHECK_LT(b, num_buckets());
    // rank_lt(point of boundary i) bounds, with virtual boundaries at the
    // two ends of the data; boundary i (1-based) is boundaries_[i - 1].
    auto min_rank = [&](int i) -> uint64_t {
      if (i == 0) return 0;
      if (i == num_buckets()) return total_elements_;
      const uint64_t target = boundaries_[i - 1].target_rank;
      const uint64_t slack = max_rank_error_ + 1;
      return target > slack ? target - slack : 0;
    };
    auto max_rank = [&](int i) -> uint64_t {
      if (i == 0) return 0;
      if (i == num_buckets()) return total_elements_;
      const uint64_t target = boundaries_[i - 1].target_rank;
      return target + max_rank_error_ < total_elements_
                 ? target + max_rank_error_
                 : total_elements_;
    };
    DepthBracket out;
    const uint64_t hi_prev = max_rank(b);
    const uint64_t lo_next = min_rank(b + 1);
    out.min_depth = lo_next > hi_prev ? lo_next - hi_prev : 0;
    out.max_depth = max_rank(b + 1) - min_rank(b);
    return out;
  }

 private:
  std::vector<QuantileEstimate<K>> boundaries_;
  uint64_t total_elements_ = 0;
  uint64_t max_rank_error_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_APPS_EQUI_DEPTH_HISTOGRAM_H_
