#ifndef OPAQ_METRICS_RER_H_
#define OPAQ_METRICS_RER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "metrics/ground_truth.h"
#include "util/check.h"

namespace opaq {

/// The paper's three relative error rates (§2.4, Figure 2), all in percent.
///
/// For q equi-spaced quantiles with estimates (e_l_i, e_u_i) and true values
/// t_i at ranks psi_i = ceil(i*n/q):
///
///  - RER_A ("Almaden", from [AS95]), reported per quantile:
///        (N_e - N_t) / n * 100
///    where N_e = #elements inside [e_l, e_u] and N_t = #duplicates of t_i
///    (all of which lie inside the bracket).
///
///  - RER_L ("Load balancing"), one number (max over segments): with
///    N_i = psi_{i+1} - psi_i elements between consecutive true quantiles,
///    and NL_i / NU_i the element counts between consecutive estimated
///    lower / upper bounds,
///        max_i max(|N_i - NL_i|, |N_i - NU_i|) / N_i * 100.
///    Segment boundaries at the data extremes (rank 0 and n) are exact by
///    definition, so i ranges over the q segments delimited by the q-1
///    estimates plus the two ends.
///
///  - RER_N ("Normalized"), one number: with DL_i / DU_i the element counts
///    between the true quantile and its lower / upper bound,
///        max_i max(DL_i, DU_i) / (n/q) * 100.
///
/// Element counts between values are measured in ranks:
/// #elements between values a <= b is RankLe(b) - RankLe(a); distances from
/// the true quantile use max(0, psi - RankLe(e_l)) and
/// max(0, RankLt(e_u) - psi) so an exactly-right bound scores 0 even in the
/// presence of duplicates. Paper upper bounds: RER_A <= 200/s,
/// RER_L <= 2q*100/s, RER_N <= q*100/s (all slightly widened by uncovered
/// tail elements when m does not divide n).
template <typename K>
struct RerReport {
  std::vector<double> rer_a;  // one per quantile, percent
  double rer_l = 0;           // max over segments, percent
  double rer_n = 0;           // max over quantiles, percent

  double max_rer_a() const {
    double m = 0;
    for (double v : rer_a) m = std::max(m, v);
    return m;
  }
};

template <typename K>
RerReport<K> ComputeRer(const GroundTruth<K>& truth,
                        const std::vector<QuantileEstimate<K>>& estimates,
                        int q) {
  OPAQ_CHECK_GE(q, 2);
  OPAQ_CHECK_EQ(estimates.size(), static_cast<size_t>(q - 1));
  const uint64_t n = truth.n();
  OPAQ_CHECK_GT(n, 0u);
  RerReport<K> report;

  // --- RER_A per quantile. ---
  for (int i = 1; i < q; ++i) {
    const QuantileEstimate<K>& e = estimates[i - 1];
    const K& t = truth.ValueAtRank(e.target_rank);
    const uint64_t inside = truth.CountInClosedRange(e.lower, e.upper);
    const uint64_t dups = truth.CountEqual(t);
    const uint64_t excess = inside > dups ? inside - dups : 0;
    report.rer_a.push_back(100.0 * static_cast<double>(excess) /
                           static_cast<double>(n));
  }

  // Per-quantile rank positions of the estimated bounds, with the two exact
  // sentinels (rank 0 before the data, rank n after it).
  std::vector<uint64_t> true_ranks{0};
  std::vector<uint64_t> lower_ranks{0};
  std::vector<uint64_t> upper_ranks{0};
  for (int i = 1; i < q; ++i) {
    const QuantileEstimate<K>& e = estimates[i - 1];
    true_ranks.push_back(e.target_rank);
    lower_ranks.push_back(truth.RankLe(e.lower));
    upper_ranks.push_back(truth.RankLe(e.upper));
  }
  true_ranks.push_back(n);
  lower_ranks.push_back(n);
  upper_ranks.push_back(n);

  // --- RER_L: segment-length distortion. ---
  double rer_l = 0;
  for (int i = 0; i < q; ++i) {
    const double ni = static_cast<double>(true_ranks[i + 1] - true_ranks[i]);
    if (ni <= 0) continue;
    const double nli =
        std::abs(static_cast<double>(lower_ranks[i + 1]) -
                 static_cast<double>(lower_ranks[i]) - ni);
    const double nui =
        std::abs(static_cast<double>(upper_ranks[i + 1]) -
                 static_cast<double>(upper_ranks[i]) - ni);
    rer_l = std::max(rer_l, 100.0 * std::max(nli, nui) / ni);
  }
  report.rer_l = rer_l;

  // --- RER_N: distance of each bound from its true quantile, normalised by
  //     the ideal segment size n/q. ---
  const double segment = static_cast<double>(n) / q;
  double rer_n = 0;
  for (int i = 1; i < q; ++i) {
    const QuantileEstimate<K>& e = estimates[i - 1];
    const uint64_t psi = e.target_rank;
    const uint64_t rank_le_lower = truth.RankLe(e.lower);
    const uint64_t rank_lt_upper = truth.RankLt(e.upper);
    const double dl = psi > rank_le_lower
                          ? static_cast<double>(psi - rank_le_lower)
                          : 0.0;
    const double du = rank_lt_upper > psi
                          ? static_cast<double>(rank_lt_upper - psi)
                          : 0.0;
    rer_n = std::max(rer_n, 100.0 * std::max(dl, du) / segment);
  }
  report.rer_n = rer_n;
  return report;
}

/// RER_A adapted to point estimators (random sampling, [AS95], P2, ...):
/// the rank displacement of the estimate, |rank(v) - psi| / n * 100, using
/// the closest rank the value can claim (duplicates of the true quantile
/// score 0).
template <typename K>
double PointRerA(const GroundTruth<K>& truth, const K& estimate,
                 uint64_t target_rank) {
  const uint64_t lo = truth.RankLt(estimate) + 1;  // smallest claimable rank
  const uint64_t hi = truth.RankLe(estimate);      // largest claimable rank
  uint64_t distance = 0;
  if (hi < lo) {
    // Value absent from the data: distance to the insertion point.
    const uint64_t ins = truth.RankLe(estimate);
    distance = ins >= target_rank ? ins - target_rank : target_rank - ins;
  } else if (target_rank < lo) {
    distance = lo - target_rank;
  } else if (target_rank > hi) {
    distance = target_rank - hi;
  }
  return 100.0 * static_cast<double>(distance) /
         static_cast<double>(truth.n());
}

/// Audits the paper's correctness guarantees for one estimate; used by the
/// property-test suites. Returns true iff
///  (a) unclamped bounds bracket the true quantile value, and
///  (b) both bounds are within max_rank_error ranks of the target.
template <typename K>
bool BracketHolds(const GroundTruth<K>& truth,
                  const QuantileEstimate<K>& e) {
  const K& t = truth.ValueAtRank(e.target_rank);
  if (!e.lower_clamped && t < e.lower) return false;
  if (!e.upper_clamped && e.upper < t) return false;
  if (!e.lower_clamped) {
    const uint64_t rank_le_lower = truth.RankLe(e.lower);
    const uint64_t dl =
        e.target_rank > rank_le_lower ? e.target_rank - rank_le_lower : 0;
    if (dl > e.max_rank_error) return false;
  }
  if (!e.upper_clamped) {
    const uint64_t rank_lt_upper = truth.RankLt(e.upper);
    const uint64_t du =
        rank_lt_upper > e.target_rank ? rank_lt_upper - e.target_rank : 0;
    if (du > e.max_rank_error) return false;
  }
  return true;
}

}  // namespace opaq

#endif  // OPAQ_METRICS_RER_H_
