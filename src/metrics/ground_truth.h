#ifndef OPAQ_METRICS_GROUND_TRUTH_H_
#define OPAQ_METRICS_GROUND_TRUTH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "io/data_file.h"
#include "util/check.h"
#include "util/status.h"

namespace opaq {

/// Exact order statistics of a dataset, for evaluating estimators. Keeps a
/// fully sorted copy in memory — this is the thing OPAQ avoids, used here
/// only to *score* OPAQ and the baselines (paper §2.4).
///
/// Rank conventions (DESIGN.md §5): ranks are 1-based; `RankLt(v)`/`RankLe(v)`
/// count elements strictly below / at-or-below `v`; the true phi-quantile is
/// the sorted element at index ceil(phi*n).
template <typename K>
class GroundTruth {
 public:
  explicit GroundTruth(std::vector<K> data) : sorted_(std::move(data)) {
    std::sort(sorted_.begin(), sorted_.end());
  }

  static Result<GroundTruth<K>> FromFile(const TypedDataFile<K>* file) {
    auto data = file->ReadAll();
    if (!data.ok()) return data.status();
    return GroundTruth<K>(std::move(data).value());
  }

  uint64_t n() const { return sorted_.size(); }
  const std::vector<K>& sorted() const { return sorted_; }

  /// Element of 1-based rank psi.
  const K& ValueAtRank(uint64_t psi) const {
    OPAQ_CHECK_GE(psi, 1u);
    OPAQ_CHECK_LE(psi, sorted_.size());
    return sorted_[psi - 1];
  }

  /// True phi-quantile (phi in (0,1]): element of rank ceil(phi*n).
  const K& Quantile(double phi) const {
    OPAQ_CHECK(phi > 0.0 && phi <= 1.0);
    uint64_t psi = static_cast<uint64_t>(
        std::ceil(phi * static_cast<double>(n())));
    if (psi < 1) psi = 1;
    if (psi > n()) psi = n();
    return ValueAtRank(psi);
  }

  /// Rank of the true phi-quantile (psi = ceil(phi*n)).
  uint64_t TargetRank(double phi) const {
    OPAQ_CHECK(phi > 0.0 && phi <= 1.0);
    uint64_t psi = static_cast<uint64_t>(
        std::ceil(phi * static_cast<double>(n())));
    return std::max<uint64_t>(1, std::min<uint64_t>(psi, n()));
  }

  uint64_t RankLt(const K& v) const {
    return static_cast<uint64_t>(
        std::lower_bound(sorted_.begin(), sorted_.end(), v) -
        sorted_.begin());
  }
  uint64_t RankLe(const K& v) const {
    return static_cast<uint64_t>(
        std::upper_bound(sorted_.begin(), sorted_.end(), v) -
        sorted_.begin());
  }

  /// #elements x with a <= x <= b (a <= b required).
  uint64_t CountInClosedRange(const K& a, const K& b) const {
    OPAQ_CHECK(!(b < a));
    return RankLe(b) - RankLt(a);
  }

  /// #elements equal to v (duplicates of v).
  uint64_t CountEqual(const K& v) const { return RankLe(v) - RankLt(v); }

 private:
  std::vector<K> sorted_;
};

}  // namespace opaq

#endif  // OPAQ_METRICS_GROUND_TRUTH_H_
