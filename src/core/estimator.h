#ifndef OPAQ_CORE_ESTIMATOR_H_
#define OPAQ_CORE_ESTIMATOR_H_

#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/index_math.h"
#include "core/sample_list.h"
#include "util/check.h"

namespace opaq {

/// Midpoint of `lower <= upper`, guaranteed to stay inside [lower, upper]:
/// integral K goes through the unsigned domain (where the width wraps to
/// the exact non-negative difference, no signed overflow), floating K
/// averages the halves (no overflow to inf) and clamps away the subnormal
/// rounding corner.
template <typename K>
K BracketMidpoint(K lower, K upper) {
  if constexpr (std::is_integral_v<K>) {
    using U = std::make_unsigned_t<K>;
    const U width = static_cast<U>(static_cast<U>(upper) - static_cast<U>(lower));
    return static_cast<K>(static_cast<U>(lower) + width / 2);
  } else {
    const K mid = lower / 2 + upper / 2;
    if (mid < lower) return lower;
    if (upper < mid) return upper;
    return mid;
  }
}

/// One quantile answer: certified bracket [lower, upper] around the true
/// quantile value, plus the bookkeeping that makes the guarantee auditable.
template <typename K>
struct QuantileEstimate {
  /// Target rank psi = ceil(phi * n), 1-based.
  uint64_t target_rank = 0;
  /// e_l: guaranteed <= the true quantile unless `lower_clamped`.
  K lower{};
  /// e_u: guaranteed >= the true quantile unless `upper_clamped`.
  K upper{};
  /// 1-based positions in the sorted sample list the bounds came from.
  uint64_t lower_index = 0;
  uint64_t upper_index = 0;
  /// True when the paper's index formula left [1, rs] and the corresponding
  /// bound is only the nearest available sample, not a certificate.
  bool lower_clamped = false;
  bool upper_clamped = false;
  /// Lemmas 1-2: at most this many elements of rank separate either bound
  /// from the true quantile (n/s in the paper's setting).
  uint64_t max_rank_error = 0;

  /// Single-value point estimate: the midpoint of the certified bracket,
  /// computed overflow-safely (see BracketMidpoint) and always satisfying
  /// lower <= point() <= upper. When exactly one bound is clamped (not a
  /// certificate), the other — still certified — bound is returned instead;
  /// when both are clamped the midpoint is returned again (neither side
  /// certifies, so there is no better single value to prefer).
  K point() const {
    const bool no_lower = lower_clamped || lower_index == 0;
    const bool no_upper = upper_clamped || upper_index == 0;
    if (no_lower && !no_upper) return upper;
    if (no_upper && !no_lower) return lower;
    return BracketMidpoint(lower, upper);
  }
};

/// Rank bracket for an arbitrary value (paper §4 extension). All four rank
/// bounds so range-count queries (selectivity) can be bracketed too.
struct RankEstimate {
  uint64_t min_rank_le = 0;  ///< at least this many elements <= v
  uint64_t max_rank_le = 0;  ///< at most this many elements <= v
  uint64_t min_rank_lt = 0;  ///< at least this many elements < v
  uint64_t max_rank_lt = 0;  ///< at most this many elements < v

  /// Midpoint as a point estimate of the rank (elements <= v).
  uint64_t point() const { return (min_rank_le + max_rank_le) / 2; }
};

/// The quantile phase: answers phi-quantile and rank queries from a finished
/// SampleList in O(1) and O(log rs) respectively — this is the paper's
/// "extra time for computing additional quantiles is constant per quantile".
template <typename K>
class OpaqEstimator {
 public:
  explicit OpaqEstimator(SampleList<K> samples)
      : samples_(std::move(samples)) {}

  const SampleList<K>& sample_list() const { return samples_; }
  uint64_t total_elements() const { return samples_.total_elements(); }

  /// Lemma 1-3 budget: max elements between either bound and the truth.
  uint64_t max_rank_error() const {
    return MaxRankError(samples_.accounting());
  }

  /// phi in (0, 1]: returns bounds on the element of rank ceil(phi*n).
  QuantileEstimate<K> Quantile(double phi) const {
    OPAQ_CHECK(phi > 0.0 && phi <= 1.0)
        << "phi must be in (0,1], got " << phi;
    const uint64_t n = total_elements();
    OPAQ_CHECK_GT(n, 0u);
    uint64_t psi = static_cast<uint64_t>(
        std::ceil(phi * static_cast<double>(n)));
    if (psi < 1) psi = 1;
    if (psi > n) psi = n;
    return QuantileByRank(psi);
  }

  /// Bounds on the element of 1-based rank psi (the paper's psi = phi*n).
  QuantileEstimate<K> QuantileByRank(uint64_t psi) const {
    const SampleAccounting& acc = samples_.accounting();
    OPAQ_CHECK_GT(acc.num_samples, 0u)
        << "quantile phase requires a non-empty sample list";
    QuantileEstimate<K> out;
    out.target_rank = psi;
    out.max_rank_error = MaxRankError(acc);
    SampleIndex lower = LowerBoundIndex(acc, psi);
    SampleIndex upper = UpperBoundIndex(acc, psi);
    out.lower_index = lower.index;
    out.upper_index = upper.index;
    out.lower_clamped = lower.clamped;
    out.upper_clamped = upper.clamped;
    out.lower = samples_.At1(lower.index);
    out.upper = samples_.At1(upper.index);
    return out;
  }

  /// Estimates q-1 equi-spaced quantiles (dectiles for q=10, paper §2.4).
  /// Cost beyond the first is O(1) each.
  std::vector<QuantileEstimate<K>> EquiQuantiles(int q) const {
    OPAQ_CHECK_GE(q, 2);
    std::vector<QuantileEstimate<K>> out;
    out.reserve(q - 1);
    for (int i = 1; i < q; ++i) {
      out.push_back(Quantile(static_cast<double>(i) / q));
    }
    return out;
  }

  /// Rank bracket for an arbitrary value v (no pass over the data).
  RankEstimate EstimateRank(const K& v) const {
    RankBounds bounds = RankBoundsFromSampleCounts(
        samples_.accounting(), samples_.CountLessEqual(v),
        samples_.CountLess(v));
    return RankEstimate{bounds.min_rank_le, bounds.max_rank_le,
                        bounds.min_rank_lt, bounds.max_rank_lt};
  }

 private:
  SampleList<K> samples_;
};

}  // namespace opaq

#endif  // OPAQ_CORE_ESTIMATOR_H_
