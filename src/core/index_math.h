#ifndef OPAQ_CORE_INDEX_MATH_H_
#define OPAQ_CORE_INDEX_MATH_H_

#include <cstdint>

namespace opaq {

/// Pure integer bookkeeping behind the quantile phase (paper §2.2 and
/// Appendix A), kept free of templates and I/O so the index formulas and
/// their proofs-in-code can be unit-tested exhaustively.
///
/// Terminology (paper Table 1, generalised to tail runs):
///  - `subrun_size` c = m/s: every sample covers a disjoint "sub-run" of c
///    elements that are <= it (regular sampling).
///  - `num_runs` R: number of runs the data was read in (paper: r = n/m).
///  - `num_samples` S: total samples over all runs (paper: r*s).
///  - `num_uncovered` U: elements in partial tail sub-runs that no sample
///    covers; 0 in the paper's divisible setting, tracked here so arbitrary
///    n is supported with sound (slightly wider) bounds.
///
/// Invariant: total_elements == S * c + U.
struct SampleAccounting {
  uint64_t subrun_size = 0;
  uint64_t num_runs = 0;
  uint64_t num_samples = 0;
  uint64_t num_uncovered = 0;
  uint64_t total_elements = 0;

  bool Valid() const {
    return subrun_size > 0 &&
           total_elements == num_samples * subrun_size + num_uncovered &&
           (num_samples == 0 || num_runs > 0);
  }
};

/// A 1-based index into the sorted sample list, with a flag recording that
/// the paper's formula fell outside [1, S] and was clamped (in which case the
/// corresponding bound is vacuous: the caller only knows the quantile is
/// beyond the first/last sample).
struct SampleIndex {
  uint64_t index = 0;  // 1-based; 0 iff there are no samples at all
  bool clamped = false;
};

/// Index of the lower-bound sample e_l for target rank `psi` (1-based,
/// 1 <= psi <= n): the largest i with
///     i*c + (R-1)*(c-1) + U  <=  psi
/// (paper formula (2), plus the +U generalisation). Guarantees that at most
/// `MaxRankError` elements separate e_l from the true quantile (Lemma 1).
SampleIndex LowerBoundIndex(const SampleAccounting& acc, uint64_t psi);

/// Index of the upper-bound sample e_u for target rank `psi`: the smallest j
/// with j*c >= psi, i.e. j = ceil(psi/c) (paper formula (5)). Guarantees at
/// most `MaxRankError` elements separate the true quantile from e_u
/// (Lemma 2).
SampleIndex UpperBoundIndex(const SampleAccounting& acc, uint64_t psi);

/// The rank-error budget of Lemmas 1-3: at most this many elements lie
/// between either bound and the true quantile. Equals
/// c + (R-1)*(c-1) + U <= n/s + U (paper: n/s).
uint64_t MaxRankError(const SampleAccounting& acc);

/// Bounds on the rank of an arbitrary value v, derived from how many samples
/// compare below it (paper §4: "the sorted sample list can obviously be used
/// to estimate the rank of any arbitrary element"). With
/// `samples_le` = #samples <= v and `samples_lt` = #samples < v:
///  - at least samples_le * c elements are <= v and at least samples_lt * c
///    are < v (property 1: each such sample covers c disjoint elements at or
///    below itself),
///  - at most samples_{le,lt} * c + R*(c-1) + U elements are <=/< v
///    (property 2 with every run possibly contributing one partial sub-run).
struct RankBounds {
  uint64_t min_rank_le;  // lower bound on #elements <= v
  uint64_t max_rank_le;  // upper bound on #elements <= v
  uint64_t min_rank_lt;  // lower bound on #elements <  v
  uint64_t max_rank_lt;  // upper bound on #elements <  v
};
RankBounds RankBoundsFromSampleCounts(const SampleAccounting& acc,
                                      uint64_t samples_le,
                                      uint64_t samples_lt);

}  // namespace opaq

#endif  // OPAQ_CORE_INDEX_MATH_H_
