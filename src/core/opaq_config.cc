#include "core/opaq_config.h"

#include <sstream>

#include "util/math.h"

namespace opaq {

Status OpaqConfig::Validate(uint64_t n, uint64_t memory_budget_elements) const {
  if (run_size == 0) {
    return Status::InvalidArgument("run_size must be positive");
  }
  if (samples_per_run == 0) {
    return Status::InvalidArgument("samples_per_run must be positive");
  }
  if (samples_per_run > run_size) {
    return Status::InvalidArgument(
        "samples_per_run must not exceed run_size");
  }
  if (run_size % samples_per_run != 0) {
    return Status::InvalidArgument(
        "samples_per_run must divide run_size (paper footnote 1; use a "
        "power-of-two pair)");
  }
  if (io_mode == IoMode::kAsync &&
      (prefetch_depth == 0 || prefetch_depth > kMaxPrefetchDepth)) {
    std::ostringstream os;
    os << "prefetch_depth must be in [1, " << kMaxPrefetchDepth
       << "] in async io_mode, got " << prefetch_depth;
    return Status::InvalidArgument(os.str());
  }
  if (stripes == 0 || stripes > kMaxStripes) {
    std::ostringstream os;
    os << "stripes must be in [1, " << kMaxStripes << "], got " << stripes;
    return Status::InvalidArgument(os.str());
  }
  if (GetCodec(codec) == nullptr) {
    return Status::InvalidArgument(
        "unknown extent codec tag " +
        std::to_string(static_cast<uint16_t>(codec)));
  }
  if (!CodecAvailable(codec)) {
    return Status::Unimplemented(std::string("codec '") +
                                 ExtentCodecName(codec) +
                                 "' not available in this build");
  }
  // Bound against the smallest key type (4 bytes), so a config valid here
  // stays valid for every key; ExtentWriter::Create re-checks exactly.
  if (extent_elements == 0 || extent_elements > kMaxExtentBytes / 4) {
    std::ostringstream os;
    os << "extent_elements must be in [1, " << kMaxExtentBytes / 4
       << "], got " << extent_elements;
    return Status::InvalidArgument(os.str());
  }
  if (n > 0 && memory_budget_elements > 0) {
    const uint64_t runs = DivCeil(n, run_size);
    // Async prefetching holds prefetch_depth extra run buffers beyond the
    // one the sampler works on, so the §2.3 inequality charges them all.
    // The striped backend keeps prefetch_depth chunks in flight PER STRIPE;
    // the chunk size is a property of the file, not the config, so it is
    // charged at the recommended chunk <= run_size layout (a larger chunk
    // raises the true footprint beyond this estimate).
    const uint64_t buffers =
        io_mode == IoMode::kAsync ? stripes * prefetch_depth + 1 : 1;
    const uint64_t needed = runs * samples_per_run + buffers * run_size;
    if (needed > memory_budget_elements) {
      std::ostringstream os;
      os << "memory constraint r*s + " << buffers << "*m <= M violated: "
         << runs << "*" << samples_per_run << " + " << buffers << "*"
         << run_size << " = " << needed << " > " << memory_budget_elements;
      return Status::InvalidArgument(os.str());
    }
  }
  return Status::OK();
}

std::string OpaqConfig::ToString() const {
  std::ostringstream os;
  os << "OpaqConfig(m=" << run_size << ", s=" << samples_per_run
     << ", c=" << subrun_size()
     << ", select=" << SelectAlgorithmName(select_algorithm)
     << ", seed=" << seed << ", io=" << IoModeName(io_mode);
  if (io_mode == IoMode::kAsync) os << "/depth=" << prefetch_depth;
  if (stripes > 1) os << ", stripes=" << stripes;
  if (codec != ExtentCodec::kRaw) {
    os << ", codec=" << ExtentCodecName(codec)
       << ", extent=" << extent_elements;
  }
  if (!verify_checksums) os << ", nocrc";
  os << ")";
  return os.str();
}

}  // namespace opaq
