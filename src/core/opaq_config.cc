#include "core/opaq_config.h"

#include <sstream>

#include "util/math.h"

namespace opaq {

Status OpaqConfig::Validate(uint64_t n, uint64_t memory_budget_elements) const {
  if (run_size == 0) {
    return Status::InvalidArgument("run_size must be positive");
  }
  if (samples_per_run == 0) {
    return Status::InvalidArgument("samples_per_run must be positive");
  }
  if (samples_per_run > run_size) {
    return Status::InvalidArgument(
        "samples_per_run must not exceed run_size");
  }
  if (run_size % samples_per_run != 0) {
    return Status::InvalidArgument(
        "samples_per_run must divide run_size (paper footnote 1; use a "
        "power-of-two pair)");
  }
  if (n > 0 && memory_budget_elements > 0) {
    const uint64_t runs = DivCeil(n, run_size);
    const uint64_t needed = runs * samples_per_run + run_size;
    if (needed > memory_budget_elements) {
      std::ostringstream os;
      os << "memory constraint r*s + m <= M violated: " << runs << "*"
         << samples_per_run << " + " << run_size << " = " << needed << " > "
         << memory_budget_elements;
      return Status::InvalidArgument(os.str());
    }
  }
  return Status::OK();
}

std::string OpaqConfig::ToString() const {
  std::ostringstream os;
  os << "OpaqConfig(m=" << run_size << ", s=" << samples_per_run
     << ", c=" << subrun_size()
     << ", select=" << SelectAlgorithmName(select_algorithm)
     << ", seed=" << seed << ")";
  return os.str();
}

}  // namespace opaq
