#ifndef OPAQ_CORE_SAMPLE_LIST_H_
#define OPAQ_CORE_SAMPLE_LIST_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/index_math.h"
#include "core/kway_merge.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/status.h"

namespace opaq {

/// The product of OPAQ's sample phase: the globally sorted list of regular
/// samples plus the accounting needed by the quantile phase. Immutable once
/// built; cheap to copy only if s is small, so prefer moves.
///
/// A SampleList is also OPAQ's unit of *incremental* and *distributed*
/// composition (paper §4): two lists with the same sub-run size merge into
/// the list one would have obtained by sampling the concatenated data set —
/// that is exactly how new data is folded in and how the parallel algorithm
/// combines per-processor lists.
template <typename K>
class SampleList {
 public:
  SampleList() = default;
  SampleList(std::vector<K> sorted_samples, SampleAccounting accounting)
      : samples_(std::move(sorted_samples)), accounting_(accounting) {
    OPAQ_CHECK(accounting_.Valid());
    OPAQ_CHECK_EQ(samples_.size(), accounting_.num_samples);
    OPAQ_DCHECK(std::is_sorted(samples_.begin(), samples_.end()));
  }

  const std::vector<K>& samples() const { return samples_; }
  const SampleAccounting& accounting() const { return accounting_; }
  uint64_t total_elements() const { return accounting_.total_elements; }
  bool empty() const { return samples_.empty(); }

  /// 1-based access matching the paper's List[i] notation.
  const K& At1(uint64_t index_1based) const {
    OPAQ_CHECK_GE(index_1based, 1u);
    OPAQ_CHECK_LE(index_1based, samples_.size());
    return samples_[index_1based - 1];
  }

  /// Merges two sample lists over disjoint data (incremental maintenance /
  /// parallel combination). Requires identical sub-run sizes; run counts,
  /// sample counts, uncovered counts and element totals add.
  static Result<SampleList<K>> Merge(const SampleList<K>& a,
                                     const SampleList<K>& b) {
    if (a.empty() && a.accounting_.total_elements == 0) return b;
    if (b.empty() && b.accounting_.total_elements == 0) return a;
    if (a.accounting_.subrun_size != b.accounting_.subrun_size) {
      return Status::InvalidArgument(
          "cannot merge sample lists with different sub-run sizes");
    }
    SampleAccounting acc;
    acc.subrun_size = a.accounting_.subrun_size;
    acc.num_runs = a.accounting_.num_runs + b.accounting_.num_runs;
    acc.num_samples = a.accounting_.num_samples + b.accounting_.num_samples;
    acc.num_uncovered =
        a.accounting_.num_uncovered + b.accounting_.num_uncovered;
    acc.total_elements =
        a.accounting_.total_elements + b.accounting_.total_elements;
    return SampleList<K>(MergeSorted(a.samples_, b.samples_), acc);
  }

  /// Number of samples <= v and < v (binary searches; used by rank queries).
  uint64_t CountLessEqual(const K& v) const {
    return static_cast<uint64_t>(
        std::upper_bound(samples_.begin(), samples_.end(), v) -
        samples_.begin());
  }
  uint64_t CountLess(const K& v) const {
    return static_cast<uint64_t>(
        std::lower_bound(samples_.begin(), samples_.end(), v) -
        samples_.begin());
  }

 private:
  std::vector<K> samples_;
  SampleAccounting accounting_;
};

/// Accumulates per-run sample lists during the sample phase and produces the
/// merged SampleList. The per-run lists are kept sorted (MultiSelect output
/// is sorted by construction) and merged r-way at Finalize — the exact
/// structure of Figure 1.
template <typename K>
class SampleListBuilder {
 public:
  explicit SampleListBuilder(uint64_t subrun_size)
      : subrun_size_(subrun_size) {
    OPAQ_CHECK_GT(subrun_size, 0u);
  }

  /// Adds one run's sorted samples. `run_length` is the number of data
  /// elements the run held (m, or less for the tail run); the builder works
  /// out how many of them the samples cover.
  void AddRunSamples(std::vector<K> sorted_samples, uint64_t run_length) {
    OPAQ_CHECK_EQ(sorted_samples.size(), run_length / subrun_size_);
    OPAQ_DCHECK(std::is_sorted(sorted_samples.begin(), sorted_samples.end()));
    accounting_.num_runs += 1;
    accounting_.num_samples += sorted_samples.size();
    accounting_.num_uncovered += run_length % subrun_size_;
    accounting_.total_elements += run_length;
    per_run_samples_.push_back(std::move(sorted_samples));
  }

  uint64_t num_runs() const { return accounting_.num_runs; }
  uint64_t total_elements() const { return accounting_.total_elements; }

  /// Merges all run sample lists (O(rs log r)) and returns the result.
  /// The builder is left empty and reusable.
  SampleList<K> Finalize() {
    accounting_.subrun_size = subrun_size_;
    TraceSpan merge_span(TraceStage::kMerge);
    SampleList<K> out(KWayMergeSorted(per_run_samples_), accounting_);
    per_run_samples_.clear();
    accounting_ = SampleAccounting{};
    return out;
  }

 private:
  uint64_t subrun_size_;
  std::vector<std::vector<K>> per_run_samples_;
  SampleAccounting accounting_;
};

}  // namespace opaq

#endif  // OPAQ_CORE_SAMPLE_LIST_H_
