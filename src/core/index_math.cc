#include "core/index_math.h"

#include <algorithm>

#include "util/check.h"

namespace opaq {
namespace {

/// Slack term (R-1)*(c-1) + U: the maximum number of elements that can hide
/// below a sample without being covered by smaller samples' sub-runs.
uint64_t Slack(const SampleAccounting& acc) {
  const uint64_t runs_minus_one = acc.num_runs > 0 ? acc.num_runs - 1 : 0;
  return runs_minus_one * (acc.subrun_size - 1) + acc.num_uncovered;
}

}  // namespace

SampleIndex LowerBoundIndex(const SampleAccounting& acc, uint64_t psi) {
  OPAQ_CHECK(acc.Valid());
  OPAQ_CHECK_GE(psi, 1u);
  OPAQ_CHECK_LE(psi, acc.total_elements);
  SampleIndex out;
  if (acc.num_samples == 0) return out;  // index 0: no samples at all
  const uint64_t slack = Slack(acc);
  if (psi < acc.subrun_size + slack) {
    // Formula would give i < 1: no sample is guaranteed <= the true
    // quantile. Clamp to the first sample and tell the caller.
    out.index = 1;
    out.clamped = true;
    return out;
  }
  uint64_t i = (psi - slack) / acc.subrun_size;  // floor
  if (i > acc.num_samples) {
    i = acc.num_samples;  // can only happen with tiny slack; stay in range
  }
  out.index = i;
  return out;
}

SampleIndex UpperBoundIndex(const SampleAccounting& acc, uint64_t psi) {
  OPAQ_CHECK(acc.Valid());
  OPAQ_CHECK_GE(psi, 1u);
  OPAQ_CHECK_LE(psi, acc.total_elements);
  SampleIndex out;
  if (acc.num_samples == 0) return out;
  uint64_t j = (psi + acc.subrun_size - 1) / acc.subrun_size;  // ceil
  if (j > acc.num_samples) {
    // Only reachable when uncovered tail elements push psi past S*c; the
    // last sample is then not a certified upper bound.
    j = acc.num_samples;
    out.clamped = true;
  }
  out.index = j;
  return out;
}

uint64_t MaxRankError(const SampleAccounting& acc) {
  OPAQ_CHECK(acc.Valid());
  return acc.subrun_size + Slack(acc);
}

RankBounds RankBoundsFromSampleCounts(const SampleAccounting& acc,
                                      uint64_t samples_le,
                                      uint64_t samples_lt) {
  OPAQ_CHECK(acc.Valid());
  OPAQ_CHECK_LE(samples_lt, samples_le);
  OPAQ_CHECK_LE(samples_le, acc.num_samples);
  RankBounds out;
  const uint64_t cap = acc.total_elements;
  const uint64_t slack = acc.num_runs * (acc.subrun_size - 1) +
                         acc.num_uncovered;
  out.min_rank_le = samples_le * acc.subrun_size;
  out.min_rank_lt = samples_lt * acc.subrun_size;
  out.max_rank_le = std::min(cap, samples_le * acc.subrun_size + slack);
  out.max_rank_lt = std::min(cap, samples_lt * acc.subrun_size + slack);
  return out;
}

}  // namespace opaq
