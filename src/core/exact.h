#ifndef OPAQ_CORE_EXACT_H_
#define OPAQ_CORE_EXACT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.h"
#include "io/async_run_reader.h"
#include "io/run_reader.h"
#include "select/select.h"
#include "util/random.h"
#include "util/status.h"

namespace opaq {

/// The paper's §4 extension: turn an OPAQ estimate into the *exact* quantile
/// with one extra pass. The pass keeps only the elements inside
/// [estimate.lower, estimate.upper] — at most 2n/s of them by Lemma 3 — and
/// counts the elements below the lower bound; the exact quantile is then the
/// element of rank (psi - count_below) within the kept set, found by
/// selection in memory.
///
/// The scan streams through `RunProvider::OpenRuns(options)`, so it works on
/// any storage backend and — with `options.io_mode == kAsync` — overlaps the
/// candidate-interval filtering with the next run's read(s), exactly like
/// the sample phase.
///
/// Fails with FailedPrecondition if either bound was clamped (the bracket is
/// then not certified) and with ResourceExhausted if the kept set exceeds
/// `memory_budget_elements` (0 = 4 * max_rank_error, twice Lemma 3's bound,
/// as a generous default).
template <typename K>
Result<K> ExactQuantileSecondPass(const RunProvider<K>& provider,
                                  const QuantileEstimate<K>& estimate,
                                  const ReadOptions& options,
                                  uint64_t memory_budget_elements = 0) {
  if (estimate.lower_clamped || estimate.upper_clamped) {
    return Status::FailedPrecondition(
        "bounds were clamped; the bracket does not certify the quantile");
  }
  if (memory_budget_elements == 0) {
    memory_budget_elements = 4 * estimate.max_rank_error;
  }
  uint64_t below = 0;  // elements strictly below estimate.lower
  std::vector<K> kept;
  std::vector<K> buffer;
  std::unique_ptr<RunSource<K>> reader = provider.OpenRuns(options);
  while (true) {
    auto more = reader->NextRun(&buffer);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const K& v : buffer) {
      if (v < estimate.lower) {
        ++below;
      } else if (!(estimate.upper < v)) {  // lower <= v <= upper
        kept.push_back(v);
        if (kept.size() > memory_budget_elements) {
          return Status::ResourceExhausted(
              "bracket holds more elements than the memory budget; "
              "increase samples_per_run or the budget");
        }
      }
    }
  }
  // Rank of the target inside the kept set (1-based psi, 0-based select).
  if (estimate.target_rank <= below ||
      estimate.target_rank > below + kept.size()) {
    // Would indicate a broken bracket; Lemmas 1-2 forbid this for certified
    // (unclamped) bounds on the file the estimate came from.
    return Status::Internal(
        "target rank falls outside the bracket; was the estimate computed "
        "from a different file?");
  }
  const uint64_t rank_in_kept = estimate.target_rank - below - 1;
  Xoshiro256 rng(estimate.target_rank);
  return SelectKth(kept.data(), kept.size(), rank_in_kept,
                   SelectAlgorithm::kIntroSelect, rng);
}

/// Back-compat wrapper: synchronous scan of one plain data file.
template <typename K>
Result<K> ExactQuantileSecondPass(const TypedDataFile<K>* file,
                                  const QuantileEstimate<K>& estimate,
                                  uint64_t run_size,
                                  uint64_t memory_budget_elements = 0) {
  ReadOptions options;
  options.run_size = run_size;
  return ExactQuantileSecondPass(FileRunProvider<K>(file), estimate, options,
                                 memory_budget_elements);
}

/// Batch variant: recovers the exact values for SEVERAL quantiles with one
/// shared extra pass. Each estimate's bracket is filtered independently (q
/// is small — dectiles — so the per-element loop over brackets is cheap);
/// memory is at most q * 2n/s plus slack.
template <typename K>
Result<std::vector<K>> ExactQuantilesSecondPass(
    const RunProvider<K>& provider,
    const std::vector<QuantileEstimate<K>>& estimates,
    const ReadOptions& options, uint64_t memory_budget_elements = 0) {
  for (const auto& e : estimates) {
    if (e.lower_clamped || e.upper_clamped) {
      return Status::FailedPrecondition(
          "an estimate's bounds were clamped; its bracket is not certified");
    }
  }
  if (estimates.empty()) return std::vector<K>{};
  if (memory_budget_elements == 0) {
    memory_budget_elements = 4 * estimates.size() *
                             estimates.front().max_rank_error;
  }
  std::vector<uint64_t> below(estimates.size(), 0);
  std::vector<std::vector<K>> kept(estimates.size());
  uint64_t held = 0;
  std::vector<K> buffer;
  std::unique_ptr<RunSource<K>> reader = provider.OpenRuns(options);
  while (true) {
    auto more = reader->NextRun(&buffer);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const K& v : buffer) {
      for (size_t q = 0; q < estimates.size(); ++q) {
        const QuantileEstimate<K>& e = estimates[q];
        if (v < e.lower) {
          ++below[q];
        } else if (!(e.upper < v)) {
          kept[q].push_back(v);
          if (++held > memory_budget_elements) {
            return Status::ResourceExhausted(
                "brackets hold more elements than the memory budget");
          }
        }
      }
    }
  }
  std::vector<K> out;
  out.reserve(estimates.size());
  for (size_t q = 0; q < estimates.size(); ++q) {
    const QuantileEstimate<K>& e = estimates[q];
    if (e.target_rank <= below[q] ||
        e.target_rank > below[q] + kept[q].size()) {
      return Status::Internal(
          "target rank falls outside its bracket; was the estimate computed "
          "from a different file?");
    }
    Xoshiro256 rng(e.target_rank);
    out.push_back(SelectKth(kept[q].data(), kept[q].size(),
                            e.target_rank - below[q] - 1,
                            SelectAlgorithm::kIntroSelect, rng));
  }
  return out;
}

/// Back-compat wrapper: synchronous scan of one plain data file.
template <typename K>
Result<std::vector<K>> ExactQuantilesSecondPass(
    const TypedDataFile<K>* file,
    const std::vector<QuantileEstimate<K>>& estimates, uint64_t run_size,
    uint64_t memory_budget_elements = 0) {
  ReadOptions options;
  options.run_size = run_size;
  return ExactQuantilesSecondPass(FileRunProvider<K>(file), estimates,
                                  options, memory_budget_elements);
}

}  // namespace opaq

#endif  // OPAQ_CORE_EXACT_H_
