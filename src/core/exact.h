#ifndef OPAQ_CORE_EXACT_H_
#define OPAQ_CORE_EXACT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/estimator.h"
#include "io/async_run_reader.h"
#include "io/run_reader.h"
#include "select/select.h"
#include "util/random.h"
#include "util/status.h"

namespace opaq {

namespace internal_exact {

/// Running state of a (possibly multi-source) exact second pass: one
/// below-count and one kept set per bracket, plus the total held across all
/// brackets for budget accounting.
template <typename K>
struct BracketAccumulator {
  std::vector<uint64_t> below;
  std::vector<std::vector<K>> kept;
  uint64_t held = 0;

  explicit BracketAccumulator(size_t num_estimates)
      : below(num_estimates, 0), kept(num_estimates) {}
};

/// Rejects estimates whose bracket is not a certificate.
template <typename K>
Status ValidateBrackets(const std::vector<QuantileEstimate<K>>& estimates) {
  for (const auto& e : estimates) {
    if (e.lower_clamped || e.upper_clamped) {
      return Status::FailedPrecondition(
          "an estimate's bounds were clamped; its bracket is not certified");
    }
  }
  return Status::OK();
}

/// One filter scan over `provider`: counts the elements below each bracket
/// and collects the elements inside it, accumulating into `acc` so several
/// providers (shards of one logical dataset) can share one accumulator.
/// When several scans run concurrently (one accumulator each), pass the
/// same `shared_held` to every call so the memory budget bounds the TOTAL
/// held across all of them while they run, not just each shard's share.
template <typename K>
Status AccumulateBrackets(const RunProvider<K>& provider,
                          const std::vector<QuantileEstimate<K>>& estimates,
                          const ReadOptions& options,
                          uint64_t memory_budget_elements,
                          BracketAccumulator<K>* acc,
                          std::atomic<uint64_t>* shared_held = nullptr) {
  std::vector<K> buffer;
  std::unique_ptr<RunSource<K>> reader = provider.OpenRuns(options);
  while (true) {
    auto more = reader->NextRun(&buffer);
    if (!more.ok()) return more.status();
    if (!*more) break;
    for (const K& v : buffer) {
      for (size_t q = 0; q < estimates.size(); ++q) {
        const QuantileEstimate<K>& e = estimates[q];
        if (v < e.lower) {
          ++acc->below[q];
        } else if (!(e.upper < v)) {  // lower <= v <= upper
          acc->kept[q].push_back(v);
          ++acc->held;
          const uint64_t held_now =
              shared_held != nullptr
                  ? shared_held->fetch_add(1, std::memory_order_relaxed) + 1
                  : acc->held;
          if (held_now > memory_budget_elements) {
            return Status::ResourceExhausted(
                "brackets hold more elements than the memory budget; "
                "increase samples_per_run or the budget");
          }
        }
      }
    }
  }
  return Status::OK();
}

/// Finishes the pass: selects the element of rank `target_rank - below`
/// within each kept set (Lemmas 1-2 place it there for certified brackets).
template <typename K>
Result<std::vector<K>> SelectWithinBrackets(
    const std::vector<QuantileEstimate<K>>& estimates,
    BracketAccumulator<K>* acc) {
  std::vector<K> out;
  out.reserve(estimates.size());
  for (size_t q = 0; q < estimates.size(); ++q) {
    const QuantileEstimate<K>& e = estimates[q];
    if (e.target_rank <= acc->below[q] ||
        e.target_rank > acc->below[q] + acc->kept[q].size()) {
      // Would indicate a broken bracket; Lemmas 1-2 forbid this for
      // certified (unclamped) bounds on the data the estimate came from.
      return Status::Internal(
          "target rank falls outside its bracket; was the estimate computed "
          "from a different file?");
    }
    Xoshiro256 rng(e.target_rank);
    out.push_back(SelectKth(acc->kept[q].data(), acc->kept[q].size(),
                            e.target_rank - acc->below[q] - 1,
                            SelectAlgorithm::kIntroSelect, rng));
  }
  return out;
}

/// The default memory budget: 4 * q * max_rank_error — twice Lemma 3's
/// 2n/s-per-bracket bound, as a generous default.
template <typename K>
uint64_t DefaultExactBudget(const std::vector<QuantileEstimate<K>>& estimates) {
  if (estimates.empty()) return 0;
  return 4 * estimates.size() * estimates.front().max_rank_error;
}

}  // namespace internal_exact

/// The paper's §4 extension, batch form: recovers the *exact* values for
/// several quantiles with ONE extra pass over the data. The pass keeps only
/// the elements inside each [estimate.lower, estimate.upper] — at most 2n/s
/// per bracket by Lemma 3 — and counts the elements below each lower bound;
/// the exact quantile is then the element of rank (psi - count_below) within
/// the kept set, found by selection in memory.
///
/// The scan streams through `RunProvider::OpenRuns(options)`, so it works on
/// any storage backend and — with `options.io_mode == kAsync` — overlaps the
/// candidate-interval filtering with the next run's read(s), exactly like
/// the sample phase.
///
/// Fails with FailedPrecondition if any bound was clamped (the bracket is
/// then not certified) and with ResourceExhausted if the kept sets exceed
/// `memory_budget_elements` (0 = 4 * q * max_rank_error).
template <typename K>
Result<std::vector<K>> ExactQuantilesSecondPass(
    const RunProvider<K>& provider,
    const std::vector<QuantileEstimate<K>>& estimates,
    const ReadOptions& options, uint64_t memory_budget_elements = 0) {
  OPAQ_RETURN_IF_ERROR(internal_exact::ValidateBrackets(estimates));
  if (estimates.empty()) return std::vector<K>{};
  if (memory_budget_elements == 0) {
    memory_budget_elements = internal_exact::DefaultExactBudget(estimates);
  }
  internal_exact::BracketAccumulator<K> acc(estimates.size());
  OPAQ_RETURN_IF_ERROR(internal_exact::AccumulateBrackets(
      provider, estimates, options, memory_budget_elements, &acc));
  return internal_exact::SelectWithinBrackets(estimates, &acc);
}

/// Single-quantile form of the extra pass (budget default: the single
/// bracket's 4 * max_rank_error).
template <typename K>
Result<K> ExactQuantileSecondPass(const RunProvider<K>& provider,
                                  const QuantileEstimate<K>& estimate,
                                  const ReadOptions& options,
                                  uint64_t memory_budget_elements = 0) {
  auto values = ExactQuantilesSecondPass(
      provider, std::vector<QuantileEstimate<K>>{estimate}, options,
      memory_budget_elements);
  if (!values.ok()) return values.status();
  return (*values)[0];
}

/// Deprecated back-compat wrapper: synchronous scan of one plain data file.
template <typename K>
[[deprecated(
    "wrap the file in a FileRunProvider (or opaq::Source) and call the "
    "RunProvider overload")]]
Result<K> ExactQuantileSecondPass(const TypedDataFile<K>* file,
                                  const QuantileEstimate<K>& estimate,
                                  uint64_t run_size,
                                  uint64_t memory_budget_elements = 0) {
  ReadOptions options;
  options.run_size = run_size;
  return ExactQuantileSecondPass(FileRunProvider<K>(file), estimate, options,
                                 memory_budget_elements);
}

/// Deprecated back-compat wrapper: synchronous scan of one plain data file.
template <typename K>
[[deprecated(
    "wrap the file in a FileRunProvider (or opaq::Source) and call the "
    "RunProvider overload")]]
Result<std::vector<K>> ExactQuantilesSecondPass(
    const TypedDataFile<K>* file,
    const std::vector<QuantileEstimate<K>>& estimates, uint64_t run_size,
    uint64_t memory_budget_elements = 0) {
  ReadOptions options;
  options.run_size = run_size;
  return ExactQuantilesSecondPass(FileRunProvider<K>(file), estimates,
                                  options, memory_budget_elements);
}

}  // namespace opaq

#endif  // OPAQ_CORE_EXACT_H_
