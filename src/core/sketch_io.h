#ifndef OPAQ_CORE_SKETCH_IO_H_
#define OPAQ_CORE_SKETCH_IO_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/sample_list.h"
#include "io/block_device.h"
#include "io/data_file.h"
#include "util/status.h"

namespace opaq {

/// Persistence for sample lists — what makes the paper's §4 incremental
/// scenario practical across process restarts: a system saves the sorted
/// samples of the data it has already scanned, and on new data loads them,
/// samples only the new runs, merges, and saves again.
///
/// On-disk layout (little-endian, 64 bytes header + raw samples):
///   magic "OPAQSKT1" | version | key_type | subrun_size | num_runs |
///   num_samples | num_uncovered | total_elements | reserved | samples[]
struct SketchFileHeader {
  static constexpr uint64_t kMagic = 0x4f504151534b5431ULL;  // "OPAQSKT1"
  uint64_t magic = kMagic;
  uint32_t version = 1;
  uint32_t key_type = 0;
  uint64_t subrun_size = 0;
  uint64_t num_runs = 0;
  uint64_t num_samples = 0;
  uint64_t num_uncovered = 0;
  uint64_t total_elements = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(SketchFileHeader) == 64);
static_assert(std::is_trivially_copyable_v<SketchFileHeader>);

/// Writes `list` to offset 0 of `device`.
template <typename K>
Status SaveSampleList(const SampleList<K>& list, BlockDevice* device) {
  OPAQ_CHECK(device != nullptr);
  const SampleAccounting& acc = list.accounting();
  if (!acc.Valid()) {
    return Status::FailedPrecondition(
        "cannot save an empty/invalid sample list");
  }
  SketchFileHeader header;
  header.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  header.subrun_size = acc.subrun_size;
  header.num_runs = acc.num_runs;
  header.num_samples = acc.num_samples;
  header.num_uncovered = acc.num_uncovered;
  header.total_elements = acc.total_elements;
  OPAQ_RETURN_IF_ERROR(device->WriteAt(0, &header, sizeof(header)));
  if (!list.samples().empty()) {
    OPAQ_RETURN_IF_ERROR(device->WriteAt(sizeof(header),
                                         list.samples().data(),
                                         list.samples().size() * sizeof(K)));
  }
  return device->Sync();
}

/// Reads a sample list previously written by SaveSampleList.
template <typename K>
Result<SampleList<K>> LoadSampleList(BlockDevice* device) {
  OPAQ_CHECK(device != nullptr);
  auto size = device->Size();
  if (!size.ok()) return size.status();
  if (*size < sizeof(SketchFileHeader)) {
    return Status::InvalidArgument("device too small for a sketch file");
  }
  SketchFileHeader header;
  OPAQ_RETURN_IF_ERROR(device->ReadAt(0, &header, sizeof(header)));
  if (header.magic != SketchFileHeader::kMagic) {
    return Status::InvalidArgument("bad magic: not an OPAQ sketch file");
  }
  if (header.version != 1) {
    return Status::InvalidArgument("unsupported sketch file version");
  }
  if (header.key_type != static_cast<uint32_t>(KeyTraits<K>::kType)) {
    return Status::InvalidArgument(
        std::string("sketch holds a different key type than ") +
        KeyTraits<K>::kName);
  }
  if (*size < sizeof(header) + header.num_samples * sizeof(K)) {
    return Status::InvalidArgument("sketch file truncated");
  }
  SampleAccounting acc;
  acc.subrun_size = header.subrun_size;
  acc.num_runs = header.num_runs;
  acc.num_samples = header.num_samples;
  acc.num_uncovered = header.num_uncovered;
  acc.total_elements = header.total_elements;
  if (!acc.Valid()) {
    return Status::InvalidArgument("sketch header fails its invariant");
  }
  std::vector<K> samples(header.num_samples);
  if (!samples.empty()) {
    OPAQ_RETURN_IF_ERROR(device->ReadAt(sizeof(header), samples.data(),
                                        samples.size() * sizeof(K)));
    for (size_t i = 1; i < samples.size(); ++i) {
      if (samples[i] < samples[i - 1]) {
        return Status::InvalidArgument("sketch samples are not sorted");
      }
    }
  }
  return SampleList<K>(std::move(samples), acc);
}

}  // namespace opaq

#endif  // OPAQ_CORE_SKETCH_IO_H_
