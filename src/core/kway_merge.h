#ifndef OPAQ_CORE_KWAY_MERGE_H_
#define OPAQ_CORE_KWAY_MERGE_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace opaq {

/// Merges `lists` (each individually sorted ascending) into one sorted
/// vector using a tournament (loser-tree-style binary heap) over the list
/// heads: O(N log r) comparisons for N total elements over r lists — the
/// paper's "merging r sample lists" step with its O(rs log r) cost (§2.3).
template <typename K>
std::vector<K> KWayMergeSorted(const std::vector<std::vector<K>>& lists) {
  struct Cursor {
    const K* next;
    const K* end;
  };
  std::vector<Cursor> heap;
  heap.reserve(lists.size());
  size_t total = 0;
  for (const auto& list : lists) {
    total += list.size();
    if (!list.empty()) {
      heap.push_back(Cursor{list.data(), list.data() + list.size()});
    }
  }
  std::vector<K> out;
  out.reserve(total);

  // Min-heap on *cursor->next; hand-rolled sift operations keep this free of
  // std::priority_queue's copy overhead for struct elements.
  auto less = [](const Cursor& a, const Cursor& b) {
    return *a.next < *b.next;
  };
  auto sift_down = [&](size_t i) {
    const size_t n = heap.size();
    while (true) {
      size_t smallest = i;
      size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && less(heap[l], heap[smallest])) smallest = l;
      if (r < n && less(heap[r], heap[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap[i], heap[smallest]);
      i = smallest;
    }
  };
  for (size_t i = heap.size(); i-- > 0;) sift_down(i);

  while (!heap.empty()) {
    Cursor& top = heap.front();
    out.push_back(*top.next);
    ++top.next;
    if (top.next == top.end) {
      heap.front() = heap.back();
      heap.pop_back();
      if (heap.empty()) break;
    }
    sift_down(0);
  }
  OPAQ_CHECK_EQ(out.size(), total);
  return out;
}

/// Two-way merge of sorted vectors (used by incremental sample-list merge).
template <typename K>
std::vector<K> MergeSorted(const std::vector<K>& a, const std::vector<K>& b) {
  std::vector<K> out;
  out.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i++]);
    }
  }
  out.insert(out.end(), a.begin() + i, a.end());
  out.insert(out.end(), b.begin() + j, b.end());
  return out;
}

}  // namespace opaq

#endif  // OPAQ_CORE_KWAY_MERGE_H_
