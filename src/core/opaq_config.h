#ifndef OPAQ_CORE_OPAQ_CONFIG_H_
#define OPAQ_CORE_OPAQ_CONFIG_H_

#include <cstdint>
#include <string>

#include "io/codec.h"
#include "io/io_mode.h"
#include "select/select.h"
#include "util/status.h"

namespace opaq {

/// Knobs of the OPAQ sample phase (paper Table 1).
///
/// The memory constraint of §2.3 is `r*s + m <= M` (sample lists of all runs
/// plus one run buffer must fit); `Validate(n)` checks it when a memory
/// budget is supplied.
struct OpaqConfig {
  /// Run size m: how many elements are resident at once. The paper uses the
  /// full memory for a run; smaller m means more runs and looser bounds.
  uint64_t run_size = 1 << 20;

  /// Samples kept per full run, s. Error bound is ~n/s elements of rank, so
  /// accuracy is directly proportional to s (paper §2.4). Must divide
  /// run_size.
  uint64_t samples_per_run = 1024;

  /// Which selection algorithm finds the regular samples (§2.1 offers
  /// [ea72] deterministic or [FR75] randomized; kIntroSelect is our default).
  SelectAlgorithm select_algorithm = SelectAlgorithm::kIntroSelect;

  /// Seed for the (only) randomness: pivot choice in kIntroSelect.
  uint64_t seed = 1;

  /// How `ConsumeFile` drives the disk: strict read/sample alternation
  /// (kSync) or a background prefetch thread that overlaps the next run's
  /// read with the current run's sampling (kAsync). The estimator state is
  /// bit-identical either way; async only changes wall time.
  IoMode io_mode = IoMode::kSync;

  /// Prefetch buffers when io_mode == kAsync (ignored for kSync). Raises
  /// the §2.3 memory footprint from one run buffer to `prefetch_depth + 1`
  /// of them; Validate() requires it in [1, kMaxPrefetchDepth]. For the
  /// striped backend this counts chunks in flight per stripe instead.
  uint64_t prefetch_depth = 2;

  /// Stripe count the workload expects of its striped storage backend
  /// (1 = plain single-device files). Only the CLI/bench layers consume it
  /// — a `StripedDataFile`'s own stripe count is a property of the file —
  /// but it lives here so one config names the full storage setup;
  /// Validate() requires it in [1, kMaxStripes].
  uint64_t stripes = 1;

  /// Codec for compressed-extent output (io/extent.h). Like `stripes`, only
  /// the writer paths (CLI generate, benches) consume it — extent files are
  /// self-describing, so reading never needs it. Validate() requires the
  /// codec to be available in this build.
  ExtentCodec codec = ExtentCodec::kRaw;

  /// Logical elements per extent for compressed-extent output (the CLI's
  /// `--extent-size`). The extent is the unit of compression, prefetch and
  /// wire streaming. Validate() bounds it against `kMaxExtentBytes`.
  uint64_t extent_elements = 64u << 10;

  /// Verify per-extent payload CRCs when reading compressed extents;
  /// uncompressed backends ignore it (see ReadOptions::verify_checksums).
  bool verify_checksums = true;

  /// Sub-run size c = m/s.
  uint64_t subrun_size() const { return run_size / samples_per_run; }

  /// The backend-independent I/O knobs as the io/ layer's `ReadOptions` —
  /// what `RunProvider::OpenRuns` consumes.
  ReadOptions read_options() const {
    ReadOptions options;
    options.run_size = run_size;
    options.io_mode = io_mode;
    options.prefetch_depth = prefetch_depth;
    options.verify_checksums = verify_checksums;
    return options;
  }

  /// Checks structural validity, and the §2.3 memory inequality
  /// r*s + m <= memory_budget when budget and n are both given (0 = skip).
  Status Validate(uint64_t n = 0, uint64_t memory_budget_elements = 0) const;

  std::string ToString() const;
};

}  // namespace opaq

#endif  // OPAQ_CORE_OPAQ_CONFIG_H_
