#ifndef OPAQ_CORE_OPAQ_H_
#define OPAQ_CORE_OPAQ_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/opaq_config.h"
#include "core/sample_list.h"
#include "io/async_run_reader.h"
#include "io/run_reader.h"
#include "io/striped_run_source.h"
#include "select/multi_select.h"
#include "telemetry/trace.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace opaq {

/// Builds the `RunSource` a config asks for over `[first, first + count)` of
/// any storage backend — the single construction point for every
/// config-driven consumer (sequential `Consume` and the parallel sample
/// phase alike). The provider picks the reader matching `config.io_mode` for
/// its own device layout (plain files: sync loop or prefetch thread; striped
/// files: inline chunk reads or one thread per stripe; in-memory vectors:
/// slicing).
template <typename K>
std::unique_ptr<RunSource<K>> MakeRunSource(const RunProvider<K>& provider,
                                            const OpaqConfig& config,
                                            uint64_t first = 0,
                                            uint64_t count = UINT64_MAX) {
  return provider.OpenRuns(config.read_options(), first, count);
}

/// Deprecated back-compat wrapper: plain single-device file.
template <typename K>
[[deprecated(
    "wrap the file in a FileRunProvider (or opaq::Source) and call the "
    "RunProvider overload")]]
std::unique_ptr<RunSource<K>> MakeRunSource(const TypedDataFile<K>* file,
                                            const OpaqConfig& config,
                                            uint64_t first = 0,
                                            uint64_t count = UINT64_MAX) {
  return FileRunProvider<K>(file).OpenRuns(config.read_options(), first,
                                           count);
}

/// Deprecated back-compat wrapper: striped multi-disk file.
template <typename K>
[[deprecated(
    "wrap the file in a StripedFileProvider (or opaq::Source) and call the "
    "RunProvider overload")]]
std::unique_ptr<RunSource<K>> MakeRunSource(const StripedDataFile<K>* file,
                                            const OpaqConfig& config,
                                            uint64_t first = 0,
                                            uint64_t count = UINT64_MAX) {
  return StripedFileProvider<K>(file).OpenRuns(config.read_options(), first,
                                               count);
}

/// The front door of the library: OPAQ's one-pass sample phase as a
/// mergeable sketch.
///
/// Feed runs (from any storage backend via `Consume`, or directly via
/// `AddRun` for streamed/incremental data), then `Finalize()` into an
/// `OpaqEstimator` that answers quantile and rank queries with certified
/// bounds. (The `include/opaq/` facade wraps this dance: `opaq::Engine`
/// drives Consume/Finalize end to end from an `opaq::Source`.)
///
///     OpaqConfig config;                     // m = 2^20, s = 1024, ...
///     OpaqSketch<uint64_t> sketch(config);
///     OPAQ_CHECK_OK(sketch.Consume(FileRunProvider<uint64_t>(&file)));
///     auto est = sketch.Finalize();
///     auto median = est.Quantile(0.5);       // [median.lower, median.upper]
///
/// Memory: one run buffer (m elements) plus the accumulated sample lists
/// (r*s elements) — the paper's §2.3 constraint r*s + m <= M.
template <typename K>
class OpaqSketch {
 public:
  explicit OpaqSketch(const OpaqConfig& config)
      : config_(config),
        rng_(config.seed),
        builder_(config.subrun_size()) {
    OPAQ_CHECK_OK(config.Validate());
  }

  const OpaqConfig& config() const { return config_; }
  uint64_t runs_consumed() const { return builder_.num_runs(); }
  uint64_t elements_consumed() const { return builder_.total_elements(); }

  /// Samples one run. The buffer is consumed (rearranged by selection);
  /// pass by value and move in to make the cost explicit at call sites.
  void AddRun(std::vector<K> run) {
    OPAQ_CHECK_LE(run.size(), config_.run_size)
        << "a run longer than config.run_size would break the error bounds";
    if (run.empty()) return;
    TraceSpan sample_span(TraceStage::kSample);
    std::vector<K> samples = RegularSamplesBySubrunSize(
        run.data(), run.size(), config_.subrun_size(),
        config_.select_algorithm, rng_);
    builder_.AddRunSamples(std::move(samples), run.size());
  }

  /// Streams every run of any storage backend through the sketch: the whole
  /// one-pass sample phase of Figure 1. Honors `config.io_mode`: kSync
  /// alternates reads and sampling; kAsync prefetches runs on background
  /// thread(s) — one for a plain file, one per stripe for a striped file —
  /// so the disk(s) stay busy while the CPU selects samples. All backends
  /// and modes produce bit-identical estimator state over the same logical
  /// data.
  ///
  /// `io_seconds`, when non-null, accumulates the wall time this thread
  /// spent waiting on reads (for the Table 11/12 breakdowns). Under kSync
  /// that is the full device time; under kAsync it is only the stall time
  /// not hidden behind sampling — which is what makes the overlap visible.
  Status Consume(const RunProvider<K>& provider,
                 double* io_seconds = nullptr) {
    std::unique_ptr<RunSource<K>> source =
        provider.OpenRuns(config_.read_options());
    return ConsumeRuns(source.get(), io_seconds);
  }

  /// Deprecated back-compat wrapper: plain single-device file.
  [[deprecated(
      "wrap the file in a FileRunProvider (or opaq::Source) and call "
      "Consume")]]
  Status ConsumeFile(const TypedDataFile<K>* file,
                     double* io_seconds = nullptr) {
    return Consume(FileRunProvider<K>(file), io_seconds);
  }

  /// Deprecated back-compat wrapper: striped multi-disk file.
  [[deprecated(
      "wrap the file in a StripedFileProvider (or opaq::Source) and call "
      "Consume")]]
  Status ConsumeFile(const StripedDataFile<K>* file,
                     double* io_seconds = nullptr) {
    return Consume(StripedFileProvider<K>(file), io_seconds);
  }

  /// Same, over an explicit run source (sub-range of a file in the parallel
  /// algorithm, or a caller-built sync/async reader).
  Status ConsumeRuns(RunSource<K>* reader, double* io_seconds = nullptr) {
    std::vector<K> buffer;
    buffer.reserve(config_.run_size);
    while (true) {
      WallTimer io_timer;
      Result<bool> more = [&] {
        TraceSpan read_span(TraceStage::kRunRead);
        return reader->NextRun(&buffer);
      }();
      if (!more.ok()) return more.status();
      if (!*more) break;
      if (io_seconds != nullptr) *io_seconds += io_timer.ElapsedSeconds();
      AddRun(std::move(buffer));
      buffer = std::vector<K>();
      buffer.reserve(config_.run_size);
    }
    return Status::OK();
  }

  /// Merges the per-run sample lists (O(rs log r)) and returns the final
  /// sorted sample list. The sketch resets and can be reused.
  SampleList<K> FinalizeSampleList() { return builder_.Finalize(); }

  /// Convenience: finalize straight into the quantile phase.
  OpaqEstimator<K> Finalize() {
    return OpaqEstimator<K>(FinalizeSampleList());
  }

 private:
  OpaqConfig config_;
  Xoshiro256 rng_;
  SampleListBuilder<K> builder_;
};

/// One-shot helper: estimate the q-1 equi-spaced quantiles of a disk file.
template <typename K>
Result<std::vector<QuantileEstimate<K>>> EstimateQuantilesFromFile(
    const TypedDataFile<K>* file, const OpaqConfig& config, int q) {
  OPAQ_RETURN_IF_ERROR(config.Validate());
  OpaqSketch<K> sketch(config);
  OPAQ_RETURN_IF_ERROR(sketch.Consume(FileRunProvider<K>(file)));
  return sketch.Finalize().EquiQuantiles(q);
}

/// One-shot helper over an in-memory dataset (slices it into runs).
template <typename K>
OpaqEstimator<K> EstimateQuantilesInMemory(const std::vector<K>& data,
                                           const OpaqConfig& config) {
  OPAQ_CHECK_OK(config.Validate());
  OpaqSketch<K> sketch(config);
  for (uint64_t first = 0; first < data.size();
       first += config.run_size) {
    uint64_t len = std::min<uint64_t>(config.run_size, data.size() - first);
    sketch.AddRun(std::vector<K>(data.begin() + first,
                                 data.begin() + first + len));
  }
  return sketch.Finalize();
}

}  // namespace opaq

#endif  // OPAQ_CORE_OPAQ_H_
