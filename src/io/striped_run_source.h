#ifndef OPAQ_IO_STRIPED_RUN_SOURCE_H_
#define OPAQ_IO_STRIPED_RUN_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "io/run_reader.h"
#include "io/striped_data_file.h"
#include "parallel/channel.h"
#include "util/status.h"

namespace opaq {

/// Knobs of the striped reader.
struct StripedReaderOptions {
  /// Chunks each stripe thread may read ahead of the consumer. Peak prefetch
  /// memory is `num_stripes * prefetch_chunks * chunk_elements` elements on
  /// top of the run being assembled.
  uint64_t prefetch_chunks = 2;

  /// When true (the default, and what `IoMode::kAsync` maps to) one reader
  /// thread per stripe keeps all D devices busy concurrently. When false the
  /// consumer issues every chunk read inline — no threads, no overlap — which
  /// is the striped analogue of `IoMode::kSync` and exists so conformance
  /// tests can pin down that threading reorders time, never data.
  bool threaded = true;
};

/// Streams the runs of a `StripedDataFile` in exact logical order.
///
/// Threaded mode fans one reader thread out per stripe; thread `s` reads the
/// logical chunks `c ≡ s (mod D)` of the requested range in ascending order
/// and feeds them through its own bounded channel. The consumer pops chunks
/// in global logical order (chunk c comes from channel c mod D — delivery
/// order per channel is FIFO, so this is deterministic) and splices them
/// into runs of `run_size` elements. Because assembly is by logical index,
/// the run sequence — and therefore every downstream sketch — is
/// byte-identical to the plain sync reader over the same logical data,
/// regardless of stripe count, chunk size or timing.
///
/// Error semantics match `AsyncRunReader`: runs wholly before the first
/// failing chunk are delivered, then the failure surfaces as the `Status`
/// from `NextRun` (and from every later call). The destructor closes all
/// channels and joins all reader threads, so abandoning the source
/// mid-stream (or after an error) can neither hang nor leak threads.
template <typename K>
class StripedRunSource : public RunSource<K> {
 public:
  /// `file` is borrowed and must outlive the source. Same `first`/`count`
  /// sub-range contract as `RunReader`.
  StripedRunSource(const StripedDataFile<K>* file, uint64_t run_size,
                   StripedReaderOptions options = StripedReaderOptions(),
                   uint64_t first = 0, uint64_t count = UINT64_MAX)
      : file_(file), run_size_(run_size), threaded_(options.threaded),
        begin_(first), next_(first), end_(first) {
    OPAQ_CHECK(file != nullptr);
    OPAQ_CHECK_GT(run_size, 0u);
    OPAQ_CHECK_LE(first, file->size());
    end_ = first + std::min(count, file->size() - first);
    next_chunk_ = next_ / file_->chunk_elements();
    if (!threaded_ || next_ >= end_) return;
    // Inline mode never allocates prefetch rings, so the depth is only
    // constrained when threads are actually spawned.
    OPAQ_CHECK_GE(options.prefetch_chunks, 1u);
    OPAQ_CHECK_LE(options.prefetch_chunks, kMaxPrefetchDepth);
    const uint64_t end_chunk = DivCeil(end_, file_->chunk_elements());
    const uint32_t stripes = file_->num_stripes();
    channels_.reserve(stripes);
    for (uint32_t s = 0; s < stripes; ++s) {
      channels_.push_back(std::make_unique<Channel<ChunkMessage>>(
          static_cast<size_t>(options.prefetch_chunks)));
    }
    for (uint32_t s = 0; s < stripes; ++s) {
      // First chunk >= next_chunk_ owned by stripe s.
      uint64_t c = next_chunk_ + (s + stripes - next_chunk_ % stripes) % stripes;
      if (c >= end_chunk) continue;  // stripe owns nothing in the range
      threads_.emplace_back([this, s, c, end_chunk, stripes] {
        ReadLoop(s, c, end_chunk, stripes);
      });
    }
  }

  ~StripedRunSource() override {
    for (auto& channel : channels_) channel->Close();
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
  }

  StripedRunSource(const StripedRunSource&) = delete;
  StripedRunSource& operator=(const StripedRunSource&) = delete;

  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (!status_.ok()) return status_;
    if (next_ >= end_) return false;
    const uint64_t len = std::min(run_size_, end_ - next_);
    if (!threaded_) {
      buffer->resize(len);
      Status read_status = file_->Read(next_, len, buffer->data());
      if (!read_status.ok()) {
        // Latch the failure so every later call reports it too — the same
        // sticky error contract as the threaded path.
        buffer->clear();
        status_ = read_status;
        return status_;
      }
      next_ += len;
      return true;
    }
    while (pending_total_ < len) {
      ChunkMessage message;
      Channel<ChunkMessage>& channel =
          *channels_[next_chunk_ % file_->num_stripes()];
      if (!channel.Receive(&message)) {
        // A reader thread closes its channel only after delivering every
        // chunk it owns (or its error message), so running dry here means
        // the source itself is broken.
        status_ = Status::Internal("stripe reader stopped short of chunk " +
                                   std::to_string(next_chunk_));
        return status_;
      }
      if (!message.status.ok()) {
        status_ = message.status;
        return status_;
      }
      pending_total_ += message.data.size();
      pending_.push_back(std::move(message.data));
      ++next_chunk_;
    }
    // Splice the run off the front of the pending chunk queue.
    buffer->resize(len);
    uint64_t filled = 0;
    while (filled < len) {
      std::vector<K>& front = pending_.front();
      const uint64_t take = std::min<uint64_t>(len - filled,
                                               front.size() - pending_head_);
      std::copy_n(front.begin() + static_cast<size_t>(pending_head_),
                  static_cast<size_t>(take),
                  buffer->begin() + static_cast<size_t>(filled));
      filled += take;
      pending_head_ += take;
      if (pending_head_ == front.size()) {
        pending_.pop_front();
        pending_head_ = 0;
      }
    }
    pending_total_ -= len;
    next_ += len;
    return true;
  }

 private:
  struct ChunkMessage {
    Status status;
    std::vector<K> data;
  };

  /// Body of stripe `s`'s reader thread: reads the logical chunks
  /// `first_chunk, first_chunk + stride, ...` below `end_chunk`, trimmed to
  /// the requested element range, in ascending order.
  void ReadLoop(uint32_t s, uint64_t first_chunk, uint64_t end_chunk,
                uint32_t stride) {
    const uint64_t chunk_elements = file_->chunk_elements();
    for (uint64_t c = first_chunk; c < end_chunk; c += stride) {
      const uint64_t chunk_start = c * chunk_elements;
      // Trim against the immutable range bounds (begin_/end_), never the
      // consumer's moving cursor — reader threads share this object.
      const uint64_t start = std::max(chunk_start, begin_);
      const uint64_t stop = std::min(chunk_start + file_->ChunkLength(c), end_);
      ChunkMessage message;
      message.data.resize(stop - start);
      message.status = file_->Read(start, stop - start, message.data.data());
      if (!message.status.ok()) {
        message.data.clear();
        channels_[s]->Send(std::move(message));
        break;
      }
      if (!channels_[s]->Send(std::move(message))) return;  // consumer gone
    }
    channels_[s]->Close();
  }

  const StripedDataFile<K>* file_;
  uint64_t run_size_;
  bool threaded_;
  uint64_t begin_;      // first element of the range (immutable)
  uint64_t next_;       // next logical element to deliver (consumer only)
  uint64_t end_;        // one past the last element of the range (immutable)
  uint64_t next_chunk_; // next logical chunk to pop (threaded mode)
  Status status_;       // sticky failure state

  std::deque<std::vector<K>> pending_;  // chunks popped but not yet spliced
  uint64_t pending_head_ = 0;           // consumed prefix of pending_.front()
  uint64_t pending_total_ = 0;          // elements across pending_ minus head

  std::vector<std::unique_ptr<Channel<ChunkMessage>>> channels_;
  std::vector<std::thread> threads_;
};

/// The striped storage backend as a `RunProvider`: `IoMode::kAsync` maps to
/// one reader thread per stripe (`prefetch_depth` chunks in flight each),
/// `IoMode::kSync` to inline chunk reads.
template <typename K>
class StripedFileProvider : public RunProvider<K> {
 public:
  explicit StripedFileProvider(const StripedDataFile<K>* file) : file_(file) {
    OPAQ_CHECK(file != nullptr);
  }

  uint64_t size() const override { return file_->size(); }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    StripedReaderOptions striped_options;
    striped_options.prefetch_chunks = options.prefetch_depth;
    striped_options.threaded = options.io_mode == IoMode::kAsync;
    return std::make_unique<StripedRunSource<K>>(file_, options.run_size,
                                                 striped_options, first,
                                                 count);
  }

  const StripedDataFile<K>* file() const { return file_; }

 private:
  const StripedDataFile<K>* file_;
};

}  // namespace opaq

#endif  // OPAQ_IO_STRIPED_RUN_SOURCE_H_
