#ifndef OPAQ_IO_RUN_READER_H_
#define OPAQ_IO_RUN_READER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "io/data_file.h"
#include "io/extent_stats.h"
#include "io/io_mode.h"
#include "util/math.h"
#include "util/status.h"

namespace opaq {

/// Anything that yields the runs of a dataset in order. Both the synchronous
/// `RunReader` and the prefetching `AsyncRunReader` implement this, so every
/// run consumer (`OpaqSketch::ConsumeRuns`, the parallel sample phase) works
/// against either I/O mode unchanged.
template <typename K>
class RunSource {
 public:
  virtual ~RunSource() = default;

  /// Reads the next run into `buffer` (resized to the run's length).
  /// Returns false when the data set is exhausted (buffer left empty).
  virtual Result<bool> NextRun(std::vector<K>* buffer) = 0;
};

/// A dataset that can hand out `RunSource`s: the storage-backend abstraction
/// every run consumer is written against. Implementations: `FileRunProvider`
/// (one plain data file, sync or prefetching readers) and
/// `StripedFileProvider` (a dataset striped across several devices, one
/// reader thread per stripe). Consumers that accept a provider — the sketch,
/// the exact second pass, the parallel harness — work on any backend
/// unchanged, and every backend delivers the exact logical run order, so
/// results are byte-identical across backends.
template <typename K>
class RunProvider {
 public:
  virtual ~RunProvider() = default;

  /// Logical element count of the dataset.
  virtual uint64_t size() const = 0;

  /// Opens a run stream over `[first, first + count)` (clamped to EOF, the
  /// same sub-range contract as `RunReader`).
  virtual std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const = 0;

  /// Pack/unpack accounting when this backend decodes compressed extents
  /// (`ExtentFileProvider`, the remote extent stream); nullptr for
  /// uncompressed backends. Counters accumulate across every source this
  /// provider has opened — `Engine::Build` snapshots before and after to
  /// report per-build deltas.
  virtual const ExtentStats* pack_stats() const { return nullptr; }
};

/// Sequentially yields the runs of a disk-resident dataset.
///
/// OPAQ reads the data set exactly once as `r = ceil(n/m)` runs of `m`
/// elements (the last run may be shorter when `m` does not divide `n`). The
/// reader reuses one caller-visible buffer of `m` elements, so peak memory is
/// one run regardless of `n` — this is what makes the algorithm one-pass and
/// memory-bounded.
template <typename K>
class RunReader : public RunSource<K> {
 public:
  /// `file` is borrowed and must outlive the reader. `run_size` is `m`.
  /// Optional `first`/`count` restrict reading to a sub-range of the file
  /// (used by the parallel harness to give each processor its partition).
  RunReader(const TypedDataFile<K>* file, uint64_t run_size, uint64_t first = 0,
            uint64_t count = UINT64_MAX)
      : file_(file), run_size_(run_size), next_(first), end_(first) {
    OPAQ_CHECK(file != nullptr);
    OPAQ_CHECK_GT(run_size, 0u);
    OPAQ_CHECK_LE(first, file->size());
    // Clamp the partition end against EOF without evaluating `first + count`,
    // which wraps around for large counts and would put `end_` before
    // `next_` (underflowing remaining() and misreporting the partition).
    end_ = first + std::min(count, file->size() - first);
  }

  /// Total number of runs this reader will produce.
  uint64_t num_runs() const {
    return next_ >= end_ ? 0 : DivCeil(end_ - next_, run_size_);
  }

  /// Number of elements remaining.
  uint64_t remaining() const { return end_ - next_; }

  /// Reads the next run into `buffer` (resized to the run's length).
  /// Returns false when the data set is exhausted (buffer left empty).
  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (next_ >= end_) return false;
    uint64_t len = std::min(run_size_, end_ - next_);
    buffer->resize(len);
    OPAQ_RETURN_IF_ERROR(file_->Read(next_, len, buffer->data()));
    next_ += len;
    return true;
  }

 private:
  const TypedDataFile<K>* file_;
  uint64_t run_size_;
  uint64_t next_;
  uint64_t end_;
};

/// Yields the runs of an in-memory vector — same sub-range contract and run
/// shapes as `RunReader` over a file holding the same logical data, so every
/// downstream sketch is byte-identical across the two.
template <typename K>
class VectorRunSource : public RunSource<K> {
 public:
  /// `data` is borrowed and must outlive the source.
  VectorRunSource(const std::vector<K>* data, uint64_t run_size,
                  uint64_t first = 0, uint64_t count = UINT64_MAX)
      : data_(data), run_size_(run_size), next_(first), end_(first) {
    OPAQ_CHECK(data != nullptr);
    OPAQ_CHECK_GT(run_size, 0u);
    OPAQ_CHECK_LE(first, data->size());
    end_ = first + std::min<uint64_t>(count, data->size() - first);
  }

  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (next_ >= end_) return false;
    uint64_t len = std::min(run_size_, end_ - next_);
    buffer->assign(data_->begin() + static_cast<size_t>(next_),
                   data_->begin() + static_cast<size_t>(next_ + len));
    next_ += len;
    return true;
  }

 private:
  const std::vector<K>* data_;
  uint64_t run_size_;
  uint64_t next_;
  uint64_t end_;
};

/// The in-memory storage backend: a `RunProvider` over a vector it owns.
/// There is no device to overlap, so `ReadOptions::io_mode` is accepted and
/// ignored — results are identical either way, which is exactly the
/// conformance contract.
template <typename K>
class MemoryRunProvider : public RunProvider<K> {
 public:
  explicit MemoryRunProvider(std::vector<K> data) : data_(std::move(data)) {}

  uint64_t size() const override { return data_.size(); }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    return std::make_unique<VectorRunSource<K>>(&data_, options.run_size,
                                                first, count);
  }

  const std::vector<K>& data() const { return data_; }

 private:
  std::vector<K> data_;
};

}  // namespace opaq

#endif  // OPAQ_IO_RUN_READER_H_
