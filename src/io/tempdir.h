#ifndef OPAQ_IO_TEMPDIR_H_
#define OPAQ_IO_TEMPDIR_H_

#include <string>

#include "util/status.h"

namespace opaq {

/// Scoped temporary directory: created under $TMPDIR (default /tmp) on
/// construction via Make(), removed recursively on destruction. Used by
/// tests, benches and examples that need real files for FileBlockDevice.
class TempDir {
 public:
  static Result<TempDir> Make(const std::string& prefix = "opaq");

  TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  const std::string& path() const { return path_; }

  /// Path of a file inside the directory.
  std::string FilePath(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}
  std::string path_;
};

}  // namespace opaq

#endif  // OPAQ_IO_TEMPDIR_H_
