#include "io/throttled_device.h"

#include <chrono>
#include <thread>

#include "util/timer.h"

namespace opaq {

void ThrottledDevice::Charge(size_t bytes, double already_spent_seconds) {
  double cost = model_.SecondsFor(bytes);
  modeled_micros_.fetch_add(static_cast<uint64_t>(cost * 1e6),
                            std::memory_order_relaxed);
  if (mode_ == Mode::kSleep && cost > already_spent_seconds) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cost - already_spent_seconds));
  }
}

Status ThrottledDevice::ReadAt(uint64_t offset, void* buffer, size_t length) {
  WallTimer timer;
  Status s = inner_->ReadAt(offset, buffer, length);
  if (!s.ok()) return s;
  RecordRead(length);
  Charge(length, timer.ElapsedSeconds());
  return Status::OK();
}

Status ThrottledDevice::WriteAt(uint64_t offset, const void* buffer,
                                size_t length) {
  WallTimer timer;
  Status s = inner_->WriteAt(offset, buffer, length);
  if (!s.ok()) return s;
  RecordWrite(length);
  Charge(length, timer.ElapsedSeconds());
  return Status::OK();
}

}  // namespace opaq
