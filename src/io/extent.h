#ifndef OPAQ_IO_EXTENT_H_
#define OPAQ_IO_EXTENT_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/block_device.h"
#include "io/codec.h"
#include "io/data_file.h"
#include "io/extent_stats.h"
#include "io/io_mode.h"
#include "io/run_reader.h"
#include "parallel/channel.h"
#include "util/math.h"
#include "util/status.h"

namespace opaq {

/// The compressed extent format: a dataset stored as fixed-size,
/// independently compressed, self-describing extents (the DataSeries idea),
/// optionally striped round-robin across D devices exactly like
/// `StripedDataFile` stripes chunks — logical extent e lives on stripe
/// e % D. Each stripe file is laid out as
///
///   ExtentFileHeader (64 bytes, offset 0)
///   extent: ExtentHeader (40 bytes) + packed payload   } repeated, in
///   extent: ExtentHeader + packed payload              } ascending local
///   ...                                                } order
///   directory: u64 byte offset of each local extent's header,
///              then CRC-32 of those offset bytes (4 bytes)
///
/// Every layer is independently verifiable: the file header pins the
/// geometry (validated across stripes on open), the directory pins where
/// every extent starts (CRC'd, bounds-checked on open — which also bounds
/// every later read, so a corrupt directory cannot become an allocation
/// bomb), and each extent header pins its own codec, lengths, logical index
/// and payload CRC (validated on every read). Because extents compress
/// independently, decode parallelizes per extent and rides the existing
/// prefetch threads — the sampling thread only ever touches decoded runs.

/// Fixed 64-byte header at offset 0 of EVERY stripe of an extent file.
struct ExtentFileHeader {
  static constexpr uint64_t kMagic = 0x4f50415145585431ULL;  // "OPAQEXT1"
  uint64_t magic = kMagic;
  uint32_t version = 1;
  uint32_t key_type = 0;
  uint32_t element_size = 0;
  uint32_t num_stripes = 0;
  uint32_t stripe_index = 0;
  uint32_t default_codec = 0;    // ExtentCodec the writer was configured with
  uint64_t extent_elements = 0;  // logical elements per full extent
  uint64_t total_elements = 0;   // whole dataset, across all stripes
  uint64_t num_extents = 0;      // global: ceil(total / extent_elements)
  uint64_t directory_offset = 0; // byte offset of THIS stripe's directory
};
static_assert(sizeof(ExtentFileHeader) == 64);
static_assert(std::is_trivially_copyable_v<ExtentFileHeader>);

/// Fixed 40-byte header in front of every stored extent payload. Fully
/// self-describing: a reader can validate codec, lengths, position and
/// payload integrity without consulting anything but trusted geometry.
struct ExtentHeader {
  static constexpr uint32_t kMagic = 0x54584f45u;  // "EOXT"
  uint32_t magic = kMagic;
  uint16_t version = 1;
  uint16_t codec = 0;        // ExtentCodec tag of THIS extent
  uint32_t payload_crc = 0;  // CRC-32 of the packed payload bytes
  uint32_t reserved = 0;
  uint64_t extent_index = 0; // global logical index (catches misdirected reads)
  uint64_t unpacked_len = 0; // payload bytes after decode
  uint64_t packed_len = 0;   // payload bytes stored on disk
};
static_assert(sizeof(ExtentHeader) == 40);
static_assert(std::is_trivially_copyable_v<ExtentHeader>);

/// Validates one stored extent (`len` bytes at `data`: ExtentHeader + packed
/// payload) and decodes its payload into `out` (exactly `expected_unpacked`
/// bytes). `expected_index` and `expected_unpacked` come from TRUSTED
/// geometry — the caller's directory or negotiated stream position — never
/// from the stored header, which is what turns a lying length field into a
/// clean error instead of an allocation bomb: nothing here allocates from
/// header-claimed sizes. `verify_crc` = false skips only the payload CRC
/// (ReadOptions::verify_checksums); structural validation always runs.
/// Records one unpack into `stats` on success (may be null). Shared by the
/// local extent readers and the remote client's extent stream decode.
Status DecodeStoredExtent(const uint8_t* data, size_t len,
                          uint64_t expected_index, uint64_t expected_unpacked,
                          uint32_t element_size, bool verify_crc, void* out,
                          ExtentStats* stats);

/// Writer knobs (the CLI's `--compress` / `--extent-size`).
struct ExtentWriterOptions {
  /// Logical elements per extent. The extent is the unit of compression,
  /// prefetch and wire streaming; 64Ki elements = 512 KiB of u64 unpacked.
  uint64_t extent_elements = 64u << 10;
  /// Codec to pack extents with. Per extent, the writer falls back to raw
  /// whenever the codec fails to shrink that extent, so stored payloads are
  /// never larger than unpacked ones (readers enforce this bound).
  ExtentCodec codec = ExtentCodec::kRaw;
};

/// Streams a dataset into an extent file (or the stripes of one — one
/// writer covers both, exactly like `StripedDataFile` vs `DataFile`).
/// Untyped so tools can write any key type without template dispatch; the
/// typed `WriteExtents<K>` below is what tests and benches use.
///
/// Lifecycle: Create (writes provisional headers), Append elements in any
/// batch sizes, Finish (flushes the ragged tail extent, writes the per-
/// stripe directories, then the final headers). An unfinished file fails
/// `ExtentFile::Open` — directory_offset stays 0 until Finish commits it.
class ExtentWriter {
 public:
  static Result<ExtentWriter> Create(std::vector<BlockDevice*> devices,
                                     KeyType key_type, uint32_t element_size,
                                     const ExtentWriterOptions& options);

  ExtentWriter(ExtentWriter&&) = default;
  ExtentWriter& operator=(ExtentWriter&&) = default;

  /// Appends `count` elements (buffered; full extents flush as they fill).
  Status Append(const void* data, uint64_t count);

  /// Flushes the tail extent and commits directories + final headers.
  Status Finish();

  /// Pack accounting so far (unpacked vs stored bytes, per-codec extents).
  ExtentStatsSnapshot stats() const { return stats_->Snapshot(); }

  uint64_t total_elements() const { return total_elements_; }

 private:
  ExtentWriter(std::vector<BlockDevice*> devices, KeyType key_type,
               uint32_t element_size, const ExtentWriterOptions& options);

  ExtentFileHeader MakeHeader(uint32_t stripe, bool finished) const;

  /// Packs and stores `payload_len` unpacked bytes as the next extent.
  Status FlushExtent(const uint8_t* payload, uint64_t payload_len);

  std::vector<BlockDevice*> devices_;
  KeyType key_type_;
  uint32_t element_size_;
  ExtentWriterOptions options_;
  uint64_t extent_bytes_ = 0;          // unpacked bytes of one full extent
  std::vector<uint64_t> write_offset_; // per stripe: next free byte
  std::vector<std::vector<uint64_t>> directory_;  // per stripe: local offsets
  std::vector<uint8_t> buffer_;        // pending unpacked tail (< one extent)
  std::vector<uint8_t> packed_;        // scratch for codec output
  uint64_t total_elements_ = 0;
  uint64_t next_extent_ = 0;
  bool finished_ = false;
  std::unique_ptr<ExtentStats> stats_;
};

/// A validated, opened extent file (all stripes): trusted geometry plus the
/// per-stripe directories. Read-only; devices are borrowed and must outlive
/// the file. Thread-safe after Open — readers only call const methods, and
/// the unpack counters are atomics — which is what lets one `ExtentFile`
/// feed a reader thread per stripe.
class ExtentFile {
 public:
  /// Opens and fully validates: every stripe header (magic, version,
  /// geometry consistency, order), every directory (CRC, monotonic offsets,
  /// per-extent size bounds against the no-expansion invariant, termination
  /// at the directory itself). After Open, every read is bounds-checked
  /// against this validated map.
  static Result<ExtentFile> Open(std::vector<BlockDevice*> devices);

  ExtentFile(ExtentFile&&) = default;
  ExtentFile& operator=(ExtentFile&&) = default;

  uint64_t size() const { return header_.total_elements; }
  uint32_t key_type() const { return header_.key_type; }
  uint32_t element_size() const { return header_.element_size; }
  uint32_t num_stripes() const {
    return static_cast<uint32_t>(devices_.size());
  }
  uint64_t extent_elements() const { return header_.extent_elements; }
  uint64_t num_extents() const { return header_.num_extents; }
  ExtentCodec default_codec() const {
    return static_cast<ExtentCodec>(header_.default_codec);
  }

  /// Elements of logical extent `e` (only the last extent may be ragged).
  uint64_t ExtentLength(uint64_t e) const {
    const uint64_t start = e * header_.extent_elements;
    OPAQ_CHECK_LT(start, header_.total_elements);
    return std::min(header_.extent_elements, header_.total_elements - start);
  }

  /// Bytes extent `e` occupies on disk (header + packed payload), from the
  /// validated directory.
  uint64_t StoredExtentBytes(uint64_t e) const;

  /// Reads extent `e` exactly as stored (ExtentHeader + packed payload) —
  /// what a data node ships over the wire without decoding.
  Status ReadStoredExtent(uint64_t e, std::vector<uint8_t>* out) const;

  /// Reads, validates and decodes extent `e` into `out` (ExtentLength(e) *
  /// element_size bytes). `scratch` is caller-owned reusable packed-byte
  /// storage so concurrent readers do not share buffers.
  Status DecodeExtent(uint64_t e, bool verify_checksums,
                      std::vector<uint8_t>* scratch, void* out) const;

  /// Random-access element read (bounds-checked): decodes the covering
  /// extents and copies out `[first, first + count)` — how a data node
  /// serves v1 `kReadRange` clients from an extent export. O(count +
  /// extent_elements) work per call; sequential consumers should stream
  /// through `ExtentRunSource` instead.
  Status ReadElements(uint64_t first, uint64_t count, void* out) const;

  /// Cumulative unpack accounting across all readers of this file.
  const ExtentStats& stats() const { return *stats_; }

 private:
  ExtentFile(std::vector<BlockDevice*> devices, ExtentFileHeader header)
      : devices_(std::move(devices)), header_(header),
        stats_(std::make_unique<ExtentStats>()) {}

  std::vector<BlockDevice*> devices_;
  ExtentFileHeader header_;  // stripe 0's (stripe_index/directory_offset vary)
  std::vector<uint64_t> directory_end_;            // per stripe
  std::vector<std::vector<uint64_t>> directory_;   // per stripe local offsets
  std::unique_ptr<ExtentStats> stats_;
};

/// Writes `values` as an extent file over `devices` in bounded slices — the
/// extent sibling of `WriteDataset` / `WriteStriped`. Returns the writer's
/// pack accounting.
template <typename K>
Result<ExtentStatsSnapshot> WriteExtents(const std::vector<K>& values,
                                         std::vector<BlockDevice*> devices,
                                         const ExtentWriterOptions& options) {
  auto writer = ExtentWriter::Create(std::move(devices), KeyTraits<K>::kType,
                                     sizeof(K), options);
  if (!writer.ok()) return writer.status();
  constexpr uint64_t kSlice = 1 << 20;
  for (uint64_t first = 0; first < values.size(); first += kSlice) {
    const uint64_t len = std::min<uint64_t>(kSlice, values.size() - first);
    OPAQ_RETURN_IF_ERROR(writer->Append(values.data() + first, len));
  }
  OPAQ_RETURN_IF_ERROR(writer->Finish());
  return writer->stats();
}

/// Reader knobs of the extent source (what `ReadOptions` maps to).
struct ExtentReaderOptions {
  /// Extents each stripe thread may decode ahead of the consumer.
  uint64_t prefetch_extents = 2;
  /// True (IoMode::kAsync): one reader thread per stripe reads AND DECODES
  /// its extents, so decompression overlaps sampling. False (kSync): the
  /// consumer does both inline — no threads, same bytes.
  bool threaded = true;
  /// Verify each extent's payload CRC before decoding (ReadOptions::
  /// verify_checksums). Structural validation happens regardless.
  bool verify_checksums = true;
};

/// Streams the runs of an `ExtentFile` in exact logical order — the extent
/// sibling of `StripedRunSource`, with the extent as the chunk. Threaded
/// mode fans one reader thread out per stripe; thread s reads and DECODES
/// the logical extents e ≡ s (mod D) in ascending order and feeds decoded
/// element chunks through its own bounded channel, so the payload CRC check
/// and the codec work both happen off the sampling thread. The consumer
/// pops chunks in global extent order and splices them into runs, so the
/// run sequence — and every downstream sketch — is byte-identical to the
/// plain sync reader over the same logical data, for every codec, extent
/// size, stripe count and timing.
///
/// Error semantics match `AsyncRunReader`/`StripedRunSource`: runs wholly
/// before the first failing extent are delivered, then the failure surfaces
/// as the sticky `Status` from `NextRun`. The destructor closes all
/// channels and joins all threads, so abandoning the source mid-stream can
/// neither hang nor leak threads.
template <typename K>
class ExtentRunSource : public RunSource<K> {
 public:
  /// `file` is borrowed and must outlive the source. Same `first`/`count`
  /// sub-range contract as `RunReader`.
  ExtentRunSource(const ExtentFile* file, uint64_t run_size,
                  ExtentReaderOptions options = ExtentReaderOptions(),
                  uint64_t first = 0, uint64_t count = UINT64_MAX)
      : file_(file), run_size_(run_size), threaded_(options.threaded),
        verify_checksums_(options.verify_checksums), begin_(first),
        next_(first), end_(first) {
    OPAQ_CHECK(file != nullptr);
    OPAQ_CHECK_GT(run_size, 0u);
    OPAQ_CHECK_EQ(sizeof(K), file->element_size());
    OPAQ_CHECK_LE(first, file->size());
    end_ = first + std::min(count, file->size() - first);
    next_extent_ = next_ / file_->extent_elements();
    if (!threaded_ || next_ >= end_) return;
    OPAQ_CHECK_GE(options.prefetch_extents, 1u);
    OPAQ_CHECK_LE(options.prefetch_extents, kMaxPrefetchDepth);
    const uint64_t end_extent = DivCeil(end_, file_->extent_elements());
    const uint32_t stripes = file_->num_stripes();
    channels_.reserve(stripes);
    for (uint32_t s = 0; s < stripes; ++s) {
      channels_.push_back(std::make_unique<Channel<ChunkMessage>>(
          static_cast<size_t>(options.prefetch_extents)));
    }
    for (uint32_t s = 0; s < stripes; ++s) {
      // First extent >= next_extent_ owned by stripe s.
      uint64_t e =
          next_extent_ + (s + stripes - next_extent_ % stripes) % stripes;
      if (e >= end_extent) continue;  // stripe owns nothing in the range
      threads_.emplace_back([this, s, e, end_extent, stripes] {
        ReadLoop(s, e, end_extent, stripes);
      });
    }
  }

  ~ExtentRunSource() override {
    for (auto& channel : channels_) channel->Close();
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
  }

  ExtentRunSource(const ExtentRunSource&) = delete;
  ExtentRunSource& operator=(const ExtentRunSource&) = delete;

  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (!status_.ok()) return status_;
    if (next_ >= end_) return false;
    const uint64_t len = std::min(run_size_, end_ - next_);
    while (pending_total_ < len) {
      ChunkMessage message;
      if (threaded_) {
        Channel<ChunkMessage>& channel =
            *channels_[next_extent_ % file_->num_stripes()];
        if (!channel.Receive(&message)) {
          // A reader thread closes its channel only after delivering every
          // extent it owns (or its error), so running dry means the source
          // itself is broken.
          status_ = Status::Internal(
              "extent reader stopped short of extent " +
              std::to_string(next_extent_));
          return status_;
        }
      } else {
        message.status = DecodeChunk(next_extent_, &message.data, &scratch_,
                                     &extent_buf_);
      }
      if (!message.status.ok()) {
        status_ = message.status;
        return status_;
      }
      pending_total_ += message.data.size();
      pending_.push_back(std::move(message.data));
      ++next_extent_;
    }
    // Splice the run off the front of the pending chunk queue.
    buffer->resize(len);
    uint64_t filled = 0;
    while (filled < len) {
      std::vector<K>& front = pending_.front();
      const uint64_t take =
          std::min<uint64_t>(len - filled, front.size() - pending_head_);
      std::copy_n(front.begin() + static_cast<size_t>(pending_head_),
                  static_cast<size_t>(take),
                  buffer->begin() + static_cast<size_t>(filled));
      filled += take;
      pending_head_ += take;
      if (pending_head_ == front.size()) {
        pending_.pop_front();
        pending_head_ = 0;
      }
    }
    pending_total_ -= len;
    next_ += len;
    return true;
  }

 private:
  struct ChunkMessage {
    Status status;
    std::vector<K> data;
  };

  /// Reads + decodes extent `e`, trimmed to the requested element range.
  /// `scratch` holds packed bytes, `extent_buf` a full decoded extent (only
  /// used when the range clips the extent) — both caller-owned so each
  /// thread reuses its own.
  Status DecodeChunk(uint64_t e, std::vector<K>* data,
                     std::vector<uint8_t>* scratch,
                     std::vector<K>* extent_buf) const {
    const uint64_t extent_start = e * file_->extent_elements();
    const uint64_t extent_len = file_->ExtentLength(e);
    // Trim against the immutable range bounds (begin_/end_), never the
    // consumer's moving cursor — reader threads share this object.
    const uint64_t start = std::max(extent_start, begin_);
    const uint64_t stop = std::min(extent_start + extent_len, end_);
    data->resize(stop - start);
    if (start == extent_start && stop == extent_start + extent_len) {
      // Whole extent wanted: decode straight into the chunk.
      return file_->DecodeExtent(e, verify_checksums_, scratch, data->data());
    }
    extent_buf->resize(extent_len);
    OPAQ_RETURN_IF_ERROR(
        file_->DecodeExtent(e, verify_checksums_, scratch, extent_buf->data()));
    std::copy_n(extent_buf->begin() +
                    static_cast<size_t>(start - extent_start),
                static_cast<size_t>(stop - start), data->begin());
    return Status::OK();
  }

  /// Body of stripe `s`'s reader thread: reads and decodes the logical
  /// extents `first_extent, first_extent + stride, ...` below `end_extent`.
  void ReadLoop(uint32_t s, uint64_t first_extent, uint64_t end_extent,
                uint32_t stride) {
    std::vector<uint8_t> scratch;
    std::vector<K> extent_buf;
    for (uint64_t e = first_extent; e < end_extent; e += stride) {
      ChunkMessage message;
      message.status = DecodeChunk(e, &message.data, &scratch, &extent_buf);
      if (!message.status.ok()) {
        message.data.clear();
        channels_[s]->Send(std::move(message));
        break;
      }
      if (!channels_[s]->Send(std::move(message))) return;  // consumer gone
    }
    channels_[s]->Close();
  }

  const ExtentFile* file_;
  uint64_t run_size_;
  bool threaded_;
  bool verify_checksums_;
  uint64_t begin_;        // first element of the range (immutable)
  uint64_t next_;         // next logical element to deliver (consumer only)
  uint64_t end_;          // one past the last element (immutable)
  uint64_t next_extent_;  // next logical extent to pop/decode
  Status status_;         // sticky failure state

  std::deque<std::vector<K>> pending_;  // chunks popped but not yet spliced
  uint64_t pending_head_ = 0;           // consumed prefix of pending_.front()
  uint64_t pending_total_ = 0;          // elements across pending_ minus head

  std::vector<uint8_t> scratch_;  // inline-mode packed bytes
  std::vector<K> extent_buf_;     // inline-mode clipped-extent decode buffer

  std::vector<std::unique_ptr<Channel<ChunkMessage>>> channels_;
  std::vector<std::thread> threads_;
};

/// The compressed storage backend as a `RunProvider`: `IoMode::kAsync` maps
/// to one read+decode thread per stripe, `IoMode::kSync` to inline decode.
/// Like every other backend it delivers the exact logical run order, so
/// sketches are byte-identical to the uncompressed backends — that is the
/// conformance contract compression must not bend.
template <typename K>
class ExtentFileProvider : public RunProvider<K> {
 public:
  explicit ExtentFileProvider(const ExtentFile* file) : file_(file) {
    OPAQ_CHECK(file != nullptr);
    // Key-type mismatches are caught with a clean Status by the facade
    // (Source::Open) before a provider is ever constructed.
    OPAQ_CHECK_EQ(static_cast<uint32_t>(KeyTraits<K>::kType),
                  file->key_type());
  }

  uint64_t size() const override { return file_->size(); }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    ExtentReaderOptions extent_options;
    extent_options.prefetch_extents = options.prefetch_depth;
    extent_options.threaded = options.io_mode == IoMode::kAsync;
    extent_options.verify_checksums = options.verify_checksums;
    return std::make_unique<ExtentRunSource<K>>(file_, options.run_size,
                                               extent_options, first, count);
  }

  const ExtentStats* pack_stats() const override { return &file_->stats(); }

  const ExtentFile* file() const { return file_; }

 private:
  const ExtentFile* file_;
};

}  // namespace opaq

#endif  // OPAQ_IO_EXTENT_H_
