#include "io/block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace opaq {

Status MemoryBlockDevice::ReadAt(uint64_t offset, void* buffer,
                                 size_t length) {
  if (offset + length > data_.size()) {
    return Status::OutOfRange("read past end of memory device");
  }
  std::memcpy(buffer, data_.data() + offset, length);
  RecordRead(length);
  return Status::OK();
}

Status MemoryBlockDevice::WriteAt(uint64_t offset, const void* buffer,
                                  size_t length) {
  if (offset + length > data_.size()) data_.resize(offset + length);
  std::memcpy(data_.data() + offset, buffer, length);
  RecordWrite(length);
  return Status::OK();
}

Result<uint64_t> MemoryBlockDevice::Size() const {
  return static_cast<uint64_t>(data_.size());
}

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Make(
    const std::string& path, Mode mode) {
  int flags = mode == Mode::kCreate ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open('" + path + "'): " + std::strerror(errno));
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(path, fd));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::ReadAt(uint64_t offset, void* buffer, size_t length) {
  uint8_t* out = static_cast<uint8_t*>(buffer);
  size_t done = 0;
  while (done < length) {
    ssize_t got = ::pread(fd_, out + done, length - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread('" + path_ +
                             "'): " + std::strerror(errno));
    }
    if (got == 0) {
      return Status::OutOfRange("read past end of file '" + path_ + "'");
    }
    done += static_cast<size_t>(got);
  }
  RecordRead(length);
  return Status::OK();
}

Status FileBlockDevice::WriteAt(uint64_t offset, const void* buffer,
                                size_t length) {
  const uint8_t* in = static_cast<const uint8_t*>(buffer);
  size_t done = 0;
  while (done < length) {
    ssize_t put = ::pwrite(fd_, in + done, length - done,
                           static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite('" + path_ +
                             "'): " + std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
  RecordWrite(length);
  return Status::OK();
}

Result<uint64_t> FileBlockDevice::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError("fstat('" + path_ + "'): " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status FileBlockDevice::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync('" + path_ + "'): " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace opaq
