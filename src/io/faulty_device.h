#ifndef OPAQ_IO_FAULTY_DEVICE_H_
#define OPAQ_IO_FAULTY_DEVICE_H_

#include <cstdint>
#include <memory>

#include "io/block_device.h"

namespace opaq {

/// Fault-injection wrapper for tests: fails the k-th read and/or write
/// request with a configurable status. Lets the suites verify that I/O
/// errors surface cleanly (as Status, never as crashes or silent
/// truncation) through every layer — run readers, sketches, second passes,
/// and the parallel pipeline.
class FaultyDevice : public BlockDevice {
 public:
  struct Options {
    /// Fail the Nth read (1-based). 0 = never.
    uint64_t fail_read_at = 0;
    /// Fail the Nth write (1-based). 0 = never.
    uint64_t fail_write_at = 0;
    /// Status returned on an injected failure.
    StatusCode code = StatusCode::kIoError;
    /// Short-read injection: pretend the device physically ends after this
    /// many bytes, so any read touching bytes at or past the limit fails
    /// with OutOfRange even though the inner device (and the file header)
    /// promise more. 0 = no truncation. Models a file truncated behind the
    /// reader's back — the BlockDevice contract is all-or-nothing, so a
    /// short read must surface as an error, never as partial data.
    uint64_t truncate_after_bytes = 0;
  };

  FaultyDevice(std::unique_ptr<BlockDevice> inner, Options options)
      : inner_(std::move(inner)), options_(options) {}

  Status ReadAt(uint64_t offset, void* buffer, size_t length) override {
    ++reads_;
    if (options_.fail_read_at != 0 && reads_ == options_.fail_read_at) {
      return Status(options_.code, "injected read failure");
    }
    if (options_.truncate_after_bytes != 0 &&
        offset + length > options_.truncate_after_bytes) {
      return Status::OutOfRange("injected short read: device truncated");
    }
    Status s = inner_->ReadAt(offset, buffer, length);
    if (s.ok()) RecordRead(length);
    return s;
  }

  Status WriteAt(uint64_t offset, const void* buffer,
                 size_t length) override {
    ++writes_;
    if (options_.fail_write_at != 0 && writes_ == options_.fail_write_at) {
      return Status(options_.code, "injected write failure");
    }
    Status s = inner_->WriteAt(offset, buffer, length);
    if (s.ok()) RecordWrite(length);
    return s;
  }

  Result<uint64_t> Size() const override {
    auto size = inner_->Size();
    if (size.ok() && options_.truncate_after_bytes != 0 &&
        *size > options_.truncate_after_bytes) {
      return options_.truncate_after_bytes;
    }
    return size;
  }
  Status Sync() override { return inner_->Sync(); }

  /// Shrinks (or restores, with 0) the apparent device size at runtime:
  /// lets tests truncate the file *after* it was successfully opened,
  /// modelling data vanishing behind a reader's back.
  void set_truncate_after_bytes(uint64_t bytes) {
    options_.truncate_after_bytes = bytes;
  }

  uint64_t reads_attempted() const { return reads_; }
  uint64_t writes_attempted() const { return writes_; }
  BlockDevice* inner() { return inner_.get(); }

 private:
  std::unique_ptr<BlockDevice> inner_;
  Options options_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_IO_FAULTY_DEVICE_H_
