#include "io/io_mode.h"

namespace opaq {

const char* IoModeName(IoMode mode) {
  switch (mode) {
    case IoMode::kSync:
      return "sync";
    case IoMode::kAsync:
      return "async";
  }
  return "unknown";
}

Result<IoMode> ParseIoMode(const std::string& name) {
  if (name == "sync") return IoMode::kSync;
  if (name == "async") return IoMode::kAsync;
  return Status::InvalidArgument("unknown io mode: " + name +
                                 " (expected sync|async)");
}

}  // namespace opaq
