#include "io/tempdir.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

namespace opaq {

Result<TempDir> TempDir::Make(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" +
                     prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError("mkdtemp failed: " + std::string(strerror(errno)));
  }
  return TempDir(std::string(buf.data()));
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    this->~TempDir();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() {
  if (path_.empty()) return;
  std::error_code ec;  // best-effort cleanup; ignore errors in a destructor
  std::filesystem::remove_all(path_, ec);
}

}  // namespace opaq
