#ifndef OPAQ_IO_THROTTLED_DEVICE_H_
#define OPAQ_IO_THROTTLED_DEVICE_H_

#include <atomic>
#include <memory>

#include "io/block_device.h"

namespace opaq {

/// First-order disk performance model: each request costs
/// `latency_seconds + bytes / bandwidth_bytes_per_second`.
///
/// The paper's experiments ran against per-node SP-2 disks where I/O was
/// ~50% of total time (Tables 11–12). Modern page-cache reads are orders of
/// magnitude faster, which would flatten those tables to ~0%; the throttle
/// restores a disk-like compute-to-I/O ratio so the *fractions* and their
/// flatness across processor counts are reproducible. The default (64 MB/s)
/// is calibrated so that reading a run takes about as long as
/// regular-sampling it on one modern core, matching the paper's observed
/// ~50/45 I/O-to-sampling balance (see EXPERIMENTS.md).
struct DiskModel {
  double bandwidth_bytes_per_second = 64.0 * 1024 * 1024;
  double latency_seconds = 100e-6;

  double SecondsFor(size_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }
};

/// Wraps another device and charges the DiskModel cost for every request.
///
/// Two modes:
///  - kSleep: physically delays the calling thread until the modeled time has
///    elapsed (wall-clock experiments, Tables 11–12 / Figures 4–6).
///  - kAccount: no delay; modeled seconds accumulate in `modeled_seconds()`
///    (fast tests that still want the model's numbers).
class ThrottledDevice : public BlockDevice {
 public:
  enum class Mode { kSleep, kAccount };

  ThrottledDevice(std::unique_ptr<BlockDevice> inner, DiskModel model,
                  Mode mode)
      : inner_(std::move(inner)), model_(model), mode_(mode) {}

  Status ReadAt(uint64_t offset, void* buffer, size_t length) override;
  Status WriteAt(uint64_t offset, const void* buffer, size_t length) override;
  Result<uint64_t> Size() const override { return inner_->Size(); }
  Status Sync() override { return inner_->Sync(); }

  /// Total modeled I/O seconds charged so far (both modes).
  double modeled_seconds() const {
    return modeled_micros_.load(std::memory_order_relaxed) * 1e-6;
  }

  BlockDevice* inner() { return inner_.get(); }
  const DiskModel& model() const { return model_; }

 private:
  void Charge(size_t bytes, double already_spent_seconds);

  std::unique_ptr<BlockDevice> inner_;
  DiskModel model_;
  Mode mode_;
  std::atomic<uint64_t> modeled_micros_{0};
};

}  // namespace opaq

#endif  // OPAQ_IO_THROTTLED_DEVICE_H_
