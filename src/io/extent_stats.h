#ifndef OPAQ_IO_EXTENT_STATS_H_
#define OPAQ_IO_EXTENT_STATS_H_

#include <atomic>
#include <cstdint>

#include "io/codec.h"

namespace opaq {

/// A point-in-time copy of extent pack/unpack counters — the mergeable,
/// copyable form that travels through `EngineStats` and prints in the CLI
/// (the DataSeriesSink::Stats idea: how many bytes would have moved
/// uncompressed vs how many actually did, and which codec each extent
/// ended up with).
struct ExtentStatsSnapshot {
  uint64_t extents = 0;         // extents packed or unpacked
  uint64_t unpacked_bytes = 0;  // logical payload bytes
  uint64_t packed_bytes = 0;    // stored bytes (headers + packed payloads)
  uint64_t extents_by_codec[kNumExtentCodecs] = {};

  /// Stored/logical ratio; 1.0 when nothing was recorded.
  double ratio() const {
    return unpacked_bytes == 0
               ? 1.0
               : static_cast<double>(packed_bytes) /
                     static_cast<double>(unpacked_bytes);
  }

  void Add(const ExtentStatsSnapshot& other) {
    extents += other.extents;
    unpacked_bytes += other.unpacked_bytes;
    packed_bytes += other.packed_bytes;
    for (size_t c = 0; c < kNumExtentCodecs; ++c) {
      extents_by_codec[c] += other.extents_by_codec[c];
    }
  }

  /// Counters accrued since `earlier` — how `Engine::Build` turns a file's
  /// cumulative stats into a per-build delta. `earlier` must be an older
  /// snapshot of the same counters.
  void Subtract(const ExtentStatsSnapshot& earlier) {
    extents -= earlier.extents;
    unpacked_bytes -= earlier.unpacked_bytes;
    packed_bytes -= earlier.packed_bytes;
    for (size_t c = 0; c < kNumExtentCodecs; ++c) {
      extents_by_codec[c] -= earlier.extents_by_codec[c];
    }
  }
};

/// Cumulative pack/unpack counters for one extent file or remote extent
/// stream. Thread-safe (relaxed atomics, the `IoStats` pattern): decode runs
/// concurrently on prefetch threads while the driver thread snapshots.
struct ExtentStats {
  std::atomic<uint64_t> extents{0};
  std::atomic<uint64_t> unpacked_bytes{0};
  std::atomic<uint64_t> packed_bytes{0};
  std::atomic<uint64_t> extents_by_codec[kNumExtentCodecs] = {};

  /// Accounts one extent packed or unpacked with `codec`. `packed` counts
  /// stored bytes including the extent header — the bytes that actually hit
  /// the disk or the wire.
  void Record(ExtentCodec codec, uint64_t unpacked, uint64_t packed) {
    extents.fetch_add(1, std::memory_order_relaxed);
    unpacked_bytes.fetch_add(unpacked, std::memory_order_relaxed);
    packed_bytes.fetch_add(packed, std::memory_order_relaxed);
    const size_t c = static_cast<size_t>(codec);
    if (c < kNumExtentCodecs) {
      extents_by_codec[c].fetch_add(1, std::memory_order_relaxed);
    }
  }

  ExtentStatsSnapshot Snapshot() const {
    ExtentStatsSnapshot snap;
    snap.extents = extents.load(std::memory_order_relaxed);
    snap.unpacked_bytes = unpacked_bytes.load(std::memory_order_relaxed);
    snap.packed_bytes = packed_bytes.load(std::memory_order_relaxed);
    for (size_t c = 0; c < kNumExtentCodecs; ++c) {
      snap.extents_by_codec[c] =
          extents_by_codec[c].load(std::memory_order_relaxed);
    }
    return snap;
  }
};

}  // namespace opaq

#endif  // OPAQ_IO_EXTENT_STATS_H_
