#ifndef OPAQ_IO_DATA_FILE_H_
#define OPAQ_IO_DATA_FILE_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "io/block_device.h"
#include "util/status.h"

namespace opaq {

/// Element type tags stored in DataFile headers.
enum class KeyType : uint32_t {
  kU32 = 1,
  kU64 = 2,
  kI64 = 3,
  kF32 = 4,
  kF64 = 5,
};

/// Maps C++ key types to their on-disk KeyType tag.
template <typename K>
struct KeyTraits;
template <>
struct KeyTraits<uint32_t> {
  static constexpr KeyType kType = KeyType::kU32;
  static constexpr const char* kName = "u32";
};
template <>
struct KeyTraits<uint64_t> {
  static constexpr KeyType kType = KeyType::kU64;
  static constexpr const char* kName = "u64";
};
template <>
struct KeyTraits<int64_t> {
  static constexpr KeyType kType = KeyType::kI64;
  static constexpr const char* kName = "i64";
};
template <>
struct KeyTraits<float> {
  static constexpr KeyType kType = KeyType::kF32;
  static constexpr const char* kName = "f32";
};
template <>
struct KeyTraits<double> {
  static constexpr KeyType kType = KeyType::kF64;
  static constexpr const char* kName = "f64";
};

/// Fixed 32-byte header at offset 0 of every data file.
struct DataFileHeader {
  static constexpr uint64_t kMagic = 0x4f50415144415431ULL;  // "OPAQDAT1"
  uint64_t magic = kMagic;
  uint32_t version = 1;
  uint32_t key_type = 0;
  uint64_t element_count = 0;
  uint32_t element_size = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(DataFileHeader) == 32);
static_assert(std::is_trivially_copyable_v<DataFileHeader>);

/// Untyped view of a dataset laid out as `header | raw records` on a
/// BlockDevice. The typed wrappers below are what library users touch.
class DataFile {
 public:
  /// Validates and reads the header of an existing file on `device`.
  /// `device` is borrowed and must outlive the DataFile.
  static Result<DataFile> Open(BlockDevice* device);

  /// Writes a fresh header describing `element_count` elements (may be 0 and
  /// grown later with set_element_count + RewriteHeader).
  static Result<DataFile> Create(BlockDevice* device, KeyType key_type,
                                 uint32_t element_size,
                                 uint64_t element_count);

  uint64_t element_count() const { return header_.element_count; }
  uint32_t element_size() const { return header_.element_size; }
  KeyType key_type() const { return static_cast<KeyType>(header_.key_type); }
  BlockDevice* device() const { return device_; }

  /// Reads `count` elements starting at element index `first` into `out`.
  Status ReadElements(uint64_t first, uint64_t count, void* out) const;

  /// Writes `count` elements at element index `first`.
  Status WriteElements(uint64_t first, uint64_t count, const void* in);

  /// Updates element_count and persists the header.
  Status SetElementCount(uint64_t count);

 private:
  DataFile(BlockDevice* device, DataFileHeader header)
      : device_(device), header_(header) {}

  uint64_t ByteOffset(uint64_t element_index) const {
    return sizeof(DataFileHeader) + element_index * header_.element_size;
  }

  BlockDevice* device_;
  DataFileHeader header_;
};

/// Typed convenience wrapper over DataFile for key type `K`.
template <typename K>
class TypedDataFile {
 public:
  static Result<TypedDataFile<K>> Open(BlockDevice* device) {
    auto file = DataFile::Open(device);
    if (!file.ok()) return file.status();
    if (file->key_type() != KeyTraits<K>::kType) {
      return Status::InvalidArgument(
          std::string("data file holds a different key type than ") +
          KeyTraits<K>::kName);
    }
    return TypedDataFile<K>(std::move(file).value());
  }

  static Result<TypedDataFile<K>> Create(BlockDevice* device,
                                         uint64_t element_count) {
    auto file = DataFile::Create(device, KeyTraits<K>::kType,
                                 static_cast<uint32_t>(sizeof(K)),
                                 element_count);
    if (!file.ok()) return file.status();
    return TypedDataFile<K>(std::move(file).value());
  }

  uint64_t size() const { return file_.element_count(); }

  Status Read(uint64_t first, uint64_t count, K* out) const {
    return file_.ReadElements(first, count, out);
  }

  Status Write(uint64_t first, const std::vector<K>& values) {
    return file_.WriteElements(first, values.size(), values.data());
  }

  /// Appends `values` after the current end and persists the new count.
  Status Append(const std::vector<K>& values) {
    uint64_t first = file_.element_count();
    OPAQ_RETURN_IF_ERROR(
        file_.WriteElements(first, values.size(), values.data()));
    return file_.SetElementCount(first + values.size());
  }

  /// Reads the whole file into memory (test/metrics helper; the core
  /// algorithm never does this — that is the point of OPAQ).
  Result<std::vector<K>> ReadAll() const {
    std::vector<K> out(size());
    if (!out.empty()) {
      OPAQ_RETURN_IF_ERROR(Read(0, out.size(), out.data()));
    }
    return out;
  }

  DataFile& raw() { return file_; }

 private:
  explicit TypedDataFile(DataFile file) : file_(std::move(file)) {}
  DataFile file_;
};

}  // namespace opaq

#endif  // OPAQ_IO_DATA_FILE_H_
