#ifndef OPAQ_IO_IO_MODE_H_
#define OPAQ_IO_IO_MODE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace opaq {

/// How a run consumer drives the disk. Kept in its own tiny header so that
/// configuration code can name the mode without pulling in the threaded
/// reader machinery (io/async_run_reader.h).
enum class IoMode {
  /// Strict alternation: read run m, then sample run m (the paper's
  /// single-threaded reading loop). Disk idles during selection.
  kSync,
  /// Double-buffered prefetching: a background thread keeps reading ahead
  /// while the consumer samples, overlapping I/O with compute. Byte-identical
  /// results — prefetching reorders time, never data.
  kAsync,
};

/// Upper bound on async prefetch depth: each buffer costs a full run of
/// memory, and depths beyond a few only ever absorb compute burstiness, so
/// anything huge is a configuration error (e.g. a negative flag value cast
/// to uint64), not a tuning choice. Enforced both by `OpaqConfig::Validate`
/// and by the `AsyncRunReader` constructor.
inline constexpr uint64_t kMaxPrefetchDepth = 1024;

/// Upper bound on the stripe count of a striped data file: the striped
/// backend runs one reader thread per stripe, so anything huge is a
/// configuration error (e.g. a negative flag value cast to uint64), not a
/// real disk array. Enforced by `OpaqConfig::Validate` and by
/// `StripedDataFile`.
inline constexpr uint64_t kMaxStripes = 64;

/// Hard cap on one extent's unpacked byte size in the compressed extent
/// format (io/extent.h): extents are the prefetch and wire-streaming grain,
/// so a huge extent is a configuration error (and an untrusted header
/// claiming one is an attack). Must stay comfortably below the wire
/// protocol's `kMaxWirePayload` (64 MiB) so a stored extent always fits one
/// frame. Enforced by `OpaqConfig::Validate`, `ExtentWriter::Create` and
/// `ExtentFile::Open`.
inline constexpr uint64_t kMaxExtentBytes = 32u << 20;

/// How a `RunProvider` should drive its device(s): the backend-independent
/// subset of OpaqConfig that the io/ layer needs. For the plain-file
/// backend `io_mode` picks the sync or prefetching reader and
/// `prefetch_depth` counts run buffers in flight; for the striped backend
/// kAsync means one reader thread per stripe and `prefetch_depth` counts
/// chunks in flight per stripe.
struct ReadOptions {
  uint64_t run_size = 1 << 20;
  IoMode io_mode = IoMode::kSync;
  uint64_t prefetch_depth = 2;
  /// Verify per-extent payload CRCs when the backend reads compressed
  /// extents (io/extent.h); uncompressed backends ignore it. Off buys a few
  /// percent of decode throughput at the cost of silent-corruption
  /// detection — structural validation happens regardless.
  bool verify_checksums = true;
};

/// Stable short name ("sync" / "async").
const char* IoModeName(IoMode mode);

/// Parses "sync" / "async" (InvalidArgument otherwise).
Result<IoMode> ParseIoMode(const std::string& name);

}  // namespace opaq

#endif  // OPAQ_IO_IO_MODE_H_
