#ifndef OPAQ_IO_ASYNC_RUN_READER_H_
#define OPAQ_IO_ASYNC_RUN_READER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/io_mode.h"
#include "io/run_reader.h"
#include "parallel/channel.h"
#include "util/status.h"

namespace opaq {

/// Knobs of the asynchronous reader.
struct AsyncReaderOptions {
  /// Number of prefetch buffers the background thread may fill ahead of the
  /// consumer. 1 = classic double buffering (one run in flight while one is
  /// being sampled); larger depths absorb burstier compute. Peak memory is
  /// `(prefetch_depth + 1) * run_size` elements: the prefetch ring plus the
  /// buffer the consumer is holding.
  uint64_t prefetch_depth = 2;
};

/// A prefetching `RunSource`: wraps a `RunReader` and runs it on a background
/// thread so device time and consumer compute overlap.
///
/// Delivery is strictly FIFO through a bounded channel, so the consumer sees
/// exactly the run sequence the synchronous reader would produce — including
/// the error position: runs fully read before a device failure are delivered
/// first, then the failing run surfaces as the `Status` from `NextRun` (and
/// from every later call). The destructor closes the pipeline and joins the
/// reader thread, so abandoning a partially-consumed source (e.g. after an
/// error) can neither hang nor leak the thread.
template <typename K>
class AsyncRunReader : public RunSource<K> {
 public:
  /// Same borrowing contract and `first`/`count` sub-range semantics as
  /// `RunReader`. The device behind `file` must tolerate concurrent reads
  /// with any other I/O the caller performs (all project devices do:
  /// positioned reads, atomic stats).
  AsyncRunReader(const TypedDataFile<K>* file, uint64_t run_size,
                 AsyncReaderOptions options = AsyncReaderOptions(),
                 uint64_t first = 0, uint64_t count = UINT64_MAX)
      : inner_(file, run_size, first, count),
        free_(static_cast<size_t>(options.prefetch_depth) + 1),
        full_(static_cast<size_t>(options.prefetch_depth) + 1) {
    OPAQ_CHECK_GE(options.prefetch_depth, 1u)
        << "async prefetching needs at least one buffer in flight";
    OPAQ_CHECK_LE(options.prefetch_depth, kMaxPrefetchDepth)
        << "each prefetch buffer costs a full run of memory";
    for (uint64_t i = 0; i < options.prefetch_depth; ++i) {
      free_.Send(std::vector<K>());
    }
    thread_ = std::thread([this] { ReadLoop(); });
  }

  ~AsyncRunReader() override {
    free_.Close();
    full_.Close();
    if (thread_.joinable()) thread_.join();
  }

  AsyncRunReader(const AsyncRunReader&) = delete;
  AsyncRunReader& operator=(const AsyncRunReader&) = delete;

  /// Hands the next prefetched run to the caller (blocking only when the
  /// disk is behind). The caller's previous buffer is recycled into the
  /// prefetch ring.
  Result<bool> NextRun(std::vector<K>* buffer) override {
    std::vector<K> run;
    if (!full_.Receive(&run)) {
      // Pipeline drained: either clean EOF or the reader thread stopped on a
      // device error, which every subsequent call keeps reporting.
      buffer->clear();
      std::lock_guard<std::mutex> lock(mutex_);
      if (!read_status_.ok()) return read_status_;
      return false;
    }
    buffer->swap(run);
    run.clear();
    free_.Send(std::move(run));
    return true;
  }

 private:
  void ReadLoop() {
    std::vector<K> buffer;
    while (free_.Receive(&buffer)) {
      auto more = inner_.NextRun(&buffer);
      if (!more.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        read_status_ = more.status();
      }
      if (!more.ok() || !*more) break;
      if (!full_.Send(std::move(buffer))) return;  // consumer went away
      buffer = std::vector<K>();
    }
    // EOF or error: close the full channel so the consumer, after draining
    // the already-prefetched runs, sees end-of-stream and checks the status.
    full_.Close();
  }

  RunReader<K> inner_;
  Channel<std::vector<K>> free_;
  Channel<std::vector<K>> full_;
  mutable std::mutex mutex_;
  Status read_status_;
  std::thread thread_;
};

/// Builds the `RunSource` matching `mode` over `[first, first + count)` of
/// `file` — the one switch point every consuming layer funnels through.
template <typename K>
std::unique_ptr<RunSource<K>> MakeRunSource(
    const TypedDataFile<K>* file, uint64_t run_size, IoMode mode,
    const AsyncReaderOptions& options = AsyncReaderOptions(),
    uint64_t first = 0, uint64_t count = UINT64_MAX) {
  if (mode == IoMode::kAsync) {
    return std::make_unique<AsyncRunReader<K>>(file, run_size, options, first,
                                               count);
  }
  return std::make_unique<RunReader<K>>(file, run_size, first, count);
}

/// The plain single-device storage backend as a `RunProvider`: wraps one
/// `TypedDataFile` and opens the sync or prefetching reader per
/// `ReadOptions::io_mode`. The file is borrowed and must outlive the
/// provider and every `RunSource` it opened.
template <typename K>
class FileRunProvider : public RunProvider<K> {
 public:
  explicit FileRunProvider(const TypedDataFile<K>* file) : file_(file) {
    OPAQ_CHECK(file != nullptr);
  }

  uint64_t size() const override { return file_->size(); }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    AsyncReaderOptions async_options;
    async_options.prefetch_depth = options.prefetch_depth;
    return MakeRunSource<K>(file_, options.run_size, options.io_mode,
                            async_options, first, count);
  }

  const TypedDataFile<K>* file() const { return file_; }

 private:
  const TypedDataFile<K>* file_;
};

}  // namespace opaq

#endif  // OPAQ_IO_ASYNC_RUN_READER_H_
