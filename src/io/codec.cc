#include "io/codec.h"

#include <cstring>

#ifdef OPAQ_HAVE_ZLIB
#include <zlib.h>
#endif

namespace opaq {
namespace {

// ------------------------------------------------------------ raw ----

class RawCodec : public Codec {
 public:
  ExtentCodec id() const override { return ExtentCodec::kRaw; }
  const char* name() const override { return "raw"; }

  Status Compress(const uint8_t* data, size_t len, uint32_t /*element_size*/,
                  std::vector<uint8_t>* out) const override {
    out->assign(data, data + len);
    return Status::OK();
  }

  Status Decompress(const uint8_t* data, size_t len,
                    uint32_t /*element_size*/, uint8_t* out,
                    size_t out_len) const override {
    if (len != out_len) {
      return Status::IoError("raw extent holds " + std::to_string(len) +
                             " bytes where " + std::to_string(out_len) +
                             " were expected");
    }
    std::memcpy(out, data, len);
    return Status::OK();
  }
};

// ---------------------------------------------------------- delta ----

/// Zigzag delta + LEB128 varint over the element words. Elements are read as
/// little-endian unsigned words of `element_size` bytes (4 or 8 — every OPAQ
/// key type is one of the two; float bit patterns round-trip losslessly),
/// the running difference is zigzag-folded so small negative deltas stay
/// small, and each folded delta is LEB128-encoded. Sorted and clustered
/// integer data — the paper's workloads — collapse to 1-2 bytes/element.
class DeltaCodec : public Codec {
 public:
  ExtentCodec id() const override { return ExtentCodec::kDelta; }
  const char* name() const override { return "delta"; }

  Status Compress(const uint8_t* data, size_t len, uint32_t element_size,
                  std::vector<uint8_t>* out) const override {
    OPAQ_RETURN_IF_ERROR(CheckGeometry(len, element_size));
    out->clear();
    out->reserve(len + len / 4);  // worst case is 10/8 bytes per word
    const uint64_t sign_shift = element_size * 8 - 1;
    const uint64_t mask =
        element_size == 8 ? ~uint64_t{0} : (uint64_t{1} << (element_size * 8)) - 1;
    uint64_t prev = 0;
    for (size_t i = 0; i < len; i += element_size) {
      uint64_t v = 0;
      std::memcpy(&v, data + i, element_size);
      const uint64_t diff = (v - prev) & mask;
      prev = v;
      // Zigzag within the element width: sign-extend the wrapped difference,
      // then fold so both +1 and -1 encode as one byte.
      const uint64_t sign = (diff >> sign_shift) & 1;
      uint64_t folded = ((diff << 1) & mask) ^ (sign ? mask : 0);
      do {
        uint8_t byte = folded & 0x7f;
        folded >>= 7;
        if (folded != 0) byte |= 0x80;
        out->push_back(byte);
      } while (folded != 0);
    }
    return Status::OK();
  }

  Status Decompress(const uint8_t* data, size_t len, uint32_t element_size,
                    uint8_t* out, size_t out_len) const override {
    OPAQ_RETURN_IF_ERROR(CheckGeometry(out_len, element_size));
    const uint64_t sign_shift = element_size * 8 - 1;
    const uint64_t mask =
        element_size == 8 ? ~uint64_t{0} : (uint64_t{1} << (element_size * 8)) - 1;
    const size_t max_varint_bytes = (element_size * 8 + 6) / 7;
    size_t pos = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < out_len; i += element_size) {
      uint64_t folded = 0;
      size_t shift = 0, n = 0;
      while (true) {
        if (pos >= len) {
          return Status::IoError("delta extent truncated mid-varint");
        }
        const uint8_t byte = data[pos++];
        folded |= static_cast<uint64_t>(byte & 0x7f) << shift;
        ++n;
        if ((byte & 0x80) == 0) break;
        shift += 7;
        if (n >= max_varint_bytes) {
          return Status::IoError("delta extent varint overflows the element "
                                 "width");
        }
      }
      if ((folded & ~mask) != 0) {
        return Status::IoError("delta extent varint overflows the element "
                               "width");
      }
      // Unfold the zigzag, then undo the delta (both wrap within the width).
      const uint64_t diff = ((folded >> 1) ^ (0 - (folded & 1))) & mask;
      const uint64_t v = (prev + diff) & mask;
      prev = v;
      std::memcpy(out + i, &v, element_size);
      (void)sign_shift;
    }
    if (pos != len) {
      return Status::IoError("delta extent has " + std::to_string(len - pos) +
                             " trailing bytes after the last element");
    }
    return Status::OK();
  }

 private:
  static Status CheckGeometry(size_t len, uint32_t element_size) {
    if (element_size != 4 && element_size != 8) {
      return Status::InvalidArgument(
          "delta codec supports 4- and 8-byte elements, got " +
          std::to_string(element_size));
    }
    if (len % element_size != 0) {
      return Status::InvalidArgument(
          "delta codec payload is not a whole number of elements");
    }
    return Status::OK();
  }
};

// ----------------------------------------------------------- zlib ----

#ifdef OPAQ_HAVE_ZLIB

class ZlibCodec : public Codec {
 public:
  ExtentCodec id() const override { return ExtentCodec::kZlib; }
  const char* name() const override { return "zlib"; }

  Status Compress(const uint8_t* data, size_t len, uint32_t /*element_size*/,
                  std::vector<uint8_t>* out) const override {
    uLongf bound = compressBound(static_cast<uLong>(len));
    out->resize(bound);
    // Level 1: the codec exists to trade prefetch-thread CPU for disk
    // bandwidth, so encode speed beats a few percent of ratio.
    const int rc = compress2(out->data(), &bound, data,
                             static_cast<uLong>(len), /*level=*/1);
    if (rc != Z_OK) {
      return Status::Internal("zlib compress failed (rc=" +
                              std::to_string(rc) + ")");
    }
    out->resize(bound);
    return Status::OK();
  }

  Status Decompress(const uint8_t* data, size_t len,
                    uint32_t /*element_size*/, uint8_t* out,
                    size_t out_len) const override {
    uLongf dest_len = static_cast<uLongf>(out_len);
    const int rc = uncompress(out, &dest_len, data, static_cast<uLong>(len));
    if (rc != Z_OK) {
      return Status::IoError("zlib extent does not decompress (rc=" +
                             std::to_string(rc) + ")");
    }
    if (dest_len != out_len) {
      return Status::IoError("zlib extent decompressed to " +
                             std::to_string(dest_len) + " bytes where " +
                             std::to_string(out_len) + " were expected");
    }
    return Status::OK();
  }
};

#else  // !OPAQ_HAVE_ZLIB

/// The tag is recognized even without zlib, so a corrupt codec byte and a
/// missing build dependency produce different, actionable errors.
class ZlibCodec : public Codec {
 public:
  ExtentCodec id() const override { return ExtentCodec::kZlib; }
  const char* name() const override { return "zlib"; }

  Status Compress(const uint8_t*, size_t, uint32_t,
                  std::vector<uint8_t>*) const override {
    return Unavailable();
  }
  Status Decompress(const uint8_t*, size_t, uint32_t, uint8_t*,
                    size_t) const override {
    return Unavailable();
  }

 private:
  static Status Unavailable() {
    return Status::Unimplemented(
        "zlib codec not available in this build (rebuild with zlib "
        "development headers installed)");
  }
};

#endif  // OPAQ_HAVE_ZLIB

const RawCodec kRawCodec;
const DeltaCodec kDeltaCodec;
const ZlibCodec kZlibCodec;

}  // namespace

const Codec* GetCodec(ExtentCodec id) {
  switch (id) {
    case ExtentCodec::kRaw:
      return &kRawCodec;
    case ExtentCodec::kDelta:
      return &kDeltaCodec;
    case ExtentCodec::kZlib:
      return &kZlibCodec;
  }
  return nullptr;
}

bool CodecAvailable(ExtentCodec id) {
  if (id == ExtentCodec::kZlib) {
#ifdef OPAQ_HAVE_ZLIB
    return true;
#else
    return false;
#endif
  }
  return GetCodec(id) != nullptr;
}

const char* ExtentCodecName(ExtentCodec id) {
  const Codec* codec = GetCodec(id);
  return codec != nullptr ? codec->name() : "?";
}

const char* ExtentCodecName(uint16_t id) {
  return ExtentCodecName(static_cast<ExtentCodec>(id));
}

Result<ExtentCodec> ParseExtentCodec(const std::string& name) {
  ExtentCodec id;
  if (name == "raw") {
    id = ExtentCodec::kRaw;
  } else if (name == "delta") {
    id = ExtentCodec::kDelta;
  } else if (name == "zlib") {
    id = ExtentCodec::kZlib;
  } else {
    return Status::InvalidArgument(
        "unknown codec '" + name + "' (expected raw, delta or zlib)");
  }
  if (!CodecAvailable(id)) {
    return Status::Unimplemented("codec '" + name +
                                 "' not available in this build");
  }
  return id;
}

}  // namespace opaq
