#include "io/data_file.h"

#include <cstring>

namespace opaq {

Result<DataFile> DataFile::Open(BlockDevice* device) {
  OPAQ_CHECK(device != nullptr);
  DataFileHeader header;
  auto size = device->Size();
  if (!size.ok()) return size.status();
  if (*size < sizeof(DataFileHeader)) {
    return Status::InvalidArgument("device too small to hold a data file");
  }
  OPAQ_RETURN_IF_ERROR(device->ReadAt(0, &header, sizeof(header)));
  if (header.magic != DataFileHeader::kMagic) {
    return Status::InvalidArgument("bad magic: not an OPAQ data file");
  }
  if (header.version != 1) {
    return Status::InvalidArgument("unsupported data file version");
  }
  if (header.element_size == 0) {
    return Status::InvalidArgument("corrupt header: element_size == 0");
  }
  uint64_t need = sizeof(DataFileHeader) +
                  header.element_count * static_cast<uint64_t>(header.element_size);
  if (*size < need) {
    return Status::InvalidArgument("data file truncated");
  }
  return DataFile(device, header);
}

Result<DataFile> DataFile::Create(BlockDevice* device, KeyType key_type,
                                  uint32_t element_size,
                                  uint64_t element_count) {
  OPAQ_CHECK(device != nullptr);
  if (element_size == 0) {
    return Status::InvalidArgument("element_size must be positive");
  }
  DataFileHeader header;
  header.key_type = static_cast<uint32_t>(key_type);
  header.element_size = element_size;
  header.element_count = element_count;
  OPAQ_RETURN_IF_ERROR(device->WriteAt(0, &header, sizeof(header)));
  return DataFile(device, header);
}

Status DataFile::ReadElements(uint64_t first, uint64_t count,
                              void* out) const {
  if (first + count > header_.element_count) {
    return Status::OutOfRange("element read past end of data file");
  }
  if (count == 0) return Status::OK();
  return device_->ReadAt(ByteOffset(first), out,
                         count * header_.element_size);
}

Status DataFile::WriteElements(uint64_t first, uint64_t count,
                               const void* in) {
  if (count == 0) return Status::OK();
  return device_->WriteAt(ByteOffset(first), in,
                          count * header_.element_size);
}

Status DataFile::SetElementCount(uint64_t count) {
  header_.element_count = count;
  return device_->WriteAt(0, &header_, sizeof(header_));
}

}  // namespace opaq
