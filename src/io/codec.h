#ifndef OPAQ_IO_CODEC_H_
#define OPAQ_IO_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace opaq {

/// Codec tags stored in extent headers (io/extent.h). The numeric values are
/// part of the on-disk format — never renumber, only append.
enum class ExtentCodec : uint16_t {
  /// Passthrough: payload bytes stored verbatim. Always available, and the
  /// fallback the writer picks per extent when a configured codec fails to
  /// shrink that extent (incompressible data must never grow on disk).
  kRaw = 0,
  /// Zigzag delta + LEB128 varint over the element words — implemented
  /// in-repo, so compressed files round-trip on every build with zero
  /// external dependencies. Strong on sorted / clustered integer data (the
  /// paper's workloads); lossless on floats too (bit patterns delta as
  /// integers, just with little gain).
  kDelta = 1,
  /// zlib DEFLATE (level 1: this codec exists to trade CPU on the prefetch
  /// threads for disk bandwidth, so encode speed matters more than ratio).
  /// Compiled in only when the build finds zlib; a build without it still
  /// *recognizes* the tag and fails reads with Unimplemented, never a crash.
  kZlib = 2,
};

/// Number of codec tags (bounds the per-codec stat arrays).
inline constexpr size_t kNumExtentCodecs = 3;

/// One compression algorithm, stateless and thread-safe: extent decode runs
/// concurrently on the prefetch threads (async reader, stripe readers, the
/// remote client's streaming thread), so implementations must not keep
/// mutable state across calls.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual ExtentCodec id() const = 0;
  virtual const char* name() const = 0;

  /// Compresses `len` bytes (a whole number of `element_size`-byte elements)
  /// into `out` (assigned, not appended). The output may be LARGER than the
  /// input for incompressible data — the extent writer handles that by
  /// storing such extents raw.
  virtual Status Compress(const uint8_t* data, size_t len,
                          uint32_t element_size,
                          std::vector<uint8_t>* out) const = 0;

  /// Decompresses `len` stored bytes into exactly `out_len` bytes at `out`.
  /// `out_len` comes from trusted geometry, never from stored headers, so a
  /// lying stream is an error here — implementations must fail (without
  /// writing past `out + out_len`) when the input does not decode to exactly
  /// `out_len` bytes.
  virtual Status Decompress(const uint8_t* data, size_t len,
                            uint32_t element_size, uint8_t* out,
                            size_t out_len) const = 0;
};

/// Registry lookup: the codec for `id`, or nullptr when the tag is unknown
/// to this build entirely. A known-but-not-compiled-in codec (zlib without
/// zlib) returns a stub whose Compress/Decompress fail with Unimplemented,
/// so callers can distinguish "corrupt tag" from "rebuild with zlib".
const Codec* GetCodec(ExtentCodec id);

/// True when `id` can both encode and decode in this build.
bool CodecAvailable(ExtentCodec id);

/// Stable short name ("raw" / "delta" / "zlib"); "?" when unknown.
const char* ExtentCodecName(ExtentCodec id);
const char* ExtentCodecName(uint16_t id);

/// Parses a `--compress` flag value ("raw", "delta", "zlib"); InvalidArgument
/// for anything else, Unimplemented for a codec this build cannot encode.
Result<ExtentCodec> ParseExtentCodec(const std::string& name);

}  // namespace opaq

#endif  // OPAQ_IO_CODEC_H_
