#ifndef OPAQ_IO_BLOCK_DEVICE_H_
#define OPAQ_IO_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace opaq {

/// Cumulative I/O counters for one device. Thread-safe (relaxed atomics):
/// the parallel harness reads them from the driver thread while processor
/// threads do I/O.
struct IoStats {
  std::atomic<uint64_t> read_requests{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> write_requests{0};
  std::atomic<uint64_t> bytes_written{0};

  void Reset() {
    read_requests = 0;
    bytes_read = 0;
    write_requests = 0;
    bytes_written = 0;
  }
};

/// Random-access byte device: the project's abstraction of a disk.
///
/// OPAQ's setting is disk-resident data, so all dataset access in the core
/// library goes through this interface. Implementations: `MemoryBlockDevice`
/// (RAM-backed, for tests), `FileBlockDevice` (a real file), and
/// `ThrottledDevice` (wraps another device with a bandwidth/latency model to
/// simulate 1997-class disk arms; see throttled_device.h).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Reads exactly `length` bytes at `offset` into `buffer`. Fails with
  /// OutOfRange if the read would pass the end of the device.
  virtual Status ReadAt(uint64_t offset, void* buffer, size_t length) = 0;

  /// Writes `length` bytes at `offset`, extending the device if needed.
  virtual Status WriteAt(uint64_t offset, const void* buffer,
                         size_t length) = 0;

  /// Current size in bytes.
  virtual Result<uint64_t> Size() const = 0;

  /// Flushes buffered writes to stable storage (no-op for memory devices).
  virtual Status Sync() = 0;

  /// I/O counters (updated by every ReadAt/WriteAt).
  const IoStats& stats() const { return stats_; }
  IoStats& mutable_stats() { return stats_; }

 protected:
  void RecordRead(size_t length) {
    stats_.read_requests.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(length, std::memory_order_relaxed);
  }
  void RecordWrite(size_t length) {
    stats_.write_requests.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(length, std::memory_order_relaxed);
  }

 private:
  IoStats stats_;
};

/// RAM-backed device. Useful for unit tests and for small intermediate data.
class MemoryBlockDevice : public BlockDevice {
 public:
  MemoryBlockDevice() = default;

  Status ReadAt(uint64_t offset, void* buffer, size_t length) override;
  Status WriteAt(uint64_t offset, const void* buffer, size_t length) override;
  Result<uint64_t> Size() const override;
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<uint8_t> data_;
};

/// POSIX-file-backed device using pread/pwrite (thread-safe positioned I/O).
class FileBlockDevice : public BlockDevice {
 public:
  /// Opens (mode kOpen) or creates/truncates (mode kCreate) `path`.
  enum class Mode { kOpen, kCreate };
  static Result<std::unique_ptr<FileBlockDevice>> Make(const std::string& path,
                                                       Mode mode);

  ~FileBlockDevice() override;
  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  Status ReadAt(uint64_t offset, void* buffer, size_t length) override;
  Status WriteAt(uint64_t offset, const void* buffer, size_t length) override;
  Result<uint64_t> Size() const override;
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  FileBlockDevice(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
};

}  // namespace opaq

#endif  // OPAQ_IO_BLOCK_DEVICE_H_
