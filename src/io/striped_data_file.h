#ifndef OPAQ_IO_STRIPED_DATA_FILE_H_
#define OPAQ_IO_STRIPED_DATA_FILE_H_

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "io/block_device.h"
#include "io/data_file.h"
#include "io/io_mode.h"
#include "util/math.h"
#include "util/status.h"

namespace opaq {

/// Fixed 48-byte header at offset 0 of EVERY stripe of a striped data file.
///
/// A striped data file partitions one logical dataset round-robin across D
/// independent `BlockDevice`s in fixed-size chunks of `chunk_elements`
/// elements: logical chunk c lives on stripe c % D, at local chunk slot
/// c / D. Each stripe is self-describing — the header repeats the shared
/// geometry plus the stripe's own index — so opening validates both that
/// all stripes belong to the same dataset and that the caller passed them
/// in the right order.
struct StripeFileHeader {
  static constexpr uint64_t kMagic = 0x4f50415153545031ULL;  // "OPAQSTP1"
  uint64_t magic = kMagic;
  uint32_t version = 1;
  uint32_t key_type = 0;
  uint32_t element_size = 0;
  uint32_t num_stripes = 0;
  uint32_t stripe_index = 0;
  uint32_t reserved = 0;
  uint64_t chunk_elements = 0;
  uint64_t total_elements = 0;
};
static_assert(sizeof(StripeFileHeader) == 48);
static_assert(std::is_trivially_copyable_v<StripeFileHeader>);

/// A dataset striped round-robin across D block devices — the multi-disk
/// storage backend. Same role as `TypedDataFile<K>` (a typed, bounds-checked
/// view of `header | records` per stripe), but the record space is the
/// *logical* element index space: `Read`/`Write` scatter-gather across
/// stripes, and `StripedRunSource` (striped_run_source.h) streams runs with
/// one reader thread per stripe.
///
/// Devices are borrowed and must outlive the file. All metadata updates
/// (element count) rewrite the header of every stripe so the set stays
/// mutually consistent.
template <typename K>
class StripedDataFile {
 public:
  /// Writes fresh stripe headers describing an (initially empty unless
  /// `element_count` > 0) dataset chunked every `chunk_elements` elements.
  static Result<StripedDataFile<K>> Create(std::vector<BlockDevice*> devices,
                                           uint64_t chunk_elements,
                                           uint64_t element_count = 0) {
    if (devices.empty() || devices.size() > kMaxStripes) {
      return Status::InvalidArgument(
          "striped file needs between 1 and " + std::to_string(kMaxStripes) +
          " stripe devices, got " + std::to_string(devices.size()));
    }
    if (chunk_elements == 0) {
      return Status::InvalidArgument("stripe chunk_elements must be positive");
    }
    for (BlockDevice* device : devices) {
      if (device == nullptr) {
        return Status::InvalidArgument("null stripe device");
      }
    }
    StripedDataFile<K> file(std::move(devices), chunk_elements, element_count);
    OPAQ_RETURN_IF_ERROR(file.RewriteHeaders());
    return file;
  }

  /// Opens an existing striped file, validating that every stripe carries a
  /// consistent header and sits at the position its header claims, and that
  /// no stripe is shorter than the geometry requires.
  static Result<StripedDataFile<K>> Open(std::vector<BlockDevice*> devices) {
    if (devices.empty() || devices.size() > kMaxStripes) {
      return Status::InvalidArgument(
          "striped file needs between 1 and " + std::to_string(kMaxStripes) +
          " stripe devices, got " + std::to_string(devices.size()));
    }
    StripeFileHeader first;
    for (size_t s = 0; s < devices.size(); ++s) {
      if (devices[s] == nullptr) {
        return Status::InvalidArgument("null stripe device");
      }
      StripeFileHeader header;
      OPAQ_RETURN_IF_ERROR(
          devices[s]->ReadAt(0, &header, sizeof(header)));
      if (header.magic != StripeFileHeader::kMagic) {
        return Status::InvalidArgument(
            "stripe " + std::to_string(s) +
            ": bad magic, not an OPAQ stripe file");
      }
      if (header.version != 1) {
        return Status::InvalidArgument(
            "stripe " + std::to_string(s) + ": unsupported version");
      }
      if (header.key_type != static_cast<uint32_t>(KeyTraits<K>::kType) ||
          header.element_size != sizeof(K)) {
        return Status::InvalidArgument(
            std::string("stripe holds a different key type than ") +
            KeyTraits<K>::kName);
      }
      if (header.num_stripes != devices.size()) {
        return Status::InvalidArgument(
            "stripe " + std::to_string(s) + " belongs to a " +
            std::to_string(header.num_stripes) + "-stripe set, but " +
            std::to_string(devices.size()) + " devices were supplied");
      }
      if (header.stripe_index != s) {
        return Status::InvalidArgument(
            "stripe devices out of order: position " + std::to_string(s) +
            " holds stripe " + std::to_string(header.stripe_index));
      }
      if (header.chunk_elements == 0) {
        return Status::InvalidArgument(
            "stripe " + std::to_string(s) + ": zero chunk size");
      }
      if (s == 0) {
        first = header;
      } else if (header.chunk_elements != first.chunk_elements ||
                 header.total_elements != first.total_elements) {
        return Status::InvalidArgument(
            "stripe " + std::to_string(s) +
            " disagrees with stripe 0 about the dataset geometry");
      }
    }
    StripedDataFile<K> file(std::move(devices), first.chunk_elements,
                            first.total_elements);
    // Guard against truncated stripes up front, mirroring DataFile::Open.
    for (uint32_t s = 0; s < file.num_stripes(); ++s) {
      auto size = file.devices_[s]->Size();
      if (!size.ok()) return size.status();
      const uint64_t needed =
          sizeof(StripeFileHeader) + file.StripeElements(s) * sizeof(K);
      if (*size < needed) {
        return Status::InvalidArgument(
            "stripe " + std::to_string(s) + " is shorter (" +
            std::to_string(*size) + " bytes) than its header promises (" +
            std::to_string(needed) + " bytes)");
      }
    }
    return file;
  }

  uint64_t size() const { return element_count_; }
  uint32_t num_stripes() const {
    return static_cast<uint32_t>(devices_.size());
  }
  uint64_t chunk_elements() const { return chunk_elements_; }
  uint64_t num_chunks() const { return DivCeil(element_count_, chunk_elements_); }
  BlockDevice* stripe_device(uint32_t s) const { return devices_[s]; }

  /// Number of elements in logical chunk `c` (only the last chunk of the
  /// dataset may be partial).
  uint64_t ChunkLength(uint64_t chunk) const {
    const uint64_t start = chunk * chunk_elements_;
    OPAQ_CHECK_LT(start, element_count_);
    return std::min(chunk_elements_, element_count_ - start);
  }

  /// Total elements resident on stripe `s`. Closed form (Open validates
  /// every stripe with this, so it must not walk the chunk list).
  uint64_t StripeElements(uint32_t s) const {
    const uint64_t chunks = num_chunks();
    if (s >= chunks) return 0;
    // Chunks owned by stripe s: s, s + D, ... below `chunks`.
    const uint64_t owned = (chunks - 1 - s) / num_stripes() + 1;
    uint64_t total = owned * chunk_elements_;
    // Only the dataset's final chunk may be partial; subtract its shortfall
    // if this stripe owns it.
    if ((chunks - 1) % num_stripes() == s) {
      total -= chunks * chunk_elements_ - element_count_;
    }
    return total;
  }

  /// Reads `count` logical elements starting at element `first` into `out`,
  /// gathering across stripes. Fails with OutOfRange past the end.
  Status Read(uint64_t first, uint64_t count, K* out) const {
    return Transfer<false>(first, count, out);
  }

  /// Writes `count` logical elements at element `first`, scattering across
  /// stripes. Does not grow the element count; use `Append` for that.
  Status Write(uint64_t first, uint64_t count, const K* in) {
    return Transfer<true>(first, count, const_cast<K*>(in));
  }

  /// Appends `values` after the current end and persists the new count in
  /// every stripe header.
  Status Append(const std::vector<K>& values) {
    const uint64_t first = element_count_;
    element_count_ += values.size();  // Transfer bounds-checks against this
    Status s = values.empty()
                   ? Status::OK()
                   : Transfer<true>(first, values.size(),
                                    const_cast<K*>(values.data()));
    if (!s.ok()) {
      element_count_ = first;
      return s;
    }
    return RewriteHeaders();
  }

  /// Reads the whole logical dataset (test/metrics helper, like
  /// `TypedDataFile::ReadAll`).
  Result<std::vector<K>> ReadAll() const {
    std::vector<K> out(element_count_);
    if (!out.empty()) {
      OPAQ_RETURN_IF_ERROR(Read(0, out.size(), out.data()));
    }
    return out;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "StripedDataFile(n=" << element_count_ << ", stripes="
       << num_stripes() << ", chunk=" << chunk_elements_ << ")";
    return os.str();
  }

 private:
  StripedDataFile(std::vector<BlockDevice*> devices, uint64_t chunk_elements,
                  uint64_t element_count)
      : devices_(std::move(devices)),
        chunk_elements_(chunk_elements),
        element_count_(element_count) {}

  /// Byte offset on chunk `c`'s stripe of the element `offset_in_chunk`
  /// positions into the chunk.
  uint64_t StripeByteOffset(uint64_t chunk, uint64_t offset_in_chunk) const {
    const uint64_t local_chunk = chunk / num_stripes();
    return sizeof(StripeFileHeader) +
           (local_chunk * chunk_elements_ + offset_in_chunk) * sizeof(K);
  }

  /// Shared scatter/gather loop: walks the chunks overlapping
  /// `[first, first + count)`, issuing one device request per chunk slice.
  template <bool kWrite>
  Status Transfer(uint64_t first, uint64_t count, K* buffer) const {
    if (first > element_count_ || count > element_count_ - first) {
      return Status::OutOfRange(
          "striped " + std::string(kWrite ? "write" : "read") + " of [" +
          std::to_string(first) + ", +" + std::to_string(count) +
          ") passes the end (" + std::to_string(element_count_) +
          " elements)");
    }
    uint64_t done = 0;
    while (done < count) {
      const uint64_t logical = first + done;
      const uint64_t chunk = logical / chunk_elements_;
      const uint64_t offset_in_chunk = logical % chunk_elements_;
      const uint64_t len = std::min(count - done,
                                    chunk_elements_ - offset_in_chunk);
      BlockDevice* device = devices_[chunk % num_stripes()];
      const uint64_t byte_offset = StripeByteOffset(chunk, offset_in_chunk);
      if constexpr (kWrite) {
        OPAQ_RETURN_IF_ERROR(
            device->WriteAt(byte_offset, buffer + done, len * sizeof(K)));
      } else {
        OPAQ_RETURN_IF_ERROR(
            device->ReadAt(byte_offset, buffer + done, len * sizeof(K)));
      }
      done += len;
    }
    return Status::OK();
  }

  Status RewriteHeaders() {
    for (uint32_t s = 0; s < num_stripes(); ++s) {
      StripeFileHeader header;
      header.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
      header.element_size = sizeof(K);
      header.num_stripes = num_stripes();
      header.stripe_index = s;
      header.chunk_elements = chunk_elements_;
      header.total_elements = element_count_;
      OPAQ_RETURN_IF_ERROR(
          devices_[s]->WriteAt(0, &header, sizeof(header)));
    }
    return Status::OK();
  }

  std::vector<BlockDevice*> devices_;
  uint64_t chunk_elements_ = 0;
  uint64_t element_count_ = 0;
};

/// Creates a striped file over `devices` and writes `values` into it in
/// bounded slices — the striped sibling of `WriteDataset`.
template <typename K>
Result<StripedDataFile<K>> WriteStriped(const std::vector<K>& values,
                                        std::vector<BlockDevice*> devices,
                                        uint64_t chunk_elements) {
  auto file = StripedDataFile<K>::Create(std::move(devices), chunk_elements,
                                         values.size());
  if (!file.ok()) return file.status();
  constexpr uint64_t kSlice = 1 << 20;
  for (uint64_t first = 0; first < values.size(); first += kSlice) {
    const uint64_t len = std::min<uint64_t>(kSlice, values.size() - first);
    OPAQ_RETURN_IF_ERROR(file->Write(first, len, values.data() + first));
  }
  return file;
}

}  // namespace opaq

#endif  // OPAQ_IO_STRIPED_DATA_FILE_H_
