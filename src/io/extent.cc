#include "io/extent.h"

#include <cstring>

#include "telemetry/trace.h"
#include "util/crc32.h"

namespace opaq {
namespace {

/// Local extents of stripe `s` in a `num_extents`-extent, `stripes`-stripe
/// file: the extents e ≡ s (mod stripes) below num_extents.
uint64_t LocalExtents(uint64_t num_extents, uint32_t stripes, uint32_t s) {
  if (num_extents <= s) return 0;
  return (num_extents - 1 - s) / stripes + 1;
}

Status ValidateGeometry(uint32_t element_size, uint64_t extent_elements) {
  if (element_size == 0 || element_size > 16) {
    return Status::InvalidArgument("extent element size " +
                                   std::to_string(element_size) +
                                   " out of range [1, 16]");
  }
  if (extent_elements == 0 ||
      extent_elements > kMaxExtentBytes / element_size) {
    return Status::InvalidArgument(
        "extent size " + std::to_string(extent_elements) +
        " elements out of range [1, " +
        std::to_string(kMaxExtentBytes / element_size) + "] for " +
        std::to_string(element_size) + "-byte elements");
  }
  return Status::OK();
}

}  // namespace

// --------------------------------------------------------- decode ----

Status DecodeStoredExtent(const uint8_t* data, size_t len,
                          uint64_t expected_index, uint64_t expected_unpacked,
                          uint32_t element_size, bool verify_crc, void* out,
                          ExtentStats* stats) {
  TraceSpan decode_span(TraceStage::kExtentDecode);
  if (len < sizeof(ExtentHeader)) {
    return Status::IoError("truncated extent header: " + std::to_string(len) +
                           " of " + std::to_string(sizeof(ExtentHeader)) +
                           " bytes");
  }
  ExtentHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.magic != ExtentHeader::kMagic) {
    return Status::InvalidArgument("bad extent magic (not an OPAQ extent)");
  }
  if (header.version != 1) {
    return Status::InvalidArgument("unsupported extent version " +
                                   std::to_string(header.version));
  }
  const Codec* codec = GetCodec(static_cast<ExtentCodec>(header.codec));
  if (codec == nullptr) {
    return Status::InvalidArgument("unknown extent codec tag " +
                                   std::to_string(header.codec));
  }
  if (header.extent_index != expected_index) {
    return Status::IoError("extent " + std::to_string(header.extent_index) +
                           " stored where extent " +
                           std::to_string(expected_index) + " was expected");
  }
  // The allocation-bomb guard: the expected unpacked size comes from trusted
  // geometry, so a header claiming anything else is rejected HERE — before
  // any buffer is sized from it.
  if (header.unpacked_len != expected_unpacked) {
    return Status::IoError(
        "extent claims " + std::to_string(header.unpacked_len) +
        " unpacked bytes where geometry expects " +
        std::to_string(expected_unpacked));
  }
  if (header.packed_len != len - sizeof(ExtentHeader)) {
    return Status::IoError(
        "extent payload truncated or padded: header promises " +
        std::to_string(header.packed_len) + " packed bytes, " +
        std::to_string(len - sizeof(ExtentHeader)) + " present");
  }
  // Writers fall back to raw per extent, so stored payloads never exceed
  // unpacked ones; anything else is corruption.
  if (header.packed_len > header.unpacked_len) {
    return Status::IoError("extent packed payload (" +
                           std::to_string(header.packed_len) +
                           " bytes) larger than its unpacked size (" +
                           std::to_string(header.unpacked_len) + " bytes)");
  }
  const uint8_t* payload = data + sizeof(ExtentHeader);
  if (verify_crc) {
    const uint32_t crc = Crc32(payload, header.packed_len);
    if (crc != header.payload_crc) {
      return Status::IoError("extent payload CRC mismatch");
    }
  }
  OPAQ_RETURN_IF_ERROR(codec->Decompress(
      payload, header.packed_len, element_size, static_cast<uint8_t*>(out),
      expected_unpacked));
  if (stats != nullptr) {
    stats->Record(static_cast<ExtentCodec>(header.codec), expected_unpacked,
                  len);
  }
  return Status::OK();
}

// --------------------------------------------------------- writer ----

ExtentWriter::ExtentWriter(std::vector<BlockDevice*> devices,
                           KeyType key_type, uint32_t element_size,
                           const ExtentWriterOptions& options)
    : devices_(std::move(devices)), key_type_(key_type),
      element_size_(element_size), options_(options),
      extent_bytes_(options.extent_elements * element_size),
      write_offset_(devices_.size(), sizeof(ExtentFileHeader)),
      directory_(devices_.size()),
      stats_(std::make_unique<ExtentStats>()) {}

Result<ExtentWriter> ExtentWriter::Create(std::vector<BlockDevice*> devices,
                                          KeyType key_type,
                                          uint32_t element_size,
                                          const ExtentWriterOptions& options) {
  if (devices.empty() || devices.size() > kMaxStripes) {
    return Status::InvalidArgument(
        "extent file needs between 1 and " + std::to_string(kMaxStripes) +
        " stripe devices, got " + std::to_string(devices.size()));
  }
  for (BlockDevice* device : devices) {
    if (device == nullptr) {
      return Status::InvalidArgument("null extent stripe device");
    }
  }
  OPAQ_RETURN_IF_ERROR(ValidateGeometry(element_size,
                                        options.extent_elements));
  const Codec* codec = GetCodec(options.codec);
  if (codec == nullptr) {
    return Status::InvalidArgument("unknown extent codec tag " +
                                   std::to_string(
                                       static_cast<uint16_t>(options.codec)));
  }
  if (!CodecAvailable(options.codec)) {
    return Status::Unimplemented(std::string("codec '") + codec->name() +
                                 "' not available in this build");
  }
  if (options.codec == ExtentCodec::kDelta && element_size != 4 &&
      element_size != 8) {
    return Status::InvalidArgument(
        "delta codec supports 4- and 8-byte elements, got " +
        std::to_string(element_size));
  }
  ExtentWriter writer(std::move(devices), key_type, element_size, options);
  // Provisional headers: directory_offset stays 0 until Finish commits, so
  // a half-written file fails Open loudly instead of reading as empty.
  for (uint32_t s = 0; s < writer.devices_.size(); ++s) {
    ExtentFileHeader header = writer.MakeHeader(s, /*finished=*/false);
    OPAQ_RETURN_IF_ERROR(
        writer.devices_[s]->WriteAt(0, &header, sizeof(header)));
  }
  return writer;
}

ExtentFileHeader ExtentWriter::MakeHeader(uint32_t stripe,
                                          bool finished) const {
  ExtentFileHeader header;
  header.key_type = static_cast<uint32_t>(key_type_);
  header.element_size = element_size_;
  header.num_stripes = static_cast<uint32_t>(devices_.size());
  header.stripe_index = stripe;
  header.default_codec = static_cast<uint32_t>(options_.codec);
  header.extent_elements = options_.extent_elements;
  header.total_elements = total_elements_;
  header.num_extents = next_extent_;
  header.directory_offset = finished ? write_offset_[stripe] : 0;
  return header;
}

Status ExtentWriter::Append(const void* data, uint64_t count) {
  if (finished_) {
    return Status::FailedPrecondition("extent writer already finished");
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t len = count * element_size_;
  total_elements_ += count;
  // Top the pending tail up to a full extent first, then flush whole
  // extents straight from the caller's buffer (copying only ragged edges).
  if (!buffer_.empty()) {
    const uint64_t take = std::min(extent_bytes_ - buffer_.size(),
                                   static_cast<uint64_t>(len));
    buffer_.insert(buffer_.end(), bytes, bytes + take);
    bytes += take;
    len -= take;
    if (buffer_.size() == extent_bytes_) {
      OPAQ_RETURN_IF_ERROR(FlushExtent(buffer_.data(), extent_bytes_));
      buffer_.clear();
    }
  }
  while (len >= extent_bytes_) {
    OPAQ_RETURN_IF_ERROR(FlushExtent(bytes, extent_bytes_));
    bytes += extent_bytes_;
    len -= extent_bytes_;
  }
  buffer_.insert(buffer_.end(), bytes, bytes + len);
  return Status::OK();
}

Status ExtentWriter::FlushExtent(const uint8_t* payload,
                                 uint64_t payload_len) {
  const uint64_t e = next_extent_++;
  const uint32_t s = static_cast<uint32_t>(e % devices_.size());
  const uint8_t* stored = payload;
  uint64_t stored_len = payload_len;
  ExtentCodec used = ExtentCodec::kRaw;
  if (options_.codec != ExtentCodec::kRaw) {
    OPAQ_RETURN_IF_ERROR(GetCodec(options_.codec)
                             ->Compress(payload, payload_len, element_size_,
                                        &packed_));
    // Per-extent codec choice: store raw whenever the codec failed to shrink
    // this extent, so packed payloads never exceed unpacked ones (readers
    // enforce that bound).
    if (packed_.size() < payload_len) {
      stored = packed_.data();
      stored_len = packed_.size();
      used = options_.codec;
    }
  }
  ExtentHeader header;
  header.codec = static_cast<uint16_t>(used);
  header.payload_crc = Crc32(stored, stored_len);
  header.extent_index = e;
  header.unpacked_len = payload_len;
  header.packed_len = stored_len;
  const uint64_t at = write_offset_[s];
  OPAQ_RETURN_IF_ERROR(devices_[s]->WriteAt(at, &header, sizeof(header)));
  OPAQ_RETURN_IF_ERROR(
      devices_[s]->WriteAt(at + sizeof(header), stored, stored_len));
  directory_[s].push_back(at);
  write_offset_[s] = at + sizeof(header) + stored_len;
  stats_->Record(used, payload_len, sizeof(header) + stored_len);
  return Status::OK();
}

Status ExtentWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("extent writer already finished");
  }
  if (!buffer_.empty()) {
    OPAQ_RETURN_IF_ERROR(FlushExtent(buffer_.data(), buffer_.size()));
    buffer_.clear();
  }
  finished_ = true;
  for (uint32_t s = 0; s < devices_.size(); ++s) {
    // Directory: every local extent's byte offset, then a CRC over them.
    const std::vector<uint64_t>& offsets = directory_[s];
    const size_t offset_bytes = offsets.size() * sizeof(uint64_t);
    const uint32_t crc = Crc32(offsets.data(), offset_bytes);
    const uint64_t at = write_offset_[s];
    if (offset_bytes != 0) {
      OPAQ_RETURN_IF_ERROR(
          devices_[s]->WriteAt(at, offsets.data(), offset_bytes));
    }
    OPAQ_RETURN_IF_ERROR(
        devices_[s]->WriteAt(at + offset_bytes, &crc, sizeof(crc)));
    ExtentFileHeader header = MakeHeader(s, /*finished=*/true);
    OPAQ_RETURN_IF_ERROR(devices_[s]->WriteAt(0, &header, sizeof(header)));
  }
  return Status::OK();
}

// ----------------------------------------------------------- open ----

Result<ExtentFile> ExtentFile::Open(std::vector<BlockDevice*> devices) {
  if (devices.empty() || devices.size() > kMaxStripes) {
    return Status::InvalidArgument(
        "extent file needs between 1 and " + std::to_string(kMaxStripes) +
        " stripe devices, got " + std::to_string(devices.size()));
  }
  ExtentFileHeader first;
  std::vector<uint64_t> directory_end(devices.size(), 0);
  for (size_t s = 0; s < devices.size(); ++s) {
    if (devices[s] == nullptr) {
      return Status::InvalidArgument("null extent stripe device");
    }
    ExtentFileHeader header;
    OPAQ_RETURN_IF_ERROR(devices[s]->ReadAt(0, &header, sizeof(header)));
    if (header.magic != ExtentFileHeader::kMagic) {
      return Status::InvalidArgument("stripe " + std::to_string(s) +
                                     ": bad magic, not an OPAQ extent file");
    }
    if (header.version != 1) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) + ": unsupported extent file version " +
          std::to_string(header.version));
    }
    OPAQ_RETURN_IF_ERROR(
        ValidateGeometry(header.element_size, header.extent_elements));
    if (header.num_stripes != devices.size()) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) + " belongs to a " +
          std::to_string(header.num_stripes) + "-stripe set, but " +
          std::to_string(devices.size()) + " devices were supplied");
    }
    if (header.stripe_index != s) {
      return Status::InvalidArgument(
          "stripe devices out of order: position " + std::to_string(s) +
          " holds stripe " + std::to_string(header.stripe_index));
    }
    if (header.num_extents !=
        DivCeil(header.total_elements, header.extent_elements)) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) + ": extent count " +
          std::to_string(header.num_extents) +
          " disagrees with its own geometry");
    }
    if (GetCodec(static_cast<ExtentCodec>(header.default_codec)) == nullptr) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) + ": unknown default codec tag " +
          std::to_string(header.default_codec));
    }
    if (header.directory_offset < sizeof(ExtentFileHeader)) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) +
          ": truncated or unfinished extent file (no directory)");
    }
    if (s == 0) {
      first = header;
    } else if (header.key_type != first.key_type ||
               header.element_size != first.element_size ||
               header.extent_elements != first.extent_elements ||
               header.total_elements != first.total_elements ||
               header.num_extents != first.num_extents ||
               header.default_codec != first.default_codec) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) +
          " disagrees with stripe 0 about the dataset geometry");
    }
    directory_end[s] = header.directory_offset;
  }
  ExtentFile file(std::move(devices), first);
  file.directory_end_ = std::move(directory_end);
  file.directory_.resize(file.devices_.size());
  const uint64_t extent_bytes =
      first.extent_elements * first.element_size;
  for (uint32_t s = 0; s < file.num_stripes(); ++s) {
    const uint64_t local =
        LocalExtents(first.num_extents, file.num_stripes(), s);
    const uint64_t offset_bytes = local * sizeof(uint64_t);
    const uint64_t directory_offset = file.directory_end_[s];
    auto size = file.devices_[s]->Size();
    if (!size.ok()) return size.status();
    if (*size < directory_offset || *size - directory_offset <
                                        offset_bytes + sizeof(uint32_t)) {
      return Status::InvalidArgument(
          "stripe " + std::to_string(s) + " is shorter (" +
          std::to_string(*size) + " bytes) than its directory promises");
    }
    std::vector<uint64_t>& offsets = file.directory_[s];
    offsets.resize(local);
    if (local != 0) {
      OPAQ_RETURN_IF_ERROR(file.devices_[s]->ReadAt(
          directory_offset, offsets.data(), offset_bytes));
    }
    uint32_t stored_crc = 0;
    OPAQ_RETURN_IF_ERROR(file.devices_[s]->ReadAt(
        directory_offset + offset_bytes, &stored_crc, sizeof(stored_crc)));
    if (stored_crc != Crc32(offsets.data(), offset_bytes)) {
      return Status::IoError("stripe " + std::to_string(s) +
                             ": extent directory CRC mismatch");
    }
    // The directory is now authenticated; validate that it describes a
    // plausible layout, which bounds every later read against it.
    for (uint64_t i = 0; i < local; ++i) {
      const uint64_t start = offsets[i];
      const uint64_t end =
          i + 1 < local ? offsets[i + 1] : directory_offset;
      if (i == 0 && start != sizeof(ExtentFileHeader)) {
        return Status::IoError("stripe " + std::to_string(s) +
                               ": first extent not at the header boundary");
      }
      if (end <= start || end - start < sizeof(ExtentHeader) ||
          end - start > sizeof(ExtentHeader) + extent_bytes) {
        return Status::IoError(
            "stripe " + std::to_string(s) + ": directory entry " +
            std::to_string(i) + " describes an implausible extent size");
      }
    }
  }
  return file;
}

uint64_t ExtentFile::StoredExtentBytes(uint64_t e) const {
  OPAQ_CHECK_LT(e, header_.num_extents);
  const uint32_t s = static_cast<uint32_t>(e % num_stripes());
  const uint64_t slot = e / num_stripes();
  const std::vector<uint64_t>& offsets = directory_[s];
  const uint64_t start = offsets[slot];
  const uint64_t end =
      slot + 1 < offsets.size() ? offsets[slot + 1] : directory_end_[s];
  return end - start;
}

Status ExtentFile::ReadStoredExtent(uint64_t e,
                                    std::vector<uint8_t>* out) const {
  if (e >= header_.num_extents) {
    return Status::OutOfRange("extent " + std::to_string(e) +
                              " past the end (" +
                              std::to_string(header_.num_extents) +
                              " extents)");
  }
  const uint32_t s = static_cast<uint32_t>(e % num_stripes());
  const uint64_t slot = e / num_stripes();
  const uint64_t start = directory_[s][slot];
  out->resize(StoredExtentBytes(e));
  return devices_[s]->ReadAt(start, out->data(), out->size());
}

Status ExtentFile::DecodeExtent(uint64_t e, bool verify_checksums,
                                std::vector<uint8_t>* scratch,
                                void* out) const {
  OPAQ_RETURN_IF_ERROR(ReadStoredExtent(e, scratch));
  const uint64_t expected_unpacked =
      ExtentLength(e) * header_.element_size;
  return DecodeStoredExtent(scratch->data(), scratch->size(), e,
                            expected_unpacked, header_.element_size,
                            verify_checksums, out, stats_.get());
}

Status ExtentFile::ReadElements(uint64_t first, uint64_t count,
                                void* out) const {
  if (first > header_.total_elements ||
      count > header_.total_elements - first) {
    return Status::OutOfRange(
        "read [" + std::to_string(first) + ", +" + std::to_string(count) +
        ") passes the end (" + std::to_string(header_.total_elements) +
        " elements)");
  }
  if (count == 0) return Status::OK();
  uint8_t* dst = static_cast<uint8_t*>(out);
  std::vector<uint8_t> scratch;
  std::vector<uint8_t> extent_buf;
  const uint64_t end = first + count;
  for (uint64_t e = first / header_.extent_elements;
       e * header_.extent_elements < end; ++e) {
    const uint64_t extent_start = e * header_.extent_elements;
    const uint64_t extent_len = ExtentLength(e);
    extent_buf.resize(extent_len * header_.element_size);
    OPAQ_RETURN_IF_ERROR(DecodeExtent(e, /*verify_checksums=*/true, &scratch,
                                      extent_buf.data()));
    const uint64_t start = std::max(extent_start, first);
    const uint64_t stop = std::min(extent_start + extent_len, end);
    std::memcpy(dst + (start - first) * header_.element_size,
                extent_buf.data() + (start - extent_start) *
                                        header_.element_size,
                (stop - start) * header_.element_size);
  }
  return Status::OK();
}

}  // namespace opaq
