// opaq_noded — the OPAQ data-node daemon: exports local datasets (plain,
// striped, or compressed-extent files, any key type) over the wire
// protocol so remote `Engine`s can consume them as shards via
// `Source::OpenRemote`. Every export is typed, so the node is a full v2
// COMPUTE node: it answers `SampleRuns` / `ExactPass` by running the
// paper's sample phase and §4 filter scan over its own disks and shipping
// only the O(s) results; v1 clients (and `--max-wire-version=1` nodes)
// still stream raw ranges. Extent exports additionally answer the v4
// `kReadExtents` op: the stored (packed) extents ship verbatim and the
// client decodes, so compression cuts bytes-on-wire too. The on-disk
// format is sniffed per export — point --export at any OPAQ file.
//
//   opaq_noded --export=sales=/data/sales.opaq --port=34601
//   opaq_noded --export=logs=/d0/l.s0+/d1/l.s1+/d2/l.s2   # striped dataset
//   opaq_noded --export=a=a.opaq,b=b.opaq --port=0        # 0 = ephemeral
//
// Each --export entry is name=path (plain file) or name=p0+p1+... (the
// stripes of one striped file, logical order); paths may contain '=' —
// only the first '=' of an entry separates the name. Duplicate dataset
// names are a startup error. The node prints one line per dataset plus its
// bound address, then serves until SIGINT/SIGTERM (or for --duration
// seconds, for scripted runs); shutdown is ordered — every connection
// thread is joined and the final traffic counters print.
//
// SECURITY: the protocol is unauthenticated — the default bind address
// stays on 127.0.0.1; bind 0.0.0.0 only on networks where every peer is
// trusted (see README "Distributed mode").

#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "opaq/ingest.h"
#include "opaq/io.h"
#include "opaq/net.h"
#include "opaq/status.h"
#include "opaq/telemetry.h"
#include "opaq/util.h"

namespace opaq {
namespace noded {
namespace {

int Fail(const Status& status) {
  std::cerr << "opaq_noded: error: " << status.ToString() << std::endl;
  return 1;
}

/// Opens the plain data file as a typed export of key type `K`; the
/// returned dataset owns device + file and carries the v2 compute hooks
/// over the same `FileRunProvider` local mode uses.
template <typename K>
Result<ExportedDataset> OpenPlainExportTyped(
    std::unique_ptr<FileBlockDevice> device) {
  struct Bundle {
    std::unique_ptr<FileBlockDevice> device;
    std::unique_ptr<TypedDataFile<K>> file;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->device = std::move(device);
  auto file = TypedDataFile<K>::Open(bundle->device.get());
  if (!file.ok()) return file.status();
  bundle->file = std::make_unique<TypedDataFile<K>>(std::move(file).value());
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  dataset.element_size = sizeof(K);
  dataset.element_count = bundle->file->size();
  const TypedDataFile<K>* fptr = bundle->file.get();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->Read(first, count, static_cast<K*>(out));
  };
  dataset.sample_runs = [fptr](const WireSampleRunsRequest& request,
                               uint64_t max_run_bytes) {
    return NodeSampleRuns<K>(FileRunProvider<K>(fptr), request,
                             max_run_bytes);
  };
  dataset.exact_pass = [fptr](const WireExactPassRequest& request,
                              const uint8_t* bracket_bytes,
                              uint64_t max_run_bytes) {
    return NodeExactPass<K>(FileRunProvider<K>(fptr), request, bracket_bytes,
                            max_run_bytes);
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Opens a plain data file export, dispatching on the key type its header
/// declares (a node serves any key type; clients type-check at handshake).
Result<ExportedDataset> OpenPlainExport(const std::string& path) {
  auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return device.status();
  DataFileHeader header;
  OPAQ_RETURN_IF_ERROR((*device)->ReadAt(0, &header, sizeof(header)));
  switch (static_cast<KeyType>(header.key_type)) {
    case KeyType::kU32:
      return OpenPlainExportTyped<uint32_t>(std::move(device).value());
    case KeyType::kU64:
      return OpenPlainExportTyped<uint64_t>(std::move(device).value());
    case KeyType::kI64:
      return OpenPlainExportTyped<int64_t>(std::move(device).value());
    case KeyType::kF32:
      return OpenPlainExportTyped<float>(std::move(device).value());
    case KeyType::kF64:
      return OpenPlainExportTyped<double>(std::move(device).value());
  }
  return Status::InvalidArgument(
      path + ": unknown key type tag " + std::to_string(header.key_type) +
      " (not an OPAQ data file?)");
}

/// Opens the stripes as a typed striped file of key type `K`; the returned
/// dataset owns every device and the file, and computes over the striped
/// readers directly (kAsync = one thread per stripe).
template <typename K>
Result<ExportedDataset> OpenStripedExportTyped(
    std::vector<std::unique_ptr<FileBlockDevice>> devices) {
  struct Bundle {
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::unique_ptr<StripedDataFile<K>> file;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->devices = std::move(devices);
  std::vector<BlockDevice*> raw;
  raw.reserve(bundle->devices.size());
  for (auto& device : bundle->devices) raw.push_back(device.get());
  auto file = StripedDataFile<K>::Open(std::move(raw));
  if (!file.ok()) return file.status();
  bundle->file =
      std::make_unique<StripedDataFile<K>>(std::move(file).value());
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  dataset.element_size = sizeof(K);
  dataset.element_count = bundle->file->size();
  const StripedDataFile<K>* fptr = bundle->file.get();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->Read(first, count, static_cast<K*>(out));
  };
  dataset.sample_runs = [fptr](const WireSampleRunsRequest& request,
                               uint64_t max_run_bytes) {
    return NodeSampleRuns<K>(StripedFileProvider<K>(fptr), request,
                             max_run_bytes);
  };
  dataset.exact_pass = [fptr](const WireExactPassRequest& request,
                              const uint8_t* bracket_bytes,
                              uint64_t max_run_bytes) {
    return NodeExactPass<K>(StripedFileProvider<K>(fptr), request,
                            bracket_bytes, max_run_bytes);
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Devices + extent file an extent export keeps alive for the server's
/// lifetime (the typed opener below borrows raw pointers out of it).
struct ExtentBundle {
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  std::unique_ptr<ExtentFile> file;
};

/// Binds the compressed-extent file as a typed export of key type `K`.
/// The dataset serves every client generation: v1 `kReadRange` decodes
/// node-side, v2 compute runs over the extent-decoding provider, and v4
/// `kReadExtents` ships the stored extents verbatim so the wire carries
/// packed bytes and the remote engine decodes on its own streaming thread.
template <typename K>
Result<ExportedDataset> OpenExtentExportTyped(
    std::shared_ptr<ExtentBundle> bundle) {
  const ExtentFile* fptr = bundle->file.get();
  ExportedDataset dataset;
  dataset.key_type = fptr->key_type();
  dataset.element_size = fptr->element_size();
  dataset.element_count = fptr->size();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->ReadElements(first, count, out);
  };
  dataset.sample_runs = [fptr](const WireSampleRunsRequest& request,
                               uint64_t max_run_bytes) {
    return NodeSampleRuns<K>(ExtentFileProvider<K>(fptr), request,
                             max_run_bytes);
  };
  dataset.exact_pass = [fptr](const WireExactPassRequest& request,
                              const uint8_t* bracket_bytes,
                              uint64_t max_run_bytes) {
    return NodeExactPass<K>(ExtentFileProvider<K>(fptr), request,
                            bracket_bytes, max_run_bytes);
  };
  dataset.extent_elements = fptr->extent_elements();
  dataset.num_extents = fptr->num_extents();
  dataset.extent_codec = static_cast<uint16_t>(fptr->default_codec());
  dataset.read_stored_extent = [fptr](uint64_t extent,
                                      std::vector<uint8_t>* out) {
    std::vector<uint8_t> stored;
    OPAQ_RETURN_IF_ERROR(fptr->ReadStoredExtent(extent, &stored));
    out->insert(out->end(), stored.begin(), stored.end());
    return Status::OK();
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Opens a compressed extent export (single file or the stripes of one
/// extent file), dispatching on the key type its header declares.
Result<ExportedDataset> OpenExtentExport(
    const std::vector<std::string>& paths) {
  auto bundle = std::make_shared<ExtentBundle>();
  for (const std::string& path : paths) {
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    bundle->devices.push_back(std::move(device).value());
  }
  std::vector<BlockDevice*> raw;
  raw.reserve(bundle->devices.size());
  for (auto& device : bundle->devices) raw.push_back(device.get());
  auto file = ExtentFile::Open(std::move(raw));
  if (!file.ok()) return file.status();
  bundle->file = std::make_unique<ExtentFile>(std::move(file).value());
  switch (static_cast<KeyType>(bundle->file->key_type())) {
    case KeyType::kU32:
      return OpenExtentExportTyped<uint32_t>(std::move(bundle));
    case KeyType::kU64:
      return OpenExtentExportTyped<uint64_t>(std::move(bundle));
    case KeyType::kI64:
      return OpenExtentExportTyped<int64_t>(std::move(bundle));
    case KeyType::kF32:
      return OpenExtentExportTyped<float>(std::move(bundle));
    case KeyType::kF64:
      return OpenExtentExportTyped<double>(std::move(bundle));
  }
  return Status::InvalidArgument(
      paths[0] + ": unknown key type tag " +
      std::to_string(bundle->file->key_type()) +
      " (not an OPAQ extent file?)");
}

/// Opens a striped export, dispatching on the key type the stripe headers
/// declare (a node serves any key type; clients type-check at handshake).
Result<ExportedDataset> OpenStripedExport(
    const std::vector<std::string>& paths) {
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  for (const std::string& path : paths) {
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    devices.push_back(std::move(device).value());
  }
  StripeFileHeader header;
  OPAQ_RETURN_IF_ERROR(devices[0]->ReadAt(0, &header, sizeof(header)));
  switch (static_cast<KeyType>(header.key_type)) {
    case KeyType::kU32:
      return OpenStripedExportTyped<uint32_t>(std::move(devices));
    case KeyType::kU64:
      return OpenStripedExportTyped<uint64_t>(std::move(devices));
    case KeyType::kI64:
      return OpenStripedExportTyped<int64_t>(std::move(devices));
    case KeyType::kF32:
      return OpenStripedExportTyped<float>(std::move(devices));
    case KeyType::kF64:
      return OpenStripedExportTyped<double>(std::move(devices));
  }
  return Status::InvalidArgument(
      paths[0] + ": unknown key type tag " + std::to_string(header.key_type) +
      " (not an OPAQ stripe file?)");
}

/// A live export's shared state. Appends serialize under `writer_mutex`
/// (the wire delivers them from concurrent connection threads); every
/// committed append reopens a read snapshot and swaps it in under
/// `snapshot_mutex`, so in-flight reads/computes finish on the snapshot
/// they started with — the same epoch discipline as `opaq_queryd`'s
/// refresh — and new requests see the new segment immediately.
template <typename K>
struct LiveBundle {
  std::mutex writer_mutex;
  std::unique_ptr<LiveDataset<K>> writer;
  std::mutex snapshot_mutex;
  std::shared_ptr<const LiveDatasetReader<K>> snapshot;

  std::shared_ptr<const LiveDatasetReader<K>> Snapshot() {
    std::lock_guard<std::mutex> lock(snapshot_mutex);
    return snapshot;
  }
};

/// Binds the live dataset directory as a typed appendable export: all the
/// usual read/compute hooks over the current snapshot, plus the v5
/// `append` hook and a `live_count` that tracks growth.
template <typename K>
Result<ExportedDataset> OpenLiveExportTyped(const std::string& dir) {
  auto bundle = std::make_shared<LiveBundle<K>>();
  auto writer = LiveDataset<K>::Open(dir);
  if (!writer.ok()) return writer.status();
  bundle->writer =
      std::make_unique<LiveDataset<K>>(std::move(writer).value());
  auto reader = LiveDatasetReader<K>::Open(dir);
  if (!reader.ok()) return reader.status();
  bundle->snapshot = std::make_shared<const LiveDatasetReader<K>>(
      std::move(reader).value());

  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  dataset.element_size = sizeof(K);
  dataset.element_count = bundle->snapshot->size();
  dataset.read = [bundle](uint64_t first, uint64_t count, void* out) {
    return bundle->Snapshot()->Read(first, count, static_cast<K*>(out));
  };
  dataset.live_count = [bundle]() { return bundle->Snapshot()->size(); };
  dataset.sample_runs = [bundle](const WireSampleRunsRequest& request,
                                 uint64_t max_run_bytes) {
    auto snapshot = bundle->Snapshot();
    return NodeSampleRuns<K>(*snapshot, request, max_run_bytes);
  };
  dataset.exact_pass = [bundle](const WireExactPassRequest& request,
                                const uint8_t* bracket_bytes,
                                uint64_t max_run_bytes) {
    auto snapshot = bundle->Snapshot();
    return NodeExactPass<K>(*snapshot, request, bracket_bytes,
                            max_run_bytes);
  };
  dataset.append = [bundle, dir](const uint8_t* elements,
                                 uint64_t count) -> Result<WireAppendAck> {
    std::lock_guard<std::mutex> writer_lock(bundle->writer_mutex);
    std::vector<K> values(count);
    std::memcpy(values.data(), elements, count * sizeof(K));
    OPAQ_RETURN_IF_ERROR(bundle->writer->Append(values));
    // The segment is durable; fold it into the read snapshot before
    // acking so a reader that acts on the ack already sees its data.
    auto reader = LiveDatasetReader<K>::Open(dir);
    if (!reader.ok()) return reader.status();
    auto snapshot = std::make_shared<const LiveDatasetReader<K>>(
        std::move(reader).value());
    {
      std::lock_guard<std::mutex> snapshot_lock(bundle->snapshot_mutex);
      bundle->snapshot = std::move(snapshot);
    }
    WireAppendAck ack;
    ack.total_elements = bundle->writer->total_elements();
    ack.num_segments = bundle->writer->num_segments();
    return ack;
  };
  dataset.owner = bundle;
  return dataset;
}

/// Opens a --live entry: the directory's manifest names the key type.
/// The dataset must already exist (create it with `opaq_cli append
/// --live=DIR` or the writer API) so a typo'd path fails loudly instead of
/// silently serving a fresh empty dataset.
Result<ExportedDataset> OpenLiveExport(const std::string& dir) {
  auto info = ReadLiveManifestInfo(dir);
  if (!info.ok()) return info.status();
  switch (info->key_type) {
    case KeyType::kU32: return OpenLiveExportTyped<uint32_t>(dir);
    case KeyType::kU64: return OpenLiveExportTyped<uint64_t>(dir);
    case KeyType::kI64: return OpenLiveExportTyped<int64_t>(dir);
    case KeyType::kF32: return OpenLiveExportTyped<float>(dir);
    case KeyType::kF64: return OpenLiveExportTyped<double>(dir);
  }
  return Status::InvalidArgument(dir + ": unknown key type in live manifest");
}

/// Opens one --export entry's paths, sniffing the on-disk format from the
/// first file's magic: compressed extent files (single or striped) get the
/// extent export, everything else routes to the plain/striped openers
/// (which still reject non-OPAQ files with a clear message).
Result<ExportedDataset> OpenExport(const std::vector<std::string>& paths) {
  uint64_t magic = 0;
  {
    auto probe = FileBlockDevice::Make(paths[0], FileBlockDevice::Mode::kOpen);
    if (!probe.ok()) return probe.status();
    auto size = (*probe)->Size();
    if (!size.ok()) return size.status();
    if (*size >= sizeof(magic)) {
      OPAQ_RETURN_IF_ERROR((*probe)->ReadAt(0, &magic, sizeof(magic)));
    }
  }
  if (magic == ExtentFileHeader::kMagic) return OpenExtentExport(paths);
  return paths.size() == 1 ? OpenPlainExport(paths[0])
                           : OpenStripedExport(paths);
}

int Usage(std::ostream& os, int code) {
  os << "usage: opaq_noded --export=NAME=PATH[+PATH...][,NAME=PATH...] "
        "[flags]\n\n"
        "serves local OPAQ datasets to remote engines over TCP (wire "
        "protocol v1 range\nstreaming + v2 node-side compute).\n\nflags:\n"
        "  --export=...        datasets to serve: name=path for a plain data "
        "file,\n"
        "                      name=p0+p1+... for the stripes of a striped "
        "file\n"
        "                      (first '=' separates the name; duplicate "
        "names are\n"
        "                      an error)\n"
        "  --live=NAME=DIR     live (appendable) dataset directories to "
        "serve; the\n"
        "                      node additionally accepts wire v5 APPEND "
        "for these\n"
        "                      (create one first with `opaq_cli append "
        "--live=DIR`)\n"
        "  --bind=127.0.0.1    IPv4 address to bind (UNAUTHENTICATED "
        "protocol:\n"
        "                      bind non-loopback only on trusted networks)\n"
        "  --port=34601        TCP port (0 = pick an ephemeral port)\n"
        "  --max-read-bytes=4194304  per-request read bound\n"
        "  --max-wire-version=4  cap the protocol (1 = emulate a v1-only "
        "node)\n"
        "  --delay-ms=0        artificial response latency (bench/testing)\n"
        "  --duration=0        serve this many seconds, then exit (0 = "
        "until\n"
        "                      SIGINT/SIGTERM; either way shutdown is clean "
        "and the\n"
        "                      final stats print)\n"
        "  --stats-interval=0  seconds between periodic stats dumps to "
        "stdout\n"
        "                      (same rows `opaq_cli stats` fetches; 0 = "
        "only the\n"
        "                      shutdown summary)\n";
  return code;
}

/// A bad flag VALUE (--port=, --port=999999999999999999999, --delay-ms=fast)
/// is usage, not an internal error: say what was wrong, show the help, exit
/// 2 — never abort, never silently bind port 0.
int BadFlag(const Status& status) {
  std::cerr << "opaq_noded: " << status.message() << "\n";
  return Usage(std::cerr, 2);
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  {
    auto help = flags->TryGetBool("help", false);
    if (!help.ok()) return BadFlag(help.status());
    if (*help) return Usage(std::cout, 0);
  }
  for (const std::string& key : flags->keys()) {
    if (key != "export" && key != "live" && key != "bind" && key != "port" &&
        key != "max-read-bytes" && key != "max-wire-version" &&
        key != "delay-ms" && key != "duration" &&
        key != "stats-interval" && key != "help") {
      std::cerr << "opaq_noded: unknown flag --" << key << "\n";
      return Usage(std::cerr, 2);
    }
  }
  if (!flags->positional().empty()) {
    std::cerr << "opaq_noded: unexpected positional argument '"
              << flags->positional()[0] << "'\n";
    return Usage(std::cerr, 2);
  }
  if (!flags->Has("export") && !flags->Has("live")) {
    std::cerr << "opaq_noded: nothing to serve\n";
    return Usage(std::cerr, 2);
  }

  std::vector<ExportSpecEntry> static_entries;
  if (flags->Has("export")) {
    auto entries = ParseExportSpecs(flags->GetString("export", ""));
    if (!entries.ok()) return Fail(entries.status());
    static_entries = std::move(entries).value();
  }
  std::vector<ExportSpecEntry> live_entries;
  if (flags->Has("live")) {
    auto entries = ParseExportSpecs(flags->GetString("live", ""));
    if (!entries.ok()) return Fail(entries.status());
    live_entries = std::move(entries).value();
    for (const ExportSpecEntry& entry : live_entries) {
      if (entry.paths.size() != 1) {
        return Fail(Status::InvalidArgument(
            "--live entry '" + entry.name +
            "': a live dataset is one directory, not a striped path list"));
      }
      for (const ExportSpecEntry& other : static_entries) {
        if (other.name == entry.name) {
          return Fail(Status::InvalidArgument(
              "dataset name '" + entry.name +
              "' appears in both --export and --live"));
        }
      }
    }
  }

  NodeServerOptions options;
  options.bind_address = flags->GetString("bind", "127.0.0.1");
  const auto port = flags->TryGetInt("port", 34601);
  if (!port.ok()) return BadFlag(port.status());
  if (*port < 0 || *port > 65535) {
    return BadFlag(Status::InvalidArgument("--port must be in [0, 65535]"));
  }
  options.port = static_cast<uint16_t>(*port);
  const auto max_read = flags->TryGetInt("max-read-bytes", 4 << 20);
  if (!max_read.ok()) return BadFlag(max_read.status());
  if (*max_read < 1) {
    return BadFlag(Status::InvalidArgument("--max-read-bytes must be >= 1"));
  }
  options.max_read_bytes = static_cast<uint64_t>(*max_read);
  const auto max_version =
      flags->TryGetInt("max-wire-version", kMaxWireVersion);
  if (!max_version.ok()) return BadFlag(max_version.status());
  if (*max_version < kWireVersion || *max_version > kMaxWireVersion) {
    return BadFlag(Status::InvalidArgument(
        "--max-wire-version must be in [" + std::to_string(kWireVersion) +
        ", " + std::to_string(kMaxWireVersion) + "]"));
  }
  options.max_wire_version = static_cast<uint16_t>(*max_version);
  const auto delay_ms = flags->TryGetDouble("delay-ms", 0);
  if (!delay_ms.ok()) return BadFlag(delay_ms.status());
  options.response_delay_seconds = *delay_ms / 1000.0;
  const auto duration = flags->TryGetDouble("duration", 0);
  if (!duration.ok()) return BadFlag(duration.status());
  const auto stats_interval = flags->TryGetDouble("stats-interval", 0);
  if (!stats_interval.ok()) return BadFlag(stats_interval.status());
  if (*stats_interval < 0) {
    return BadFlag(
        Status::InvalidArgument("--stats-interval must be non-negative"));
  }

  NodeServer server(options);
  for (const ExportSpecEntry& entry : static_entries) {
    auto dataset = OpenExport(entry.paths);
    if (!dataset.ok()) {
      return Fail(Status(dataset.status().code(),
                         "export '" + entry.name + "': " +
                             dataset.status().message()));
    }
    std::cout << "export " << entry.name << ": " << dataset->element_count
              << " elements x " << dataset->element_size << " bytes ("
              << entry.paths.size()
              << (entry.paths.size() == 1 ? " file" : " stripes");
    if (dataset->extent_elements > 0) {
      std::cout << ", " << dataset->num_extents << " extents, codec "
                << ExtentCodecName(dataset->extent_codec);
    }
    std::cout << ")\n";
    server.Export(entry.name, std::move(dataset).value());
  }
  for (const ExportSpecEntry& entry : live_entries) {
    auto dataset = OpenLiveExport(entry.paths[0]);
    if (!dataset.ok()) {
      return Fail(Status(dataset.status().code(),
                         "live export '" + entry.name + "': " +
                             dataset.status().message()));
    }
    std::cout << "live export " << entry.name << ": "
              << dataset->element_count << " elements x "
              << dataset->element_size << " bytes (" << entry.paths[0]
              << ", appendable)\n";
    server.Export(entry.name, std::move(dataset).value());
  }
  // Latch SIGINT/SIGTERM BEFORE Start so no window exists where a signal
  // kills the daemon mid-setup with connection threads unjoined.
  Status signals = ShutdownSignal::Install();
  if (!signals.ok()) return Fail(signals);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::cout << "serving on " << server.address() << " (protocol v1.."
            << options.max_wire_version
            << ", unauthenticated; trusted networks only)" << std::endl;

  // Serve until --duration elapses or a signal arrives, whichever first
  // (printing stats every --stats-interval seconds on the way); either way
  // Stop() joins every connection thread and the final stats print.
  const bool signalled =
      ServeUntilShutdown(&server, *duration, *stats_interval, std::cout);
  server.Stop();
  std::cout << (signalled ? "shutdown: signal received; final stats:\n"
                          : "shutdown: final stats:\n")
            << FormatStatsText(server.StatsSnapshot()) << std::flush;
  return 0;
}

}  // namespace
}  // namespace noded
}  // namespace opaq

int main(int argc, char** argv) { return opaq::noded::Main(argc, argv); }
