// opaq_noded — the OPAQ data-node daemon: exports local datasets (plain or
// striped data files, any key type) over the v1 wire protocol so remote
// `Engine`s can consume them as shards via `Source::OpenRemote`.
//
//   opaq_noded --export=sales=/data/sales.opaq --port=34601
//   opaq_noded --export=logs=/d0/l.s0+/d1/l.s1+/d2/l.s2   # striped dataset
//   opaq_noded --export=a=a.opaq,b=b.opaq --port=0        # 0 = ephemeral
//
// Each --export entry is name=path (plain file) or name=p0+p1+... (the
// stripes of one striped file, logical order). The node prints one line per
// dataset plus its bound address, then serves until killed (or for
// --duration seconds, for scripted runs).
//
// SECURITY: the protocol is unauthenticated — the default bind address
// stays on 127.0.0.1; bind 0.0.0.0 only on networks where every peer is
// trusted (see README "Distributed mode").

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "opaq/io.h"
#include "opaq/net.h"
#include "opaq/status.h"
#include "opaq/util.h"

namespace opaq {
namespace noded {
namespace {

int Fail(const Status& status) {
  std::cerr << "opaq_noded: error: " << status.ToString() << std::endl;
  return 1;
}

/// One name=path[+path...] export entry, split.
struct ExportEntry {
  std::string name;
  std::vector<std::string> paths;
};

Result<std::vector<ExportEntry>> ParseExports(const std::string& text) {
  std::vector<ExportEntry> entries;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return Status::InvalidArgument("bad --export entry '" + item +
                                     "': want name=path[+path...]");
    }
    ExportEntry entry;
    entry.name = item.substr(0, eq);
    std::stringstream paths(item.substr(eq + 1));
    std::string path;
    while (std::getline(paths, path, '+')) {
      if (path.empty()) {
        return Status::InvalidArgument("empty stripe path in --export entry '" +
                                       item + "'");
      }
      entry.paths.push_back(path);
    }
    if (entry.paths.empty()) {
      return Status::InvalidArgument("no paths in --export entry '" + item +
                                     "'");
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    return Status::InvalidArgument("--export names no datasets");
  }
  return entries;
}

/// Opens a plain data file export; the returned dataset owns device + file.
Result<ExportedDataset> OpenPlainExport(const std::string& path) {
  struct Bundle {
    std::unique_ptr<FileBlockDevice> device;
    std::unique_ptr<DataFile> file;
  };
  auto bundle = std::make_shared<Bundle>();
  auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return device.status();
  bundle->device = std::move(device).value();
  auto file = DataFile::Open(bundle->device.get());
  if (!file.ok()) return file.status();
  bundle->file = std::make_unique<DataFile>(std::move(file).value());
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(bundle->file->key_type());
  dataset.element_size = bundle->file->element_size();
  dataset.element_count = bundle->file->element_count();
  const DataFile* raw = bundle->file.get();
  dataset.read = [raw](uint64_t first, uint64_t count, void* out) {
    return raw->ReadElements(first, count, out);
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Opens the stripes as a typed striped file of key type `K`; the returned
/// dataset owns every device and the file.
template <typename K>
Result<ExportedDataset> OpenStripedExportTyped(
    std::vector<std::unique_ptr<FileBlockDevice>> devices) {
  struct Bundle {
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::unique_ptr<StripedDataFile<K>> file;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->devices = std::move(devices);
  std::vector<BlockDevice*> raw;
  raw.reserve(bundle->devices.size());
  for (auto& device : bundle->devices) raw.push_back(device.get());
  auto file = StripedDataFile<K>::Open(std::move(raw));
  if (!file.ok()) return file.status();
  bundle->file =
      std::make_unique<StripedDataFile<K>>(std::move(file).value());
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  dataset.element_size = sizeof(K);
  dataset.element_count = bundle->file->size();
  const StripedDataFile<K>* fptr = bundle->file.get();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->Read(first, count, static_cast<K*>(out));
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Opens a striped export, dispatching on the key type the stripe headers
/// declare (a node serves any key type; clients type-check at handshake).
Result<ExportedDataset> OpenStripedExport(
    const std::vector<std::string>& paths) {
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  for (const std::string& path : paths) {
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    devices.push_back(std::move(device).value());
  }
  StripeFileHeader header;
  OPAQ_RETURN_IF_ERROR(devices[0]->ReadAt(0, &header, sizeof(header)));
  switch (static_cast<KeyType>(header.key_type)) {
    case KeyType::kU32:
      return OpenStripedExportTyped<uint32_t>(std::move(devices));
    case KeyType::kU64:
      return OpenStripedExportTyped<uint64_t>(std::move(devices));
    case KeyType::kI64:
      return OpenStripedExportTyped<int64_t>(std::move(devices));
    case KeyType::kF32:
      return OpenStripedExportTyped<float>(std::move(devices));
    case KeyType::kF64:
      return OpenStripedExportTyped<double>(std::move(devices));
  }
  return Status::InvalidArgument(
      paths[0] + ": unknown key type tag " + std::to_string(header.key_type) +
      " (not an OPAQ stripe file?)");
}

int Usage(std::ostream& os, int code) {
  os << "usage: opaq_noded --export=NAME=PATH[+PATH...][,NAME=PATH...] "
        "[flags]\n\n"
        "serves local OPAQ datasets to remote engines over TCP (wire "
        "protocol v1).\n\nflags:\n"
        "  --export=...        datasets to serve: name=path for a plain data "
        "file,\n"
        "                      name=p0+p1+... for the stripes of a striped "
        "file\n"
        "  --bind=127.0.0.1    IPv4 address to bind (UNAUTHENTICATED "
        "protocol:\n"
        "                      bind non-loopback only on trusted networks)\n"
        "  --port=34601        TCP port (0 = pick an ephemeral port)\n"
        "  --max-read-bytes=4194304  per-request read bound\n"
        "  --delay-ms=0        artificial response latency (bench/testing)\n"
        "  --duration=0        serve this many seconds, then exit (0 = "
        "forever)\n";
  return code;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->GetBool("help", false)) return Usage(std::cout, 0);
  for (const std::string& key : flags->keys()) {
    if (key != "export" && key != "bind" && key != "port" &&
        key != "max-read-bytes" && key != "delay-ms" && key != "duration" &&
        key != "help") {
      std::cerr << "opaq_noded: unknown flag --" << key << "\n";
      return Usage(std::cerr, 2);
    }
  }
  if (!flags->positional().empty()) {
    std::cerr << "opaq_noded: unexpected positional argument '"
              << flags->positional()[0] << "'\n";
    return Usage(std::cerr, 2);
  }
  if (!flags->Has("export")) {
    std::cerr << "opaq_noded: nothing to serve\n";
    return Usage(std::cerr, 2);
  }

  auto entries = ParseExports(flags->GetString("export", ""));
  if (!entries.ok()) return Fail(entries.status());

  NodeServerOptions options;
  options.bind_address = flags->GetString("bind", "127.0.0.1");
  const int64_t port = flags->GetInt("port", 34601);
  if (port < 0 || port > 65535) {
    return Fail(Status::InvalidArgument("--port must be in [0, 65535]"));
  }
  options.port = static_cast<uint16_t>(port);
  const int64_t max_read = flags->GetInt("max-read-bytes", 4 << 20);
  if (max_read < 1) {
    return Fail(Status::InvalidArgument("--max-read-bytes must be >= 1"));
  }
  options.max_read_bytes = static_cast<uint64_t>(max_read);
  options.response_delay_seconds = flags->GetDouble("delay-ms", 0) / 1000.0;

  NodeServer server(options);
  for (const ExportEntry& entry : *entries) {
    auto dataset = entry.paths.size() == 1 ? OpenPlainExport(entry.paths[0])
                                           : OpenStripedExport(entry.paths);
    if (!dataset.ok()) {
      return Fail(Status(dataset.status().code(),
                         "export '" + entry.name + "': " +
                             dataset.status().message()));
    }
    std::cout << "export " << entry.name << ": " << dataset->element_count
              << " elements x " << dataset->element_size << " bytes ("
              << entry.paths.size()
              << (entry.paths.size() == 1 ? " file" : " stripes") << ")\n";
    server.Export(entry.name, std::move(dataset).value());
  }
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::cout << "serving on " << server.address()
            << " (protocol v1, unauthenticated; trusted networks only)"
            << std::endl;

  const double duration = flags->GetDouble("duration", 0);
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(duration));
    server.Stop();
    std::cout << "served " << server.connections_accepted()
              << " connections, " << server.requests_served()
              << " requests\n";
    return 0;
  }
  for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
}

}  // namespace
}  // namespace noded
}  // namespace opaq

int main(int argc, char** argv) { return opaq::noded::Main(argc, argv); }
