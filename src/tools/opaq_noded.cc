// opaq_noded — the OPAQ data-node daemon: exports local datasets (plain,
// striped, or compressed-extent files, any key type) over the wire
// protocol so remote `Engine`s can consume them as shards via
// `Source::OpenRemote`. Every export is typed, so the node is a full v2
// COMPUTE node: it answers `SampleRuns` / `ExactPass` by running the
// paper's sample phase and §4 filter scan over its own disks and shipping
// only the O(s) results; v1 clients (and `--max-wire-version=1` nodes)
// still stream raw ranges. Extent exports additionally answer the v4
// `kReadExtents` op: the stored (packed) extents ship verbatim and the
// client decodes, so compression cuts bytes-on-wire too. The on-disk
// format is sniffed per export — point --export at any OPAQ file.
//
//   opaq_noded --export=sales=/data/sales.opaq --port=34601
//   opaq_noded --export=logs=/d0/l.s0+/d1/l.s1+/d2/l.s2   # striped dataset
//   opaq_noded --export=a=a.opaq,b=b.opaq --port=0        # 0 = ephemeral
//
// Each --export entry is name=path (plain file) or name=p0+p1+... (the
// stripes of one striped file, logical order); paths may contain '=' —
// only the first '=' of an entry separates the name. Duplicate dataset
// names are a startup error. The node prints one line per dataset plus its
// bound address, then serves until SIGINT/SIGTERM (or for --duration
// seconds, for scripted runs); shutdown is ordered — every connection
// thread is joined and the final traffic counters print.
//
// SECURITY: the protocol is unauthenticated — the default bind address
// stays on 127.0.0.1; bind 0.0.0.0 only on networks where every peer is
// trusted (see README "Distributed mode").

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "opaq/io.h"
#include "opaq/net.h"
#include "opaq/status.h"
#include "opaq/util.h"

namespace opaq {
namespace noded {
namespace {

int Fail(const Status& status) {
  std::cerr << "opaq_noded: error: " << status.ToString() << std::endl;
  return 1;
}

/// Opens the plain data file as a typed export of key type `K`; the
/// returned dataset owns device + file and carries the v2 compute hooks
/// over the same `FileRunProvider` local mode uses.
template <typename K>
Result<ExportedDataset> OpenPlainExportTyped(
    std::unique_ptr<FileBlockDevice> device) {
  struct Bundle {
    std::unique_ptr<FileBlockDevice> device;
    std::unique_ptr<TypedDataFile<K>> file;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->device = std::move(device);
  auto file = TypedDataFile<K>::Open(bundle->device.get());
  if (!file.ok()) return file.status();
  bundle->file = std::make_unique<TypedDataFile<K>>(std::move(file).value());
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  dataset.element_size = sizeof(K);
  dataset.element_count = bundle->file->size();
  const TypedDataFile<K>* fptr = bundle->file.get();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->Read(first, count, static_cast<K*>(out));
  };
  dataset.sample_runs = [fptr](const WireSampleRunsRequest& request,
                               uint64_t max_run_bytes) {
    return NodeSampleRuns<K>(FileRunProvider<K>(fptr), request,
                             max_run_bytes);
  };
  dataset.exact_pass = [fptr](const WireExactPassRequest& request,
                              const uint8_t* bracket_bytes,
                              uint64_t max_run_bytes) {
    return NodeExactPass<K>(FileRunProvider<K>(fptr), request, bracket_bytes,
                            max_run_bytes);
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Opens a plain data file export, dispatching on the key type its header
/// declares (a node serves any key type; clients type-check at handshake).
Result<ExportedDataset> OpenPlainExport(const std::string& path) {
  auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return device.status();
  DataFileHeader header;
  OPAQ_RETURN_IF_ERROR((*device)->ReadAt(0, &header, sizeof(header)));
  switch (static_cast<KeyType>(header.key_type)) {
    case KeyType::kU32:
      return OpenPlainExportTyped<uint32_t>(std::move(device).value());
    case KeyType::kU64:
      return OpenPlainExportTyped<uint64_t>(std::move(device).value());
    case KeyType::kI64:
      return OpenPlainExportTyped<int64_t>(std::move(device).value());
    case KeyType::kF32:
      return OpenPlainExportTyped<float>(std::move(device).value());
    case KeyType::kF64:
      return OpenPlainExportTyped<double>(std::move(device).value());
  }
  return Status::InvalidArgument(
      path + ": unknown key type tag " + std::to_string(header.key_type) +
      " (not an OPAQ data file?)");
}

/// Opens the stripes as a typed striped file of key type `K`; the returned
/// dataset owns every device and the file, and computes over the striped
/// readers directly (kAsync = one thread per stripe).
template <typename K>
Result<ExportedDataset> OpenStripedExportTyped(
    std::vector<std::unique_ptr<FileBlockDevice>> devices) {
  struct Bundle {
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::unique_ptr<StripedDataFile<K>> file;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->devices = std::move(devices);
  std::vector<BlockDevice*> raw;
  raw.reserve(bundle->devices.size());
  for (auto& device : bundle->devices) raw.push_back(device.get());
  auto file = StripedDataFile<K>::Open(std::move(raw));
  if (!file.ok()) return file.status();
  bundle->file =
      std::make_unique<StripedDataFile<K>>(std::move(file).value());
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
  dataset.element_size = sizeof(K);
  dataset.element_count = bundle->file->size();
  const StripedDataFile<K>* fptr = bundle->file.get();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->Read(first, count, static_cast<K*>(out));
  };
  dataset.sample_runs = [fptr](const WireSampleRunsRequest& request,
                               uint64_t max_run_bytes) {
    return NodeSampleRuns<K>(StripedFileProvider<K>(fptr), request,
                             max_run_bytes);
  };
  dataset.exact_pass = [fptr](const WireExactPassRequest& request,
                              const uint8_t* bracket_bytes,
                              uint64_t max_run_bytes) {
    return NodeExactPass<K>(StripedFileProvider<K>(fptr), request,
                            bracket_bytes, max_run_bytes);
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Devices + extent file an extent export keeps alive for the server's
/// lifetime (the typed opener below borrows raw pointers out of it).
struct ExtentBundle {
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  std::unique_ptr<ExtentFile> file;
};

/// Binds the compressed-extent file as a typed export of key type `K`.
/// The dataset serves every client generation: v1 `kReadRange` decodes
/// node-side, v2 compute runs over the extent-decoding provider, and v4
/// `kReadExtents` ships the stored extents verbatim so the wire carries
/// packed bytes and the remote engine decodes on its own streaming thread.
template <typename K>
Result<ExportedDataset> OpenExtentExportTyped(
    std::shared_ptr<ExtentBundle> bundle) {
  const ExtentFile* fptr = bundle->file.get();
  ExportedDataset dataset;
  dataset.key_type = fptr->key_type();
  dataset.element_size = fptr->element_size();
  dataset.element_count = fptr->size();
  dataset.read = [fptr](uint64_t first, uint64_t count, void* out) {
    return fptr->ReadElements(first, count, out);
  };
  dataset.sample_runs = [fptr](const WireSampleRunsRequest& request,
                               uint64_t max_run_bytes) {
    return NodeSampleRuns<K>(ExtentFileProvider<K>(fptr), request,
                             max_run_bytes);
  };
  dataset.exact_pass = [fptr](const WireExactPassRequest& request,
                              const uint8_t* bracket_bytes,
                              uint64_t max_run_bytes) {
    return NodeExactPass<K>(ExtentFileProvider<K>(fptr), request,
                            bracket_bytes, max_run_bytes);
  };
  dataset.extent_elements = fptr->extent_elements();
  dataset.num_extents = fptr->num_extents();
  dataset.extent_codec = static_cast<uint16_t>(fptr->default_codec());
  dataset.read_stored_extent = [fptr](uint64_t extent,
                                      std::vector<uint8_t>* out) {
    std::vector<uint8_t> stored;
    OPAQ_RETURN_IF_ERROR(fptr->ReadStoredExtent(extent, &stored));
    out->insert(out->end(), stored.begin(), stored.end());
    return Status::OK();
  };
  dataset.owner = std::move(bundle);
  return dataset;
}

/// Opens a compressed extent export (single file or the stripes of one
/// extent file), dispatching on the key type its header declares.
Result<ExportedDataset> OpenExtentExport(
    const std::vector<std::string>& paths) {
  auto bundle = std::make_shared<ExtentBundle>();
  for (const std::string& path : paths) {
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    bundle->devices.push_back(std::move(device).value());
  }
  std::vector<BlockDevice*> raw;
  raw.reserve(bundle->devices.size());
  for (auto& device : bundle->devices) raw.push_back(device.get());
  auto file = ExtentFile::Open(std::move(raw));
  if (!file.ok()) return file.status();
  bundle->file = std::make_unique<ExtentFile>(std::move(file).value());
  switch (static_cast<KeyType>(bundle->file->key_type())) {
    case KeyType::kU32:
      return OpenExtentExportTyped<uint32_t>(std::move(bundle));
    case KeyType::kU64:
      return OpenExtentExportTyped<uint64_t>(std::move(bundle));
    case KeyType::kI64:
      return OpenExtentExportTyped<int64_t>(std::move(bundle));
    case KeyType::kF32:
      return OpenExtentExportTyped<float>(std::move(bundle));
    case KeyType::kF64:
      return OpenExtentExportTyped<double>(std::move(bundle));
  }
  return Status::InvalidArgument(
      paths[0] + ": unknown key type tag " +
      std::to_string(bundle->file->key_type()) +
      " (not an OPAQ extent file?)");
}

/// Opens a striped export, dispatching on the key type the stripe headers
/// declare (a node serves any key type; clients type-check at handshake).
Result<ExportedDataset> OpenStripedExport(
    const std::vector<std::string>& paths) {
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  for (const std::string& path : paths) {
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    devices.push_back(std::move(device).value());
  }
  StripeFileHeader header;
  OPAQ_RETURN_IF_ERROR(devices[0]->ReadAt(0, &header, sizeof(header)));
  switch (static_cast<KeyType>(header.key_type)) {
    case KeyType::kU32:
      return OpenStripedExportTyped<uint32_t>(std::move(devices));
    case KeyType::kU64:
      return OpenStripedExportTyped<uint64_t>(std::move(devices));
    case KeyType::kI64:
      return OpenStripedExportTyped<int64_t>(std::move(devices));
    case KeyType::kF32:
      return OpenStripedExportTyped<float>(std::move(devices));
    case KeyType::kF64:
      return OpenStripedExportTyped<double>(std::move(devices));
  }
  return Status::InvalidArgument(
      paths[0] + ": unknown key type tag " + std::to_string(header.key_type) +
      " (not an OPAQ stripe file?)");
}

/// Opens one --export entry's paths, sniffing the on-disk format from the
/// first file's magic: compressed extent files (single or striped) get the
/// extent export, everything else routes to the plain/striped openers
/// (which still reject non-OPAQ files with a clear message).
Result<ExportedDataset> OpenExport(const std::vector<std::string>& paths) {
  uint64_t magic = 0;
  {
    auto probe = FileBlockDevice::Make(paths[0], FileBlockDevice::Mode::kOpen);
    if (!probe.ok()) return probe.status();
    auto size = (*probe)->Size();
    if (!size.ok()) return size.status();
    if (*size >= sizeof(magic)) {
      OPAQ_RETURN_IF_ERROR((*probe)->ReadAt(0, &magic, sizeof(magic)));
    }
  }
  if (magic == ExtentFileHeader::kMagic) return OpenExtentExport(paths);
  return paths.size() == 1 ? OpenPlainExport(paths[0])
                           : OpenStripedExport(paths);
}

int Usage(std::ostream& os, int code) {
  os << "usage: opaq_noded --export=NAME=PATH[+PATH...][,NAME=PATH...] "
        "[flags]\n\n"
        "serves local OPAQ datasets to remote engines over TCP (wire "
        "protocol v1 range\nstreaming + v2 node-side compute).\n\nflags:\n"
        "  --export=...        datasets to serve: name=path for a plain data "
        "file,\n"
        "                      name=p0+p1+... for the stripes of a striped "
        "file\n"
        "                      (first '=' separates the name; duplicate "
        "names are\n"
        "                      an error)\n"
        "  --bind=127.0.0.1    IPv4 address to bind (UNAUTHENTICATED "
        "protocol:\n"
        "                      bind non-loopback only on trusted networks)\n"
        "  --port=34601        TCP port (0 = pick an ephemeral port)\n"
        "  --max-read-bytes=4194304  per-request read bound\n"
        "  --max-wire-version=4  cap the protocol (1 = emulate a v1-only "
        "node)\n"
        "  --delay-ms=0        artificial response latency (bench/testing)\n"
        "  --duration=0        serve this many seconds, then exit (0 = "
        "until\n"
        "                      SIGINT/SIGTERM; either way shutdown is clean "
        "and the\n"
        "                      final counters print)\n";
  return code;
}

/// A bad flag VALUE (--port=, --port=999999999999999999999, --delay-ms=fast)
/// is usage, not an internal error: say what was wrong, show the help, exit
/// 2 — never abort, never silently bind port 0.
int BadFlag(const Status& status) {
  std::cerr << "opaq_noded: " << status.message() << "\n";
  return Usage(std::cerr, 2);
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  {
    auto help = flags->TryGetBool("help", false);
    if (!help.ok()) return BadFlag(help.status());
    if (*help) return Usage(std::cout, 0);
  }
  for (const std::string& key : flags->keys()) {
    if (key != "export" && key != "bind" && key != "port" &&
        key != "max-read-bytes" && key != "max-wire-version" &&
        key != "delay-ms" && key != "duration" && key != "help") {
      std::cerr << "opaq_noded: unknown flag --" << key << "\n";
      return Usage(std::cerr, 2);
    }
  }
  if (!flags->positional().empty()) {
    std::cerr << "opaq_noded: unexpected positional argument '"
              << flags->positional()[0] << "'\n";
    return Usage(std::cerr, 2);
  }
  if (!flags->Has("export")) {
    std::cerr << "opaq_noded: nothing to serve\n";
    return Usage(std::cerr, 2);
  }

  auto entries = ParseExportSpecs(flags->GetString("export", ""));
  if (!entries.ok()) return Fail(entries.status());

  NodeServerOptions options;
  options.bind_address = flags->GetString("bind", "127.0.0.1");
  const auto port = flags->TryGetInt("port", 34601);
  if (!port.ok()) return BadFlag(port.status());
  if (*port < 0 || *port > 65535) {
    return BadFlag(Status::InvalidArgument("--port must be in [0, 65535]"));
  }
  options.port = static_cast<uint16_t>(*port);
  const auto max_read = flags->TryGetInt("max-read-bytes", 4 << 20);
  if (!max_read.ok()) return BadFlag(max_read.status());
  if (*max_read < 1) {
    return BadFlag(Status::InvalidArgument("--max-read-bytes must be >= 1"));
  }
  options.max_read_bytes = static_cast<uint64_t>(*max_read);
  const auto max_version =
      flags->TryGetInt("max-wire-version", kMaxWireVersion);
  if (!max_version.ok()) return BadFlag(max_version.status());
  if (*max_version < kWireVersion || *max_version > kMaxWireVersion) {
    return BadFlag(Status::InvalidArgument(
        "--max-wire-version must be in [" + std::to_string(kWireVersion) +
        ", " + std::to_string(kMaxWireVersion) + "]"));
  }
  options.max_wire_version = static_cast<uint16_t>(*max_version);
  const auto delay_ms = flags->TryGetDouble("delay-ms", 0);
  if (!delay_ms.ok()) return BadFlag(delay_ms.status());
  options.response_delay_seconds = *delay_ms / 1000.0;
  const auto duration = flags->TryGetDouble("duration", 0);
  if (!duration.ok()) return BadFlag(duration.status());

  NodeServer server(options);
  for (const ExportSpecEntry& entry : *entries) {
    auto dataset = OpenExport(entry.paths);
    if (!dataset.ok()) {
      return Fail(Status(dataset.status().code(),
                         "export '" + entry.name + "': " +
                             dataset.status().message()));
    }
    std::cout << "export " << entry.name << ": " << dataset->element_count
              << " elements x " << dataset->element_size << " bytes ("
              << entry.paths.size()
              << (entry.paths.size() == 1 ? " file" : " stripes");
    if (dataset->extent_elements > 0) {
      std::cout << ", " << dataset->num_extents << " extents, codec "
                << ExtentCodecName(dataset->extent_codec);
    }
    std::cout << ")\n";
    server.Export(entry.name, std::move(dataset).value());
  }
  // Latch SIGINT/SIGTERM BEFORE Start so no window exists where a signal
  // kills the daemon mid-setup with connection threads unjoined.
  Status signals = ShutdownSignal::Install();
  if (!signals.ok()) return Fail(signals);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::cout << "serving on " << server.address() << " (protocol v1.."
            << options.max_wire_version
            << ", unauthenticated; trusted networks only)" << std::endl;

  // Serve until --duration elapses or a signal arrives, whichever first;
  // either way Stop() joins every connection thread and the counters print.
  const bool signalled = ShutdownSignal::Wait(*duration);
  server.Stop();
  std::cout << (signalled ? "shutdown: signal received; " : "shutdown: ")
            << "served " << server.connections_accepted() << " connections, "
            << server.requests_served() << " requests, "
            << server.bytes_sent() << " bytes out, "
            << server.bytes_received() << " bytes in" << std::endl;
  return 0;
}

}  // namespace
}  // namespace noded
}  // namespace opaq

int main(int argc, char** argv) { return opaq::noded::Main(argc, argv); }
