// opaq_queryd — the OPAQ query-serving daemon: sketch once, serve millions.
// At startup it runs the paper's one pass over every --serve dataset (plain
// or striped data files, any key type) and keeps the finished QuerySession
// in memory; from then on every batched phi-quantile / rank-bracket /
// equi-depth request is answered off the sample list in O(1) per bracket —
// no data I/O on the query path. Exact-flagged requests are admission-
// controlled: concurrent arrivals coalesce into ONE shared §4 second pass
// per round (the paper's "additional quantiles cost one extra pass",
// lifted across connections).
//
//   opaq_queryd --serve=sales=/data/sales.opaq --port=34602
//   opaq_queryd --serve=logs=/d0/l.s0+/d1/l.s1      # striped dataset
//   opaq_queryd --serve=a=a.opaq --refresh-interval=300   # epoch rebuilds
//
// Each --serve entry is name=path (plain file) or name=p0+p1+... (stripes,
// logical order), exactly like opaq_noded --export. With
// --refresh-interval=N the daemon re-sketches every session every N
// seconds in the background and atomically swaps the new epoch in;
// in-flight queries finish against the epoch they started with. The
// daemon serves until SIGINT/SIGTERM (or --duration seconds); shutdown is
// ordered — every connection thread is joined and the final counters
// print.
//
// SECURITY: the protocol is unauthenticated — the default bind address
// stays on 127.0.0.1; bind 0.0.0.0 only on networks where every peer is
// trusted (see README "Query serving").

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "opaq/io.h"
#include "opaq/net.h"
#include "opaq/opaq.h"
#include "opaq/status.h"
#include "opaq/util.h"

namespace opaq {
namespace queryd {
namespace {

int Fail(const Status& status) {
  std::cerr << "opaq_queryd: error: " << status.ToString() << std::endl;
  return 1;
}

/// Registers one session of key type `K` with the server: the builder
/// re-opens the file(s) and re-runs the one sketching pass on every call,
/// so each Refresh sees the bytes currently on disk (that IS the epoch
/// semantics — a rewritten dataset is picked up at the next refresh).
template <typename K>
Status ServeTyped(QueryServer* server, const std::string& name,
                  std::vector<std::string> paths, OpaqConfig config) {
  return server->Serve<K>(name, [paths = std::move(paths),
                                 config = std::move(config)]()
                                    -> Result<QuerySession<K>> {
    auto source = paths.size() == 1 ? Source<K>::Open(paths[0])
                                    : Source<K>::OpenStriped(paths);
    if (!source.ok()) return source.status();
    return Engine<K>(config, std::move(source).value()).Build();
  });
}

/// Dispatches on the key type the file header declares (a daemon serves
/// any key type; clients type-check when they open the session).
Status ServeEntry(QueryServer* server, const ExportSpecEntry& entry,
                  const OpaqConfig& config) {
  auto device =
      FileBlockDevice::Make(entry.paths[0], FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return device.status();
  // Plain and stripe headers both lead with a magic and carry a key_type
  // tag; which struct to read depends on how many paths the entry names.
  uint32_t key_type = 0;
  if (entry.paths.size() == 1) {
    DataFileHeader header;
    OPAQ_RETURN_IF_ERROR((*device)->ReadAt(0, &header, sizeof(header)));
    key_type = header.key_type;
  } else {
    StripeFileHeader header;
    OPAQ_RETURN_IF_ERROR((*device)->ReadAt(0, &header, sizeof(header)));
    key_type = header.key_type;
  }
  switch (static_cast<KeyType>(key_type)) {
    case KeyType::kU32:
      return ServeTyped<uint32_t>(server, entry.name, entry.paths, config);
    case KeyType::kU64:
      return ServeTyped<uint64_t>(server, entry.name, entry.paths, config);
    case KeyType::kI64:
      return ServeTyped<int64_t>(server, entry.name, entry.paths, config);
    case KeyType::kF32:
      return ServeTyped<float>(server, entry.name, entry.paths, config);
    case KeyType::kF64:
      return ServeTyped<double>(server, entry.name, entry.paths, config);
  }
  return Status::InvalidArgument(
      entry.paths[0] + ": unknown key type tag " + std::to_string(key_type) +
      " (not an OPAQ data file?)");
}

/// Registers one LIVE session of key type `K`: the builder sketches the
/// whole live dataset (epoch 1 and the full-rebuild fallback), and the
/// refresher is INCREMENTAL — it sketches only the segments appended since
/// the serving epoch and `Absorb`s their sample list into a copy of the
/// session (associative merge, byte-identical to a full rebuild), so a
/// refresh costs one pass over the DELTA, not the dataset. The refresher
/// errors on anything it cannot absorb (dataset vanished or shrank —
/// i.e. recreated), which `Refresh` answers with a full rebuild.
template <typename K>
Status ServeLiveTyped(QueryServer* server, const std::string& name,
                      const std::string& dir, OpaqConfig config) {
  auto builder = [dir, config]() -> Result<QuerySession<K>> {
    auto source = Source<K>::OpenLive(dir);
    if (!source.ok()) return source.status();
    return Engine<K>(config, std::move(source).value()).Build();
  };
  auto refresher =
      [dir, config](const QuerySession<K>& current)
      -> Result<QuerySession<K>> {
    auto info = ReadLiveManifestInfo(dir);
    if (!info.ok()) return info.status();
    const uint64_t have = current.total_elements();
    if (info->total_elements == have) {
      return current;  // no new segments; re-serve the same sketch
    }
    if (info->total_elements < have) {
      return Status::FailedPrecondition(
          "live dataset shrank below the serving session (recreated?); "
          "needs a full rebuild");
    }
    // `have` is a segment boundary (appends commit whole segments), so
    // the tail's run grid equals sketching the new segments alone and the
    // merge below is byte-identical to a from-scratch rebuild.
    auto tail = Source<K>::OpenLive(dir, have);
    if (!tail.ok()) return tail.status();
    auto delta = Engine<K>(config, *tail).Build();
    if (!delta.ok()) return delta.status();
    QuerySession<K> next = current;
    OPAQ_RETURN_IF_ERROR(
        next.Absorb(delta->sample_list(), {std::move(tail).value()}));
    return next;
  };
  return server->Serve<K>(name, std::move(builder), std::move(refresher));
}

/// Dispatches a --watch entry on the key type its live manifest declares.
Status ServeLiveEntry(QueryServer* server, const ExportSpecEntry& entry,
                      const OpaqConfig& config) {
  auto info = ReadLiveManifestInfo(entry.paths[0]);
  if (!info.ok()) return info.status();
  switch (info->key_type) {
    case KeyType::kU32:
      return ServeLiveTyped<uint32_t>(server, entry.name, entry.paths[0],
                                      config);
    case KeyType::kU64:
      return ServeLiveTyped<uint64_t>(server, entry.name, entry.paths[0],
                                      config);
    case KeyType::kI64:
      return ServeLiveTyped<int64_t>(server, entry.name, entry.paths[0],
                                     config);
    case KeyType::kF32:
      return ServeLiveTyped<float>(server, entry.name, entry.paths[0],
                                   config);
    case KeyType::kF64:
      return ServeLiveTyped<double>(server, entry.name, entry.paths[0],
                                    config);
  }
  return Status::InvalidArgument(entry.paths[0] +
                                 ": unknown key type in live manifest");
}

int Usage(std::ostream& os, int code) {
  os << "usage: opaq_queryd --serve=NAME=PATH[+PATH...][,NAME=PATH...] "
        "[flags]\n\n"
        "sketches local OPAQ datasets once at startup, then serves batched "
        "quantile /\nrank / equi-depth queries over TCP (wire protocol v3) "
        "off the in-memory\nsample lists.\n\nflags:\n"
        "  --serve=...         sessions to build and serve: name=path for a "
        "plain\n"
        "                      data file, name=p0+p1+... for a striped one\n"
        "  --watch=NAME=DIR    LIVE sessions over live dataset directories "
        "(see\n"
        "                      `opaq_cli append`): refreshes are "
        "incremental —\n"
        "                      only newly appended segments are sketched "
        "and\n"
        "                      Absorb'd into the serving session (epoch "
        "swap);\n"
        "                      pair with --refresh-interval\n"
        "  --bind=127.0.0.1    IPv4 address to bind (UNAUTHENTICATED "
        "protocol:\n"
        "                      bind non-loopback only on trusted networks)\n"
        "  --port=34602        TCP port (0 = pick an ephemeral port)\n"
        "  --run-size=1048576  sketch run size (elements per run)\n"
        "  --samples=1024      samples kept per run (s; rank error ~ n/s)\n"
        "  --seed=1            sampling offset seed\n"
        "  --refresh-interval=0  seconds between background session "
        "rebuilds\n"
        "                      (epoch swap; 0 = never refresh)\n"
        "  --exact-delay-ms=0  batching window for exact-flagged requests\n"
        "  --delay-ms=0        artificial response latency (bench/testing)\n"
        "  --duration=0        serve this many seconds, then exit (0 = "
        "until\n"
        "                      SIGINT/SIGTERM; either way shutdown is clean "
        "and the\n"
        "                      final stats print)\n"
        "  --stats-interval=0  seconds between periodic stats dumps to "
        "stdout\n"
        "                      (same rows `opaq_cli stats` fetches; 0 = "
        "only the\n"
        "                      shutdown summary)\n";
  return code;
}

/// A bad flag VALUE (--port=, --run-size=huge, --duration=long) is usage,
/// not an internal error: say what was wrong, show the help, exit 2 —
/// never abort, never silently bind port 0.
int BadFlag(const Status& status) {
  std::cerr << "opaq_queryd: " << status.message() << "\n";
  return Usage(std::cerr, 2);
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  {
    auto help = flags->TryGetBool("help", false);
    if (!help.ok()) return BadFlag(help.status());
    if (*help) return Usage(std::cout, 0);
  }
  for (const std::string& key : flags->keys()) {
    if (key != "serve" && key != "watch" && key != "bind" && key != "port" &&
        key != "run-size" && key != "samples" && key != "seed" &&
        key != "refresh-interval" && key != "exact-delay-ms" &&
        key != "delay-ms" && key != "duration" && key != "stats-interval" &&
        key != "help") {
      std::cerr << "opaq_queryd: unknown flag --" << key << "\n";
      return Usage(std::cerr, 2);
    }
  }
  if (!flags->positional().empty()) {
    std::cerr << "opaq_queryd: unexpected positional argument '"
              << flags->positional()[0] << "'\n";
    return Usage(std::cerr, 2);
  }
  if (!flags->Has("serve") && !flags->Has("watch")) {
    std::cerr << "opaq_queryd: nothing to serve\n";
    return Usage(std::cerr, 2);
  }

  std::vector<ExportSpecEntry> static_entries;
  if (flags->Has("serve")) {
    auto entries = ParseExportSpecs(flags->GetString("serve", ""));
    if (!entries.ok()) return Fail(entries.status());
    static_entries = std::move(entries).value();
  }
  std::vector<ExportSpecEntry> live_entries;
  if (flags->Has("watch")) {
    auto entries = ParseExportSpecs(flags->GetString("watch", ""));
    if (!entries.ok()) return Fail(entries.status());
    live_entries = std::move(entries).value();
    for (const ExportSpecEntry& entry : live_entries) {
      if (entry.paths.size() != 1) {
        return Fail(Status::InvalidArgument(
            "--watch entry '" + entry.name +
            "': a live dataset is one directory, not a striped path list"));
      }
      for (const ExportSpecEntry& other : static_entries) {
        if (other.name == entry.name) {
          return Fail(Status::InvalidArgument(
              "session name '" + entry.name +
              "' appears in both --serve and --watch"));
        }
      }
    }
  }

  QueryServerOptions options;
  options.bind_address = flags->GetString("bind", "127.0.0.1");
  const auto port = flags->TryGetInt("port", 34602);
  if (!port.ok()) return BadFlag(port.status());
  if (*port < 0 || *port > 65535) {
    return BadFlag(Status::InvalidArgument("--port must be in [0, 65535]"));
  }
  options.port = static_cast<uint16_t>(*port);
  const auto delay_ms = flags->TryGetDouble("delay-ms", 0);
  if (!delay_ms.ok()) return BadFlag(delay_ms.status());
  options.response_delay_seconds = *delay_ms / 1000.0;
  const auto exact_delay_ms = flags->TryGetDouble("exact-delay-ms", 0);
  if (!exact_delay_ms.ok()) return BadFlag(exact_delay_ms.status());
  if (*exact_delay_ms < 0) {
    return BadFlag(
        Status::InvalidArgument("--exact-delay-ms must be non-negative"));
  }
  options.exact_admission_delay_seconds = *exact_delay_ms / 1000.0;
  const auto refresh_interval = flags->TryGetDouble("refresh-interval", 0);
  if (!refresh_interval.ok()) return BadFlag(refresh_interval.status());
  if (*refresh_interval < 0) {
    return BadFlag(
        Status::InvalidArgument("--refresh-interval must be non-negative"));
  }
  const auto duration = flags->TryGetDouble("duration", 0);
  if (!duration.ok()) return BadFlag(duration.status());
  const auto stats_interval = flags->TryGetDouble("stats-interval", 0);
  if (!stats_interval.ok()) return BadFlag(stats_interval.status());
  if (*stats_interval < 0) {
    return BadFlag(
        Status::InvalidArgument("--stats-interval must be non-negative"));
  }

  OpaqConfig config;
  const auto run_size = flags->TryGetInt("run-size", config.run_size);
  if (!run_size.ok()) return BadFlag(run_size.status());
  const auto samples = flags->TryGetInt("samples", config.samples_per_run);
  if (!samples.ok()) return BadFlag(samples.status());
  const auto seed = flags->TryGetInt("seed", config.seed);
  if (!seed.ok()) return BadFlag(seed.status());
  config.run_size = static_cast<uint64_t>(*run_size);
  config.samples_per_run = static_cast<uint64_t>(*samples);
  config.seed = static_cast<uint64_t>(*seed);
  Status config_valid = config.Validate();
  if (!config_valid.ok()) return BadFlag(config_valid);

  QueryServer server(options);
  for (const ExportSpecEntry& entry : static_entries) {
    WallTimer build_timer;
    Status served = ServeEntry(&server, entry, config);
    if (!served.ok()) {
      return Fail(Status(served.code(), "session '" + entry.name + "': " +
                                            served.message()));
    }
    auto info = server.SessionInfo(entry.name);
    if (!info.ok()) return Fail(info.status());
    std::cout << "session " << entry.name << ": " << info->total_elements
              << " elements sketched to " << info->num_samples
              << " samples (max rank error " << info->max_rank_error
              << ") in " << build_timer.ElapsedSeconds() << " s\n";
  }
  for (const ExportSpecEntry& entry : live_entries) {
    WallTimer build_timer;
    Status served = ServeLiveEntry(&server, entry, config);
    if (!served.ok()) {
      return Fail(Status(served.code(), "live session '" + entry.name +
                                            "': " + served.message()));
    }
    auto info = server.SessionInfo(entry.name);
    if (!info.ok()) return Fail(info.status());
    std::cout << "live session " << entry.name << ": "
              << info->total_elements << " elements sketched to "
              << info->num_samples << " samples (max rank error "
              << info->max_rank_error << ") in "
              << build_timer.ElapsedSeconds()
              << " s; refreshes absorb new segments incrementally\n";
  }

  // Latch SIGINT/SIGTERM BEFORE Start so no window exists where a signal
  // kills the daemon mid-setup with connection threads unjoined.
  Status signals = ShutdownSignal::Install();
  if (!signals.ok()) return Fail(signals);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::cout << "serving on " << server.address()
            << " (protocol v3, unauthenticated; trusted networks only)"
            << std::endl;

  // Background epoch refresher: rebuild every session each interval and
  // swap atomically; queries keep being answered from the old epoch while
  // a build runs (--watch sessions refresh incrementally via Absorb).
  // Stopped via its own cv (the shutdown latch's pipe has exactly one
  // waiter: main).
  std::vector<ExportSpecEntry> all_entries = static_entries;
  all_entries.insert(all_entries.end(), live_entries.begin(),
                     live_entries.end());
  std::mutex refresh_mutex;
  std::condition_variable refresh_cv;
  bool refresh_stop = false;
  uint64_t refreshes = 0;
  std::thread refresher;
  if (*refresh_interval > 0) {
    refresher = std::thread([&] {
      std::unique_lock<std::mutex> lock(refresh_mutex);
      for (;;) {
        if (refresh_cv.wait_for(
                lock, std::chrono::duration<double>(*refresh_interval),
                [&] { return refresh_stop; })) {
          return;
        }
        lock.unlock();
        for (const ExportSpecEntry& entry : all_entries) {
          Status refreshed = server.Refresh(entry.name);
          if (!refreshed.ok()) {
            // The old epoch keeps serving; just log and retry next tick.
            std::cerr << "opaq_queryd: refresh of '" << entry.name
                      << "' failed (still serving the previous epoch): "
                      << refreshed.ToString() << std::endl;
          }
        }
        lock.lock();
        ++refreshes;
      }
    });
  }

  // Serve until --duration elapses or a signal arrives, whichever first
  // (printing stats every --stats-interval seconds on the way); either way
  // Stop() joins every connection thread and the final stats print.
  const bool signalled =
      ServeUntilShutdown(&server, *duration, *stats_interval, std::cout);
  if (refresher.joinable()) {
    {
      std::lock_guard<std::mutex> lock(refresh_mutex);
      refresh_stop = true;
    }
    refresh_cv.notify_all();
    refresher.join();
  }
  server.Stop();
  server.metrics_registry()->GetCounter("query.refreshes")->Set(refreshes);
  std::cout << (signalled ? "shutdown: signal received; final stats:\n"
                          : "shutdown: final stats:\n")
            << FormatStatsText(server.StatsSnapshot()) << std::flush;
  return 0;
}

}  // namespace
}  // namespace queryd
}  // namespace opaq

int main(int argc, char** argv) { return opaq::queryd::Main(argc, argv); }
