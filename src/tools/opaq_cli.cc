// opaq — command-line front end for the library (uint64 keys), written
// entirely against the public `include/opaq/` facade.
//
// A one-pass quantile workflow without writing any code:
//
//   opaq generate --out=data.opaq --n=10000000 --dist=zipf
//   opaq sketch   --data=data.opaq --out=data.sketch --samples=1024
//   opaq quantile --sketch=data.sketch --phi=0.5,0.99
//   opaq exact    --data=data.opaq --sketch=data.sketch --phi=0.5
//   opaq rank     --sketch=data.sketch --value=123456
//   opaq merge    --out=all.sketch a.sketch b.sketch
//   opaq inspect  --sketch=data.sketch
//   opaq stats    127.0.0.1:34602        # live daemon metrics (wire v6)
//   opaq <command> --help
//
// Sketches persist the sorted sample list, so `sketch` once and query
// forever; `merge` folds in new data incrementally without rereading the
// old (paper §4).
//
// Datasets may live on one file or striped round-robin across several
// disks: pass `--stripes=D` (derives `PATH.s0..s{D-1}`) or explicit
// `--stripe-paths=/disk0/d.opaq,/disk1/d.opaq` to generate/sketch/exact,
// and the striped backend reads all stripes concurrently. `generate
// --compress=delta|zlib|raw` (optionally `--extent-size=N`) writes the
// compressed extent format instead; reads sniff the format, so
// sketch/exact take compressed and uncompressed files alike, and `sketch`
// reports pack/unpack accounting for compressed inputs. Or they live on
// remote `opaq_noded` data nodes: `sketch`/`exact` take
// `--remote=host:port/ds[,host2:port2/ds2,...]` instead of `--data`, with
// several specs forming one multi-shard Engine run (one shard per node).
//
// Every subcommand's flags live in ONE table (kCommands below) that drives
// flag lookup defaults, unknown-flag rejection, and the generated --help
// text, so the three can never drift apart.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "opaq/opaq.h"

namespace opaq {
namespace cli {
namespace {

using Key = uint64_t;
using Request = QueryRequest<Key>;

// ------------------------------------------------------------ flag table ----

/// How a flag's text value must parse. Typed entries are pre-validated by
/// `ValidateFlags` before any handler runs, so `--n=` or `--budget=lots`
/// is a usage error (help + exit 2), never an abort inside a getter.
enum class FlagType { kString, kInt, kDouble };

/// One flag of one subcommand: its name (dash style), its default as text
/// ("" = no default), the config field or call it maps to, a one-line
/// description, whether the command refuses to run without it, and how its
/// value must parse. This table is the single source of truth — lookup
/// defaults, validation, and --help are all generated from it.
struct FlagSpec {
  const char* name;
  const char* def;
  const char* maps_to;
  const char* help;
  bool required = false;
  FlagType type = FlagType::kString;
};

class CommandFlags;
int CmdGenerate(const CommandFlags& flags);
int CmdAppend(const CommandFlags& flags);
int CmdSketch(const CommandFlags& flags);
int CmdQuantile(const CommandFlags& flags);
int CmdExact(const CommandFlags& flags);
int CmdRank(const CommandFlags& flags);
int CmdMerge(const CommandFlags& flags);
int CmdInspect(const CommandFlags& flags);
int CmdStats(const CommandFlags& flags);

struct CommandSpec {
  const char* name;
  const char* summary;
  const char* positional;  // e.g. "IN1 IN2 [IN3 ...]"; nullptr if none
  std::vector<FlagSpec> flags;
  int (*run)(const CommandFlags& flags) = nullptr;
};

std::vector<FlagSpec> Concat(std::vector<FlagSpec> a,
                             const std::vector<FlagSpec>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

/// Striping flags shared by every command that opens/creates a dataset.
std::vector<FlagSpec> StripeFlags() {
  return {
      {"stripes", "1", "stripe count D",
       "lay the dataset out across D stripe files PATH.s0..PATH.s{D-1}",
       false, FlagType::kInt},
      {"stripe-paths", "", "per-disk stripe files",
       "comma-separated stripe file list (overrides --stripes derivation)"},
  };
}

/// Remote-backend flag shared by the scanning commands: datasets served by
/// `opaq_noded` data nodes instead of local files.
std::vector<FlagSpec> RemoteFlags() {
  return {
      {"remote", "", "remote data-node shards",
       "comma-separated host:port/dataset specs (replaces --data; several "
       "specs = one Engine shard per node)"},
      {"wire-version", "4", "NodeClientOptions::max_wire_version",
       "newest wire version to speak: 2+ = node-side compute when the node "
       "supports it, 4 = stream packed extents, 1 = force v1 range "
       "streaming",
       false, FlagType::kInt},
      {"node-compute", "1", "NodeClientOptions::node_compute",
       "0 = skip v2 node-side compute and stream the dataset instead "
       "(packed extents when the node stores it compressed)",
       false, FlagType::kInt},
  };
}

/// Compressed-extent flags. On `generate` they switch the output to the
/// compressed extent format; on the scanning commands they only feed
/// `OpaqConfig` validation — extent files are self-describing, so reads
/// always take the codec and geometry from the file itself.
std::vector<FlagSpec> ExtentFlags() {
  return {
      {"compress", "", "OpaqConfig::codec",
       "write the dataset as compressed extents: raw | delta | zlib "
       "(reading auto-detects the format; omit for uncompressed output)"},
      {"extent-size", "65536", "OpaqConfig::extent_elements",
       "elements per extent (the unit of compression and prefetch) when "
       "writing compressed extents",
       false, FlagType::kInt},
  };
}

/// I/O-mode flags shared by the scanning commands (sketch, exact).
std::vector<FlagSpec> IoFlags() {
  return {
      {"io-mode", "sync", "OpaqConfig::io_mode",
       "sync = alternate read/compute; async = prefetch on background "
       "thread(s)"},
      {"prefetch-depth", "2", "OpaqConfig::prefetch_depth",
       "prefetch buffers (runs, or chunks per stripe) in flight under "
       "async",
       false, FlagType::kInt},
      {"run-size", "1048576", "OpaqConfig::run_size",
       "elements per run (m): how many keys are memory-resident at once",
       false, FlagType::kInt},
  };
}

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"generate",
       "write a synthetic dataset to a data file (or striped file set)",
       nullptr,
       Concat(
           {
               {"out", "", "output data file", "path of the data file", true},
               {"n", "1000000", "DatasetSpec::n", "number of keys", false,
                FlagType::kInt},
               {"dist", "uniform", "DatasetSpec::distribution",
                "uniform | zipf | normal | sequential"},
               {"seed", "42", "DatasetSpec::seed",
                "generator seed (one spec + seed => bit-identical data)",
                false, FlagType::kInt},
               {"dup", "0.1", "DatasetSpec::duplicate_fraction",
                "fraction of duplicated keys (uniform/normal)", false,
                FlagType::kDouble},
               {"zipf-z", "0.86", "DatasetSpec::zipf_z",
                "zipf skew z (1 = uniform, 0 = max skew)", false,
                FlagType::kDouble},
               {"chunk", "65536", "stripe chunk elements",
                "round-robin chunk size when striping", false,
                FlagType::kInt},
               {"force", "", "overwrite permission",
                "overwrite existing output files (without it, generate "
                "refuses to clobber a dataset — a live dataset may have a "
                "writer appending to it)"},
           },
           Concat(ExtentFlags(), StripeFlags())),
       CmdGenerate},
      {"append",
       "append a synthetic batch to a live (appendable) dataset as one "
       "durable segment",
       nullptr,
       {
           {"live", "", "live dataset directory",
            "local live dataset directory (created on first append)"},
           {"remote", "", "remote live dataset",
            "host:port/dataset of an opaq_noded --live export (wire v5 "
            "APPEND; replaces --live)"},
           {"n", "100000", "DatasetSpec::n", "number of keys to append",
            false, FlagType::kInt},
           {"dist", "uniform", "DatasetSpec::distribution",
            "uniform | zipf | normal | sequential"},
           {"seed", "42", "DatasetSpec::seed",
            "generator seed (vary per batch or every segment repeats)",
            false, FlagType::kInt},
           {"dup", "0.1", "DatasetSpec::duplicate_fraction",
            "fraction of duplicated keys (uniform/normal)", false,
            FlagType::kDouble},
           {"zipf-z", "0.86", "DatasetSpec::zipf_z",
            "zipf skew z (1 = uniform, 0 = max skew)", false,
            FlagType::kDouble},
           {"pack", "", "LiveDatasetOptions::pack/codec",
            "store the new segment extent-packed: raw | delta | zlib "
            "(local --live only; segments mix freely with plain ones)"},
       },
       CmdAppend},
      {"sketch",
       "one-pass sample phase: stream a dataset into a persistent sketch",
       nullptr,
       Concat(
           {
               {"data", "", "input data file",
                "dataset to sketch (or --remote)"},
               {"out", "", "output sketch file",
                "where to persist the sorted sample list", true},
               {"samples", "1024", "OpaqConfig::samples_per_run",
                "samples kept per run (s): accuracy ~ n/s", false,
                FlagType::kInt},
               {"select", "intro", "OpaqConfig::select_algorithm",
                "intro | fr | mom | std (selection algorithm)"},
           },
           Concat(RemoteFlags(),
                  Concat(IoFlags(), Concat(ExtentFlags(), StripeFlags())))),
       CmdSketch},
      {"quantile",
       "certified quantile brackets from a sketch (no data access)",
       nullptr,
       {
           {"sketch", "", "input sketch file", "sketch to query", true},
           {"phi", "", "quantile fractions",
            "comma-separated phi list in (0, 1], e.g. 0.5,0.99"},
           {"q", "10", "equi-quantile count",
            "when --phi is absent: the q-1 equi-spaced quantiles", false,
            FlagType::kInt},
       },
       CmdQuantile},
      {"exact",
       "recover exact quantile values with one extra data pass (paper §4)",
       nullptr,
       Concat(
           {
               {"data", "", "input data file",
                "dataset the sketch came from (or --remote)"},
               {"sketch", "", "input sketch file", "sketch to query", true},
               {"phi", "", "quantile fractions",
                "comma-separated phi list in (0, 1]"},
               {"q", "10", "equi-quantile count",
                "when --phi is absent: the q-1 equi-spaced quantiles", false,
                FlagType::kInt},
               {"budget", "0", "QuerySession::set_exact_memory_budget",
                "max bracket elements held in memory "
                "(0 = 4*q*max_rank_error; raise for duplicate-heavy data)",
                false, FlagType::kInt},
           },
           Concat(RemoteFlags(),
                  Concat(IoFlags(), Concat(ExtentFlags(), StripeFlags())))),
       CmdExact},
      {"rank",
       "certified rank bracket of an arbitrary value (no data access)",
       nullptr,
       {
           {"sketch", "", "input sketch file", "sketch to query", true},
           {"value", "", "probe value", "the key whose rank to bracket",
            true, FlagType::kInt},
       },
       CmdRank},
      {"merge",
       "fold several sketches into one (incremental maintenance, paper §4)",
       "IN1 IN2 [IN3 ...]",
       {
           {"out", "", "output sketch file", "where to write the merge",
            true},
       },
       CmdMerge},
      {"inspect",
       "print a sketch's accounting and certificates",
       nullptr,
       {
           {"sketch", "", "input sketch file", "sketch to describe", true},
       },
       CmdInspect},
      {"stats",
       "fetch a live daemon's metrics snapshot over the wire (v6 STATS)",
       "HOST:PORT",
       {
           {"format", "text", "output rendering",
            "text (aligned name/value rows) | prometheus (text exposition "
            "for scraping)"},
       },
       CmdStats},
  };
  return kCommands;
}

/// Flag access bound to one command's table: defaults come from the table,
/// and asking for a flag the table does not declare dies loudly (catching
/// code/table drift in the smoke tests).
class CommandFlags {
 public:
  CommandFlags(const Flags& flags, const CommandSpec& spec)
      : flags_(flags), spec_(spec) {}

  int64_t GetInt(const char* name) const {
    return flags_.GetInt(name, std::strtoll(Spec(name).def, nullptr, 10));
  }
  double GetDouble(const char* name) const {
    return flags_.GetDouble(name, std::strtod(Spec(name).def, nullptr));
  }
  std::string GetString(const char* name) const {
    return flags_.GetString(name, Spec(name).def);
  }
  bool Has(const char* name) const {
    Spec(name);  // declared?
    return flags_.Has(name);
  }
  const Flags& raw() const { return flags_; }

 private:
  const FlagSpec& Spec(const char* name) const {
    const FlagSpec* found = nullptr;
    for (const FlagSpec& flag : spec_.flags) {
      if (std::strcmp(flag.name, name) == 0) found = &flag;
    }
    OPAQ_CHECK(found != nullptr)
        << "flag --" << name << " is not in command '" << spec_.name
        << "'s flag table";
    return *found;
  }

  const Flags& flags_;
  const CommandSpec& spec_;
};

/// Rejects flags the command's table does not declare, refuses to run
/// without the table's required flags, and parse-checks every provided
/// numeric value — up front, before any data access, so the CommandFlags
/// getters below can never abort on user input.
Status ValidateFlags(const Flags& flags, const CommandSpec& spec) {
  for (const std::string& key : flags.keys()) {
    if (key == "help") continue;
    bool known = false;
    for (const FlagSpec& flag : spec.flags) {
      if (key == flag.name) known = true;
    }
    if (!known) {
      return Status::InvalidArgument(
          "unknown flag --" + key + " for '" + spec.name +
          "'; see: opaq " + spec.name + " --help");
    }
  }
  for (const FlagSpec& flag : spec.flags) {
    if (flag.required && !flags.Has(flag.name)) {
      return Status::InvalidArgument(
          "'" + std::string(spec.name) + "' needs --" + flag.name + " (" +
          flag.maps_to + "); see: opaq " + spec.name + " --help");
    }
    if (!flags.Has(flag.name)) continue;
    if (flag.type == FlagType::kInt) {
      auto value = flags.TryGetInt(flag.name, 0);
      if (!value.ok()) return value.status();
    } else if (flag.type == FlagType::kDouble) {
      auto value = flags.TryGetDouble(flag.name, 0.0);
      if (!value.ok()) return value.status();
    }
  }
  // positional()[0] is the command itself; anything further is only legal
  // for commands whose spec declares positionals (merge's input sketches).
  if (spec.positional == nullptr && flags.positional().size() > 1) {
    return Status::InvalidArgument(
        "'" + std::string(spec.name) + "' takes no positional arguments "
        "(got '" + flags.positional()[1] + "'); did you mean a --flag? "
        "see: opaq " + spec.name + " --help");
  }
  return Status::OK();
}

void PrintCommandHelp(const CommandSpec& spec, std::ostream& os) {
  os << "usage: opaq " << spec.name;
  if (!spec.flags.empty()) os << " [flags]";
  if (spec.positional != nullptr) os << " " << spec.positional;
  os << "\n  " << spec.summary << "\n";
  if (spec.flags.empty()) return;
  os << "\nflags (default -> what it sets):\n";
  size_t width = 0;
  auto label = [](const FlagSpec& flag) {
    return "--" + std::string(flag.name) + "=" +
           (flag.def[0] == '\0' ? "..." : flag.def);
  };
  for (const FlagSpec& flag : spec.flags) {
    width = std::max(width, label(flag).size());
  }
  for (const FlagSpec& flag : spec.flags) {
    std::string head = label(flag);
    os << "  " << head << std::string(width - head.size() + 2, ' ')
       << flag.maps_to
       << (flag.required ? "  (required)" : "") << "\n"
       << std::string(width + 4, ' ') << flag.help << "\n";
  }
}

int Usage(std::ostream& os = std::cerr, int code = 2) {
  os << "usage: opaq <command> [flags]\n\ncommands:\n";
  size_t width = 0;
  for (const CommandSpec& spec : Commands()) {
    width = std::max(width, std::string(spec.name).size());
  }
  for (const CommandSpec& spec : Commands()) {
    os << "  " << spec.name
       << std::string(width - std::string(spec.name).size() + 2, ' ')
       << spec.summary << "\n";
  }
  os << "\nrun `opaq <command> --help` for that command's flag table.\n"
     << "striping: --stripes=D spreads/reads PATH.s0..PATH.s{D-1};\n"
     << "--stripe-paths lists the per-disk stripe files explicitly.\n"
     << "remote: sketch/exact read opaq_noded data nodes via\n"
     << "--remote=host:port/dataset[,...] instead of --data.\n";
  return code;
}

// -------------------------------------------------------------- commands ----

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << std::endl;
  return 1;
}

Result<std::vector<double>> ParsePhis(const CommandFlags& flags) {
  std::vector<double> phis;
  if (flags.Has("phi")) {
    std::stringstream ss(flags.GetString("phi"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      char* end = nullptr;
      double phi = std::strtod(item.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(phi > 0.0 && phi <= 1.0)) {
        return Status::InvalidArgument("bad --phi entry: " + item);
      }
      phis.push_back(phi);
    }
  } else {
    int64_t q = flags.GetInt("q");
    if (q < 2) return Status::InvalidArgument("--q must be >= 2");
    for (int64_t i = 1; i < q; ++i) {
      phis.push_back(static_cast<double>(i) / static_cast<double>(q));
    }
  }
  if (phis.empty()) return Status::InvalidArgument("no quantiles requested");
  return phis;
}

Result<std::unique_ptr<FileBlockDevice>> OpenFileDevice(
    const std::string& path, FileBlockDevice::Mode mode) {
  if (path.empty()) {
    return Status::InvalidArgument("missing a required file path flag");
  }
  return FileBlockDevice::Make(path, mode);
}

/// Resolves the stripe layout of `base_path` from --stripes/--stripe-paths.
/// Returns an empty vector for the plain single-file layout.
Result<std::vector<std::string>> StripePaths(const CommandFlags& flags,
                                             const std::string& base_path) {
  std::vector<std::string> paths;
  if (flags.Has("stripe-paths")) {
    std::stringstream ss(flags.GetString("stripe-paths"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) {
        return Status::InvalidArgument("empty entry in --stripe-paths");
      }
      paths.push_back(item);
    }
    if (paths.empty()) {
      return Status::InvalidArgument("--stripe-paths names no files");
    }
    if (flags.Has("stripes") &&
        flags.GetInt("stripes") != static_cast<int64_t>(paths.size())) {
      return Status::InvalidArgument(
          "--stripes disagrees with the number of --stripe-paths entries");
    }
    return paths;
  }
  const int64_t stripes = flags.GetInt("stripes");
  if (stripes < 1 || static_cast<uint64_t>(stripes) > kMaxStripes) {
    return Status::InvalidArgument("--stripes must be in [1, " +
                                   std::to_string(kMaxStripes) + "]");
  }
  if (stripes == 1) return paths;  // plain layout
  if (base_path.empty()) {
    return Status::InvalidArgument("missing a required file path flag");
  }
  for (int64_t s = 0; s < stripes; ++s) {
    paths.push_back(base_path + ".s" + std::to_string(s));
  }
  return paths;
}

/// Opens the dataset(s) the scanning flags name — local (--data, plain or
/// striped per the striping flags) or served by data nodes (--remote, one
/// Engine shard per comma-separated host:port/dataset spec) — as
/// self-contained `Source` shards.
Result<std::vector<Source<Key>>> OpenDataSources(const CommandFlags& flags) {
  const bool remote = flags.Has("remote");
  const std::string path = flags.GetString("data");
  if (remote && !path.empty()) {
    return Status::InvalidArgument(
        "--data and --remote are mutually exclusive; the dataset lives "
        "either on local files or on data nodes");
  }
  if (remote && (flags.Has("stripes") || flags.Has("stripe-paths"))) {
    return Status::InvalidArgument(
        "striping flags describe local --data layouts; a remote dataset's "
        "layout (plain or striped) is the serving node's concern");
  }
  std::vector<Source<Key>> sources;
  if (remote) {
    const int64_t wire_version = flags.GetInt("wire-version");
    if (wire_version < kWireVersion || wire_version > kMaxWireVersion) {
      return Status::InvalidArgument(
          "--wire-version must be in [" + std::to_string(kWireVersion) +
          ", " + std::to_string(kMaxWireVersion) + "]");
    }
    NodeClientOptions client_options;
    client_options.max_wire_version = static_cast<uint16_t>(wire_version);
    client_options.node_compute = flags.GetInt("node-compute") != 0;
    std::stringstream ss(flags.GetString("remote"));
    std::string spec;
    while (std::getline(ss, spec, ',')) {
      if (spec.empty()) {
        return Status::InvalidArgument("empty entry in --remote");
      }
      auto source = Source<Key>::OpenRemote(spec, client_options);
      if (!source.ok()) {
        return Status(source.status().code(),
                      spec + ": " + source.status().message());
      }
      sources.push_back(std::move(source).value());
    }
    if (sources.empty()) {
      return Status::InvalidArgument("--remote names no data nodes");
    }
    return sources;
  }
  auto paths = StripePaths(flags, path);
  if (!paths.ok()) return paths.status();
  auto source = paths->empty()
                    ? (path.empty()
                           ? Result<Source<Key>>(Status::InvalidArgument(
                                 "need --data (a local dataset) or --remote "
                                 "(data-node shards)"))
                           : Source<Key>::Open(path))
                    : Source<Key>::OpenStriped(*paths);
  if (!source.ok()) return source.status();
  sources.push_back(std::move(source).value());
  return sources;
}

Result<SampleList<Key>> LoadSketch(const CommandFlags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch"),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return device.status();
  return LoadSampleList<Key>(device->get());
}

/// The synthetic-data flags `generate` and `append` share.
Result<DatasetSpec> ParseDatasetSpec(const CommandFlags& flags) {
  DatasetSpec spec;
  spec.n = static_cast<uint64_t>(flags.GetInt("n"));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  spec.duplicate_fraction = flags.GetDouble("dup");
  spec.zipf_z = flags.GetDouble("zipf-z");
  const std::string dist = flags.GetString("dist");
  if (dist == "uniform") {
    spec.distribution = Distribution::kUniform;
  } else if (dist == "zipf") {
    spec.distribution = Distribution::kZipf;
  } else if (dist == "normal") {
    spec.distribution = Distribution::kNormal;
  } else if (dist == "sequential") {
    spec.distribution = Distribution::kSequential;
  } else {
    return Status::InvalidArgument("unknown --dist: " + dist);
  }
  return spec;
}

/// `generate` refuses to clobber existing datasets unless --force: the
/// create mode truncates, which silently destroys whatever was there — in
/// particular a live dataset another writer is appending to.
Status RefuseOverwrite(const CommandFlags& flags,
                       const std::vector<std::string>& outputs) {
  if (flags.Has("force")) return Status::OK();
  for (const std::string& path : outputs) {
    if (LivePathExists(path)) {
      return Status::FailedPrecondition(
          path + " already exists; generate would truncate it — pass "
          "--force to overwrite");
    }
  }
  return Status::OK();
}

int CmdGenerate(const CommandFlags& flags) {
  auto parsed_spec = ParseDatasetSpec(flags);
  if (!parsed_spec.ok()) return Fail(parsed_spec.status());
  const DatasetSpec spec = *parsed_spec;
  auto paths = StripePaths(flags, flags.GetString("out"));
  if (!paths.ok()) return Fail(paths.status());
  WallTimer timer;
  // --compress (or an explicit --extent-size) switches the output to the
  // compressed extent format; one writer covers plain and striped layouts.
  if (flags.Has("compress") || flags.Has("extent-size")) {
    auto codec = ParseExtentCodec(
        flags.Has("compress") ? flags.GetString("compress") : "raw");
    if (!codec.ok()) return Fail(codec.status());
    ExtentWriterOptions options;
    options.codec = *codec;
    const int64_t extent_size = flags.GetInt("extent-size");
    if (extent_size < 1) {
      return Fail(Status::InvalidArgument("--extent-size must be >= 1"));
    }
    options.extent_elements = static_cast<uint64_t>(extent_size);
    std::vector<std::string> files =
        paths->empty() ? std::vector<std::string>{flags.GetString("out")}
                       : *paths;
    Status guard = RefuseOverwrite(flags, files);
    if (!guard.ok()) return Fail(guard);
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::vector<BlockDevice*> raw;
    for (const std::string& path : files) {
      auto device = OpenFileDevice(path, FileBlockDevice::Mode::kCreate);
      if (!device.ok()) return Fail(device.status());
      devices.push_back(std::move(device).value());
      raw.push_back(devices.back().get());
    }
    auto stats = WriteExtents<Key>(GenerateDataset<Key>(spec),
                                   std::move(raw), options);
    if (!stats.ok()) return Fail(stats.status());
    for (auto& device : devices) {
      Status s = device->Sync();
      if (!s.ok()) return Fail(s);
    }
    std::cout << "wrote " << spec.ToString() << " as " << stats->extents
              << " extents (codec " << ExtentCodecName(*codec) << ", "
              << options.extent_elements << " elements each"
              << (files.size() > 1
                      ? ", " + std::to_string(files.size()) + " stripes"
                      : "")
              << ") to " << files.front() << " in "
              << timer.ElapsedSeconds() << "s\n"
              << "packed " << stats->unpacked_bytes << " bytes into "
              << stats->packed_bytes << " stored bytes (ratio "
              << stats->ratio() << ")\n";
    return 0;
  }
  if (paths->empty()) {
    Status guard = RefuseOverwrite(flags, {flags.GetString("out")});
    if (!guard.ok()) return Fail(guard);
    auto device = OpenFileDevice(flags.GetString("out"),
                                 FileBlockDevice::Mode::kCreate);
    if (!device.ok()) return Fail(device.status());
    Status s = GenerateDatasetToDevice<Key>(spec, device->get());
    if (!s.ok()) return Fail(s);
    std::cout << "wrote " << spec.ToString() << " to "
              << flags.GetString("out") << " in "
              << timer.ElapsedSeconds() << "s\n";
    return 0;
  }
  const int64_t chunk = flags.GetInt("chunk");
  if (chunk < 1) return Fail(Status::InvalidArgument("--chunk must be >= 1"));
  Status guard = RefuseOverwrite(flags, *paths);
  if (!guard.ok()) return Fail(guard);
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  std::vector<BlockDevice*> raw;
  for (const std::string& path : *paths) {
    auto device = OpenFileDevice(path, FileBlockDevice::Mode::kCreate);
    if (!device.ok()) return Fail(device.status());
    devices.push_back(std::move(device).value());
    raw.push_back(devices.back().get());
  }
  auto file = WriteStriped(GenerateDataset<Key>(spec), std::move(raw),
                           static_cast<uint64_t>(chunk));
  if (!file.ok()) return Fail(file.status());
  for (auto& device : devices) {
    Status s = device->Sync();
    if (!s.ok()) return Fail(s);
  }
  std::cout << "wrote " << spec.ToString() << " as " << file->ToString()
            << " across " << paths->front() << ".." << paths->back()
            << " in " << timer.ElapsedSeconds() << "s\n";
  return 0;
}

int CmdAppend(const CommandFlags& flags) {
  const bool local = flags.Has("live");
  const bool remote = flags.Has("remote");
  if (local == remote) {
    return Fail(Status::InvalidArgument(
        "append needs exactly one of --live (a local live dataset "
        "directory) or --remote (an opaq_noded --live export)"));
  }
  auto parsed_spec = ParseDatasetSpec(flags);
  if (!parsed_spec.ok()) return Fail(parsed_spec.status());
  const DatasetSpec spec = *parsed_spec;
  if (spec.n == 0) {
    return Fail(Status::InvalidArgument("--n must be >= 1"));
  }
  WallTimer timer;
  std::vector<Key> batch = GenerateDataset<Key>(spec);
  if (remote) {
    if (flags.Has("pack")) {
      return Fail(Status::InvalidArgument(
          "--pack is a local layout choice; the serving node decides how a "
          "remote live dataset stores its segments"));
    }
    auto remote_spec = ParseRemoteSpec(flags.GetString("remote"));
    if (!remote_spec.ok()) return Fail(remote_spec.status());
    auto client = NodeClient::Connect(remote_spec->host, remote_spec->port);
    if (!client.ok()) return Fail(client.status());
    auto ack = client->Append(remote_spec->dataset, batch.data(),
                              batch.size(), sizeof(Key));
    if (!ack.ok()) return Fail(ack.status());
    std::cout << "appended " << spec.ToString() << " to "
              << remote_spec->ToString() << " in " << timer.ElapsedSeconds()
              << "s; node now holds " << ack->total_elements
              << " elements in " << ack->num_segments << " segments\n";
    return 0;
  }
  LiveDatasetOptions options;
  if (flags.Has("pack")) {
    auto codec = ParseExtentCodec(flags.GetString("pack"));
    if (!codec.ok()) return Fail(codec.status());
    options.pack = true;
    options.codec = *codec;
  }
  auto dataset =
      LiveDataset<Key>::OpenOrCreate(flags.GetString("live"), options);
  if (!dataset.ok()) return Fail(dataset.status());
  Status s = dataset->Append(batch);
  if (!s.ok()) return Fail(s);
  std::cout << "appended " << spec.ToString() << " to "
            << flags.GetString("live") << " in " << timer.ElapsedSeconds()
            << "s; live dataset now holds " << dataset->total_elements()
            << " elements in " << dataset->num_segments() << " segments\n";
  return 0;
}

/// Builds the OpaqConfig the scanning commands share (sketch, exact).
Result<OpaqConfig> ScanConfig(const CommandFlags& flags,
                              const std::vector<Source<Key>>& sources) {
  OpaqConfig config;
  config.run_size = static_cast<uint64_t>(flags.GetInt("run-size"));
  auto parsed_mode = ParseIoMode(flags.GetString("io-mode"));
  if (!parsed_mode.ok()) return parsed_mode.status();
  config.io_mode = *parsed_mode;
  config.prefetch_depth =
      static_cast<uint64_t>(flags.GetInt("prefetch-depth"));
  // The extent flags only seed OpaqConfig (validated below by the caller's
  // Validate()); reads take codec and geometry from the file itself.
  if (flags.Has("compress")) {
    auto codec = ParseExtentCodec(flags.GetString("compress"));
    if (!codec.ok()) return codec.status();
    config.codec = *codec;
  }
  config.extent_elements = static_cast<uint64_t>(flags.GetInt("extent-size"));
  for (const Source<Key>& source : sources) {
    config.stripes = std::max<uint64_t>(config.stripes, source.stripes());
  }
  return config;
}

int CmdSketch(const CommandFlags& flags) {
  auto sources = OpenDataSources(flags);
  if (!sources.ok()) return Fail(sources.status());
  auto config = ScanConfig(flags, *sources);
  if (!config.ok()) return Fail(config.status());
  config->samples_per_run = static_cast<uint64_t>(flags.GetInt("samples"));
  const std::string select = flags.GetString("select");
  if (select == "intro") {
    config->select_algorithm = SelectAlgorithm::kIntroSelect;
  } else if (select == "fr") {
    config->select_algorithm = SelectAlgorithm::kFloydRivest;
  } else if (select == "mom") {
    config->select_algorithm = SelectAlgorithm::kMedianOfMedians;
  } else if (select == "std") {
    config->select_algorithm = SelectAlgorithm::kStdNthElement;
  } else {
    return Fail(Status::InvalidArgument("unknown --select: " + select));
  }

  WallTimer timer;
  Engine<Key> engine(*config, *sources);
  auto session = engine.Build();
  if (!session.ok()) return Fail(session.status());
  const SampleList<Key>& list = session->sample_list();

  auto out_device = OpenFileDevice(flags.GetString("out"),
                                   FileBlockDevice::Mode::kCreate);
  if (!out_device.ok()) return Fail(out_device.status());
  Status s = SaveSampleList(list, out_device->get());
  if (!s.ok()) return Fail(s);
  std::cout << "sketched " << list.total_elements() << " keys ("
            << list.accounting().num_runs << " runs, "
            << list.samples().size() << " samples) in "
            << timer.ElapsedSeconds() << "s ("
            << engine.stats().io_stall_seconds << "s "
            << (config->io_mode == IoMode::kAsync ? "I/O stall, async"
                                                  : "I/O")
            << (config->stripes > 1
                    ? ", " + std::to_string(config->stripes) + " stripes"
                    : "")
            << (sources->size() > 1
                    ? ", " + std::to_string(sources->size()) +
                          " remote shards"
                    : "")
            << "); rank error <= " << session->max_rank_error() << "\n";
  // Pack/unpack accounting (nonzero only over compressed-extent shards):
  // how many bytes would have moved uncompressed vs how many actually did.
  const ExtentStatsSnapshot& pack = engine.stats().extents;
  if (pack.extents > 0) {
    std::cout << "extents: unpacked " << pack.packed_bytes
              << " stored bytes into " << pack.unpacked_bytes
              << " logical bytes (ratio " << pack.ratio() << "; "
              << pack.extents << " extents:";
    for (size_t c = 0; c < kNumExtentCodecs; ++c) {
      if (pack.extents_by_codec[c] == 0) continue;
      std::cout << " " << pack.extents_by_codec[c] << " "
                << ExtentCodecName(static_cast<uint16_t>(c));
    }
    std::cout << ")\n";
  }
  return 0;
}

int CmdQuantile(const CommandFlags& flags) {
  auto list = LoadSketch(flags);
  if (!list.ok()) return Fail(list.status());
  auto phis = ParsePhis(flags);
  if (!phis.ok()) return Fail(phis.status());
  QuerySession<Key> session(std::move(list).value());
  std::vector<Request> requests;
  for (double phi : *phis) requests.push_back(Request::Quantile(phi));
  auto results = session.Query(requests);
  if (!results.ok()) return Fail(results.status());
  std::cout << "phi\trank\tlower\tupper\n";
  for (size_t i = 0; i < phis->size(); ++i) {
    const QuantileEstimate<Key>& e = results->results[i].estimates[0];
    std::cout << (*phis)[i] << "\t" << e.target_rank << "\t" << e.lower
              << (e.lower_clamped ? "?" : "") << "\t" << e.upper
              << (e.upper_clamped ? "?" : "") << "\n";
  }
  std::cout << "(rank error <= " << results->max_rank_error
            << "; '?' marks a clamped, uncertified bound)\n";
  return 0;
}

int CmdExact(const CommandFlags& flags) {
  auto list = LoadSketch(flags);
  if (!list.ok()) return Fail(list.status());
  auto sources = OpenDataSources(flags);
  if (!sources.ok()) return Fail(sources.status());
  auto phis = ParsePhis(flags);
  if (!phis.ok()) return Fail(phis.status());
  auto config = ScanConfig(flags, *sources);
  if (!config.ok()) return Fail(config.status());
  // samples_per_run = 1 neutralizes the divisibility rule the second pass
  // does not have, while still validating the raw flag values cleanly.
  config->samples_per_run = 1;
  Status valid = config->Validate();
  if (!valid.ok()) return Fail(valid);

  // One batched query, every request exact: all quantiles share ONE pass.
  QuerySession<Key> session(std::move(list).value(), *sources, *config);
  const int64_t budget = flags.GetInt("budget");
  if (budget < 0) {
    return Fail(Status::InvalidArgument(
        "--budget must be >= 0 (0 = the default 4*q*max_rank_error)"));
  }
  session.set_exact_memory_budget(static_cast<uint64_t>(budget));
  std::vector<Request> requests;
  for (double phi : *phis) {
    requests.push_back(Request::Quantile(phi, /*exact=*/true));
  }
  auto results = session.Query(requests);
  if (!results.ok()) return Fail(results.status());
  std::cout << "phi\texact\n";
  for (size_t i = 0; i < phis->size(); ++i) {
    std::cout << (*phis)[i] << "\t" << results->results[i].exact[0] << "\n";
  }
  return 0;
}

int CmdRank(const CommandFlags& flags) {
  auto list = LoadSketch(flags);
  if (!list.ok()) return Fail(list.status());
  // --value presence is enforced by ValidateFlags (the table marks it
  // required).
  const Key value = static_cast<Key>(flags.GetInt("value"));
  QuerySession<Key> session(std::move(list).value());
  auto results = session.Query({Request::RankOf(value)});
  if (!results.ok()) return Fail(results.status());
  const RankEstimate& r = results->results[0].rank;
  std::cout << "value " << value << ": rank(<=) in [" << r.min_rank_le
            << ", " << r.max_rank_le << "], rank(<) in [" << r.min_rank_lt
            << ", " << r.max_rank_lt << "] of " << results->total_elements
            << "\n";
  return 0;
}

int CmdMerge(const CommandFlags& flags) {
  if (flags.raw().positional().size() < 3) {  // "merge" + >= 2 inputs
    return Fail(Status::InvalidArgument("merge needs >= 2 input sketches"));
  }
  SampleList<Key> merged;
  for (size_t i = 1; i < flags.raw().positional().size(); ++i) {
    auto device = OpenFileDevice(flags.raw().positional()[i],
                                 FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return Fail(device.status());
    auto list = LoadSampleList<Key>(device->get());
    if (!list.ok()) return Fail(list.status());
    auto combined = SampleList<Key>::Merge(merged, *list);
    if (!combined.ok()) return Fail(combined.status());
    merged = std::move(combined).value();
  }
  auto out = OpenFileDevice(flags.GetString("out"),
                            FileBlockDevice::Mode::kCreate);
  if (!out.ok()) return Fail(out.status());
  Status s = SaveSampleList(merged, out->get());
  if (!s.ok()) return Fail(s);
  std::cout << "merged " << flags.raw().positional().size() - 1
            << " sketches: " << merged.total_elements() << " keys, "
            << merged.samples().size() << " samples\n";
  return 0;
}

int CmdInspect(const CommandFlags& flags) {
  auto list = LoadSketch(flags);
  if (!list.ok()) return Fail(list.status());
  const SampleAccounting& acc = list->accounting();
  std::cout << "sketch: " << flags.GetString("sketch") << "\n"
            << "  total elements : " << acc.total_elements << "\n"
            << "  runs           : " << acc.num_runs << "\n"
            << "  samples        : " << acc.num_samples << "\n"
            << "  sub-run size   : " << acc.subrun_size << "\n"
            << "  uncovered tail : " << acc.num_uncovered << "\n"
            << "  max rank error : " << MaxRankError(acc) << " ("
            << 100.0 * static_cast<double>(MaxRankError(acc)) /
                   static_cast<double>(acc.total_elements)
            << "% of n)\n";
  if (!list->samples().empty()) {
    std::cout << "  sample range   : [" << list->samples().front() << ", "
              << list->samples().back() << "]\n";
  }
  return 0;
}

int CmdStats(const CommandFlags& flags) {
  if (flags.raw().positional().size() != 2) {  // "stats" + target
    return Fail(Status::InvalidArgument(
        "stats needs exactly one HOST:PORT argument (any opaq_noded or "
        "opaq_queryd address)"));
  }
  const std::string& target = flags.raw().positional()[1];
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == target.size()) {
    return Fail(Status::InvalidArgument("bad stats target '" + target +
                                        "'; expected HOST:PORT"));
  }
  char* end = nullptr;
  const long port = std::strtol(target.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
    return Fail(
        Status::InvalidArgument("bad port in stats target '" + target + "'"));
  }
  const std::string format = flags.GetString("format");
  if (format != "text" && format != "prometheus") {
    return Fail(Status::InvalidArgument("unknown --format: " + format +
                                        " (text | prometheus)"));
  }
  auto client = NodeClient::Connect(target.substr(0, colon),
                                    static_cast<uint16_t>(port));
  if (!client.ok()) return Fail(client.status());
  Status sent = client->SendRequest(WireOp::kStats, nullptr, 0);
  if (!sent.ok()) return Fail(sent);
  auto frame = client->ReceiveResponse(WireOp::kStatsData);
  if (!frame.ok()) return Fail(frame.status());
  auto snapshot =
      DecodeStatsPayload(frame->payload.data(), frame->payload.size());
  if (!snapshot.ok()) return Fail(snapshot.status());
  std::cout << (format == "prometheus" ? FormatStatsPrometheus(*snapshot)
                                       : FormatStatsText(*snapshot));
  return 0;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->Has("help") && flags->positional().empty()) {
    return Usage(std::cout, 0);
  }
  if (flags->positional().empty()) return Usage();
  const std::string& command = flags->positional()[0];
  if (command == "help") return Usage(std::cout, 0);
  const CommandSpec* spec = nullptr;
  for (const CommandSpec& candidate : Commands()) {
    if (command == candidate.name) spec = &candidate;
  }
  if (spec == nullptr) {
    std::cerr << "unknown command: " << command << "\n";
    return Usage();
  }
  if (flags->Has("help")) {
    PrintCommandHelp(*spec, std::cout);
    return 0;
  }
  Status valid = ValidateFlags(*flags, *spec);
  if (!valid.ok()) {
    // Bad input is usage, not an internal error: name the problem, show the
    // command's flag table, and exit 2 like the daemons do.
    std::cerr << "error: " << valid.message() << "\n\n";
    PrintCommandHelp(*spec, std::cerr);
    return 2;
  }
  CommandFlags command_flags(*flags, *spec);
  // The handler lives in the same table as the flags and help text, so a
  // new command cannot be added without its dispatch.
  OPAQ_CHECK(spec->run != nullptr)
      << "command '" << command << "' has no handler in its spec";
  return spec->run(command_flags);
}

}  // namespace
}  // namespace cli
}  // namespace opaq

int main(int argc, char** argv) { return opaq::cli::Main(argc, argv); }
