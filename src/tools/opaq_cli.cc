// opaq — command-line front end for the library (uint64 keys).
//
// A one-pass quantile workflow without writing any code:
//
//   opaq generate --out=data.opaq --n=10000000 --dist=zipf
//   opaq sketch   --data=data.opaq --out=data.sketch --samples=1024
//   opaq quantile --sketch=data.sketch --phi=0.5,0.99
//   opaq exact    --data=data.opaq --sketch=data.sketch --phi=0.5
//   opaq rank     --sketch=data.sketch --value=123456
//   opaq merge    --out=all.sketch a.sketch b.sketch
//   opaq inspect  --sketch=data.sketch
//
// Sketches persist the sorted sample list (core/sketch_io.h), so `sketch`
// once and query forever; `merge` folds in new data incrementally without
// rereading the old (paper §4).
//
// Datasets may live on one file or striped round-robin across several
// disks: pass `--stripes=D` (derives `PATH.s0..s{D-1}`) or explicit
// `--stripe-paths=/disk0/d.opaq,/disk1/d.opaq` to generate/sketch/exact,
// and the striped backend reads all stripes concurrently.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/exact.h"
#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/timer.h"

namespace opaq {
namespace cli {
namespace {

using Key = uint64_t;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << std::endl;
  return 1;
}

int Usage() {
  std::cerr <<
      "usage: opaq <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --out=FILE --n=N [--dist=uniform|zipf|normal|sequential]\n"
      "            [--seed=S] [--zipf-z=0.86] [--dup=0.1]\n"
      "            [--stripes=D | --stripe-paths=F0,F1,...] [--chunk=65536]\n"
      "  sketch    --data=FILE --out=SKETCH [--run-size=1048576]\n"
      "            [--samples=1024] [--select=intro|fr|mom|std]\n"
      "            [--io-mode=sync|async] [--prefetch-depth=2]\n"
      "            [--stripes=D | --stripe-paths=F0,F1,...]\n"
      "  quantile  --sketch=SKETCH (--phi=0.5[,0.9,...] | --q=10)\n"
      "  exact     --data=FILE --sketch=SKETCH --phi=0.5[,...]\n"
      "            [--run-size=N] [--io-mode=sync|async]\n"
      "            [--prefetch-depth=2] [--stripes=D | --stripe-paths=...]\n"
      "  rank      --sketch=SKETCH --value=V\n"
      "  merge     --out=SKETCH IN1 IN2 [IN3 ...]\n"
      "  inspect   --sketch=SKETCH\n"
      "\n"
      "striping: --stripes=D spreads/reads PATH.s0..PATH.s{D-1};\n"
      "--stripe-paths lists the per-disk stripe files explicitly.\n";
  return 2;
}

Result<std::vector<double>> ParsePhis(const Flags& flags) {
  std::vector<double> phis;
  if (flags.Has("phi")) {
    std::stringstream ss(flags.GetString("phi", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      char* end = nullptr;
      double phi = std::strtod(item.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(phi > 0.0 && phi <= 1.0)) {
        return Status::InvalidArgument("bad --phi entry: " + item);
      }
      phis.push_back(phi);
    }
  } else {
    int64_t q = flags.GetInt("q", 10);
    if (q < 2) return Status::InvalidArgument("--q must be >= 2");
    for (int64_t i = 1; i < q; ++i) {
      phis.push_back(static_cast<double>(i) / static_cast<double>(q));
    }
  }
  if (phis.empty()) return Status::InvalidArgument("no quantiles requested");
  return phis;
}

Result<std::unique_ptr<FileBlockDevice>> OpenFileDevice(
    const std::string& path, FileBlockDevice::Mode mode) {
  if (path.empty()) {
    return Status::InvalidArgument("missing a required file path flag");
  }
  return FileBlockDevice::Make(path, mode);
}

/// Resolves the stripe layout of `base_path` from --stripes/--stripe-paths.
/// Returns an empty vector for the plain single-file layout.
Result<std::vector<std::string>> StripePaths(const Flags& flags,
                                             const std::string& base_path) {
  std::vector<std::string> paths;
  if (flags.Has("stripe-paths")) {
    std::stringstream ss(flags.GetString("stripe-paths", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) {
        return Status::InvalidArgument("empty entry in --stripe-paths");
      }
      paths.push_back(item);
    }
    if (paths.empty()) {
      return Status::InvalidArgument("--stripe-paths names no files");
    }
    if (flags.Has("stripes") &&
        flags.GetInt("stripes", 0) != static_cast<int64_t>(paths.size())) {
      return Status::InvalidArgument(
          "--stripes disagrees with the number of --stripe-paths entries");
    }
    return paths;
  }
  const int64_t stripes = flags.GetInt("stripes", 1);
  if (stripes < 1 || static_cast<uint64_t>(stripes) > kMaxStripes) {
    return Status::InvalidArgument("--stripes must be in [1, " +
                                   std::to_string(kMaxStripes) + "]");
  }
  if (stripes == 1) return paths;  // plain layout
  if (base_path.empty()) {
    return Status::InvalidArgument("missing a required file path flag");
  }
  for (int64_t s = 0; s < stripes; ++s) {
    paths.push_back(base_path + ".s" + std::to_string(s));
  }
  return paths;
}

/// A dataset opened for reading on whichever storage backend the flags ask
/// for, owning its devices; `provider` is the backend-independent view.
struct DataInput {
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  std::unique_ptr<TypedDataFile<Key>> plain;
  std::unique_ptr<StripedDataFile<Key>> striped;
  std::unique_ptr<RunProvider<Key>> provider;

  uint64_t stripes() const { return striped ? striped->num_stripes() : 1; }
};

Result<DataInput> OpenDataInput(const Flags& flags) {
  const std::string path = flags.GetString("data", "");
  auto paths = StripePaths(flags, path);
  if (!paths.ok()) return paths.status();
  DataInput input;
  if (paths->empty()) {
    auto device = OpenFileDevice(path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    input.devices.push_back(std::move(device).value());
    auto file = TypedDataFile<Key>::Open(input.devices.back().get());
    if (!file.ok()) return file.status();
    input.plain =
        std::make_unique<TypedDataFile<Key>>(std::move(file).value());
    input.provider = std::make_unique<FileRunProvider<Key>>(input.plain.get());
    return input;
  }
  std::vector<BlockDevice*> raw;
  for (const std::string& stripe_path : *paths) {
    auto device = OpenFileDevice(stripe_path, FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return device.status();
    input.devices.push_back(std::move(device).value());
    raw.push_back(input.devices.back().get());
  }
  auto file = StripedDataFile<Key>::Open(std::move(raw));
  if (!file.ok()) return file.status();
  input.striped =
      std::make_unique<StripedDataFile<Key>>(std::move(file).value());
  input.provider =
      std::make_unique<StripedFileProvider<Key>>(input.striped.get());
  return input;
}

int CmdGenerate(const Flags& flags) {
  DatasetSpec spec;
  spec.n = static_cast<uint64_t>(flags.GetInt("n", 1000000));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  spec.duplicate_fraction = flags.GetDouble("dup", 0.1);
  spec.zipf_z = flags.GetDouble("zipf-z", 0.86);
  const std::string dist = flags.GetString("dist", "uniform");
  if (dist == "uniform") {
    spec.distribution = Distribution::kUniform;
  } else if (dist == "zipf") {
    spec.distribution = Distribution::kZipf;
  } else if (dist == "normal") {
    spec.distribution = Distribution::kNormal;
  } else if (dist == "sequential") {
    spec.distribution = Distribution::kSequential;
  } else {
    return Fail(Status::InvalidArgument("unknown --dist: " + dist));
  }
  auto paths = StripePaths(flags, flags.GetString("out", ""));
  if (!paths.ok()) return Fail(paths.status());
  WallTimer timer;
  if (paths->empty()) {
    auto device = OpenFileDevice(flags.GetString("out", ""),
                                 FileBlockDevice::Mode::kCreate);
    if (!device.ok()) return Fail(device.status());
    Status s = GenerateDatasetToDevice<Key>(spec, device->get());
    if (!s.ok()) return Fail(s);
    std::cout << "wrote " << spec.ToString() << " to "
              << flags.GetString("out", "") << " in "
              << timer.ElapsedSeconds() << "s\n";
    return 0;
  }
  const int64_t chunk = flags.GetInt("chunk", 65536);
  if (chunk < 1) return Fail(Status::InvalidArgument("--chunk must be >= 1"));
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  std::vector<BlockDevice*> raw;
  for (const std::string& path : *paths) {
    auto device = OpenFileDevice(path, FileBlockDevice::Mode::kCreate);
    if (!device.ok()) return Fail(device.status());
    devices.push_back(std::move(device).value());
    raw.push_back(devices.back().get());
  }
  auto file = WriteStriped(GenerateDataset<Key>(spec), std::move(raw),
                           static_cast<uint64_t>(chunk));
  if (!file.ok()) return Fail(file.status());
  for (auto& device : devices) {
    Status s = device->Sync();
    if (!s.ok()) return Fail(s);
  }
  std::cout << "wrote " << spec.ToString() << " as " << file->ToString()
            << " across " << paths->front() << ".." << paths->back()
            << " in " << timer.ElapsedSeconds() << "s\n";
  return 0;
}

int CmdSketch(const Flags& flags) {
  auto input = OpenDataInput(flags);
  if (!input.ok()) return Fail(input.status());

  OpaqConfig config;
  config.run_size = static_cast<uint64_t>(flags.GetInt("run-size", 1 << 20));
  config.samples_per_run = static_cast<uint64_t>(flags.GetInt("samples",
                                                              1024));
  const std::string select = flags.GetString("select", "intro");
  if (select == "intro") {
    config.select_algorithm = SelectAlgorithm::kIntroSelect;
  } else if (select == "fr") {
    config.select_algorithm = SelectAlgorithm::kFloydRivest;
  } else if (select == "mom") {
    config.select_algorithm = SelectAlgorithm::kMedianOfMedians;
  } else if (select == "std") {
    config.select_algorithm = SelectAlgorithm::kStdNthElement;
  } else {
    return Fail(Status::InvalidArgument("unknown --select: " + select));
  }
  auto parsed_mode = ParseIoMode(flags.GetString("io-mode", "sync"));
  if (!parsed_mode.ok()) return Fail(parsed_mode.status());
  config.io_mode = *parsed_mode;
  config.prefetch_depth =
      static_cast<uint64_t>(flags.GetInt("prefetch-depth", 2));
  config.stripes = input->stripes();
  Status valid = config.Validate();
  if (!valid.ok()) return Fail(valid);

  WallTimer timer;
  OpaqSketch<Key> sketch(config);
  double io_seconds = 0;
  Status s = sketch.Consume(*input->provider, &io_seconds);
  if (!s.ok()) return Fail(s);
  SampleList<Key> list = sketch.FinalizeSampleList();

  auto out_device = OpenFileDevice(flags.GetString("out", ""),
                                   FileBlockDevice::Mode::kCreate);
  if (!out_device.ok()) return Fail(out_device.status());
  s = SaveSampleList(list, out_device->get());
  if (!s.ok()) return Fail(s);
  std::cout << "sketched " << list.total_elements() << " keys ("
            << list.accounting().num_runs << " runs, "
            << list.samples().size() << " samples) in "
            << timer.ElapsedSeconds() << "s (" << io_seconds << "s "
            << (config.io_mode == IoMode::kAsync ? "I/O stall, async"
                                                 : "I/O")
            << (config.stripes > 1
                    ? ", " + std::to_string(config.stripes) + " stripes"
                    : "")
            << "); rank error <= " << MaxRankError(list.accounting())
            << "\n";
  return 0;
}

int CmdQuantile(const Flags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch", ""),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return Fail(device.status());
  auto list = LoadSampleList<Key>(device->get());
  if (!list.ok()) return Fail(list.status());
  auto phis = ParsePhis(flags);
  if (!phis.ok()) return Fail(phis.status());
  OpaqEstimator<Key> estimator(std::move(list).value());
  std::cout << "phi\trank\tlower\tupper\n";
  for (double phi : *phis) {
    auto e = estimator.Quantile(phi);
    std::cout << phi << "\t" << e.target_rank << "\t" << e.lower
              << (e.lower_clamped ? "?" : "") << "\t" << e.upper
              << (e.upper_clamped ? "?" : "") << "\n";
  }
  std::cout << "(rank error <= " << estimator.max_rank_error()
            << "; '?' marks a clamped, uncertified bound)\n";
  return 0;
}

int CmdExact(const Flags& flags) {
  auto sketch_device = OpenFileDevice(flags.GetString("sketch", ""),
                                      FileBlockDevice::Mode::kOpen);
  if (!sketch_device.ok()) return Fail(sketch_device.status());
  auto list = LoadSampleList<Key>(sketch_device->get());
  if (!list.ok()) return Fail(list.status());
  auto input = OpenDataInput(flags);
  if (!input.ok()) return Fail(input.status());
  auto phis = ParsePhis(flags);
  if (!phis.ok()) return Fail(phis.status());

  OpaqEstimator<Key> estimator(std::move(list).value());
  std::vector<QuantileEstimate<Key>> estimates;
  for (double phi : *phis) estimates.push_back(estimator.Quantile(phi));
  // Route the raw flag values through the same OpaqConfig::Validate as
  // CmdSketch (samples_per_run = 1 neutralizes the divisibility rule the
  // second pass does not have) so bad inputs fail with a clean error, not
  // a CHECK abort in the readers.
  OpaqConfig config;
  config.run_size = static_cast<uint64_t>(flags.GetInt("run-size", 1 << 20));
  config.samples_per_run = 1;
  auto parsed_mode = ParseIoMode(flags.GetString("io-mode", "sync"));
  if (!parsed_mode.ok()) return Fail(parsed_mode.status());
  config.io_mode = *parsed_mode;
  config.prefetch_depth =
      static_cast<uint64_t>(flags.GetInt("prefetch-depth", 2));
  config.stripes = input->stripes();
  Status valid = config.Validate();
  if (!valid.ok()) return Fail(valid);
  auto exact = ExactQuantilesSecondPass(*input->provider, estimates,
                                        config.read_options());
  if (!exact.ok()) return Fail(exact.status());
  std::cout << "phi\texact\n";
  for (size_t i = 0; i < phis->size(); ++i) {
    std::cout << (*phis)[i] << "\t" << (*exact)[i] << "\n";
  }
  return 0;
}

int CmdRank(const Flags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch", ""),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return Fail(device.status());
  auto list = LoadSampleList<Key>(device->get());
  if (!list.ok()) return Fail(list.status());
  if (!flags.Has("value")) {
    return Fail(Status::InvalidArgument("rank requires --value"));
  }
  const Key value = static_cast<Key>(flags.GetInt("value", 0));
  OpaqEstimator<Key> estimator(std::move(list).value());
  RankEstimate r = estimator.EstimateRank(value);
  std::cout << "value " << value << ": rank(<=) in [" << r.min_rank_le
            << ", " << r.max_rank_le << "], rank(<) in [" << r.min_rank_lt
            << ", " << r.max_rank_lt << "] of "
            << estimator.total_elements() << "\n";
  return 0;
}

int CmdMerge(const Flags& flags) {
  if (flags.positional().size() < 3) {  // "merge" + >= 2 inputs
    return Fail(Status::InvalidArgument("merge needs >= 2 input sketches"));
  }
  SampleList<Key> merged;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    auto device = OpenFileDevice(flags.positional()[i],
                                 FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return Fail(device.status());
    auto list = LoadSampleList<Key>(device->get());
    if (!list.ok()) return Fail(list.status());
    auto combined = SampleList<Key>::Merge(merged, *list);
    if (!combined.ok()) return Fail(combined.status());
    merged = std::move(combined).value();
  }
  auto out = OpenFileDevice(flags.GetString("out", ""),
                            FileBlockDevice::Mode::kCreate);
  if (!out.ok()) return Fail(out.status());
  Status s = SaveSampleList(merged, out->get());
  if (!s.ok()) return Fail(s);
  std::cout << "merged " << flags.positional().size() - 1 << " sketches: "
            << merged.total_elements() << " keys, "
            << merged.samples().size() << " samples\n";
  return 0;
}

int CmdInspect(const Flags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch", ""),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return Fail(device.status());
  auto list = LoadSampleList<Key>(device->get());
  if (!list.ok()) return Fail(list.status());
  const SampleAccounting& acc = list->accounting();
  std::cout << "sketch: " << flags.GetString("sketch", "") << "\n"
            << "  total elements : " << acc.total_elements << "\n"
            << "  runs           : " << acc.num_runs << "\n"
            << "  samples        : " << acc.num_samples << "\n"
            << "  sub-run size   : " << acc.subrun_size << "\n"
            << "  uncovered tail : " << acc.num_uncovered << "\n"
            << "  max rank error : " << MaxRankError(acc) << " ("
            << 100.0 * static_cast<double>(MaxRankError(acc)) /
                   static_cast<double>(acc.total_elements)
            << "% of n)\n";
  if (!list->samples().empty()) {
    std::cout << "  sample range   : [" << list->samples().front() << ", "
              << list->samples().back() << "]\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->positional().empty()) return Usage();
  const std::string& command = flags->positional()[0];
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "sketch") return CmdSketch(*flags);
  if (command == "quantile") return CmdQuantile(*flags);
  if (command == "exact") return CmdExact(*flags);
  if (command == "rank") return CmdRank(*flags);
  if (command == "merge") return CmdMerge(*flags);
  if (command == "inspect") return CmdInspect(*flags);
  std::cerr << "unknown command: " << command << "\n";
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace opaq

int main(int argc, char** argv) { return opaq::cli::Main(argc, argv); }
