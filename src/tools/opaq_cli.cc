// opaq — command-line front end for the library (uint64 keys).
//
// A one-pass quantile workflow without writing any code:
//
//   opaq generate --out=data.opaq --n=10000000 --dist=zipf
//   opaq sketch   --data=data.opaq --out=data.sketch --samples=1024
//   opaq quantile --sketch=data.sketch --phi=0.5,0.99
//   opaq exact    --data=data.opaq --sketch=data.sketch --phi=0.5
//   opaq rank     --sketch=data.sketch --value=123456
//   opaq merge    --out=all.sketch a.sketch b.sketch
//   opaq inspect  --sketch=data.sketch
//
// Sketches persist the sorted sample list (core/sketch_io.h), so `sketch`
// once and query forever; `merge` folds in new data incrementally without
// rereading the old (paper §4).

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/exact.h"
#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/timer.h"

namespace opaq {
namespace cli {
namespace {

using Key = uint64_t;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << std::endl;
  return 1;
}

int Usage() {
  std::cerr <<
      "usage: opaq <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --out=FILE --n=N [--dist=uniform|zipf|normal|sequential]\n"
      "            [--seed=S] [--zipf-z=0.86] [--dup=0.1]\n"
      "  sketch    --data=FILE --out=SKETCH [--run-size=1048576]\n"
      "            [--samples=1024] [--select=intro|fr|mom|std]\n"
      "            [--io-mode=sync|async] [--prefetch-depth=2]\n"
      "  quantile  --sketch=SKETCH (--phi=0.5[,0.9,...] | --q=10)\n"
      "  exact     --data=FILE --sketch=SKETCH --phi=0.5[,...]\n"
      "  rank      --sketch=SKETCH --value=V\n"
      "  merge     --out=SKETCH IN1 IN2 [IN3 ...]\n"
      "  inspect   --sketch=SKETCH\n";
  return 2;
}

Result<std::vector<double>> ParsePhis(const Flags& flags) {
  std::vector<double> phis;
  if (flags.Has("phi")) {
    std::stringstream ss(flags.GetString("phi", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      char* end = nullptr;
      double phi = std::strtod(item.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(phi > 0.0 && phi <= 1.0)) {
        return Status::InvalidArgument("bad --phi entry: " + item);
      }
      phis.push_back(phi);
    }
  } else {
    int64_t q = flags.GetInt("q", 10);
    if (q < 2) return Status::InvalidArgument("--q must be >= 2");
    for (int64_t i = 1; i < q; ++i) {
      phis.push_back(static_cast<double>(i) / static_cast<double>(q));
    }
  }
  if (phis.empty()) return Status::InvalidArgument("no quantiles requested");
  return phis;
}

Result<std::unique_ptr<FileBlockDevice>> OpenFileDevice(
    const std::string& path, FileBlockDevice::Mode mode) {
  if (path.empty()) {
    return Status::InvalidArgument("missing a required file path flag");
  }
  return FileBlockDevice::Make(path, mode);
}

int CmdGenerate(const Flags& flags) {
  DatasetSpec spec;
  spec.n = static_cast<uint64_t>(flags.GetInt("n", 1000000));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  spec.duplicate_fraction = flags.GetDouble("dup", 0.1);
  spec.zipf_z = flags.GetDouble("zipf-z", 0.86);
  const std::string dist = flags.GetString("dist", "uniform");
  if (dist == "uniform") {
    spec.distribution = Distribution::kUniform;
  } else if (dist == "zipf") {
    spec.distribution = Distribution::kZipf;
  } else if (dist == "normal") {
    spec.distribution = Distribution::kNormal;
  } else if (dist == "sequential") {
    spec.distribution = Distribution::kSequential;
  } else {
    return Fail(Status::InvalidArgument("unknown --dist: " + dist));
  }
  auto device = OpenFileDevice(flags.GetString("out", ""),
                               FileBlockDevice::Mode::kCreate);
  if (!device.ok()) return Fail(device.status());
  WallTimer timer;
  Status s = GenerateDatasetToDevice<Key>(spec, device->get());
  if (!s.ok()) return Fail(s);
  std::cout << "wrote " << spec.ToString() << " to "
            << flags.GetString("out", "") << " in "
            << timer.ElapsedSeconds() << "s\n";
  return 0;
}

int CmdSketch(const Flags& flags) {
  auto data_device = OpenFileDevice(flags.GetString("data", ""),
                                    FileBlockDevice::Mode::kOpen);
  if (!data_device.ok()) return Fail(data_device.status());
  auto file = TypedDataFile<Key>::Open(data_device->get());
  if (!file.ok()) return Fail(file.status());

  OpaqConfig config;
  config.run_size = static_cast<uint64_t>(flags.GetInt("run-size", 1 << 20));
  config.samples_per_run = static_cast<uint64_t>(flags.GetInt("samples",
                                                              1024));
  const std::string select = flags.GetString("select", "intro");
  if (select == "intro") {
    config.select_algorithm = SelectAlgorithm::kIntroSelect;
  } else if (select == "fr") {
    config.select_algorithm = SelectAlgorithm::kFloydRivest;
  } else if (select == "mom") {
    config.select_algorithm = SelectAlgorithm::kMedianOfMedians;
  } else if (select == "std") {
    config.select_algorithm = SelectAlgorithm::kStdNthElement;
  } else {
    return Fail(Status::InvalidArgument("unknown --select: " + select));
  }
  auto parsed_mode = ParseIoMode(flags.GetString("io-mode", "sync"));
  if (!parsed_mode.ok()) return Fail(parsed_mode.status());
  config.io_mode = *parsed_mode;
  config.prefetch_depth =
      static_cast<uint64_t>(flags.GetInt("prefetch-depth", 2));
  Status valid = config.Validate();
  if (!valid.ok()) return Fail(valid);

  WallTimer timer;
  OpaqSketch<Key> sketch(config);
  double io_seconds = 0;
  Status s = sketch.ConsumeFile(&*file, &io_seconds);
  if (!s.ok()) return Fail(s);
  SampleList<Key> list = sketch.FinalizeSampleList();

  auto out_device = OpenFileDevice(flags.GetString("out", ""),
                                   FileBlockDevice::Mode::kCreate);
  if (!out_device.ok()) return Fail(out_device.status());
  s = SaveSampleList(list, out_device->get());
  if (!s.ok()) return Fail(s);
  std::cout << "sketched " << list.total_elements() << " keys ("
            << list.accounting().num_runs << " runs, "
            << list.samples().size() << " samples) in "
            << timer.ElapsedSeconds() << "s (" << io_seconds << "s "
            << (config.io_mode == IoMode::kAsync ? "I/O stall, async"
                                                 : "I/O")
            << "); rank error <= " << MaxRankError(list.accounting())
            << "\n";
  return 0;
}

int CmdQuantile(const Flags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch", ""),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return Fail(device.status());
  auto list = LoadSampleList<Key>(device->get());
  if (!list.ok()) return Fail(list.status());
  auto phis = ParsePhis(flags);
  if (!phis.ok()) return Fail(phis.status());
  OpaqEstimator<Key> estimator(std::move(list).value());
  std::cout << "phi\trank\tlower\tupper\n";
  for (double phi : *phis) {
    auto e = estimator.Quantile(phi);
    std::cout << phi << "\t" << e.target_rank << "\t" << e.lower
              << (e.lower_clamped ? "?" : "") << "\t" << e.upper
              << (e.upper_clamped ? "?" : "") << "\n";
  }
  std::cout << "(rank error <= " << estimator.max_rank_error()
            << "; '?' marks a clamped, uncertified bound)\n";
  return 0;
}

int CmdExact(const Flags& flags) {
  auto sketch_device = OpenFileDevice(flags.GetString("sketch", ""),
                                      FileBlockDevice::Mode::kOpen);
  if (!sketch_device.ok()) return Fail(sketch_device.status());
  auto list = LoadSampleList<Key>(sketch_device->get());
  if (!list.ok()) return Fail(list.status());
  auto data_device = OpenFileDevice(flags.GetString("data", ""),
                                    FileBlockDevice::Mode::kOpen);
  if (!data_device.ok()) return Fail(data_device.status());
  auto file = TypedDataFile<Key>::Open(data_device->get());
  if (!file.ok()) return Fail(file.status());
  auto phis = ParsePhis(flags);
  if (!phis.ok()) return Fail(phis.status());

  OpaqEstimator<Key> estimator(std::move(list).value());
  std::vector<QuantileEstimate<Key>> estimates;
  for (double phi : *phis) estimates.push_back(estimator.Quantile(phi));
  const uint64_t run_size =
      static_cast<uint64_t>(flags.GetInt("run-size", 1 << 20));
  auto exact = ExactQuantilesSecondPass(&*file, estimates, run_size);
  if (!exact.ok()) return Fail(exact.status());
  std::cout << "phi\texact\n";
  for (size_t i = 0; i < phis->size(); ++i) {
    std::cout << (*phis)[i] << "\t" << (*exact)[i] << "\n";
  }
  return 0;
}

int CmdRank(const Flags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch", ""),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return Fail(device.status());
  auto list = LoadSampleList<Key>(device->get());
  if (!list.ok()) return Fail(list.status());
  if (!flags.Has("value")) {
    return Fail(Status::InvalidArgument("rank requires --value"));
  }
  const Key value = static_cast<Key>(flags.GetInt("value", 0));
  OpaqEstimator<Key> estimator(std::move(list).value());
  RankEstimate r = estimator.EstimateRank(value);
  std::cout << "value " << value << ": rank(<=) in [" << r.min_rank_le
            << ", " << r.max_rank_le << "], rank(<) in [" << r.min_rank_lt
            << ", " << r.max_rank_lt << "] of "
            << estimator.total_elements() << "\n";
  return 0;
}

int CmdMerge(const Flags& flags) {
  if (flags.positional().size() < 3) {  // "merge" + >= 2 inputs
    return Fail(Status::InvalidArgument("merge needs >= 2 input sketches"));
  }
  SampleList<Key> merged;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    auto device = OpenFileDevice(flags.positional()[i],
                                 FileBlockDevice::Mode::kOpen);
    if (!device.ok()) return Fail(device.status());
    auto list = LoadSampleList<Key>(device->get());
    if (!list.ok()) return Fail(list.status());
    auto combined = SampleList<Key>::Merge(merged, *list);
    if (!combined.ok()) return Fail(combined.status());
    merged = std::move(combined).value();
  }
  auto out = OpenFileDevice(flags.GetString("out", ""),
                            FileBlockDevice::Mode::kCreate);
  if (!out.ok()) return Fail(out.status());
  Status s = SaveSampleList(merged, out->get());
  if (!s.ok()) return Fail(s);
  std::cout << "merged " << flags.positional().size() - 1 << " sketches: "
            << merged.total_elements() << " keys, "
            << merged.samples().size() << " samples\n";
  return 0;
}

int CmdInspect(const Flags& flags) {
  auto device = OpenFileDevice(flags.GetString("sketch", ""),
                               FileBlockDevice::Mode::kOpen);
  if (!device.ok()) return Fail(device.status());
  auto list = LoadSampleList<Key>(device->get());
  if (!list.ok()) return Fail(list.status());
  const SampleAccounting& acc = list->accounting();
  std::cout << "sketch: " << flags.GetString("sketch", "") << "\n"
            << "  total elements : " << acc.total_elements << "\n"
            << "  runs           : " << acc.num_runs << "\n"
            << "  samples        : " << acc.num_samples << "\n"
            << "  sub-run size   : " << acc.subrun_size << "\n"
            << "  uncovered tail : " << acc.num_uncovered << "\n"
            << "  max rank error : " << MaxRankError(acc) << " ("
            << 100.0 * static_cast<double>(MaxRankError(acc)) /
                   static_cast<double>(acc.total_elements)
            << "% of n)\n";
  if (!list->samples().empty()) {
    std::cout << "  sample range   : [" << list->samples().front() << ", "
              << list->samples().back() << "]\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->positional().empty()) return Usage();
  const std::string& command = flags->positional()[0];
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "sketch") return CmdSketch(*flags);
  if (command == "quantile") return CmdQuantile(*flags);
  if (command == "exact") return CmdExact(*flags);
  if (command == "rank") return CmdRank(*flags);
  if (command == "merge") return CmdMerge(*flags);
  if (command == "inspect") return CmdInspect(*flags);
  std::cerr << "unknown command: " << command << "\n";
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace opaq

int main(int argc, char** argv) { return opaq::cli::Main(argc, argv); }
