#ifndef OPAQ_INGEST_LIVE_DATASET_H_
#define OPAQ_INGEST_LIVE_DATASET_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/async_run_reader.h"
#include "io/block_device.h"
#include "io/codec.h"
#include "io/data_file.h"
#include "io/extent.h"
#include "io/run_reader.h"
#include "util/status.h"

namespace opaq {

/// Live (appendable) datasets: the streaming-ingest counterpart of the
/// static data files every other backend reads.
///
/// A live dataset is a DIRECTORY: a `MANIFEST` file (64-byte header plus
/// fixed 32-byte CRC'd records, strictly appended) and one immutable
/// segment file per appended batch (`seg-000001.opaq`, ... — plain data
/// files, or extent-packed files when the writer compresses). The commit
/// protocol is write-ahead-of-manifest:
///
///   1. write + fsync the new segment file,
///   2. fsync the directory (the new name is durable),
///   3. append + fsync the segment's manifest record.
///
/// A segment EXISTS exactly when its manifest record is durable, so a
/// crashed writer can only leave (a) an orphan segment file no record
/// names — invisible to readers, truncated and rewritten by the next
/// append — or (b) a torn/garbage manifest tail, which `ReadLiveManifest`
/// cuts back to the longest valid record prefix. Truncate the manifest at
/// ANY byte length and what remains is a readable dataset prefix; that is
/// the crash-consistency contract `ingest_test` sweeps.
///
/// Reads snapshot: `LiveDatasetReader::Open` binds the record prefix it
/// found and never sees later appends — exactly the epoch semantics the
/// query daemon's refresh path wants. Run boundaries are PER SEGMENT
/// (each segment chunks into `run_size` runs independently, ragged tail
/// and all), which makes them append-stable: sketching segments 1..k then
/// merging a sketch of segments k+1..n via `SampleList::Merge` is
/// byte-identical to sketching 1..n in one pass — the invariant behind
/// `QuerySession::Absorb` and the ingest conformance rows.

/// Fixed 64-byte header at offset 0 of a live-dataset MANIFEST.
struct LiveManifestHeader {
  static constexpr uint64_t kMagic = 0x4f5041514c495631ULL;  // "OPAQLIV1"
  uint64_t magic = kMagic;
  uint32_t version = 1;
  uint32_t key_type = 0;
  uint32_t element_size = 0;
  uint32_t flags = 0;  // reserved, must be 0
  uint8_t reserved[40] = {};
};
static_assert(sizeof(LiveManifestHeader) == 64);
static_assert(std::is_trivially_copyable_v<LiveManifestHeader>);

/// One durable segment: a fixed 32-byte record appended to the MANIFEST
/// after the segment file is fsync'd. `total_elements` is cumulative
/// (redundant with the sum of counts — cheap corruption tripwire and what
/// an incremental refresher reads to size the unabsorbed tail). The CRC
/// covers the first 28 bytes, so a torn append never validates.
struct LiveManifestRecord {
  static constexpr uint32_t kFlagPacked = 1;  // segment is extent-packed

  uint64_t element_count = 0;   // elements in this segment (> 0)
  uint64_t total_elements = 0;  // cumulative, including this segment
  uint32_t sequence = 0;        // 1-based, dense
  uint32_t flags = 0;           // kFlagPacked only
  uint32_t reserved = 0;
  uint32_t crc = 0;             // CRC-32 (IEEE) of the 28 bytes above
};
static_assert(sizeof(LiveManifestRecord) == 32);
static_assert(std::is_trivially_copyable_v<LiveManifestRecord>);

/// CRC over everything before the `crc` field.
uint32_t LiveRecordCrc(const LiveManifestRecord& record);

/// Segment file name for 1-based `sequence`: "seg-000001.opaq".
std::string LiveSegmentFileName(uint32_t sequence);

/// True when `path` exists (any file type).
bool LivePathExists(const std::string& path);

/// True when `dir` holds a live-dataset MANIFEST.
bool LiveDatasetExists(const std::string& dir);

/// Creates `dir` if missing (parent must exist); EEXIST is success.
Status EnsureLiveDirectory(const std::string& dir);

/// fsyncs `dir` itself so freshly created names in it are durable.
Status SyncLiveDirectory(const std::string& dir);

/// The validated durable state of a manifest: header fields plus the
/// longest valid record prefix (scanning stops at the first torn,
/// CRC-failing, or inconsistent record; trailing bytes are ignored).
struct LiveManifestInfo {
  KeyType key_type = KeyType::kU64;
  uint32_t element_size = 0;
  std::vector<LiveManifestRecord> records;
  uint64_t total_elements = 0;  // == records.back().total_elements, or 0
};

/// Reads and validates a MANIFEST from `device`. Fails only when the
/// header itself is missing/foreign/corrupt — record-level damage is
/// recovered as a shorter prefix, never an error.
Result<LiveManifestInfo> ReadLiveManifest(BlockDevice* device);

/// Convenience: opens `dir`'s MANIFEST read-only and reads it. NotFound
/// when `dir` is not a live dataset. Untyped on purpose — the daemons use
/// it to learn the key type before dispatching to the typed reader.
Result<LiveManifestInfo> ReadLiveManifestInfo(const std::string& dir);

/// Writer handle options.
struct LiveDatasetOptions {
  /// Store segments as compressed extent files instead of plain data
  /// files. Readers sniff per segment, so packed and plain segments mix
  /// freely in one dataset.
  bool pack = false;
  /// Codec and extent size for packed segments.
  ExtentCodec codec = ExtentCodec::kDelta;
  uint64_t extent_elements = 64u << 10;
  /// Issue the fsync barriers of the commit protocol. Leave on anywhere
  /// durability matters; benches measuring pure append rate may opt out.
  bool durable_sync = true;
};

/// Single-writer append handle. One `Append` call = one durable segment =
/// one (or more) sorted runs at sketch time. Readers are lock-free of the
/// writer — they bind the durable record prefix at open.
template <typename K>
class LiveDataset {
 public:
  LiveDataset(LiveDataset&&) = default;
  LiveDataset& operator=(LiveDataset&&) = default;

  /// Creates a fresh live dataset in `dir` (created if missing; parent
  /// must exist). AlreadyExists when a MANIFEST is already there.
  static Result<LiveDataset<K>> Create(
      const std::string& dir,
      const LiveDatasetOptions& options = LiveDatasetOptions()) {
    if (LiveDatasetExists(dir)) {
      return Status::AlreadyExists("live dataset already exists in " + dir);
    }
    OPAQ_RETURN_IF_ERROR(EnsureLiveDirectory(dir));
    auto manifest =
        FileBlockDevice::Make(dir + "/MANIFEST", FileBlockDevice::Mode::kCreate);
    if (!manifest.ok()) return manifest.status();
    LiveManifestHeader header;
    header.key_type = static_cast<uint32_t>(KeyTraits<K>::kType);
    header.element_size = sizeof(K);
    OPAQ_RETURN_IF_ERROR(
        (*manifest)->WriteAt(0, &header, sizeof(header)));
    if (options.durable_sync) {
      OPAQ_RETURN_IF_ERROR((*manifest)->Sync());
      OPAQ_RETURN_IF_ERROR(SyncLiveDirectory(dir));
    }
    return LiveDataset<K>(dir, options, std::move(*manifest), {}, 0);
  }

  /// Opens an existing live dataset for appending, recovering the durable
  /// record prefix (a crashed writer's torn tail is discarded and will be
  /// overwritten by the next append).
  static Result<LiveDataset<K>> Open(
      const std::string& dir,
      const LiveDatasetOptions& options = LiveDatasetOptions()) {
    auto manifest =
        FileBlockDevice::Make(dir + "/MANIFEST", FileBlockDevice::Mode::kOpen);
    if (!manifest.ok()) {
      return Status::NotFound("no live dataset in " + dir + ": " +
                              manifest.status().message());
    }
    auto info = ReadLiveManifest(manifest->get());
    if (!info.ok()) return info.status();
    if (info->key_type != KeyTraits<K>::kType) {
      return Status::InvalidArgument(
          std::string("live dataset in ") + dir +
          " holds a different key type than " + KeyTraits<K>::kName);
    }
    return LiveDataset<K>(dir, options, std::move(*manifest),
                          std::move(info->records), info->total_elements);
  }

  /// Open-if-present, Create-if-not.
  static Result<LiveDataset<K>> OpenOrCreate(
      const std::string& dir,
      const LiveDatasetOptions& options = LiveDatasetOptions()) {
    if (LiveDatasetExists(dir)) return Open(dir, options);
    return Create(dir, options);
  }

  /// Durably appends `values` as one new segment. On return (with
  /// durable_sync on) the segment is crash-safe: fsync'd file, fsync'd
  /// directory entry, fsync'd manifest record — in that order.
  Status Append(const std::vector<K>& values) {
    if (values.empty()) {
      return Status::InvalidArgument(
          "refusing to append an empty segment to a live dataset");
    }
    const uint32_t sequence = static_cast<uint32_t>(records_.size()) + 1;
    const std::string path = dir_ + "/" + LiveSegmentFileName(sequence);
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kCreate);
    if (!device.ok()) return device.status();
    uint32_t flags = 0;
    if (options_.pack) {
      flags |= LiveManifestRecord::kFlagPacked;
      ExtentWriterOptions extent_options;
      extent_options.extent_elements = options_.extent_elements;
      extent_options.codec = options_.codec;
      auto writer = ExtentWriter::Create({device->get()}, KeyTraits<K>::kType,
                                         sizeof(K), extent_options);
      if (!writer.ok()) return writer.status();
      OPAQ_RETURN_IF_ERROR(writer->Append(values.data(), values.size()));
      OPAQ_RETURN_IF_ERROR(writer->Finish());
    } else {
      auto file =
          TypedDataFile<K>::Create(device->get(), /*element_count=*/0);
      if (!file.ok()) return file.status();
      OPAQ_RETURN_IF_ERROR(file->Append(values));
    }
    if (options_.durable_sync) {
      OPAQ_RETURN_IF_ERROR((*device)->Sync());
      OPAQ_RETURN_IF_ERROR(SyncLiveDirectory(dir_));
    }

    LiveManifestRecord record;
    record.element_count = values.size();
    record.total_elements = total_ + values.size();
    record.sequence = sequence;
    record.flags = flags;
    record.crc = LiveRecordCrc(record);
    const uint64_t offset = sizeof(LiveManifestHeader) +
                            static_cast<uint64_t>(records_.size()) *
                                sizeof(LiveManifestRecord);
    OPAQ_RETURN_IF_ERROR(manifest_->WriteAt(offset, &record, sizeof(record)));
    if (options_.durable_sync) {
      OPAQ_RETURN_IF_ERROR(manifest_->Sync());
    }
    records_.push_back(record);
    total_ = record.total_elements;
    return Status::OK();
  }

  uint64_t total_elements() const { return total_; }
  uint64_t num_segments() const { return records_.size(); }
  const std::string& dir() const { return dir_; }

 private:
  LiveDataset(std::string dir, LiveDatasetOptions options,
              std::unique_ptr<FileBlockDevice> manifest,
              std::vector<LiveManifestRecord> records, uint64_t total)
      : dir_(std::move(dir)),
        options_(options),
        manifest_(std::move(manifest)),
        records_(std::move(records)),
        total_(total) {}

  std::string dir_;
  LiveDatasetOptions options_;
  std::unique_ptr<FileBlockDevice> manifest_;
  std::vector<LiveManifestRecord> records_;
  uint64_t total_ = 0;
};

/// Streams runs across segment boundaries: each segment's sub-range is
/// served by that segment's own backend source, re-chunking at `run_size`
/// from the segment's (sub-range) start — the append-stable run grid.
/// Sticky: after any inner error every later NextRun returns it.
template <typename K>
class LiveRunSource : public RunSource<K> {
 public:
  struct Span {
    const RunProvider<K>* provider = nullptr;
    uint64_t first = 0;  // element offset within the segment
    uint64_t count = 0;
  };

  LiveRunSource(std::vector<Span> spans, const ReadOptions& options)
      : spans_(std::move(spans)), options_(options) {}

  Result<bool> NextRun(std::vector<K>* buffer) override {
    buffer->clear();
    if (!status_.ok()) return status_;
    while (true) {
      if (current_ == nullptr) {
        if (next_span_ == spans_.size()) return false;
        const Span& span = spans_[next_span_++];
        current_ = span.provider->OpenRuns(options_, span.first, span.count);
      }
      auto more = current_->NextRun(buffer);
      if (!more.ok()) {
        status_ = more.status();
        return status_;
      }
      if (*more) return true;
      current_.reset();  // segment exhausted; move to the next
    }
  }

 private:
  std::vector<Span> spans_;
  ReadOptions options_;
  size_t next_span_ = 0;
  std::unique_ptr<RunSource<K>> current_;
  Status status_;
};

/// Read snapshot of a live dataset: binds the durable record prefix found
/// at Open (later appends are invisible — readers and the writer never
/// share state) and serves it through the standard `RunProvider` seam, so
/// sketches, the §4 exact pass, the Engine and the daemons all consume
/// live data unchanged. Segment files open eagerly and are validated
/// against their manifest records, so damage surfaces here as a clean
/// `Status`, not mid-stream.
template <typename K>
class LiveDatasetReader : public RunProvider<K> {
 public:
  static Result<LiveDatasetReader<K>> Open(const std::string& dir) {
    OPAQ_ASSIGN_OR_RETURN(LiveManifestInfo info, ReadLiveManifestInfo(dir));
    if (info.key_type != KeyTraits<K>::kType) {
      return Status::InvalidArgument(
          std::string("live dataset in ") + dir +
          " holds a different key type than " + KeyTraits<K>::kName);
    }
    LiveDatasetReader<K> reader;
    uint64_t flat = 0;
    for (const LiveManifestRecord& record : info.records) {
      auto segment = std::make_unique<Segment>();
      segment->first = flat;
      segment->count = record.element_count;
      const std::string path = dir + "/" + LiveSegmentFileName(record.sequence);
      auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
      if (!device.ok()) {
        return Status::IoError("live dataset segment " + path +
                               " named by a durable manifest record is "
                               "unreadable: " + device.status().message());
      }
      segment->device = std::move(*device);
      uint64_t stored = 0;
      if ((record.flags & LiveManifestRecord::kFlagPacked) != 0) {
        auto file = ExtentFile::Open({segment->device.get()});
        if (!file.ok()) return file.status();
        segment->extent = std::make_unique<ExtentFile>(std::move(*file));
        segment->provider =
            std::make_unique<ExtentFileProvider<K>>(segment->extent.get());
        stored = segment->extent->size();
      } else {
        auto file = TypedDataFile<K>::Open(segment->device.get());
        if (!file.ok()) return file.status();
        segment->plain =
            std::make_unique<TypedDataFile<K>>(std::move(*file));
        segment->provider =
            std::make_unique<FileRunProvider<K>>(segment->plain.get());
        stored = segment->plain->size();
      }
      if (stored != record.element_count) {
        return Status::IoError(
            "live dataset segment " + path + " holds " +
            std::to_string(stored) + " elements but its manifest record "
            "promises " + std::to_string(record.element_count));
      }
      flat += record.element_count;
      reader.segments_.push_back(std::move(segment));
    }
    reader.total_ = flat;
    return reader;
  }

  LiveDatasetReader(LiveDatasetReader&&) = default;
  LiveDatasetReader& operator=(LiveDatasetReader&&) = default;

  uint64_t size() const override { return total_; }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    first = std::min(first, total_);
    count = std::min(count, total_ - first);
    const uint64_t end = first + count;
    std::vector<typename LiveRunSource<K>::Span> spans;
    for (const auto& segment : segments_) {
      const uint64_t seg_end = segment->first + segment->count;
      if (seg_end <= first || segment->first >= end) continue;
      typename LiveRunSource<K>::Span span;
      span.provider = segment->provider.get();
      span.first = std::max(first, segment->first) - segment->first;
      span.count = std::min(end, seg_end) - (segment->first + span.first);
      spans.push_back(span);
    }
    return std::make_unique<LiveRunSource<K>>(std::move(spans), options);
  }

  /// Random-access read of `[first, first + count)` across segments (the
  /// node daemon's kReadRange path). Sized reads only — OutOfRange past
  /// the end, like `TypedDataFile::Read`.
  Status Read(uint64_t first, uint64_t count, K* out) const {
    if (first + count > total_ || first + count < first) {
      return Status::OutOfRange("live dataset read past the end");
    }
    if (count == 0) return Status::OK();
    ReadOptions options;
    options.io_mode = IoMode::kSync;
    options.run_size = std::min<uint64_t>(count, uint64_t{64} << 10);
    auto source = OpenRuns(options, first, count);
    std::vector<K> buffer;
    uint64_t copied = 0;
    while (copied < count) {
      auto more = source->NextRun(&buffer);
      if (!more.ok()) return more.status();
      if (!*more) {
        return Status::IoError("live dataset run stream ended early");
      }
      std::copy(buffer.begin(), buffer.end(), out + copied);
      copied += buffer.size();
    }
    return Status::OK();
  }

  uint64_t num_segments() const { return segments_.size(); }

  std::vector<uint64_t> segment_sizes() const {
    std::vector<uint64_t> sizes;
    sizes.reserve(segments_.size());
    for (const auto& segment : segments_) sizes.push_back(segment->count);
    return sizes;
  }

 private:
  LiveDatasetReader() = default;

  struct Segment {
    uint64_t first = 0;  // flat offset of this segment's first element
    uint64_t count = 0;
    std::unique_ptr<FileBlockDevice> device;
    std::unique_ptr<TypedDataFile<K>> plain;  // exactly one of plain/extent
    std::unique_ptr<ExtentFile> extent;
    std::unique_ptr<RunProvider<K>> provider;
  };

  std::vector<std::unique_ptr<Segment>> segments_;
  uint64_t total_ = 0;
};

/// The tail `[first_element, end)` of a live snapshot as a provider of its
/// own — what an incremental refresher sketches to build the delta sample
/// list it `Absorb`s. When `first_element` sits on a segment boundary
/// (always true when whole segments are absorbed), the tail's run grid is
/// identical to sketching those segments alone — the byte-identity
/// precondition.
template <typename K>
class LiveTailProvider : public RunProvider<K> {
 public:
  LiveTailProvider(std::shared_ptr<const LiveDatasetReader<K>> reader,
                   uint64_t first_element)
      : reader_(std::move(reader)),
        first_(std::min(first_element, reader_->size())) {}

  uint64_t size() const override { return reader_->size() - first_; }

  std::unique_ptr<RunSource<K>> OpenRuns(
      const ReadOptions& options, uint64_t first = 0,
      uint64_t count = UINT64_MAX) const override {
    first = std::min(first, size());
    count = std::min(count, size() - first);
    return reader_->OpenRuns(options, first_ + first, count);
  }

  const LiveDatasetReader<K>& reader() const { return *reader_; }

 private:
  std::shared_ptr<const LiveDatasetReader<K>> reader_;
  uint64_t first_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_INGEST_LIVE_DATASET_H_
