#include "ingest/live_dataset.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace opaq {

uint32_t LiveRecordCrc(const LiveManifestRecord& record) {
  return Crc32(&record, offsetof(LiveManifestRecord, crc));
}

std::string LiveSegmentFileName(uint32_t sequence) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.opaq", sequence);
  return name;
}

bool LivePathExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

bool LiveDatasetExists(const std::string& dir) {
  return LivePathExists(dir + "/MANIFEST");
}

Status EnsureLiveDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
}

Status SyncLiveDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open " + dir + " for fsync: " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync " + dir + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

Result<LiveManifestInfo> ReadLiveManifest(BlockDevice* device) {
  auto size = device->Size();
  if (!size.ok()) return size.status();
  if (*size < sizeof(LiveManifestHeader)) {
    return Status::IoError(
        "live manifest of " + std::to_string(*size) +
        " bytes is shorter than its header; not a live dataset");
  }
  LiveManifestHeader header;
  OPAQ_RETURN_IF_ERROR(device->ReadAt(0, &header, sizeof(header)));
  if (header.magic != LiveManifestHeader::kMagic) {
    return Status::IoError("bad live manifest magic: not an OPAQ live "
                           "dataset");
  }
  if (header.version != 1) {
    return Status::IoError("unsupported live manifest version " +
                           std::to_string(header.version));
  }
  if (header.flags != 0) {
    return Status::IoError("live manifest header carries unknown flags");
  }
  if (header.key_type < static_cast<uint32_t>(KeyType::kU32) ||
      header.key_type > static_cast<uint32_t>(KeyType::kF64)) {
    return Status::IoError("live manifest names an unknown key type " +
                           std::to_string(header.key_type));
  }
  if (header.element_size == 0 || header.element_size > 16) {
    return Status::IoError("live manifest names an implausible element "
                           "size " + std::to_string(header.element_size));
  }

  LiveManifestInfo info;
  info.key_type = static_cast<KeyType>(header.key_type);
  info.element_size = header.element_size;
  // Recovery scan: keep records while they are whole, CRC-clean, and
  // consistent with the running totals; stop at the first that is not.
  // Everything past the stop point is a crashed writer's torn tail (or
  // junk) and is simply not part of the dataset.
  const uint64_t record_bytes = *size - sizeof(LiveManifestHeader);
  const uint64_t num_whole = record_bytes / sizeof(LiveManifestRecord);
  uint64_t total = 0;
  for (uint64_t i = 0; i < num_whole; ++i) {
    LiveManifestRecord record;
    OPAQ_RETURN_IF_ERROR(device->ReadAt(
        sizeof(LiveManifestHeader) + i * sizeof(LiveManifestRecord), &record,
        sizeof(record)));
    if (record.crc != LiveRecordCrc(record)) break;
    if (record.sequence != i + 1) break;
    if (record.element_count == 0) break;
    if ((record.flags & ~LiveManifestRecord::kFlagPacked) != 0) break;
    if (record.reserved != 0) break;
    if (record.total_elements != total + record.element_count) break;
    total = record.total_elements;
    info.records.push_back(record);
  }
  info.total_elements = total;
  return info;
}

Result<LiveManifestInfo> ReadLiveManifestInfo(const std::string& dir) {
  auto device =
      FileBlockDevice::Make(dir + "/MANIFEST", FileBlockDevice::Mode::kOpen);
  if (!device.ok()) {
    return Status::NotFound("no live dataset in " + dir + ": " +
                            device.status().message());
  }
  return ReadLiveManifest(device->get());
}

}  // namespace opaq
