#ifndef OPAQ_INGEST_WINDOWED_SESSION_H_
#define OPAQ_INGEST_WINDOWED_SESSION_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "core/sample_list.h"
#include "opaq/query.h"
#include "util/status.h"

namespace opaq {

/// Time-windowed quantiles: a bounded ring of per-window sample lists,
/// merged at query time. One sketch pass per window when it closes, then
/// "p99 over the last N windows" is N-1 associative `SampleList::Merge`s —
/// no window's data is ever read twice. When the ring is full the oldest
/// window falls off, so the ring always summarizes exactly the trailing
/// `capacity()` windows (sliding-window semantics at window granularity).
///
/// The same shape works for any mergeable summary — `baselines_test`
/// drives a t-Digest ring through the identical push/evict/merge cycle —
/// but only sample-list rings keep the paper's deterministic rank-error
/// certificate: the merged list's `max_rank_error` bounds hold over the
/// union of the retained windows, exactly as for a multi-shard Engine.
template <typename K>
class WindowedSession {
 public:
  /// A ring retaining the `capacity` most recent windows (>= 1).
  explicit WindowedSession(size_t capacity) : capacity_(capacity) {
    OPAQ_CHECK_GE(capacity, size_t{1});
  }

  /// Pushes a closed window's sketch, evicting the oldest when full.
  /// Windows must share one sub-run size or their lists cannot merge;
  /// mismatches are rejected here rather than discovered at query time.
  Status Push(SampleList<K> window) {
    if (window.samples().empty()) {
      return Status::InvalidArgument(
          "refusing to push an empty window sketch into the ring");
    }
    if (!windows_.empty() &&
        window.accounting().subrun_size !=
            windows_.front().accounting().subrun_size) {
      return Status::InvalidArgument(
          "window sketch sub-run size differs from the ring's; all windows "
          "must be sketched with one samples-per-run setting");
    }
    if (windows_.size() == capacity_) {
      windows_.pop_front();
      ++evicted_;
    }
    windows_.push_back(std::move(window));
    return Status::OK();
  }

  /// A query session over the union of the newest `last_n` windows (0 =
  /// every retained window): "p99 over the last N windows" is
  /// `Merged(N)->Quantile(0.99)`. The session is a self-contained merged
  /// copy — later pushes and evictions never touch it.
  Result<QuerySession<K>> Merged(size_t last_n = 0) const {
    if (windows_.empty()) {
      return Status::FailedPrecondition(
          "the windowed ring holds no windows yet");
    }
    if (last_n == 0 || last_n > windows_.size()) last_n = windows_.size();
    // Merge oldest-first so the accounting accumulates in window order
    // (Merge is associative, so any order gives the same bytes — this one
    // just reads naturally in a debugger).
    size_t i = windows_.size() - last_n;
    SampleList<K> merged = windows_[i];
    for (++i; i < windows_.size(); ++i) {
      OPAQ_ASSIGN_OR_RETURN(merged,
                            SampleList<K>::Merge(merged, windows_[i]));
    }
    return QuerySession<K>(std::move(merged));
  }

  size_t size() const { return windows_.size(); }
  size_t capacity() const { return capacity_; }
  /// Windows pushed out of the ring over its lifetime.
  uint64_t evicted() const { return evicted_; }
  /// Elements summarized by the retained windows.
  uint64_t total_elements() const {
    uint64_t total = 0;
    for (const SampleList<K>& window : windows_) {
      total += window.total_elements();
    }
    return total;
  }

 private:
  size_t capacity_;
  std::deque<SampleList<K>> windows_;
  uint64_t evicted_ = 0;
};

}  // namespace opaq

#endif  // OPAQ_INGEST_WINDOWED_SESSION_H_
