// Table-11-style side-by-side of every storage backend INCLUDING the
// networked one: the one-pass sample phase over the same logical data on
// (a) a plain throttled disk, sync and async, (b) a striped throttled
// array, and (c) a loopback data node serving that same throttled disk
// through the v1 wire protocol with injectable per-request latency
// (--net-delay-ms, default 0.2ms — LAN-class RTT).
//
// Each cell is "seconds (blocked fraction)". Expected shape: remote sync
// pays the full RTT per request on the critical path, while remote async —
// pipelined request-ahead — hides it behind sampling just as async disk
// I/O hides seeks, converging toward the local async row.

#include <memory>

#include "bench/bench_common.h"
#include "net/node_server.h"
#include "opaq/engine.h"

namespace opaq {
namespace bench {
namespace {

struct ModeRun {
  double seconds = 0;
  double blocked_fraction = 0;
};

ModeRun RunMode(const Source<Key>& source, IoMode io_mode,
                uint64_t run_size, uint64_t samples_per_run) {
  OpaqConfig config;
  config.run_size = run_size;
  config.samples_per_run = samples_per_run;
  config.io_mode = io_mode;
  config.prefetch_depth = 2;
  config.stripes = source.stripes();
  Engine<Key> engine(config, source);
  auto session = engine.Build();
  OPAQ_CHECK_OK(session.status());
  ModeRun run;
  run.seconds = engine.stats().seconds;
  run.blocked_fraction =
      run.seconds > 0 ? engine.stats().io_stall_seconds / run.seconds : 0;
  return run;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  auto extra = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(extra.status());
  const double net_delay_ms = extra->GetDouble("net-delay-ms", 0.2);
  const uint64_t kPaperSizes[] = {500000, 1000000, 2000000, 4000000};
  const uint64_t kRunSize = 131072;
  const uint64_t kSamples = 1024;

  TextTable table;
  table.SetTitle(
      "Remote vs local backends: sample-phase seconds (blocked-on-I/O "
      "fraction), throttled disks, loopback node +" +
      TextTable::Num(net_delay_ms, 2) + "ms/request");
  std::vector<std::string> head{"Mode"};
  for (uint64_t size : kPaperSizes) {
    head.push_back(HumanCount(options.Scaled(size, 1000)));
  }
  table.AddHeader(head);

  struct Cell {
    std::string label;
    std::vector<std::string> values;
  };
  std::vector<Cell> rows = {
      {"sync", {}},
      {"async", {}},
      {"striped x" + std::to_string(options.stripes) + " async", {}},
      {"remote sync", {}},
      {"remote async", {}},
  };

  for (uint64_t paper_size : kPaperSizes) {
    const uint64_t n = options.Scaled(paper_size, 1000);
    DatasetSpec spec;
    spec.n = n;
    spec.seed = options.seed;
    spec.distribution = Distribution::kZipf;
    std::vector<Key> data = GenerateDataset<Key>(spec);

    SimulatedDisk plain = MakeSimulatedDisk(data, /*sleep_mode=*/true);
    SimulatedStripedDisk striped = MakeSimulatedStripedDisk(
        data, /*sleep_mode=*/true, options.stripes,
        kRunSize / static_cast<uint64_t>(options.stripes));

    // The data node serves its OWN throttled disk (so its device time is
    // charged node-side, as it would be on a real remote machine), plus
    // the injected per-request network latency.
    SimulatedDisk node_disk = MakeSimulatedDisk(data, /*sleep_mode=*/true);
    NodeServerOptions node_options;
    node_options.response_delay_seconds = net_delay_ms / 1000.0;
    NodeServer node(node_options);
    node.Export("data", &node_disk.file);
    OPAQ_CHECK_OK(node.Start());
    auto remote = Source<Key>::OpenRemote(node.address() + "/data");
    OPAQ_CHECK_OK(remote.status());

    const Source<Key> sources[] = {
        Source<Key>::FromFile(&plain.file),
        Source<Key>::FromFile(&plain.file),
        Source<Key>::FromFile(striped.file.get()),
        *remote,
        *remote,
    };
    const IoMode modes[] = {IoMode::kSync, IoMode::kAsync, IoMode::kAsync,
                            IoMode::kSync, IoMode::kAsync};
    for (size_t i = 0; i < rows.size(); ++i) {
      ModeRun run = RunMode(sources[i], modes[i], kRunSize, kSamples);
      rows[i].values.push_back(TextTable::Num(run.seconds, 2) + " (" +
                               TextTable::Num(run.blocked_fraction, 2) + ")");
    }
    node.Stop();
  }

  for (const Cell& row : rows) {
    std::vector<std::string> out{row.label};
    out.insert(out.end(), row.values.begin(), row.values.end());
    table.AddRow(out);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
