// Table-11-style side-by-side of every storage backend INCLUDING the
// networked one: the one-pass sample phase over the same logical data on
// (a) a plain throttled disk, sync and async, (b) a striped throttled
// array, and (c) a loopback data node serving that same throttled disk
// with injectable per-request latency (--net-delay-ms, default 0.2ms —
// LAN-class RTT), under BOTH wire protocols: forced v1 (the client
// streams every run over the wire) and v2 (the node runs the sample
// phase itself and ships only the O(s) sample list).
//
// Each timing cell is "seconds (blocked fraction)". Expected shape:
// remote sync pays the full RTT per request on the critical path, while
// remote async — pipelined request-ahead — hides it behind sampling just
// as async disk I/O hides seeks. Wire v2 goes further: latency AND
// bandwidth drop out together because the data never leaves the node.
//
// A second table reports bytes-on-wire for the sample phase (measured at
// the node's own send counter, so it includes every frame header and
// error path, not just payload bytes). The bench FAILS (exit 1) if v2
// does not beat v1 by at least 10x — that ratio is the contract the
// compute path exists to honour.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/node_server.h"
#include "opaq/engine.h"

namespace opaq {
namespace bench {
namespace {

struct ModeRun {
  double seconds = 0;
  double blocked_fraction = 0;
};

ModeRun RunMode(const Source<Key>& source, IoMode io_mode,
                uint64_t run_size, uint64_t samples_per_run) {
  OpaqConfig config;
  config.run_size = run_size;
  config.samples_per_run = samples_per_run;
  config.io_mode = io_mode;
  config.prefetch_depth = 2;
  config.stripes = source.stripes();
  Engine<Key> engine(config, source);
  auto session = engine.Build();
  OPAQ_CHECK_OK(session.status());
  ModeRun run;
  run.seconds = engine.stats().seconds;
  run.blocked_fraction =
      run.seconds > 0 ? engine.stats().io_stall_seconds / run.seconds : 0;
  return run;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  auto extra = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(extra.status());
  const double net_delay_ms = extra->GetDouble("net-delay-ms", 0.2);
  const uint64_t kPaperSizes[] = {500000, 1000000, 2000000, 4000000};
  const uint64_t kRunSize = 131072;
  const uint64_t kSamples = 1024;

  TextTable table;
  table.SetTitle(
      "Remote vs local backends: sample-phase seconds (blocked-on-I/O "
      "fraction), throttled disks, loopback node +" +
      TextTable::Num(net_delay_ms, 2) + "ms/request");
  std::vector<std::string> head{"Mode"};
  for (uint64_t size : kPaperSizes) {
    head.push_back(HumanCount(options.Scaled(size, 1000)));
  }
  table.AddHeader(head);

  struct Cell {
    std::string label;
    std::vector<std::string> values;
  };
  std::vector<Cell> rows = {
      {"sync", {}},
      {"async", {}},
      {"striped x" + std::to_string(options.stripes) + " async", {}},
      {"remote sync (wire v1)", {}},
      {"remote async (wire v1)", {}},
      {"remote async (wire v2)", {}},
  };
  std::vector<Cell> wire_rows = {
      {"wire v1 (streamed runs)", {}},
      {"wire v2 (node-side sampling)", {}},
      {"v1 / v2 ratio", {}},
  };
  double min_ratio = -1;

  for (uint64_t paper_size : kPaperSizes) {
    const uint64_t n = options.Scaled(paper_size, 1000);
    DatasetSpec spec;
    spec.n = n;
    spec.seed = options.seed;
    spec.distribution = Distribution::kZipf;
    std::vector<Key> data = GenerateDataset<Key>(spec);

    SimulatedDisk plain = MakeSimulatedDisk(data, /*sleep_mode=*/true);
    SimulatedStripedDisk striped = MakeSimulatedStripedDisk(
        data, /*sleep_mode=*/true, options.stripes,
        kRunSize / static_cast<uint64_t>(options.stripes));

    // The data node serves its OWN throttled disk (so its device time is
    // charged node-side, as it would be on a real remote machine), plus
    // the injected per-request network latency. The export is typed, so
    // the node is a full compute node; the v1 rows force the client cap
    // down to keep them measuring the streaming protocol.
    SimulatedDisk node_disk = MakeSimulatedDisk(data, /*sleep_mode=*/true);
    NodeServerOptions node_options;
    node_options.response_delay_seconds = net_delay_ms / 1000.0;
    NodeServer node(node_options);
    node.Export("data", &node_disk.file);
    OPAQ_CHECK_OK(node.Start());
    NodeClientOptions v1_only;
    v1_only.max_wire_version = 1;
    auto remote_v1 = Source<Key>::OpenRemote(node.address() + "/data",
                                             v1_only);
    OPAQ_CHECK_OK(remote_v1.status());
    auto remote_v2 = Source<Key>::OpenRemote(node.address() + "/data");
    OPAQ_CHECK_OK(remote_v2.status());

    const Source<Key> sources[] = {
        Source<Key>::FromFile(&plain.file),
        Source<Key>::FromFile(&plain.file),
        Source<Key>::FromFile(striped.file.get()),
        *remote_v1,
        *remote_v1,
        *remote_v2,
    };
    const IoMode modes[] = {IoMode::kSync,  IoMode::kAsync, IoMode::kAsync,
                            IoMode::kSync,  IoMode::kAsync, IoMode::kAsync};
    uint64_t v1_bytes = 0;
    uint64_t v2_bytes = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const uint64_t before = node.bytes_sent();
      ModeRun run = RunMode(sources[i], modes[i], kRunSize, kSamples);
      const uint64_t sent = node.bytes_sent() - before;
      if (rows[i].label == "remote async (wire v1)") v1_bytes = sent;
      if (rows[i].label == "remote async (wire v2)") v2_bytes = sent;
      rows[i].values.push_back(TextTable::Num(run.seconds, 2) + " (" +
                               TextTable::Num(run.blocked_fraction, 2) + ")");
    }
    node.Stop();

    const double ratio =
        v2_bytes > 0 ? static_cast<double>(v1_bytes) / v2_bytes : 0;
    wire_rows[0].values.push_back(HumanCount(v1_bytes) + "B");
    wire_rows[1].values.push_back(HumanCount(v2_bytes) + "B");
    wire_rows[2].values.push_back(TextTable::Num(ratio, 1) + "x");
    if (min_ratio < 0 || ratio < min_ratio) min_ratio = ratio;
  }

  for (const Cell& row : rows) {
    std::vector<std::string> out{row.label};
    out.insert(out.end(), row.values.begin(), row.values.end());
    table.AddRow(out);
  }
  Emit(table, options);

  TextTable wire_table;
  wire_table.SetTitle(
      "Bytes on the wire, sample phase (node send counter: all frames "
      "incl. headers)");
  wire_table.AddHeader(head);
  for (const Cell& row : wire_rows) {
    std::vector<std::string> out{row.label};
    out.insert(out.end(), row.values.begin(), row.values.end());
    wire_table.AddRow(out);
  }
  Emit(wire_table, options);

  if (min_ratio < 10.0) {
    std::fprintf(stderr,
                 "FAIL: wire v2 must ship at least 10x fewer sample-phase "
                 "bytes than v1 (worst ratio %.1fx)\n",
                 min_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
