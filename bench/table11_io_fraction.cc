// Reproduces paper Table 11: the fraction of total execution time spent in
// I/O, for 0.5M..4M elements per processor and 1..16 processors, on
// bandwidth-throttled simulated disks. Expected shape: ~constant ~0.5
// everywhere — I/O cost per processor does not depend on p, which is why
// the algorithm scales.
//
// Each size is measured three ways, side by side: sync rows show the
// paper's ~0.5 device-time fraction, async rows show the *stall* fraction
// left after prefetching hides reads behind sampling, and striped rows
// (each rank's shard round-robined across --stripes independently
// throttled disks, one reader thread per stripe) show the stall fraction
// once the array's aggregate bandwidth is in play — it must undercut
// single-stripe async at the same scale.

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kPaperPerRank[] = {500000, 1000000, 2000000, 4000000};
  std::vector<int> procs;
  for (int p : {1, 2, 4, 8, 16}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  TextTable table;
  table.SetTitle(
      "Table 11: fraction of total time spent in I/O (sync) vs. blocked on "
      "I/O (async / striped x" + std::to_string(options.stripes) +
      ") (throttled disks, sample merge, s=1024/run)");
  std::vector<std::string> head{"Size/proc", "Mode"};
  for (int p : procs) head.push_back(std::to_string(p) + " Proc.");
  table.AddHeader(head);

  for (uint64_t paper_size : kPaperPerRank) {
    const uint64_t per_rank = options.Scaled(paper_size, /*multiple=*/1000);
    for (const BenchIoMode& mode : StandardIoModes(options)) {
      std::vector<std::string> row{HumanCount(per_rank), mode.label};
      for (int p : procs) {
        TimedParallelRun run =
            RunTimedParallel(p, per_rank, options.seed, 131072, 1024,
                             mode.io_mode, 2, mode.stripes);
        row.push_back(TextTable::Num(run.timers.Fraction(kPhaseIo), 2));
      }
      table.AddRow(row);
    }
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
