// Reproduces paper Table 11: the fraction of total execution time spent in
// I/O, for 0.5M..4M elements per processor and 1..16 processors, on
// bandwidth-throttled simulated disks. Expected shape: ~constant ~0.5
// everywhere — I/O cost per processor does not depend on p, which is why
// the algorithm scales.
//
// Each size is measured three ways, side by side: sync rows show the
// paper's ~0.5 device-time fraction, async rows show the *stall* fraction
// left after prefetching hides reads behind sampling, and striped rows
// (each rank's shard round-robined across --stripes independently
// throttled disks, one reader thread per stripe) show the stall fraction
// once the array's aggregate bandwidth is in play — it must undercut
// single-stripe async at the same scale.
//
// Three more rows tell the compression story on the same throttled disks:
// "zipf async" (plain rows, compression off) against "zipf packed" and
// "zipf packed x<stripes>" (delta-coded extents, compression on). These use
// zipf keys — values bounded by n, so delta+varint has redundancy to
// remove; the uniform rows' full-width random keys are incompressible and
// would only demonstrate the raw fallback — and the packed rows must show a
// lower blocked-on-I/O fraction than the zipf async row at the same scale,
// because fewer bytes come off the platter.

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kPaperPerRank[] = {500000, 1000000, 2000000, 4000000};
  std::vector<int> procs;
  for (int p : {1, 2, 4, 8, 16}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  TextTable table;
  table.SetTitle(
      "Table 11: fraction of total time spent in I/O (sync) vs. blocked on "
      "I/O (async / striped x" + std::to_string(options.stripes) +
      " / packed delta extents) (throttled disks, sample merge, s=1024/run)");
  std::vector<std::string> head{"Size/proc", "Mode"};
  for (int p : procs) head.push_back(std::to_string(p) + " Proc.");
  table.AddHeader(head);

  // The canonical uniform rows, then the compression on/off pair on the
  // same zipf data: plain async vs. delta-packed extents, single-disk and
  // striped. Off vs. on is apples to apples — same keys, same disks, same
  // reader threading; only the stored bytes differ.
  std::vector<BenchIoMode> modes = StandardIoModes(options);
  modes.push_back({"zipf async", IoMode::kAsync, 0, false,
                   ExtentCodec::kDelta, Distribution::kZipf});
  modes.push_back({"zipf packed", IoMode::kAsync, 0, true,
                   ExtentCodec::kDelta, Distribution::kZipf});
  modes.push_back({"zipf packed x" + std::to_string(options.stripes),
                   IoMode::kAsync, options.stripes, true,
                   ExtentCodec::kDelta, Distribution::kZipf});

  for (uint64_t paper_size : kPaperPerRank) {
    const uint64_t per_rank = options.Scaled(paper_size, /*multiple=*/1000);
    for (const BenchIoMode& mode : modes) {
      std::vector<std::string> row{HumanCount(per_rank), mode.label};
      for (int p : procs) {
        TimedParallelRun run =
            RunTimedParallel(p, per_rank, options.seed, 131072, 1024, mode, 2);
        row.push_back(TextTable::Num(run.timers.Fraction(kPhaseIo), 2));
      }
      table.AddRow(row);
    }
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
