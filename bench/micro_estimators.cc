// Micro-benchmarks (google-benchmark) for end-to-end estimator throughput:
// OPAQ's sample phase vs the streaming baselines, elements/second.

#include <benchmark/benchmark.h>

#include "baselines/as95_histogram.h"
#include "baselines/gk.h"
#include "baselines/kll.h"
#include "baselines/munro_paterson.h"
#include "baselines/p2.h"
#include "baselines/reservoir_sample.h"
#include "core/opaq.h"
#include "data/dataset.h"

namespace opaq {
namespace {

constexpr size_t kN = 1 << 21;  // ~2M keys

const std::vector<uint64_t>& BenchData() {
  static const std::vector<uint64_t>& data = *new std::vector<uint64_t>([] {
    DatasetSpec spec;
    spec.n = kN;
    spec.distribution = Distribution::kUniform;
    spec.seed = 5;
    return GenerateDataset<uint64_t>(spec);
  }());
  return data;
}

void BM_OpaqSketch(benchmark::State& state) {
  const auto& data = BenchData();
  OpaqConfig config;
  config.run_size = 1 << 17;
  config.samples_per_run = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
    benchmark::DoNotOptimize(est.Quantile(0.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kN));
}
BENCHMARK(BM_OpaqSketch)->ArgName("s")->Arg(256)->Arg(1024)->Arg(4096);

template <typename Estimator>
void StreamAll(Estimator& estimator, benchmark::State& state) {
  const auto& data = BenchData();
  for (auto _ : state) {
    for (uint64_t v : data) estimator.Add(v);
    benchmark::DoNotOptimize(estimator.EstimateQuantile(0.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kN));
}

void BM_Reservoir(benchmark::State& state) {
  ReservoirSampleEstimator<uint64_t> e(4096, 1);
  StreamAll(e, state);
}
BENCHMARK(BM_Reservoir);

void BM_As95Histogram(benchmark::State& state) {
  As95HistogramEstimator<uint64_t> e(4096);
  StreamAll(e, state);
}
BENCHMARK(BM_As95Histogram);

void BM_P2Dectiles(benchmark::State& state) {
  P2Estimator<uint64_t> e({0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  StreamAll(e, state);
}
BENCHMARK(BM_P2Dectiles);

void BM_MunroPaterson(benchmark::State& state) {
  MunroPatersonEstimator<uint64_t> e(4096);
  StreamAll(e, state);
}
BENCHMARK(BM_MunroPaterson);

void BM_GreenwaldKhanna(benchmark::State& state) {
  GkEstimator<uint64_t> e(0.001);
  StreamAll(e, state);
}
BENCHMARK(BM_GreenwaldKhanna);

void BM_Kll(benchmark::State& state) {
  KllEstimator<uint64_t> e(1024, 1);
  StreamAll(e, state);
}
BENCHMARK(BM_Kll);

}  // namespace
}  // namespace opaq

BENCHMARK_MAIN();
