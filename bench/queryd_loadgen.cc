// Load generator + conformance gate for the query-serving daemon path
// (`QueryServer` / `opaq_queryd`): sketch once, serve millions.
//
// Two jobs, in order:
//
// 1. CONFORMANCE GATE (the part that can fail the build): every batch the
//    daemon answers over TCP must be BYTE-IDENTICAL to what a
//    single-process `QuerySession::Query` + `EncodeQueryResultsPayload`
//    produces for the same batch — including exact-flagged batches fired
//    concurrently from several connections, which the server folds into
//    ONE shared §4 second pass (verified via the server's `exact_passes`
//    counter). Any memcmp mismatch exits 1.
//
// 2. LOAD: N worker threads each dial their own connection and fire
//    batched quantile/rank requests back-to-back for a fixed batch count,
//    then the harness reports achieved QPS and latency quantiles. The
//    latency quantiles are measured by OPAQ ITSELF — the per-batch
//    latencies are fed through an `Engine` and queried as certified
//    brackets, so the bench is its own demo.
//
// Default mode self-hosts: it builds a deterministic dataset, serves it
// from an in-process `QueryServer` over real loopback TCP, and builds the
// local reference session from the same spec. `--target=host:port`
// points the load at an external `opaq_queryd` instead (the conformance
// gate then needs `--data=PATH` naming the same data file the daemon
// serves; without it the gate is skipped and only load runs).
//
//   queryd_loadgen [--n=1000000] [--threads=8] [--batches=200] [--batch=8]
//                  [--samples=1024] [--run-size=1048576]
//                  [--exact-delay-ms=50] [--exact-every=0]
//                  [--target=host:port --session=NAME [--data=PATH]]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "net/query_client.h"
#include "net/query_server.h"
#include "opaq/engine.h"
#include "telemetry/metrics.h"

namespace opaq {
namespace bench {
namespace {

using Request = QueryRequest<Key>;
using Client = QueryClient<Key>;

/// The request mix of one load-phase batch, varied deterministically by
/// batch index so every worker exercises quantiles, ranks, and equi-depth
/// without two runs ever disagreeing.
std::vector<Request> LoadBatch(uint64_t index, int batch_size, uint64_t n,
                               int exact_every) {
  std::vector<Request> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    const uint64_t salt = index * 1315423911u + static_cast<uint64_t>(i);
    switch (salt % 3) {
      case 0:
        batch.push_back(Request::Quantile(
            static_cast<double>(salt % 997 + 1) / 998.0));
        break;
      case 1:
        batch.push_back(Request::RankOf(salt * 2654435761u));
        break;
      default:
        batch.push_back(Request::QuantileByRank(salt % n + 1));
        break;
    }
  }
  if (exact_every > 0 && index % static_cast<uint64_t>(exact_every) == 0) {
    batch[0].exact = true;
  }
  return batch;
}

/// One daemon-vs-local byte comparison. Returns false (and reports) on any
/// divergence — size or content.
bool ConformBatch(Client& client, const QuerySession<Key>& local,
                  const std::vector<Request>& batch, const char* label) {
  auto remote = client.QueryPayload({batch.data(), batch.size()});
  OPAQ_CHECK_OK(remote.status());
  auto answers = local.Query({batch.data(), batch.size()});
  OPAQ_CHECK_OK(answers.status());
  auto expected = EncodeQueryResultsPayload(*answers);
  OPAQ_CHECK_OK(expected.status());
  if (remote->size() != expected->size() ||
      std::memcmp(remote->data(), expected->data(), expected->size()) != 0) {
    std::fprintf(stderr,
                 "FAIL: conformance batch '%s': daemon payload (%zu bytes) "
                 "!= local QuerySession payload (%zu bytes)\n",
                 label, remote->size(), expected->size());
    return false;
  }
  return true;
}

struct TargetSpec {
  std::string host;
  uint16_t port = 0;
};

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const uint64_t n =
      options.Scaled(static_cast<uint64_t>(flags->GetInt("n", 1000000)), 1);
  const int threads = static_cast<int>(flags->GetInt("threads", 8));
  const uint64_t batches =
      static_cast<uint64_t>(flags->GetInt("batches", 200));
  const int batch_size = static_cast<int>(flags->GetInt("batch", 8));
  const int exact_every = static_cast<int>(flags->GetInt("exact-every", 0));
  const double exact_delay_ms = flags->GetDouble("exact-delay-ms", 50.0);
  const std::string target = flags->GetString("target", "");
  const std::string session_name = flags->GetString("session", "bench");
  const std::string data_path = flags->GetString("data", "");
  OPAQ_CHECK(threads >= 1 && batch_size >= 1 && batches >= 1);

  OpaqConfig config;
  config.run_size =
      static_cast<uint64_t>(flags->GetInt("run-size", 1048576));
  config.samples_per_run =
      static_cast<uint64_t>(flags->GetInt("samples", 1024));
  OPAQ_CHECK_OK(config.Validate());

  // ------------------------------------------------------ the daemon ----
  // Self-hosted by default: an in-process QueryServer over real loopback
  // TCP, built from the same deterministic spec as the local reference.
  TargetSpec spec;
  std::unique_ptr<QueryServer> hosted;
  std::unique_ptr<QuerySession<Key>> local;
  if (target.empty()) {
    DatasetSpec dataset;
    dataset.n = n;
    dataset.seed = options.seed;
    dataset.distribution = Distribution::kZipf;
    auto data = std::make_shared<const std::vector<Key>>(
        GenerateDataset<Key>(dataset));
    auto builder = [data, config]() -> Result<QuerySession<Key>> {
      Source<Key> source = Source<Key>::FromVector(*data);
      Engine<Key> engine(config, source);
      return engine.Build();
    };
    auto reference = builder();
    OPAQ_CHECK_OK(reference.status());
    local = std::make_unique<QuerySession<Key>>(
        std::move(reference).value());
    QueryServerOptions server_options;
    server_options.exact_admission_delay_seconds = exact_delay_ms / 1000.0;
    hosted = std::make_unique<QueryServer>(server_options);
    OPAQ_CHECK_OK(hosted->Serve<Key>(session_name, builder));
    OPAQ_CHECK_OK(hosted->Start());
    spec.host = "127.0.0.1";
    spec.port = hosted->port();
  } else {
    const size_t colon = target.rfind(':');
    OPAQ_CHECK(colon != std::string::npos) << "--target must be host:port";
    spec.host = target.substr(0, colon);
    spec.port = static_cast<uint16_t>(
        std::strtoul(target.c_str() + colon + 1, nullptr, 10));
    if (!data_path.empty()) {
      // External conformance: the reference reads the SAME file the
      // daemon serves, through the same config.
      auto source = Source<Key>::Open(data_path);
      OPAQ_CHECK_OK(source.status());
      Engine<Key> engine(config, *source);
      auto reference = engine.Build();
      OPAQ_CHECK_OK(reference.status());
      local = std::make_unique<QuerySession<Key>>(
          std::move(reference).value());
    }
  }

  auto probe = Client::Connect(spec.host, spec.port, session_name);
  OPAQ_CHECK_OK(probe.status());
  const uint64_t served_n = probe->info().total_elements;
  std::printf("session '%s' @ %s:%u: %llu elements, %llu samples, "
              "rank error <= %llu, epoch %llu%s\n",
              session_name.c_str(), spec.host.c_str(), unsigned{spec.port},
              static_cast<unsigned long long>(served_n),
              static_cast<unsigned long long>(probe->info().num_samples),
              static_cast<unsigned long long>(probe->info().max_rank_error),
              static_cast<unsigned long long>(probe->info().epoch),
              probe->info().exact_enabled ? ", exact enabled" : "");

  // ------------------------------------------------ conformance gate ----
  if (local != nullptr) {
    struct Named {
      const char* label;
      std::vector<Request> batch;
    };
    std::vector<Named> gates = {
        {"quantiles",
         {Request::Quantile(0.5), Request::Quantile(0.99),
          Request::Quantile(0.001)}},
        {"ranks",
         {Request::RankOf(0), Request::RankOf(served_n / 2),
          Request::RankOf(UINT64_MAX)}},
        {"by-rank + equi-depth",
         {Request::QuantileByRank(1), Request::QuantileByRank(served_n),
          Request::EquiQuantiles(10)}},
        {"mixed",
         {Request::Quantile(0.25), Request::RankOf(7),
          Request::EquiQuantiles(4)}},
    };
    if (probe->info().exact_enabled != 0) {
      gates.push_back({"exact quantiles",
                       {Request::Quantile(0.5, /*exact=*/true),
                        Request::Quantile(0.9, /*exact=*/true)}});
    }
    for (const Named& gate : gates) {
      if (!ConformBatch(*probe, *local, gate.batch, gate.label)) return 1;
    }

    // Concurrent exact-flagged batches from distinct connections must (a)
    // still answer byte-identically and (b) coalesce into fewer shared §4
    // passes than there are batches (observable on the self-hosted
    // server's counter; the admission window makes it deterministic).
    if (probe->info().exact_enabled != 0 && hosted != nullptr) {
      const int exact_clients = std::max(2, std::min(threads, 4));
      std::vector<Request> exact_batch = {
          Request::Quantile(0.5, /*exact=*/true),
          Request::EquiQuantiles(4, /*exact=*/true)};
      auto answers =
          local->Query({exact_batch.data(), exact_batch.size()});
      OPAQ_CHECK_OK(answers.status());
      auto expected = EncodeQueryResultsPayload(*answers);
      OPAQ_CHECK_OK(expected.status());
      const uint64_t passes_before = hosted->exact_passes();
      std::atomic<bool> go{false};
      std::atomic<int> mismatches{0};
      std::vector<std::thread> workers;
      for (int t = 0; t < exact_clients; ++t) {
        workers.emplace_back([&, t]() {
          auto client =
              Client::Connect(spec.host, spec.port, session_name);
          OPAQ_CHECK_OK(client.status());
          while (!go.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          auto payload = client->QueryPayload(
              {exact_batch.data(), exact_batch.size()});
          OPAQ_CHECK_OK(payload.status());
          if (payload->size() != expected->size() ||
              std::memcmp(payload->data(), expected->data(),
                          expected->size()) != 0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          (void)t;
        });
      }
      go.store(true, std::memory_order_release);
      for (std::thread& worker : workers) worker.join();
      const uint64_t passes =
          hosted->exact_passes() - passes_before;
      if (mismatches.load() != 0) {
        std::fprintf(stderr,
                     "FAIL: %d concurrent exact batches diverged from the "
                     "local QuerySession bytes\n",
                     mismatches.load());
        return 1;
      }
      if (passes >= static_cast<uint64_t>(exact_clients)) {
        std::fprintf(stderr,
                     "FAIL: %d concurrent exact batches ran %llu §4 "
                     "passes; admission control should coalesce them\n",
                     exact_clients,
                     static_cast<unsigned long long>(passes));
        return 1;
      }
      std::printf("conformance: all batches byte-identical; %d concurrent "
                  "exact batches shared %llu §4 pass(es)\n",
                  exact_clients, static_cast<unsigned long long>(passes));
    } else {
      std::printf("conformance: all batches byte-identical\n");
    }
  } else {
    std::printf("conformance: SKIPPED (external --target without --data)\n");
  }

  // ------------------------------------------------------- load phase ----
  // Every worker records its per-batch latencies straight into ONE shared
  // sketch-backed histogram — the same `LatencyHistogram` the daemons
  // publish as `query.batch_latency_us` — so the report below reads
  // certified brackets off the identical machinery a `opaq_cli stats` poll
  // would render.
  LatencyHistogram::Config latency_config;
  latency_config.run_size = 4096;
  latency_config.samples_per_run = 64;
  LatencyHistogram latency_hist(latency_config);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      auto client = Client::Connect(spec.host, spec.port, session_name);
      OPAQ_CHECK_OK(client.status());
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (uint64_t b = 0; b < batches; ++b) {
        std::vector<Request> batch =
            LoadBatch(static_cast<uint64_t>(t) * batches + b, batch_size,
                      served_n, exact_every);
        const auto start = std::chrono::steady_clock::now();
        auto results = client->Query({batch.data(), batch.size()});
        OPAQ_CHECK_OK(results.status());
        const auto stop = std::chrono::steady_clock::now();
        latency_hist.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(stop -
                                                                  start)
                .count()));
      }
    });
  }
  const auto wall_start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const uint64_t total_requests =
      static_cast<uint64_t>(threads) * batches *
      static_cast<uint64_t>(batch_size);
  const double qps =
      wall_seconds > 0 ? static_cast<double>(total_requests) / wall_seconds
                       : 0;

  TextTable table;
  table.SetTitle("queryd loadgen: " + std::to_string(threads) +
                 " threads x " + std::to_string(batches) + " batches x " +
                 std::to_string(batch_size) + " requests");
  table.AddHeader({"metric", "value"});
  table.AddRow({"requests answered", std::to_string(total_requests)});
  table.AddRow({"wall seconds", TextTable::Num(wall_seconds, 3)});
  table.AddRow({"achieved QPS", TextTable::Num(qps, 0)});
  Emit(table, options);

  // Self-hosting: the shared histogram IS an OPAQ sketch, so the report
  // reads certified quantile brackets straight off it — no second Engine
  // pass over a collected latency vector.
  const double phis[] = {0.50, 0.90, 0.99, 1.0};
  const char* labels[] = {"p50", "p90", "p99", "max"};
  const QuantileEstimate<uint64_t> first = latency_hist.Quantile(phis[0]);
  TextTable latency_table;
  latency_table.SetTitle(
      "batch latency quantiles, measured by OPAQ's own estimator (rank "
      "error <= " +
      std::to_string(first.max_rank_error) + " of " +
      std::to_string(latency_hist.count()) + " batches)");
  latency_table.AddHeader({"phi", "bracket [us]"});
  for (size_t i = 0; i < 4; ++i) {
    const QuantileEstimate<uint64_t> estimate =
        latency_hist.Quantile(phis[i]);
    latency_table.AddRow(
        {labels[i], "[" + std::to_string(estimate.lower) + ", " +
                        std::to_string(estimate.upper) + "]"});
  }
  Emit(latency_table, options);

  if (hosted != nullptr) hosted->Stop();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
