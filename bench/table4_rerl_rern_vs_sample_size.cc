// Reproduces paper Table 4: RER_L and RER_N for sample sizes s in
// {250, 500, 1000} on 1M-element uniform and Zipf datasets. Expected shape:
// both error rates roughly halve as s doubles (paper: 1.88 -> 0.99 -> 0.46
// for RER_L uniform), independent of distribution.

#include <map>

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kSampleSizes[] = {250, 500, 1000};
  const uint64_t n = options.Scaled(1000 * 1000, /*multiple=*/100000);
  const uint64_t run_size = n / 10;

  std::map<Distribution, std::map<uint64_t, RerReport<Key>>> report;
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    DatasetSpec spec;
    spec.n = n;
    spec.distribution = dist;
    spec.seed = options.seed;
    spec.duplicate_fraction = 0.1;
    spec.zipf_z = 0.86;
    std::vector<Key> data = GenerateDataset<Key>(spec);
    for (uint64_t s : kSampleSizes) {
      OpaqConfig config;
      config.run_size = run_size;
      config.samples_per_run = s;
      report[dist][s] = RunSequentialOpaq(data, config).rer;
    }
  }

  TextTable table;
  table.SetTitle("Table 4: RER_L and RER_N (%) vs sample size s  (n=" +
                 HumanCount(n) + ", m=" + HumanCount(run_size) + ")");
  table.AddHeader({"", "Uniform", "Uniform", "Uniform", "Zipf", "Zipf",
                   "Zipf"});
  table.AddHeader({"Metric", "s=250", "s=500", "s=1000", "s=250", "s=500",
                   "s=1000"});
  std::vector<std::string> rer_l_row{"RER_L"};
  std::vector<std::string> rer_n_row{"RER_N"};
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (uint64_t s : kSampleSizes) {
      rer_l_row.push_back(TextTable::Num(report[dist][s].rer_l, 2));
      rer_n_row.push_back(TextTable::Num(report[dist][s].rer_n, 2));
    }
  }
  table.AddRow(rer_l_row);
  table.AddRow(rer_n_row);
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
