// Reproduces paper Table 3: RER_A per dectile for sample sizes s in
// {250, 500, 1000} on 1M-element uniform and Zipf(0.86) datasets with n/10
// duplicates. Expected shape: RER_A ~ halves when s doubles, stays below the
// analytical bound 2/s*100, and is insensitive to the distribution.

#include <iostream>
#include <map>

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kSampleSizes[] = {250, 500, 1000};
  const uint64_t n = options.Scaled(1000 * 1000, /*multiple=*/100000);
  const uint64_t run_size = n / 10;  // r = 10 runs as a representative m

  // report[dist][s] = per-dectile RER_A.
  std::map<Distribution, std::map<uint64_t, std::vector<double>>> report;
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    DatasetSpec spec;
    spec.n = n;
    spec.distribution = dist;
    spec.seed = options.seed;
    spec.duplicate_fraction = 0.1;
    spec.zipf_z = 0.86;
    std::vector<Key> data = GenerateDataset<Key>(spec);
    for (uint64_t s : kSampleSizes) {
      OpaqConfig config;
      config.run_size = run_size;
      config.samples_per_run = s;
      report[dist][s] = RunSequentialOpaq(data, config).rer.rer_a;
    }
  }

  TextTable table;
  table.SetTitle(
      "Table 3: RER_A (%) per dectile vs sample size s  (n=" + HumanCount(n) +
      ", m=" + HumanCount(run_size) + ", dup=n/10; paper bound: 200/s)");
  table.AddHeader({"", "Uniform", "Uniform", "Uniform", "Zipf", "Zipf",
                   "Zipf"});
  table.AddHeader({"Dectile", "s=250", "s=500", "s=1000", "s=250", "s=500",
                   "s=1000"});
  auto labels = DectileLabels();
  for (int d = 0; d < 9; ++d) {
    std::vector<std::string> row{labels[d]};
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
      for (uint64_t s : kSampleSizes) {
        row.push_back(TextTable::Num(report[dist][s][d], 3));
      }
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
