// Reproduces paper Figure 3: execution time of the bitonic merge vs the
// sample merge for per-processor list sizes of 1K..128K bytes and 2/4/8
// processors, under the two-level SP-2 communication model (tau ~ 40us,
// ~35 MB/s), with channel sleeping enabled so wall-clock time reflects the
// model. Expected shape: bitonic wins for small lists / few processors
// (fewer message start-ups), sample merge wins for large lists (it moves
// each element ~once where bitonic moves whole blocks log^2 p times).

#include <algorithm>

#include "bench/bench_common.h"
#include "parallel/global_merge.h"
#include "util/timer.h"

namespace opaq {
namespace bench {
namespace {

double TimeMerge(int p, MergeMethod method, uint64_t elements_per_proc,
                 uint64_t seed) {
  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  cluster_options.comm_mode = Cluster::CommMode::kSleep;
  Cluster cluster(cluster_options);

  // Pre-build per-rank sorted lists (outside the timed region).
  std::vector<std::vector<Key>> locals(p);
  for (int r = 0; r < p; ++r) {
    DatasetSpec spec;
    spec.n = elements_per_proc;
    spec.seed = seed + r;
    locals[r] = GenerateDataset<Key>(spec);
    std::sort(locals[r].begin(), locals[r].end());
  }

  double best = 1e100;
  for (int trial = 0; trial < 3; ++trial) {
    WallTimer timer;
    Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
      GlobalMerge(ctx, locals[ctx.rank()], method);
      return Status::OK();
    });
    OPAQ_CHECK_OK(s);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  std::vector<int> procs;
  for (int p : {2, 4, 8}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  TextTable table;
  table.SetTitle(
      "Figure 3: execution time (s) of the merge methods vs per-processor "
      "data size (two-level model: tau=40us, 35MB/s; lower is better)");
  std::vector<std::string> head{"KB/proc"};
  for (int p : procs) {
    head.push_back("bitonic-p" + std::to_string(p));
    head.push_back("sample-p" + std::to_string(p));
  }
  table.AddHeader(head);

  // The paper sweeps 1K..128K; we extend to 1M so the bitonic/sample
  // crossover (which depends on the tau/mu ratio) is visible on our model
  // constants as well.
  for (uint64_t kb = 1; kb <= 1024; kb *= 2) {
    const uint64_t elements = kb * 1024 / sizeof(Key);
    std::vector<std::string> row{std::to_string(kb) + "K"};
    for (int p : procs) {
      row.push_back(TextTable::Num(
          TimeMerge(p, MergeMethod::kBitonic, elements, options.seed), 4));
      row.push_back(TextTable::Num(
          TimeMerge(p, MergeMethod::kSample, elements, options.seed), 4));
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
