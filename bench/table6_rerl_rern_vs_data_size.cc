// Reproduces paper Table 6: RER_L and RER_N for data sizes 1M/5M/10M at
// fixed s=1000. Expected shape: ~0.5-0.6% everywhere, independent of n and
// of the distribution.

#include <map>

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kPaperSizes[] = {1000000, 5000000, 10000000};
  const uint64_t kS = 1000;

  std::vector<uint64_t> sizes;
  for (uint64_t paper_n : kPaperSizes) {
    sizes.push_back(options.Scaled(paper_n, /*multiple=*/100000));
  }
  std::map<Distribution, std::map<uint64_t, RerReport<Key>>> report;
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (uint64_t n : sizes) {
      DatasetSpec spec;
      spec.n = n;
      spec.distribution = dist;
      spec.seed = options.seed + n;
      spec.duplicate_fraction = 0.1;
      spec.zipf_z = 0.86;
      std::vector<Key> data = GenerateDataset<Key>(spec);
      OpaqConfig config;
      config.run_size = n / 10;
      config.samples_per_run = kS;
      report[dist][n] = RunSequentialOpaq(data, config).rer;
    }
  }

  TextTable table;
  table.SetTitle("Table 6: RER_L and RER_N (%) vs data size (s=1000)");
  std::vector<std::string> group{""};
  std::vector<std::string> head{"Metric"};
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (uint64_t n : sizes) {
      group.push_back(dist == Distribution::kUniform ? "Uniform" : "Zipf");
      head.push_back(HumanCount(n));
    }
  }
  table.AddHeader(group);
  table.AddHeader(head);
  std::vector<std::string> rer_l_row{"RER_L"};
  std::vector<std::string> rer_n_row{"RER_N"};
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (uint64_t n : sizes) {
      rer_l_row.push_back(TextTable::Num(report[dist][n].rer_l, 2));
      rer_n_row.push_back(TextTable::Num(report[dist][n].rer_n, 2));
    }
  }
  table.AddRow(rer_l_row);
  table.AddRow(rer_n_row);
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
