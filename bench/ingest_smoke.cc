// Incremental-refresh bench + conformance gate for the streaming-ingest
// subsystem (src/ingest): a live dataset takes a stream of appended runs
// while a serving session keeps up two ways —
//
//   rebuild : re-sketch the WHOLE live dataset from scratch after every
//             append (what a daemon without Absorb would have to do), and
//   absorb  : sketch ONLY the unabsorbed tail and merge it into the
//             existing session via the associative sample-list merge
//             (paper §4 — the same merge the parallel algorithm uses).
//
// Two jobs, in order:
//
// 1. CONFORMANCE GATE (the part that can fail the build): after the final
//    append, the absorbed session's sample list must be BYTE-IDENTICAL to
//    the from-scratch rebuild's — Absorb is an optimisation, never an
//    approximation. Any mismatch exits 1.
//
// 2. SPEEDUP GATE: the mean per-append absorb cost must undercut the mean
//    per-append rebuild cost by at least --min-speedup (default 5). The
//    asymmetry is structural — rebuild re-reads base + all appended runs,
//    absorb reads just the newest run — so if this gate fails, the
//    incremental path has rotted (e.g. Absorb silently re-sketching the
//    base). Exits 1 on failure.
//
//   ingest_smoke [--n=1000000] [--appends=10] [--run-size=65536]
//                [--samples=256] [--min-speedup=5]

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/sketch_io.h"
#include "io/tempdir.h"
#include "opaq/engine.h"
#include "opaq/ingest.h"
#include "opaq/query.h"

namespace opaq {
namespace bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<uint8_t> ListBytes(const SampleList<Key>& list) {
  MemoryBlockDevice out;
  OPAQ_CHECK_OK(SaveSampleList(list, &out));
  auto size = out.Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  OPAQ_CHECK_OK(out.ReadAt(0, bytes.data(), bytes.size()));
  return bytes;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());

  OpaqConfig config;
  config.run_size =
      static_cast<uint64_t>(flags->GetInt("run-size", 65536));
  config.samples_per_run =
      static_cast<uint64_t>(flags->GetInt("samples", 256));
  OPAQ_CHECK_OK(config.Validate());

  // Base sized as a whole number of runs so every appended run lands on
  // the same run grid a flat rebuild would use.
  const uint64_t n = options.Scaled(
      static_cast<uint64_t>(flags->GetInt("n", 1000000)), config.run_size);
  const int appends = static_cast<int>(flags->GetInt("appends", 10));
  const double min_speedup = flags->GetDouble("min-speedup", 5.0);
  OPAQ_CHECK(appends >= 1);

  auto tmp = TempDir::Make("opaq-ingest-bench");
  OPAQ_CHECK_OK(tmp.status());
  const std::string dir = tmp->FilePath("live");

  // ------------------------------------------------------- base build ----
  DatasetSpec spec;
  spec.n = n;
  spec.seed = options.seed;
  spec.distribution = Distribution::kUniform;
  auto live = LiveDataset<Key>::Create(dir);
  OPAQ_CHECK_OK(live.status());
  OPAQ_CHECK_OK(live->Append(GenerateDataset<Key>(spec)));

  auto base_source = Source<Key>::OpenLive(dir);
  OPAQ_CHECK_OK(base_source.status());
  const auto base_start = std::chrono::steady_clock::now();
  auto session = Engine<Key>(config, *base_source).Build();
  OPAQ_CHECK_OK(session.status());
  const double base_seconds = SecondsSince(base_start);
  QuerySession<Key> serving = std::move(session).value();

  // ------------------------------------------------------ append loop ----
  // Each appended segment is exactly one run, the steady-state shape of a
  // writer batching at the sketch granularity.
  double absorb_seconds = 0;
  double rebuild_seconds = 0;
  for (int i = 0; i < appends; ++i) {
    DatasetSpec delta_spec = spec;
    delta_spec.n = config.run_size;
    delta_spec.seed = options.seed + 1000 + static_cast<uint64_t>(i);
    OPAQ_CHECK_OK(live->Append(GenerateDataset<Key>(delta_spec)));

    // Incremental: sketch the tail only, merge into the serving session.
    const uint64_t have = serving.total_elements();
    const auto absorb_start = std::chrono::steady_clock::now();
    auto tail = Source<Key>::OpenLive(dir, have);
    OPAQ_CHECK_OK(tail.status());
    auto delta = Engine<Key>(config, *tail).Build();
    OPAQ_CHECK_OK(delta.status());
    OPAQ_CHECK_OK(serving.Absorb(delta->sample_list()));
    absorb_seconds += SecondsSince(absorb_start);

    // From scratch: what every refresh costs without Absorb.
    const auto rebuild_start = std::chrono::steady_clock::now();
    auto full = Source<Key>::OpenLive(dir);
    OPAQ_CHECK_OK(full.status());
    auto rebuilt = Engine<Key>(config, *full).Build();
    OPAQ_CHECK_OK(rebuilt.status());
    rebuild_seconds += SecondsSince(rebuild_start);

    // --------------------------------------------- conformance gate ----
    if (i + 1 == appends) {
      if (ListBytes(serving.sample_list()) !=
          ListBytes(rebuilt->sample_list())) {
        std::fprintf(stderr,
                     "FAIL: after %d appends the absorbed session's sample "
                     "list != from-scratch rebuild (Absorb must be "
                     "byte-identical)\n",
                     appends);
        return 1;
      }
    }
  }
  OPAQ_CHECK(serving.total_elements() ==
             n + static_cast<uint64_t>(appends) * config.run_size);

  const double absorb_mean = absorb_seconds / appends;
  const double rebuild_mean = rebuild_seconds / appends;
  const double speedup =
      absorb_mean > 0 ? rebuild_mean / absorb_mean : 0;

  TextTable table;
  table.SetTitle("incremental refresh vs rebuild: " + HumanCount(n) +
                 " base + " + std::to_string(appends) + " appended runs of " +
                 HumanCount(config.run_size));
  table.AddHeader({"metric", "value"});
  table.AddRow({"base build [ms]", TextTable::Num(base_seconds * 1e3, 2)});
  table.AddRow({"rebuild mean [ms]",
                TextTable::Num(rebuild_mean * 1e3, 2)});
  table.AddRow({"absorb mean [ms]", TextTable::Num(absorb_mean * 1e3, 2)});
  table.AddRow({"speedup", TextTable::Num(speedup, 1) + "x"});
  table.AddRow({"sample list bytes",
                std::to_string(ListBytes(serving.sample_list()).size())});
  Emit(table, options);

  // ------------------------------------------------- speedup gate ----
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: absorb is only %.1fx faster than rebuild "
                 "(need >= %.1fx); the incremental path re-reads too "
                 "much\n",
                 speedup, min_speedup);
    return 1;
  }
  std::printf("conformance: absorbed == rebuilt byte-identically; "
              "incremental refresh %.1fx faster than rebuild\n",
              speedup);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
