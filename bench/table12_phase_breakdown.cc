// Reproduces paper Table 12: fraction of execution time per phase (I/O,
// sampling, local merge, global merge) for 4M elements per processor and
// 1..16 processors. Expected shape: I/O + sampling >= ~83% and roughly
// independent of p; both merges tiny, with global merge growing slowly in p
// — the scalability argument of §3.1.
//
// Emits the breakdown three times — sync, async, striped — side by side.
// Under async the I/O row is the blocked-on-I/O stall fraction (reads
// overlapped by sampling leave the critical path), so sync vs. async shows
// exactly how much of the paper's dominant I/O phase prefetching reclaims;
// the striped section adds what a per-rank disk array reclaims on top.

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t per_rank = options.Scaled(4000000, /*multiple=*/1000);
  std::vector<int> procs;
  for (int p : {1, 2, 4, 8, 16}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  for (const BenchIoMode& mode : StandardIoModes(options)) {
    std::vector<TimedParallelRun> runs;
    for (int p : procs) {
      runs.push_back(RunTimedParallel(p, per_rank, options.seed, 131072,
                                      1024, mode.io_mode, 2, mode.stripes));
    }

    TextTable table;
    table.SetTitle("Table 12: fraction of execution time per phase (" +
                   HumanCount(per_rank) + " elements/processor, " +
                   mode.label + " I/O)");
    std::vector<std::string> head{"Phase"};
    for (int p : procs) head.push_back(std::to_string(p) + " Proc.");
    table.AddHeader(head);

    const struct {
      int phase;
      const char* label;
    } kRows[] = {{kPhaseIo,
                  mode.io_mode == IoMode::kAsync ? "I/O (stall)" : "I/O"},
                 {kPhaseSampling, "Sampling"},
                 {kPhaseLocalMerge, "Local Merg."},
                 {kPhaseGlobalMerge, "Global Merg."},
                 {kPhaseQuantile, "Quantile"}};
    for (const auto& r : kRows) {
      std::vector<std::string> row{r.label};
      for (size_t i = 0; i < runs.size(); ++i) {
        row.push_back(TextTable::Num(runs[i].timers.Fraction(r.phase), 3));
      }
      table.AddRow(row);
    }
    Emit(table, options);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
