// Reproduces paper Table 5: RER_A per dectile for data sizes 1M/5M/10M at
// fixed s=1000, uniform and Zipf. Expected shape: RER_A ~0.09-0.10 across
// the board — the error rate does not depend on n or on the distribution.

#include <map>

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kPaperSizes[] = {1000000, 5000000, 10000000};
  const uint64_t kS = 1000;

  std::map<Distribution, std::map<uint64_t, std::vector<double>>> report;
  std::vector<uint64_t> sizes;
  for (uint64_t paper_n : kPaperSizes) {
    sizes.push_back(options.Scaled(paper_n, /*multiple=*/100000));
  }
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (uint64_t n : sizes) {
      DatasetSpec spec;
      spec.n = n;
      spec.distribution = dist;
      spec.seed = options.seed + n;
      spec.duplicate_fraction = 0.1;
      spec.zipf_z = 0.86;
      std::vector<Key> data = GenerateDataset<Key>(spec);
      OpaqConfig config;
      config.run_size = n / 10;  // r = 10 runs at every size
      config.samples_per_run = kS;
      report[dist][n] = RunSequentialOpaq(data, config).rer.rer_a;
    }
  }

  TextTable table;
  table.SetTitle("Table 5: RER_A (%) per dectile vs data size (s=1000)");
  std::vector<std::string> group{""};
  std::vector<std::string> head{"Dectile"};
  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    for (uint64_t n : sizes) {
      group.push_back(dist == Distribution::kUniform ? "Uniform" : "Zipf");
      head.push_back(HumanCount(n));
    }
  }
  table.AddHeader(group);
  table.AddHeader(head);
  auto labels = DectileLabels();
  for (int d = 0; d < 9; ++d) {
    std::vector<std::string> row{labels[d]};
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
      for (uint64_t n : sizes) {
        row.push_back(TextTable::Num(report[dist][n][d], 3));
      }
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
