// Reproduces paper Figure 6: speed-up — T(1)/T(p) for a FIXED total of 4M
// elements split across p processors. Expected shape: near-linear speed-up
// (paper reaches ~7 at p=8), because I/O and sampling parallelise perfectly
// and the global merge is tiny.

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t total = options.Scaled(4000000, /*multiple=*/16000);
  std::vector<int> procs;
  for (int p : {1, 2, 4, 8}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  TextTable table;
  table.SetTitle("Figure 6: speed-up for a total of " + HumanCount(total) +
                 " elements (ideal = p)");
  table.AddHeader({"Processors", "Total time (s)", "Speed-up", "Ideal"});

  double t1 = 0;
  for (int p : procs) {
    // Run size adapts so even the largest p still has multiple runs.
    const uint64_t per_rank = total / p;
    const uint64_t run_size = 65536;
    TimedParallelRun run =
        RunTimedParallel(p, per_rank, options.seed, run_size, 1024);
    if (p == 1) t1 = run.total_seconds;
    table.AddRow({std::to_string(p), TextTable::Num(run.total_seconds, 3),
                  TextTable::Num(t1 / run.total_seconds, 2),
                  std::to_string(p)});
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
