// Reproduces paper Table 10: RER_L and RER_N for the parallel algorithm on
// 8 processors over total data sizes 0.5M..32M. Expected shape: ~0.5-0.7%,
// flat in the data size (paper: 0.62 down to 0.51 for RER_L).

#include <map>

#include "bench/bench_common.h"
#include "opaq/parallel.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const int p = std::min(8, options.max_procs);
  const uint64_t kPaperTotals[] = {500000,  1000000, 2000000, 4000000,
                                   8000000, 16000000, 32000000};

  std::vector<uint64_t> totals;
  for (uint64_t paper_total : kPaperTotals) {
    totals.push_back(options.Scaled(paper_total, /*multiple=*/
                                    static_cast<uint64_t>(p) * 1000));
  }
  std::map<uint64_t, RerReport<Key>> reports;
  for (uint64_t total : totals) {
    ParallelDataset dataset =
        MakeParallelDataset(p, total / p, Distribution::kUniform,
                            options.seed, /*sleep_mode=*/false,
                            /*keep_union=*/true);
    Cluster::Options cluster_options;
    cluster_options.num_processors = p;
    Cluster cluster(cluster_options);
    ParallelOpaqOptions opaq_options;
    opaq_options.config.run_size = 131072;
    opaq_options.config.samples_per_run = 1024;
    opaq_options.merge_method = MergeMethod::kSample;
    auto result = RunParallelOpaq(cluster, dataset.sources, opaq_options);
    OPAQ_CHECK_OK(result.status());
    GroundTruth<Key> truth(std::move(dataset.union_data));
    reports[total] = ComputeRer(truth, result->estimates, 10);
  }

  TextTable table;
  table.SetTitle("Table 10: parallel RER_L and RER_N (%), p=" +
                 std::to_string(p) + ", s=1024/run, uniform keys");
  std::vector<std::string> head{"Metric"};
  for (uint64_t total : totals) head.push_back(HumanCount(total));
  table.AddHeader(head);
  std::vector<std::string> rer_l_row{"RER_L"};
  std::vector<std::string> rer_n_row{"RER_N"};
  for (uint64_t total : totals) {
    rer_l_row.push_back(TextTable::Num(reports[total].rer_l, 2));
    rer_n_row.push_back(TextTable::Num(reports[total].rer_n, 2));
  }
  table.AddRow(rer_l_row);
  table.AddRow(rer_n_row);
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
