#ifndef OPAQ_BENCH_BENCH_COMMON_H_
#define OPAQ_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/opaq.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "io/codec.h"
#include "io/extent.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "opaq/source.h"
#include "io/throttled_device.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"
#include "parallel/parallel_opaq.h"
#include "util/flags.h"
#include "util/table.h"

namespace opaq {
namespace bench {

/// Keys used throughout the paper-table benches (the paper's integer keys).
using Key = uint64_t;

/// Common bench configuration parsed from the command line.
///
/// Every harness accepts:
///   --scale=F    multiply all data sizes by F (default 1.0 = paper sizes)
///   --seed=N     base RNG seed (default 42)
///   --csv        also emit CSV rows (for plotting)
///   --procs=N    cap on simulated processors (default: paper's counts)
///   --stripes=D  stripe count for the striped-backend rows (default 2)
struct BenchOptions {
  double scale = 1.0;
  uint64_t seed = 42;
  bool csv = false;
  int max_procs = 16;
  int stripes = 2;

  static BenchOptions FromArgs(int argc, char** argv) {
    auto flags = Flags::Parse(argc, argv);
    OPAQ_CHECK_OK(flags.status());
    BenchOptions options;
    options.scale = flags->GetDouble("scale", 1.0);
    options.seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
    options.csv = flags->GetBool("csv", false);
    options.max_procs = static_cast<int>(flags->GetInt("procs", 16));
    options.stripes = static_cast<int>(flags->GetInt("stripes", 2));
    OPAQ_CHECK(options.scale > 0);
    // stripes=1 is the valid degenerate layout (striped x1 should match
    // plain async — a useful sanity row).
    OPAQ_CHECK(options.stripes >= 1 &&
               static_cast<uint64_t>(options.stripes) <= kMaxStripes);
    return options;
  }

  /// Scales a paper data size, keeping it a positive multiple of `multiple`.
  uint64_t Scaled(uint64_t paper_size, uint64_t multiple = 1) const {
    uint64_t scaled = static_cast<uint64_t>(
        static_cast<double>(paper_size) * scale);
    if (scaled < multiple) scaled = multiple;
    scaled -= scaled % multiple;
    if (scaled == 0) scaled = multiple;
    return scaled;
  }
};

/// Dectile labels "10%".."90%" (first column of Tables 3/5/7/9).
std::vector<std::string> DectileLabels();

/// phi values 0.1..0.9.
std::vector<double> DectilePhis();

/// Runs sequential OPAQ over an in-memory dataset and scores it against
/// ground truth. Returns the RER report (per-dectile RER_A plus RER_L/N).
struct SequentialRunResult {
  RerReport<Key> rer;
  double seconds = 0;
};
SequentialRunResult RunSequentialOpaq(const std::vector<Key>& data,
                                      const OpaqConfig& config);

/// A simulated per-processor disk: memory-backed, throttled to disk-class
/// bandwidth when `sleep_mode` (used by the wall-clock parallel benches;
/// accuracy-only benches pass false to run at full speed).
struct SimulatedDisk {
  std::unique_ptr<ThrottledDevice> device;
  TypedDataFile<Key> file;
};

/// Builds one simulated disk holding `data`.
SimulatedDisk MakeSimulatedDisk(const std::vector<Key>& data, bool sleep_mode,
                                const DiskModel& model = DiskModel());

/// A simulated disk ARRAY: `data` striped round-robin across `stripes`
/// independently throttled devices, so each stripe charges (and, in sleep
/// mode, sleeps) its own disk time — concurrent stripe reads genuinely
/// overlap, which is what the striped backend exists to exploit.
struct SimulatedStripedDisk {
  std::vector<std::unique_ptr<ThrottledDevice>> devices;
  std::unique_ptr<StripedDataFile<Key>> file;
  std::unique_ptr<StripedFileProvider<Key>> provider;
};
SimulatedStripedDisk MakeSimulatedStripedDisk(
    const std::vector<Key>& data, bool sleep_mode, int stripes,
    uint64_t chunk_elements, const DiskModel& model = DiskModel());

/// A simulated disk (array) holding `data` as COMPRESSED extents: the
/// compression-on rows of Table 11. Same independently-throttled-stripe
/// charging as `SimulatedStripedDisk`, but the throttle now bills the
/// *packed* bytes — which is the entire point of the extent layer.
struct SimulatedExtentDisk {
  std::vector<std::unique_ptr<ThrottledDevice>> devices;
  std::unique_ptr<ExtentFile> file;
  std::unique_ptr<ExtentFileProvider<Key>> provider;
};
SimulatedExtentDisk MakeSimulatedExtentDisk(
    const std::vector<Key>& data, bool sleep_mode, int stripes,
    uint64_t extent_elements, ExtentCodec codec,
    const DiskModel& model = DiskModel());

/// Per-rank datasets + disks for a parallel run. The union of the per-rank
/// data is kept for ground-truth scoring when `keep_union` is set.
struct ParallelDataset {
  std::vector<SimulatedDisk> disks;
  std::vector<Source<Key>> sources;
  std::vector<Key> union_data;
};
ParallelDataset MakeParallelDataset(int p, uint64_t per_rank,
                                    Distribution distribution, uint64_t seed,
                                    bool sleep_mode, bool keep_union,
                                    const DiskModel& model = DiskModel());

/// One wall-clock-measured parallel OPAQ run on simulated throttled disks
/// with the two-level communication model sleeping for real: what Tables
/// 11-12 and Figures 4-6 are built from.
struct TimedParallelRun {
  double total_seconds = 0;
  /// Per-phase averages across ranks (io / sampling / local merge / global
  /// merge / quantile / other). Under IoMode::kAsync the "io" phase is the
  /// blocked-on-I/O stall time (reads overlapped by sampling don't count).
  PhaseTimer timers{std::vector<std::string>{"io", "sampling", "local_merge",
                                             "global_merge", "quantile",
                                             "other"}};
};
/// One storage/I-O configuration of the side-by-side tables 11/12.
/// `stripes` uses the RunTimedParallel convention: 0 = plain file, >= 1 =
/// a striped array of that many disks.
struct BenchIoMode {
  std::string label;
  IoMode io_mode;
  int stripes;
  /// Compression on: store each rank's shard as packed extents (the extent
  /// backend, one read+decode thread per stripe under kAsync) instead of
  /// plain rows, so the throttled disks serve the packed bytes.
  bool packed = false;
  ExtentCodec codec = ExtentCodec::kDelta;
  /// Dataset distribution for this row. The standard rows use the paper's
  /// uniform keys; the compression on/off pair uses zipf (values bounded
  /// by n, so the delta codec has redundancy to remove — uniform 63-bit
  /// keys are incompressible and only exercise the raw fallback).
  Distribution distribution = Distribution::kUniform;
};

/// `stripes` >= 1 puts every rank's shard on its own `stripes`-disk array
/// (chunk = run_size / stripes, so each run read fans out to all stripes;
/// x1 is the degenerate one-disk array) and `io_mode` then selects inline
/// (kSync) vs. one-thread-per-stripe (kAsync) reading; 0 = plain
/// single-file backend.
TimedParallelRun RunTimedParallel(int p, uint64_t per_rank, uint64_t seed,
                                  uint64_t run_size, uint64_t samples_per_run,
                                  IoMode io_mode = IoMode::kSync,
                                  uint64_t prefetch_depth = 2,
                                  int stripes = 0);

/// Full-row variant: honours `mode.packed`/`mode.codec`/`mode.distribution`
/// in addition to the io_mode/stripes the legacy overload takes. Packed
/// rows store the shard as extents of run_size / max(stripes, 1) elements,
/// so each run read fans out across the array exactly like the striped
/// backend it is compared against.
TimedParallelRun RunTimedParallel(int p, uint64_t per_rank, uint64_t seed,
                                  uint64_t run_size, uint64_t samples_per_run,
                                  const BenchIoMode& mode,
                                  uint64_t prefetch_depth = 2);

/// The canonical sync / async / striped x<options.stripes> row set, shared
/// by every bench that breaks results out per mode so labels stay joinable
/// across tables.
std::vector<BenchIoMode> StandardIoModes(const BenchOptions& options);

/// Formats counts like the paper's column heads: 0.5M, 1M, 32M, 128K.
std::string HumanCount(uint64_t n);

/// Prints the table (and optionally CSV) to stdout.
void Emit(const TextTable& table, const BenchOptions& options);

}  // namespace bench
}  // namespace opaq

#endif  // OPAQ_BENCH_BENCH_COMMON_H_
