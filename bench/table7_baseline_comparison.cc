// Reproduces paper Table 7: OPAQ vs the [AS95]-style one-pass histogram vs
// random sampling at equal memory, RER_A per dectile on 1M elements.
//
// Equal-memory setup: the paper gives every algorithm the state equivalent
// of ~3000 sample points. 10^6 is not divisible into 3000 regular samples
// with integral sub-runs, so we use the nearest clean configuration:
// m = 200000, s = 625 => r*s = 3125 samples (sub-run c = 320). The
// reservoir gets capacity 3125 and the histogram 3124 buckets.
//
// OPAQ's RER_A is the bracket-based measure (as in the paper); the point
// estimators are scored with the rank-displacement adaptation (PointRerA).
// Expected shape: OPAQ comparable or better, and — the paper's real point —
// OPAQ's numbers are *certified* by Lemma 1-3 while the others are not.
// P2 and Munro-Paterson (related work) plus Greenwald-Khanna (published
// 2001, added as the modern comparator) are included as extra columns.

#include <map>

#include "baselines/as95_histogram.h"
#include "baselines/gk.h"
#include "baselines/kll.h"
#include "baselines/munro_paterson.h"
#include "baselines/p2.h"
#include "baselines/reservoir_sample.h"
#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t n = options.Scaled(1000 * 1000, /*multiple=*/200000);
  const uint64_t run_size = 200000;
  const uint64_t s = 625;
  const uint64_t memory_points = (n / run_size) * s;

  // columns[dist][algo] = 9 dectile errors.
  std::map<Distribution, std::map<std::string, std::vector<double>>> columns;
  const std::vector<std::string> algo_order = {"OPAQ", "AS95", "Random",
                                               "P2", "MP80", "GK01", "KLL16"};

  for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
    DatasetSpec spec;
    spec.n = n;
    spec.distribution = dist;
    spec.seed = options.seed;
    spec.duplicate_fraction = 0.1;
    spec.zipf_z = 0.86;
    std::vector<Key> data = GenerateDataset<Key>(spec);
    GroundTruth<Key> truth(data);

    // OPAQ (bracket-based RER_A).
    OpaqConfig config;
    config.run_size = run_size;
    config.samples_per_run = s;
    columns[dist]["OPAQ"] = RunSequentialOpaq(data, config).rer.rer_a;

    // Point estimators at (approximately) the same memory.
    As95HistogramEstimator<Key> as95(memory_points - memory_points % 2);
    ReservoirSampleEstimator<Key> reservoir(memory_points, options.seed);
    P2Estimator<Key> p2(DectilePhis());
    MunroPatersonEstimator<Key> mp(memory_points / 4);  // ~4 live buffers
    GkEstimator<Key> gk(1.0 / static_cast<double>(memory_points / 3));
    KllEstimator<Key> kll(memory_points / 3, options.seed);  // ~3k held
    for (Key v : data) {
      as95.Add(v);
      reservoir.Add(v);
      p2.Add(v);
      mp.Add(v);
      gk.Add(v);
      kll.Add(v);
    }
    auto score = [&](StreamingQuantileEstimator<Key>& e) {
      std::vector<double> out;
      for (double phi : DectilePhis()) {
        auto est = e.EstimateQuantile(phi);
        OPAQ_CHECK_OK(est.status());
        out.push_back(PointRerA(truth, *est, truth.TargetRank(phi)));
      }
      return out;
    };
    columns[dist]["AS95"] = score(as95);
    columns[dist]["Random"] = score(reservoir);
    columns[dist]["P2"] = score(p2);
    columns[dist]["MP80"] = score(mp);
    columns[dist]["GK01"] = score(gk);
    columns[dist]["KLL16"] = score(kll);
  }

  TextTable table;
  table.SetTitle(
      "Table 7: RER_A (%) per dectile, OPAQ vs baselines at equal memory "
      "(n=" + HumanCount(n) + ", ~" + std::to_string(memory_points) +
      " points; OPAQ bracket-scored, baselines rank-displacement-scored)");
  std::vector<std::string> group{""};
  std::vector<std::string> head{"Dectile"};
  for (const char* dist_name : {"Uniform", "Zipf"}) {
    for (const std::string& algo : algo_order) {
      group.push_back(dist_name);
      head.push_back(algo);
    }
  }
  table.AddHeader(group);
  table.AddHeader(head);
  auto labels = DectileLabels();
  for (int d = 0; d < 9; ++d) {
    std::vector<std::string> row{labels[d]};
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipf}) {
      for (const std::string& algo : algo_order) {
        row.push_back(TextTable::Num(columns[dist][algo][d], 2));
      }
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
