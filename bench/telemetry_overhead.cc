// Measures what the compiled-in telemetry hooks (flight-recorder trace
// spans + registry counters) cost on the paper's hot path, by running the
// same workloads with instrumentation armed and disarmed. Two rows per
// size:
//
//   sequential  in-memory one-pass sketch (no throttled disks, pure CPU) —
//               the worst case for hook overhead, since nothing sleeps
//   table11     the Table 11 wall-clock parallel path on throttled disks
//               (sync mode, p=2), the configuration the acceptance gate
//               names
//
// Each arm is run --reps times and the minimum is kept (the usual
// minimum-of-N noise filter); overhead is (on - off) / off. The spans sit
// at run/frame granularity — thousands of elements per span — so the
// budget is <= --max-overhead-pct (default 2). With --check the bench
// exits 1 when the budget is exceeded, so CI can gate on it.

#include <algorithm>

#include "bench/bench_common.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace opaq {
namespace bench {
namespace {

void ArmTelemetry(bool enabled) {
  MetricsRegistry::Global().set_enabled(enabled);
  FlightRecorder::Global().set_enabled(enabled);
}

/// Minimum-of-`reps` seconds for one arm of `workload`.
template <typename Workload>
double MinSeconds(int reps, bool telemetry_on, const Workload& workload) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    ArmTelemetry(telemetry_on);
    WallTimer timer;
    workload();
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  ArmTelemetry(true);
  return best;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  OPAQ_CHECK_OK(flags.status());
  const double scale = flags->GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  const int reps = static_cast<int>(flags->GetInt("reps", 3));
  const double max_overhead_pct = flags->GetDouble("max-overhead-pct", 2.0);
  const bool check = flags->GetBool("check", false);
  OPAQ_CHECK(scale > 0);
  OPAQ_CHECK(reps >= 1);

  BenchOptions options;
  options.scale = scale;
  options.seed = seed;
  const uint64_t n = options.Scaled(2000000, /*multiple=*/1000);

  TextTable table;
  table.SetTitle("Telemetry hook overhead (min of " + std::to_string(reps) +
                 " reps per arm; spans at run granularity)");
  table.AddHeader({"Workload", "Size", "Off (s)", "On (s)", "Overhead %"});

  double worst_pct = 0;

  // CPU-bound arm: sketch an in-memory dataset — every span fires, nothing
  // sleeps, so hook cost has nowhere to hide.
  {
    DatasetSpec spec;
    spec.n = n;
    spec.distribution = Distribution::kUniform;
    spec.seed = seed;
    std::vector<Key> data = GenerateDataset<Key>(spec);
    OpaqConfig config;
    config.run_size = 131072;
    config.samples_per_run = 1024;
    const auto workload = [&] { RunSequentialOpaq(data, config); };
    workload();  // warm-up: page in the dataset before either arm
    const double off = MinSeconds(reps, false, workload);
    const double on = MinSeconds(reps, true, workload);
    const double pct = off > 0 ? (on - off) / off * 100.0 : 0;
    worst_pct = std::max(worst_pct, pct);
    table.AddRow({"sequential", HumanCount(n), TextTable::Num(off, 4),
                  TextTable::Num(on, 4), TextTable::Num(pct, 2)});
  }

  // The Table 11 path: wall-clock parallel run on throttled disks, sync
  // mode, p=2 — the configuration the paper's I/O-fraction table uses.
  {
    const uint64_t per_rank = options.Scaled(500000, /*multiple=*/1000);
    const auto workload = [&] {
      RunTimedParallel(2, per_rank, seed, 131072, 1024, IoMode::kSync, 2);
    };
    const double off = MinSeconds(reps, false, workload);
    const double on = MinSeconds(reps, true, workload);
    const double pct = off > 0 ? (on - off) / off * 100.0 : 0;
    worst_pct = std::max(worst_pct, pct);
    table.AddRow({"table11 sync p=2", HumanCount(per_rank),
                  TextTable::Num(off, 4), TextTable::Num(on, 4),
                  TextTable::Num(pct, 2)});
  }

  Emit(table, options);
  std::cout << "worst overhead: " << TextTable::Num(worst_pct, 2)
            << "% (budget " << TextTable::Num(max_overhead_pct, 2) << "%)\n";
  if (check && worst_pct > max_overhead_pct) {
    std::cerr << "telemetry_overhead: budget exceeded\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
