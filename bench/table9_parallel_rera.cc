// Reproduces paper Table 9: RER_A per dectile for the parallel algorithm on
// 8 processors, total data sizes 0.5M..32M, uniform keys, 1024 samples per
// run. Expected shape: ~0.09-0.10% across every size — the error rate is
// independent of both the data size and the processor count.

#include <map>

#include "bench/bench_common.h"
#include "opaq/parallel.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const int p = std::min(8, options.max_procs);
  const uint64_t kPaperTotals[] = {500000,  1000000, 2000000, 4000000,
                                   8000000, 16000000, 32000000};

  std::map<uint64_t, std::vector<double>> rer_a;
  std::vector<uint64_t> totals;
  for (uint64_t paper_total : kPaperTotals) {
    totals.push_back(options.Scaled(paper_total, /*multiple=*/
                                    static_cast<uint64_t>(p) * 1000));
  }
  for (uint64_t total : totals) {
    ParallelDataset dataset =
        MakeParallelDataset(p, total / p, Distribution::kUniform,
                            options.seed, /*sleep_mode=*/false,
                            /*keep_union=*/true);
    Cluster::Options cluster_options;
    cluster_options.num_processors = p;
    Cluster cluster(cluster_options);
    ParallelOpaqOptions opaq_options;
    opaq_options.config.run_size = 131072;  // 2^17 elements per run
    opaq_options.config.samples_per_run = 1024;
    opaq_options.merge_method = MergeMethod::kSample;
    auto result = RunParallelOpaq(cluster, dataset.sources, opaq_options);
    OPAQ_CHECK_OK(result.status());
    GroundTruth<Key> truth(std::move(dataset.union_data));
    rer_a[total] = ComputeRer(truth, result->estimates, 10).rer_a;
  }

  TextTable table;
  table.SetTitle("Table 9: parallel RER_A (%) per dectile, p=" +
                 std::to_string(p) + ", s=1024/run, uniform keys");
  std::vector<std::string> head{"Dectile"};
  for (uint64_t total : totals) head.push_back(HumanCount(total));
  table.AddHeader(head);
  auto labels = DectileLabels();
  for (int d = 0; d < 9; ++d) {
    std::vector<std::string> row{labels[d]};
    for (uint64_t total : totals) {
      row.push_back(TextTable::Num(rer_a[total][d], 3));
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
