#include "bench/bench_common.h"

#include <sstream>

#include "opaq/parallel.h"
#include "util/timer.h"

namespace opaq {
namespace bench {

std::vector<std::string> DectileLabels() {
  std::vector<std::string> out;
  for (int d = 1; d <= 9; ++d) out.push_back(std::to_string(d * 10) + "%");
  return out;
}

std::vector<double> DectilePhis() {
  std::vector<double> out;
  for (int d = 1; d <= 9; ++d) out.push_back(d / 10.0);
  return out;
}

SequentialRunResult RunSequentialOpaq(const std::vector<Key>& data,
                                      const OpaqConfig& config) {
  SequentialRunResult result;
  WallTimer timer;
  OpaqEstimator<Key> est = EstimateQuantilesInMemory(data, config);
  auto estimates = est.EquiQuantiles(10);
  result.seconds = timer.ElapsedSeconds();
  GroundTruth<Key> truth(data);
  result.rer = ComputeRer(truth, estimates, 10);
  return result;
}

SimulatedDisk MakeSimulatedDisk(const std::vector<Key>& data, bool sleep_mode,
                                const DiskModel& model) {
  auto memory = std::make_unique<MemoryBlockDevice>();
  OPAQ_CHECK_OK(WriteDataset(data, memory.get()));
  auto throttled = std::make_unique<ThrottledDevice>(
      std::move(memory), model,
      sleep_mode ? ThrottledDevice::Mode::kSleep
                 : ThrottledDevice::Mode::kAccount);
  auto file = TypedDataFile<Key>::Open(throttled.get());
  OPAQ_CHECK_OK(file.status());
  return SimulatedDisk{std::move(throttled), std::move(file).value()};
}

SimulatedStripedDisk MakeSimulatedStripedDisk(const std::vector<Key>& data,
                                              bool sleep_mode, int stripes,
                                              uint64_t chunk_elements,
                                              const DiskModel& model) {
  // Populate plain memory devices first (writing through the throttle would
  // charge — and in sleep mode serve — the full write time), then wrap each
  // stripe in its own independently-charged ThrottledDevice.
  std::vector<std::unique_ptr<MemoryBlockDevice>> memory;
  std::vector<BlockDevice*> raw;
  for (int s = 0; s < stripes; ++s) {
    memory.push_back(std::make_unique<MemoryBlockDevice>());
    raw.push_back(memory.back().get());
  }
  OPAQ_CHECK_OK(WriteStriped(data, raw, chunk_elements).status());
  SimulatedStripedDisk out;
  std::vector<BlockDevice*> throttled;
  for (int s = 0; s < stripes; ++s) {
    out.devices.push_back(std::make_unique<ThrottledDevice>(
        std::move(memory[static_cast<size_t>(s)]), model,
        sleep_mode ? ThrottledDevice::Mode::kSleep
                   : ThrottledDevice::Mode::kAccount));
    throttled.push_back(out.devices.back().get());
  }
  auto file = StripedDataFile<Key>::Open(std::move(throttled));
  OPAQ_CHECK_OK(file.status());
  out.file =
      std::make_unique<StripedDataFile<Key>>(std::move(file).value());
  out.provider = std::make_unique<StripedFileProvider<Key>>(out.file.get());
  return out;
}

SimulatedExtentDisk MakeSimulatedExtentDisk(const std::vector<Key>& data,
                                            bool sleep_mode, int stripes,
                                            uint64_t extent_elements,
                                            ExtentCodec codec,
                                            const DiskModel& model) {
  // Same populate-then-wrap order as MakeSimulatedStripedDisk: pack the
  // extents into plain memory devices first, then put each stripe behind
  // its own independently-charged throttle so only reads are billed — and
  // the bill is for the PACKED bytes the devices actually hold.
  std::vector<std::unique_ptr<MemoryBlockDevice>> memory;
  std::vector<BlockDevice*> raw;
  for (int s = 0; s < stripes; ++s) {
    memory.push_back(std::make_unique<MemoryBlockDevice>());
    raw.push_back(memory.back().get());
  }
  ExtentWriterOptions writer_options;
  writer_options.extent_elements = extent_elements;
  writer_options.codec = codec;
  OPAQ_CHECK_OK(WriteExtents(data, raw, writer_options).status());
  SimulatedExtentDisk out;
  std::vector<BlockDevice*> throttled;
  for (int s = 0; s < stripes; ++s) {
    out.devices.push_back(std::make_unique<ThrottledDevice>(
        std::move(memory[static_cast<size_t>(s)]), model,
        sleep_mode ? ThrottledDevice::Mode::kSleep
                   : ThrottledDevice::Mode::kAccount));
    throttled.push_back(out.devices.back().get());
  }
  auto file = ExtentFile::Open(throttled);
  OPAQ_CHECK_OK(file.status());
  out.file = std::make_unique<ExtentFile>(std::move(file).value());
  out.provider = std::make_unique<ExtentFileProvider<Key>>(out.file.get());
  return out;
}

// Per-rank dataset shape. One definition so every backend's rows in tables
// 11/12 measure exactly the same data.
static DatasetSpec RankSpec(uint64_t per_rank, Distribution distribution,
                            uint64_t seed, int rank) {
  DatasetSpec spec;
  spec.n = per_rank;
  spec.distribution = distribution;
  spec.seed = seed + static_cast<uint64_t>(rank) * 7919;
  return spec;
}

ParallelDataset MakeParallelDataset(int p, uint64_t per_rank,
                                    Distribution distribution, uint64_t seed,
                                    bool sleep_mode, bool keep_union,
                                    const DiskModel& model) {
  ParallelDataset out;
  out.disks.reserve(p);
  for (int r = 0; r < p; ++r) {
    std::vector<Key> data =
        GenerateDataset<Key>(RankSpec(per_rank, distribution, seed, r));
    if (keep_union) {
      out.union_data.insert(out.union_data.end(), data.begin(), data.end());
    }
    out.disks.push_back(MakeSimulatedDisk(data, sleep_mode, model));
  }
  for (auto& disk : out.disks) {
    out.sources.push_back(Source<Key>::FromFile(&disk.file));
  }
  return out;
}

TimedParallelRun RunTimedParallel(int p, uint64_t per_rank, uint64_t seed,
                                  uint64_t run_size, uint64_t samples_per_run,
                                  IoMode io_mode, uint64_t prefetch_depth,
                                  int stripes) {
  BenchIoMode mode;
  mode.io_mode = io_mode;
  mode.stripes = stripes;
  return RunTimedParallel(p, per_rank, seed, run_size, samples_per_run, mode,
                          prefetch_depth);
}

TimedParallelRun RunTimedParallel(int p, uint64_t per_rank, uint64_t seed,
                                  uint64_t run_size, uint64_t samples_per_run,
                                  const BenchIoMode& mode,
                                  uint64_t prefetch_depth) {
  const int stripes = mode.stripes;
  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  cluster_options.comm_mode = Cluster::CommMode::kSleep;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions opaq_options;
  opaq_options.config.run_size = run_size;
  opaq_options.config.samples_per_run = samples_per_run;
  opaq_options.config.io_mode = mode.io_mode;
  opaq_options.config.prefetch_depth = prefetch_depth;
  opaq_options.config.stripes = stripes < 1 ? 1
                                            : static_cast<uint64_t>(stripes);
  // The paper uses the sample merge for all scalability results ("we only
  // present results using sample merge for the rest of this section").
  opaq_options.merge_method = MergeMethod::kSample;

  TimedParallelRun out;
  if (mode.packed) {
    // Compression on: the shard lives as packed extents of run_size /
    // stripes elements each, so a run read fans out across the array
    // exactly like the striped backend — but the throttled disks only
    // serve the packed bytes.
    const int extent_stripes = stripes < 1 ? 1 : stripes;
    const uint64_t extent_elements = std::max<uint64_t>(
        1024, run_size / static_cast<uint64_t>(extent_stripes));
    std::vector<SimulatedExtentDisk> disks;
    std::vector<const RunProvider<Key>*> providers;
    for (int r = 0; r < p; ++r) {
      disks.push_back(MakeSimulatedExtentDisk(
          GenerateDataset<Key>(
              RankSpec(per_rank, mode.distribution, seed, r)),
          /*sleep_mode=*/true, extent_stripes, extent_elements, mode.codec));
    }
    for (const SimulatedExtentDisk& disk : disks) {
      providers.push_back(disk.provider.get());
    }
    auto result = RunParallelOpaq(cluster, providers, opaq_options);
    OPAQ_CHECK_OK(result.status());
    out.total_seconds = result->total_wall_seconds;
  } else if (stripes < 1) {
    ParallelDataset dataset =
        MakeParallelDataset(p, per_rank, mode.distribution, seed,
                            /*sleep_mode=*/true, /*keep_union=*/false);
    auto result = RunParallelOpaq(cluster, dataset.sources, opaq_options);
    OPAQ_CHECK_OK(result.status());
    out.total_seconds = result->total_wall_seconds;
  } else {
    // Same per-rank data as the plain path (RankSpec keeps the seeds in
    // lockstep), but each shard lives on its own `stripes`-disk array.
    // Chunk = run_size / stripes so every run read fans out across all the
    // rank's disks.
    const uint64_t chunk = std::max<uint64_t>(
        1024, run_size / static_cast<uint64_t>(stripes));
    std::vector<SimulatedStripedDisk> disks;
    std::vector<const RunProvider<Key>*> providers;
    for (int r = 0; r < p; ++r) {
      disks.push_back(MakeSimulatedStripedDisk(
          GenerateDataset<Key>(
              RankSpec(per_rank, mode.distribution, seed, r)),
          /*sleep_mode=*/true, stripes, chunk));
    }
    for (const SimulatedStripedDisk& disk : disks) {
      providers.push_back(disk.provider.get());
    }
    auto result = RunParallelOpaq(cluster, providers, opaq_options);
    OPAQ_CHECK_OK(result.status());
    out.total_seconds = result->total_wall_seconds;
  }
  out.timers = cluster.AveragedTimers();
  return out;
}

std::vector<BenchIoMode> StandardIoModes(const BenchOptions& options) {
  return {
      {"sync", IoMode::kSync, 0},
      {"async", IoMode::kAsync, 0},
      {"striped x" + std::to_string(options.stripes), IoMode::kAsync,
       options.stripes},
  };
}

std::string HumanCount(uint64_t n) {
  std::ostringstream os;
  if (n % (1000 * 1000) == 0) {
    os << n / (1000 * 1000) << "M";
  } else if (n % 1000 == 0 && n >= 1000 * 1000) {
    os << static_cast<double>(n) / 1e6 << "M";
  } else if (n >= 1000 * 1000) {
    os << static_cast<double>(n) / 1e6 << "M";
  } else if (n % 1000 == 0) {
    os << n / 1000 << "K";
  } else {
    os << n;
  }
  return os.str();
}

void Emit(const TextTable& table, const BenchOptions& options) {
  table.Print(std::cout);
  if (options.csv) {
    std::cout << "\n[csv]\n";
    table.PrintCsv(std::cout);
  }
  std::cout << std::endl;
}

}  // namespace bench
}  // namespace opaq
