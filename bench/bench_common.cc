#include "bench/bench_common.h"

#include <sstream>

#include "util/timer.h"

namespace opaq {
namespace bench {

std::vector<std::string> DectileLabels() {
  std::vector<std::string> out;
  for (int d = 1; d <= 9; ++d) out.push_back(std::to_string(d * 10) + "%");
  return out;
}

std::vector<double> DectilePhis() {
  std::vector<double> out;
  for (int d = 1; d <= 9; ++d) out.push_back(d / 10.0);
  return out;
}

SequentialRunResult RunSequentialOpaq(const std::vector<Key>& data,
                                      const OpaqConfig& config) {
  SequentialRunResult result;
  WallTimer timer;
  OpaqEstimator<Key> est = EstimateQuantilesInMemory(data, config);
  auto estimates = est.EquiQuantiles(10);
  result.seconds = timer.ElapsedSeconds();
  GroundTruth<Key> truth(data);
  result.rer = ComputeRer(truth, estimates, 10);
  return result;
}

SimulatedDisk MakeSimulatedDisk(const std::vector<Key>& data, bool sleep_mode,
                                const DiskModel& model) {
  auto memory = std::make_unique<MemoryBlockDevice>();
  OPAQ_CHECK_OK(WriteDataset(data, memory.get()));
  auto throttled = std::make_unique<ThrottledDevice>(
      std::move(memory), model,
      sleep_mode ? ThrottledDevice::Mode::kSleep
                 : ThrottledDevice::Mode::kAccount);
  auto file = TypedDataFile<Key>::Open(throttled.get());
  OPAQ_CHECK_OK(file.status());
  return SimulatedDisk{std::move(throttled), std::move(file).value()};
}

ParallelDataset MakeParallelDataset(int p, uint64_t per_rank,
                                    Distribution distribution, uint64_t seed,
                                    bool sleep_mode, bool keep_union,
                                    const DiskModel& model) {
  ParallelDataset out;
  out.disks.reserve(p);
  for (int r = 0; r < p; ++r) {
    DatasetSpec spec;
    spec.n = per_rank;
    spec.distribution = distribution;
    spec.seed = seed + static_cast<uint64_t>(r) * 7919;
    std::vector<Key> data = GenerateDataset<Key>(spec);
    if (keep_union) {
      out.union_data.insert(out.union_data.end(), data.begin(), data.end());
    }
    out.disks.push_back(MakeSimulatedDisk(data, sleep_mode, model));
  }
  for (auto& disk : out.disks) out.files.push_back(&disk.file);
  return out;
}

TimedParallelRun RunTimedParallel(int p, uint64_t per_rank, uint64_t seed,
                                  uint64_t run_size, uint64_t samples_per_run,
                                  IoMode io_mode, uint64_t prefetch_depth) {
  ParallelDataset dataset =
      MakeParallelDataset(p, per_rank, Distribution::kUniform, seed,
                          /*sleep_mode=*/true, /*keep_union=*/false);
  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  cluster_options.comm_mode = Cluster::CommMode::kSleep;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions opaq_options;
  opaq_options.config.run_size = run_size;
  opaq_options.config.samples_per_run = samples_per_run;
  opaq_options.config.io_mode = io_mode;
  opaq_options.config.prefetch_depth = prefetch_depth;
  // The paper uses the sample merge for all scalability results ("we only
  // present results using sample merge for the rest of this section").
  opaq_options.merge_method = MergeMethod::kSample;
  auto result = RunParallelOpaq(cluster, dataset.files, opaq_options);
  OPAQ_CHECK_OK(result.status());
  TimedParallelRun out;
  out.total_seconds = result->total_wall_seconds;
  out.timers = cluster.AveragedTimers();
  return out;
}

std::string HumanCount(uint64_t n) {
  std::ostringstream os;
  if (n % (1000 * 1000) == 0) {
    os << n / (1000 * 1000) << "M";
  } else if (n % 1000 == 0 && n >= 1000 * 1000) {
    os << static_cast<double>(n) / 1e6 << "M";
  } else if (n >= 1000 * 1000) {
    os << static_cast<double>(n) / 1e6 << "M";
  } else if (n % 1000 == 0) {
    os << n / 1000 << "K";
  } else {
    os << n;
  }
  return os.str();
}

void Emit(const TextTable& table, const BenchOptions& options) {
  table.Print(std::cout);
  if (options.csv) {
    std::cout << "\n[csv]\n";
    table.PrintCsv(std::cout);
  }
  std::cout << std::endl;
}

}  // namespace bench
}  // namespace opaq
