// Reproduces paper Figure 4: scale-up — total execution time vs processor
// count at a fixed number of elements PER processor. Expected shape: nearly
// flat lines (per-processor work is constant; only the small global merge
// grows with p).

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kPaperPerRank[] = {500000, 1000000, 2000000, 4000000};
  std::vector<int> procs;
  for (int p : {1, 2, 4, 8, 16}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  TextTable table;
  table.SetTitle(
      "Figure 4: scale-up — total time (s) vs processors at fixed "
      "elements/processor (flat = perfect scale-up)");
  std::vector<std::string> head{"Processors"};
  for (uint64_t paper_size : kPaperPerRank) {
    head.push_back(HumanCount(options.Scaled(paper_size, 1000)) + "/proc");
  }
  table.AddHeader(head);

  for (int p : procs) {
    std::vector<std::string> row{std::to_string(p)};
    for (uint64_t paper_size : kPaperPerRank) {
      const uint64_t per_rank = options.Scaled(paper_size, 1000);
      TimedParallelRun run =
          RunTimedParallel(p, per_rank, options.seed, 131072, 1024);
      row.push_back(TextTable::Num(run.total_seconds, 3));
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
