// Micro-benchmarks (google-benchmark) for the selection substrate: single
// selection and regular-sample extraction across algorithms. Backs the
// paper's §2.1 claim that randomized selection "has small constant and is
// practically very efficient" relative to the deterministic [ea72].

#include <benchmark/benchmark.h>

#include "data/dataset.h"
#include "select/multi_select.h"
#include "select/select.h"

namespace opaq {
namespace {

std::vector<uint64_t> BenchData(size_t n) {
  DatasetSpec spec;
  spec.n = n;
  spec.distribution = Distribution::kUniform;
  spec.seed = 99;
  return GenerateDataset<uint64_t>(spec);
}

void BM_SelectMedian(benchmark::State& state) {
  const auto algorithm = static_cast<SelectAlgorithm>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const std::vector<uint64_t> data = BenchData(n);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> work = data;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        SelectKth(work.data(), work.size(), n / 2, algorithm, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectMedian)
    ->ArgNames({"algo", "n"})
    ->Args({static_cast<int>(SelectAlgorithm::kStdNthElement), 1 << 20})
    ->Args({static_cast<int>(SelectAlgorithm::kMedianOfMedians), 1 << 20})
    ->Args({static_cast<int>(SelectAlgorithm::kFloydRivest), 1 << 20})
    ->Args({static_cast<int>(SelectAlgorithm::kIntroSelect), 1 << 20});

void BM_RegularSamples(benchmark::State& state) {
  const auto algorithm = static_cast<SelectAlgorithm>(state.range(0));
  const size_t m = 1 << 20;
  const uint64_t s = static_cast<uint64_t>(state.range(1));
  const std::vector<uint64_t> data = BenchData(m);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> work = data;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        RegularSamples(work.data(), work.size(), s, algorithm, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m));
}
BENCHMARK(BM_RegularSamples)
    ->ArgNames({"algo", "s"})
    ->Args({static_cast<int>(SelectAlgorithm::kFloydRivest), 256})
    ->Args({static_cast<int>(SelectAlgorithm::kFloydRivest), 1024})
    ->Args({static_cast<int>(SelectAlgorithm::kFloydRivest), 4096})
    ->Args({static_cast<int>(SelectAlgorithm::kMedianOfMedians), 1024})
    ->Args({static_cast<int>(SelectAlgorithm::kIntroSelect), 1024});

void BM_RegularSamplesBySorting(benchmark::State& state) {
  const size_t m = 1 << 20;
  const uint64_t s = static_cast<uint64_t>(state.range(0));
  const std::vector<uint64_t> data = BenchData(m);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> work = data;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        RegularSamplesBySorting(work.data(), work.size(), m / s));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m));
}
BENCHMARK(BM_RegularSamplesBySorting)->Arg(1024);

}  // namespace
}  // namespace opaq

BENCHMARK_MAIN();
