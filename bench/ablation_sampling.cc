// Ablation bench for the DESIGN.md design choices:
//  (a) multi-select (the paper's O(m log s) recursive selection) vs sorting
//      each run (O(m log m)) — the paper's reason for using selection;
//  (b) the single-selection algorithm inside multi-select;
//  (c) k-way tournament merge vs repeated two-way merging of the r sample
//      lists (the paper's O(rs log r) step).

#include <algorithm>

#include "bench/bench_common.h"
#include "core/kway_merge.h"
#include "select/multi_select.h"
#include "util/timer.h"

namespace opaq {
namespace bench {
namespace {

double TimeIt(const std::function<void()>& fn, int trials = 3) {
  double best = 1e100;
  for (int t = 0; t < trials; ++t) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t m = options.Scaled(1 << 20, /*multiple=*/4096);

  // --- (a)+(b): sampling one run of m elements with s samples. ---
  {
    TextTable table;
    table.SetTitle("Ablation A: time (s) to extract s regular samples from "
                   "a run of " + HumanCount(m) + " elements");
    table.AddHeader({"s", "multi-select/introselect",
                     "multi-select/floyd-rivest",
                     "multi-select/median-of-medians",
                     "multi-select/nth_element", "full-sort"});
    DatasetSpec spec;
    spec.n = m;
    spec.seed = options.seed;
    const std::vector<Key> data = GenerateDataset<Key>(spec);
    for (uint64_t s : {256, 1024, 4096}) {
      std::vector<std::string> row{std::to_string(s)};
      for (SelectAlgorithm a :
           {SelectAlgorithm::kIntroSelect, SelectAlgorithm::kFloydRivest,
            SelectAlgorithm::kMedianOfMedians,
            SelectAlgorithm::kStdNthElement}) {
        row.push_back(TextTable::Num(TimeIt([&] {
          std::vector<Key> work = data;
          Xoshiro256 rng(1);
          RegularSamples(work.data(), work.size(), s, a, rng);
        }), 4));
      }
      row.push_back(TextTable::Num(TimeIt([&] {
        std::vector<Key> work = data;
        RegularSamplesBySorting(work.data(), work.size(), m / s);
      }), 4));
      table.AddRow(row);
    }
    Emit(table, options);
  }

  // --- (c): merging r sorted sample lists of s=1024 each. ---
  {
    TextTable table;
    table.SetTitle(
        "Ablation B: time (s) to merge r sorted sample lists (s=1024)");
    table.AddHeader({"r", "k-way tournament", "repeated two-way"});
    for (uint64_t r : {8, 32, 128, 512}) {
      std::vector<std::vector<Key>> lists(r);
      Xoshiro256 rng(options.seed);
      for (auto& list : lists) {
        list.resize(1024);
        for (auto& v : list) v = rng.Next();
        std::sort(list.begin(), list.end());
      }
      std::vector<std::string> row{std::to_string(r)};
      row.push_back(TextTable::Num(TimeIt([&] {
        KWayMergeSorted(lists);
      }), 4));
      row.push_back(TextTable::Num(TimeIt([&] {
        std::vector<Key> acc;
        for (const auto& list : lists) acc = MergeSorted(acc, list);
      }), 4));
      table.AddRow(row);
    }
    Emit(table, options);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
