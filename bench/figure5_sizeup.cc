// Reproduces paper Figure 5: size-up — total execution time vs elements per
// processor, one line per processor count. Expected shape: linear growth in
// the per-processor data size, with the lines for different p nearly
// coincident (low parallel overhead).

#include "bench/bench_common.h"

namespace opaq {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const uint64_t kPaperPerRank[] = {500000, 1000000, 2000000, 4000000};
  std::vector<int> procs;
  for (int p : {1, 2, 4, 8, 16}) {
    if (p <= options.max_procs) procs.push_back(p);
  }

  TextTable table;
  table.SetTitle(
      "Figure 5: size-up — total time (s) vs elements/processor (linear in "
      "size = good size-up)");
  std::vector<std::string> head{"Elems/proc"};
  for (int p : procs) {
    head.push_back(std::to_string(p) + (p == 1 ? " processor" : " processors"));
  }
  table.AddHeader(head);

  for (uint64_t paper_size : kPaperPerRank) {
    const uint64_t per_rank = options.Scaled(paper_size, 1000);
    std::vector<std::string> row{HumanCount(per_rank)};
    for (int p : procs) {
      TimedParallelRun run =
          RunTimedParallel(p, per_rank, options.seed, 131072, 1024);
      row.push_back(TextTable::Num(run.total_seconds, 3));
    }
    table.AddRow(row);
  }
  Emit(table, options);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace opaq

int main(int argc, char** argv) { return opaq::bench::Main(argc, argv); }
